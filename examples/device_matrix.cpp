// Device matrix: static analysis next to dynamic execution across every
// API level an app declares support for — the "device lab" view. Each row
// is a level; columns show what the static analyzer predicts there and
// what a run on that device actually does. The statically-flagged-but-
// never-crashing rows are the false-alarm surface the paper's §VI dynamic
// complement is designed to triage.
//
//   $ ./examples/device_matrix
#include <cstdio>
#include <unordered_set>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "dynamic/interpreter.hpp"
#include "workload/app_builder.hpp"

namespace sd = saintdroid;
namespace cat = sd::catalog;

int main() {
  const auto& repo = sd::FrameworkRepository::standard();

  // An app with a spread of behaviours: one real backward mismatch, one
  // guarded call, one runtime-guarded call (static FP), one permission
  // misuse, one callback mismatch.
  sd::AppBuilder b{"matrix-app", "com.example.matrix", repo.spec()};
  b.sdk(16, 26);
  b.api_call(cat::get_color_state_list());                       // crashes < 23
  b.api_call(cat::set_status_bar_color(), sd::GuardMode::kLocal);  // safe
  b.api_call(cat::is_destroyed(), sd::GuardMode::kHidden);  // static FP
  b.permission_use(cat::camera_open());                    // crashes >= 23
  b.callback_override(cat::on_attach_context());           // skipped < 23
  const auto built = b.build();

  sd::SaintDroid tool{repo};
  const sd::AnalysisResult static_result = tool.analyze(built.apk);
  std::printf("static analysis: %zu mismatches\n", static_result.mismatches.size());
  for (const auto& m : static_result.mismatches)
    std::printf("  %s\n", m.to_string().c_str());

  // Which levels does the static analysis implicate?
  std::unordered_set<int> predicted;
  for (const auto& m : static_result.mismatches)
    for (int level = m.problem_levels.lo(); level <= m.problem_levels.hi();
         ++level)
      predicted.insert(level);

  std::printf("\n%6s %10s %12s %10s %10s\n", "level", "predicted",
              "crashes", "skipped", "agrees");
  sd::Interpreter interp{built.apk, repo};
  const sd::ApiInterval range = built.apk.manifest.supported_range();
  int agreements = 0;
  int rows = 0;
  for (int level = range.lo(); level <= range.hi(); ++level) {
    sd::DeviceConfig device;
    device.level = level;
    const sd::ExecutionResult run = interp.run(device);
    const bool misbehaves = run.crashed() || !run.skipped_callbacks.empty();
    const bool was_predicted = predicted.contains(level);
    // Static analysis is conservative: predicted ⊇ misbehaving is the
    // expected relation; a miss the other way would be a soundness bug.
    const bool agrees = was_predicted || !misbehaves;
    agreements += agrees;
    ++rows;
    std::printf("%6d %10s %12zu %10zu %10s\n", level,
                was_predicted ? "yes" : "no", run.crashes.size(),
                run.skipped_callbacks.size(), agrees ? "yes" : "NO!");
  }
  std::printf("\n%d/%d levels consistent (static over-approximates by "
              "design: the hidden-guard site is flagged everywhere but "
              "never crashes)\n",
              agreements, rows);
  return agreements == rows ? 0 : 1;
}
