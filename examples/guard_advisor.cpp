// Guard advisor: detect mismatches, then emit concrete repair suggestions
// — the code-synthesizer direction the paper names as future work (§VIII),
// exercised over an app with one mismatch of every class.
//
//   $ ./examples/guard_advisor
#include <cstdio>

#include "adf/repository.hpp"
#include "core/advisor.hpp"
#include "core/saintdroid.hpp"
#include "workload/app_builder.hpp"

namespace sd = saintdroid;
namespace cat = sd::catalog;

int main() {
  const auto& repo = sd::FrameworkRepository::standard();
  sd::SaintDroid tool{repo};

  // One app exhibiting every mismatch family the detector knows.
  sd::AppBuilder b{"fixme", "com.example.fixme", repo.spec()};
  b.sdk(14, 26);
  b.api_call(cat::get_color_state_list());       // backward invocation
  b.api_call(cat::http_client_execute());        // forward (removed API)
  b.callback_override(cat::on_attach_context()); // callback mismatch
  b.permission_use(cat::camera_open());          // permission request
  const auto built = b.build();

  const sd::AnalysisResult result = tool.analyze(built.apk);
  std::printf("%s: %zu mismatches detected\n\n", built.apk.name.c_str(),
              result.mismatches.size());

  const auto suggestions =
      sd::suggest_repairs(built.apk.manifest, result.mismatches);
  std::fputs(sd::render_repairs(suggestions).c_str(), stdout);

  std::printf("\napplying the advice: the same constructs, guarded and with "
              "the permission protocol implemented...\n\n");

  sd::AppBuilder fixed{"fixed", "com.example.fixed", repo.spec()};
  fixed.sdk(14, 26);
  fixed.api_call(cat::get_color_state_list(), sd::GuardMode::kLocal);
  fixed.implement_runtime_permission_protocol();
  fixed.permission_use(cat::camera_open(), sd::GuardMode::kCrossMethod);
  const auto fixed_built = fixed.build();
  const sd::AnalysisResult after = tool.analyze(fixed_built.apk);
  std::printf("remaining mismatches after repair: %zu", after.mismatches.size());
  std::printf(" (the onRequestPermissionsResult override itself is flagged "
              "while minSdk stays below 23 — the advisor's raise-min-sdk "
              "suggestion closes that one)\n");
  for (const auto& m : after.mismatches)
    std::printf("  %s\n", m.to_string().c_str());
  return result.mismatches.size() >= 4 ? 0 : 1;
}
