// Permission audit: the PRM capability unique to SAINTDroid (Table IV),
// walked through on four apps that mirror the paper's §V-B case studies —
// a Kolab-notes-style request mismatch, an AdAway-style revocation
// mismatch, a correctly-implemented app, and a pre-23-only user.
//
//   $ ./examples/permission_audit
#include <cstdio>

#include "adf/permissions.hpp"
#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "workload/app_builder.hpp"

namespace sd = saintdroid;
namespace cat = sd::catalog;

namespace {

void audit(sd::SaintDroid& tool, const sd::Apk& apk, const char* expectation) {
  const sd::AnalysisResult result = tool.analyze(apk);
  std::printf("--- %s (minSdk %d, target %d) ---\n", apk.name.c_str(),
              apk.manifest.min_sdk, apk.manifest.target_sdk);
  std::printf("expectation: %s\n", expectation);
  bool any = false;
  for (const auto& m : result.mismatches) {
    if (m.kind != sd::MismatchKind::kPermissionRequest &&
        m.kind != sd::MismatchKind::kPermissionRevocation)
      continue;
    std::printf("  %s\n", m.to_string().c_str());
    any = true;
  }
  if (!any) std::printf("  no permission-induced mismatches\n");
  std::printf("\n");
}

}  // namespace

int main() {
  const auto& repo = sd::FrameworkRepository::standard();
  sd::SaintDroid tool{repo};

  std::printf("The runtime permission system arrived with API level %d; %zu "
              "permissions are dangerous.\n\n",
              sd::kRuntimePermissionLevel, sd::dangerous_permissions().size());

  {
    // Kolab Notes pattern: targets 26, writes external storage, never
    // implements the runtime request protocol.
    sd::AppBuilder b{"notes-sync", "com.audit.notes", repo.spec()};
    b.sdk(16, 26);
    b.permission_use(cat::resolver_insert());
    const auto built = b.build();
    audit(tool, built.apk,
          "request mismatch: saving to the SD card fails when the user "
          "never granted WRITE_EXTERNAL_STORAGE");
  }
  {
    // AdAway pattern: targets 22; on a >= 23 device the user can revoke
    // the permission out from under the app.
    sd::AppBuilder b{"ad-blocker", "com.audit.adblock", repo.spec()};
    b.sdk(16, 22);
    b.permission_use(cat::resolver_insert());
    const auto built = b.build();
    audit(tool, built.apk,
          "revocation mismatch: exporting a file crashes after the user "
          "revokes the permission");
  }
  {
    // The fixed app: targets >= 23 and implements the full protocol.
    sd::AppBuilder b{"camera-done-right", "com.audit.camera", repo.spec()};
    b.sdk(23, 26);
    b.implement_runtime_permission_protocol();
    b.permission_use(cat::camera_open());
    const auto built = b.build();
    audit(tool, built.apk, "clean: requests at runtime and handles results");
  }
  {
    // Deep (transitive) permission use: the API itself enforces nothing,
    // but its framework-internal callee does — first-level tools miss it.
    sd::AppBuilder b{"gallery-export", "com.audit.gallery", repo.spec()};
    b.sdk(19, 26);
    b.permission_use(cat::insert_image());
    const auto built = b.build();
    audit(tool, built.apk,
          "request mismatch found through the ADF call chain "
          "(MediaStore.insertImage -> ContentResolver.insert)");
  }
  return 0;
}
