// Quickstart: author an app with the builder API, serialize it to APK
// bytes, parse it back (the tool consumes bytes, like the real SAINTDroid
// consumes APKs), analyze, and print the report.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "dex/builder.hpp"

namespace sd = saintdroid;

int main() {
  // 1. The framework substrate and the analyzer. The repository models the
  //    Android Development Framework at every API level 2..29; SaintDroid
  //    mines its revision database once at construction.
  const auto& repo = sd::FrameworkRepository::standard();
  sd::SaintDroid tool{repo};

  // 2. Author a small app the way the paper's Listing 1 describes it:
  //    minSdkVersion 21, target 28, calling Context.getColorStateList
  //    (introduced at API level 23) — once unguarded, once guarded.
  sd::DexBuilder dex;
  auto& main_activity =
      dex.add_class("com/example/quickstart/MainActivity",
                    "android/app/Activity");

  auto& on_create =
      main_activity.add_method("onCreate", "V", {"android/os/Bundle"});
  on_create.invoke_super("android/app/Activity", "onCreate", "V",
                         {"android/os/Bundle"});
  on_create.invoke_virtual("com/example/quickstart/MainActivity",
                           "loadColorsUnsafely");
  on_create.invoke_virtual("com/example/quickstart/MainActivity",
                           "loadColorsSafely");
  on_create.return_void();

  auto& unsafe = main_activity.add_method("loadColorsUnsafely");
  unsafe.invoke_virtual("android/content/Context", "getColorStateList",
                        "android/content/res/ColorStateList", {"I"});
  unsafe.return_void();

  auto& safe = main_activity.add_method("loadColorsSafely");
  safe.sget_sdk_int(0);
  sd::Label skip = safe.new_label();
  safe.if_lit(sd::CmpOp::kLt, 0, 23, skip);
  safe.invoke_virtual("android/content/Context", "getColorStateList",
                      "android/content/res/ColorStateList", {"I"});
  safe.bind(skip);
  safe.return_void();

  sd::Apk apk;
  apk.name = "quickstart";
  apk.manifest.package = "com.example.quickstart";
  apk.manifest.min_sdk = 21;
  apk.manifest.target_sdk = 28;
  apk.manifest.components.push_back(
      sd::Component{sd::ComponentKind::kActivity,
                    "com/example/quickstart/MainActivity"});
  apk.dexes.push_back(dex.build());

  // 3. Round-trip through bytes: the analysis input is a serialized
  //    package, exactly like a real APK on disk.
  const std::vector<std::uint8_t> bytes = apk.serialize();
  const sd::Apk parsed = sd::Apk::parse(bytes);
  std::printf("built %s: %llu dex instructions, %zu bytes serialized\n\n",
              parsed.name.c_str(),
              static_cast<unsigned long long>(parsed.dex_loc()),
              bytes.size());

  // 4. Analyze and report. Expected: exactly one API invocation mismatch —
  //    the unguarded call, flagged for device levels 21-22; the guarded
  //    twin is proven safe by the guard analysis.
  const sd::AnalysisResult result = tool.analyze(parsed);
  std::fputs(result.to_text(parsed.name).c_str(), stdout);

  return result.completed &&
                 result.count(sd::MismatchKind::kApiInvocation) == 1
             ? 0
             : 1;
}
