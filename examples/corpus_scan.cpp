// Corpus scan: batch-analyze a slice of the real-world corpus and print an
// RQ2-style summary — how a marketplace reviewer would run the tool over
// an app inventory.
//
//   $ ./examples/corpus_scan [app-count]   (default 50)
#include <cstdio>
#include <cstdlib>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "support/stats.hpp"
#include "workload/corpus.hpp"

namespace sd = saintdroid;

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 50;

  const auto& repo = sd::FrameworkRepository::standard();
  const sd::RealWorldCorpus corpus{repo};
  sd::SaintDroid tool{repo};

  std::printf("scanning %d apps from the corpus...\n\n", count);
  std::printf("%-22s %8s %6s %6s %6s %10s\n", "app", "KLOC", "API", "APC",
              "PRM", "time ms");

  std::uint64_t api = 0;
  std::uint64_t apc = 0;
  std::uint64_t prm = 0;
  int clean = 0;
  sd::OnlineStats ms;

  for (int i = 0; i < count && i < corpus.size(); ++i) {
    const sd::BenchApp app = corpus.generate(i);
    const sd::AnalysisResult result = tool.analyze(app.apk);
    const auto n_api = result.count(sd::MismatchKind::kApiInvocation);
    const auto n_apc = result.count(sd::MismatchKind::kApiCallback);
    const auto n_prm = result.permission_count();
    api += n_api;
    apc += n_apc;
    prm += n_prm;
    clean += result.mismatches.empty();
    ms.add(result.usage.seconds * 1000.0);
    std::printf("%-22s %8.1f %6zu %6zu %6zu %10.2f\n", app.apk.name.c_str(),
                app.apk.kloc(), n_api, n_apc, n_prm,
                result.usage.seconds * 1000.0);
  }

  std::printf("\ntotals: %llu API, %llu APC, %llu PRM mismatches; %d of %d "
              "apps clean\n",
              static_cast<unsigned long long>(api),
              static_cast<unsigned long long>(apc),
              static_cast<unsigned long long>(prm), clean, count);
  std::printf("analysis time: avg %.2f ms (%.2f - %.2f ms)\n", ms.mean(),
              ms.min(), ms.max());
  return 0;
}
