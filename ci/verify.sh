#!/usr/bin/env bash
# Tier-1 verification gate: the exact configure/build/ctest sequence CI
# runs on every commit, plus the ThreadSanitizer leg over the concurrency
# suites (ci/sanitize.sh tsan). Run before pushing; a clean exit here is
# what "tier-1 green" means in ROADMAP.md.
#
# Usage: ci/verify.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"
tsan=1
[[ "${1:-}" == "--no-tsan" ]] && tsan=0

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S . > /dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$tsan" == 1 ]]; then
  ci/sanitize.sh tsan
fi

echo "verify: OK"
