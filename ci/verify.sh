#!/usr/bin/env bash
# Tier-1 verification gate: the exact configure/build/ctest sequence CI
# runs on every commit, plus the ThreadSanitizer leg over the concurrency
# suites (ci/sanitize.sh tsan). Run before pushing; a clean exit here is
# what "tier-1 green" means in ROADMAP.md.
#
# Usage: ci/verify.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"
tsan=1
[[ "${1:-}" == "--no-tsan" ]] && tsan=0

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S . > /dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "=== incremental equivalence gate: test_incremental ==="
# Also part of the ctest pass above; run standalone so the incremental ≡
# from-scratch proof fails loudly under its own name.
./build/tests/test_incremental

echo "=== doc-drift lint: docs/*.md flags vs saintdroid --help ==="
tools/check_doc_drift.sh ./build/tools/saintdroid docs

echo "=== serve smoke: daemon up, one vetted request, clean SIGTERM ==="
smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT
./build/tools/apkgen demo "$smoke/app.apk" > /dev/null
./build/tools/saintdroid serve "$smoke/state" --jobs 2 \
  2> "$smoke/serve.log" &
serve_pid=$!
response="$(./build/tools/saintdroid submit "$smoke/state" "$smoke/app.apk" \
  --wait 30)"
echo "$response"
case "$response" in
  *'"status":"done"'*) ;;
  *) echo "serve smoke: expected a done response" >&2; exit 1 ;;
esac
kill -TERM "$serve_pid"
rc=0; wait "$serve_pid" || rc=$?
if [[ "$rc" != 4 ]]; then
  echo "serve smoke: expected graceful-shutdown exit 4, got $rc" >&2
  cat "$smoke/serve.log" >&2
  exit 1
fi

if [[ "$tsan" == 1 ]]; then
  ci/sanitize.sh tsan
fi

echo "verify: OK"
