#!/usr/bin/env bash
# Sanitizer CI for the concurrency and robustness surfaces.
#
# Two legs, both building with the repo's SD_SANITIZE CMake option:
#   1. ThreadSanitizer over the parallel/robustness suites — the thread
#      pool, run_suite_parallel, the fault-injection substrate and the
#      shared journal writer are the racy surfaces.
#   2. AddressSanitizer+UBSan over the full tier-1 ctest suite — the fuzz
#      sweeps only prove "no crash" if UB actually traps.
#
# Usage: ci/sanitize.sh [tsan|asan|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

leg="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_tsan() {
  echo "=== ThreadSanitizer: test_parallel + test_faults + test_shard + test_workstealing + test_substrate + test_model_cache + test_detectors + test_serve + test_incremental ==="
  cmake -B build-tsan -S . -DSD_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build build-tsan -j "$jobs" \
        --target test_parallel test_faults test_shard test_workstealing \
        test_substrate test_model_cache test_detectors test_serve \
        test_incremental
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_parallel
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_faults
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_shard
  # Concurrent agents racing one work directory: rename-atomic claiming,
  # the heartbeat thread, and the shared journal writer under one roof.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_workstealing
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_substrate
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_model_cache
  # SEM/SDC detectors' parallel differential: detectors-on vs detectors-off
  # suites at jobs {1,2,8} share analyzers across the worker fan-out.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_detectors
  # The vetting daemon: admission queue, worker pool, result cache and the
  # response fan-out racing client threads — plus the soak at 2x capacity.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_serve
  # Parallel suites racing one shared incremental cache directory
  # (ChainSuite.ConcurrentSuitesShareOneCacheDirectory): rename-atomic
  # entry stores against concurrent try_loads across worker threads.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_incremental
}

run_asan() {
  echo "=== AddressSanitizer+UBSan: full tier-1 suite ==="
  cmake -B build-asan -S . -DSD_SANITIZE=address,undefined \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build build-asan -j "$jobs"
  ASAN_OPTIONS="detect_leaks=0" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j "$jobs"
}

case "$leg" in
  tsan) run_tsan ;;
  asan) run_asan ;;
  all)  run_tsan; run_asan ;;
  *)    echo "usage: ci/sanitize.sh [tsan|asan|all]" >&2; exit 2 ;;
esac
echo "sanitize: OK ($leg)"
