file(REMOVE_RECURSE
  "CMakeFiles/test_dex.dir/test_dex.cpp.o"
  "CMakeFiles/test_dex.dir/test_dex.cpp.o.d"
  "test_dex"
  "test_dex.pdb"
  "test_dex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
