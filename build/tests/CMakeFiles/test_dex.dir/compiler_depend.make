# Empty compiler generated dependencies file for test_dex.
# This may be replaced when dependencies are built.
