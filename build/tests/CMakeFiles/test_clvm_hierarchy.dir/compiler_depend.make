# Empty compiler generated dependencies file for test_clvm_hierarchy.
# This may be replaced when dependencies are built.
