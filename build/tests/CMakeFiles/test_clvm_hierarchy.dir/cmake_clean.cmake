file(REMOVE_RECURSE
  "CMakeFiles/test_clvm_hierarchy.dir/test_clvm_hierarchy.cpp.o"
  "CMakeFiles/test_clvm_hierarchy.dir/test_clvm_hierarchy.cpp.o.d"
  "test_clvm_hierarchy"
  "test_clvm_hierarchy.pdb"
  "test_clvm_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clvm_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
