# Empty compiler generated dependencies file for test_advisor_json.
# This may be replaced when dependencies are built.
