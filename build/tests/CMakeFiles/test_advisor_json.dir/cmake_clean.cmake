file(REMOVE_RECURSE
  "CMakeFiles/test_advisor_json.dir/test_advisor_json.cpp.o"
  "CMakeFiles/test_advisor_json.dir/test_advisor_json.cpp.o.d"
  "test_advisor_json"
  "test_advisor_json.pdb"
  "test_advisor_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advisor_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
