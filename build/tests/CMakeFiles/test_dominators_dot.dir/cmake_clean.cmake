file(REMOVE_RECURSE
  "CMakeFiles/test_dominators_dot.dir/test_dominators_dot.cpp.o"
  "CMakeFiles/test_dominators_dot.dir/test_dominators_dot.cpp.o.d"
  "test_dominators_dot"
  "test_dominators_dot.pdb"
  "test_dominators_dot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dominators_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
