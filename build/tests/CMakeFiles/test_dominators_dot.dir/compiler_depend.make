# Empty compiler generated dependencies file for test_dominators_dot.
# This may be replaced when dependencies are built.
