
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/test_parallel.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/test_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/sd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamic/CMakeFiles/sd_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/adf/CMakeFiles/sd_adf.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/sd_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/clvm/CMakeFiles/sd_clvm.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/sd_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
