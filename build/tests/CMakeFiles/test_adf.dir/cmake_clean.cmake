file(REMOVE_RECURSE
  "CMakeFiles/test_adf.dir/test_adf.cpp.o"
  "CMakeFiles/test_adf.dir/test_adf.cpp.o.d"
  "test_adf"
  "test_adf.pdb"
  "test_adf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
