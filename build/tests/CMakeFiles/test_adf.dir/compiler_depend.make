# Empty compiler generated dependencies file for test_adf.
# This may be replaced when dependencies are built.
