# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_dex[1]_include.cmake")
include("/root/repo/build/tests/test_adf[1]_include.cmake")
include("/root/repo/build/tests/test_clvm_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_arm[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_advisor_json[1]_include.cmake")
include("/root/repo/build/tests/test_dominators_dot[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_callgraph[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
