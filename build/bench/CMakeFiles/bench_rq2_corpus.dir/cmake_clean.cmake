file(REMOVE_RECURSE
  "CMakeFiles/bench_rq2_corpus.dir/bench_rq2_corpus.cpp.o"
  "CMakeFiles/bench_rq2_corpus.dir/bench_rq2_corpus.cpp.o.d"
  "bench_rq2_corpus"
  "bench_rq2_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq2_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
