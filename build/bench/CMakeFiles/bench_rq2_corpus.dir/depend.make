# Empty dependencies file for bench_rq2_corpus.
# This may be replaced when dependencies are built.
