file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_capability.dir/bench_table4_capability.cpp.o"
  "CMakeFiles/bench_table4_capability.dir/bench_table4_capability.cpp.o.d"
  "bench_table4_capability"
  "bench_table4_capability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
