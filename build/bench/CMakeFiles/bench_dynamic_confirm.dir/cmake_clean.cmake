file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_confirm.dir/bench_dynamic_confirm.cpp.o"
  "CMakeFiles/bench_dynamic_confirm.dir/bench_dynamic_confirm.cpp.o.d"
  "bench_dynamic_confirm"
  "bench_dynamic_confirm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_confirm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
