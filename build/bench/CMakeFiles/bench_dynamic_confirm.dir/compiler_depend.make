# Empty compiler generated dependencies file for bench_dynamic_confirm.
# This may be replaced when dependencies are built.
