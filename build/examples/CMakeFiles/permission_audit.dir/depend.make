# Empty dependencies file for permission_audit.
# This may be replaced when dependencies are built.
