file(REMOVE_RECURSE
  "CMakeFiles/permission_audit.dir/permission_audit.cpp.o"
  "CMakeFiles/permission_audit.dir/permission_audit.cpp.o.d"
  "permission_audit"
  "permission_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permission_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
