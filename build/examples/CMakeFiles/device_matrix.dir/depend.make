# Empty dependencies file for device_matrix.
# This may be replaced when dependencies are built.
