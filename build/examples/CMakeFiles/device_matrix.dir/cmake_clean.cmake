file(REMOVE_RECURSE
  "CMakeFiles/device_matrix.dir/device_matrix.cpp.o"
  "CMakeFiles/device_matrix.dir/device_matrix.cpp.o.d"
  "device_matrix"
  "device_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
