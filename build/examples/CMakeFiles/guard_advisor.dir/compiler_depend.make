# Empty compiler generated dependencies file for guard_advisor.
# This may be replaced when dependencies are built.
