file(REMOVE_RECURSE
  "CMakeFiles/guard_advisor.dir/guard_advisor.cpp.o"
  "CMakeFiles/guard_advisor.dir/guard_advisor.cpp.o.d"
  "guard_advisor"
  "guard_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guard_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
