# Empty dependencies file for sd_hierarchy.
# This may be replaced when dependencies are built.
