file(REMOVE_RECURSE
  "libsd_hierarchy.a"
)
