file(REMOVE_RECURSE
  "CMakeFiles/sd_hierarchy.dir/hierarchy.cpp.o"
  "CMakeFiles/sd_hierarchy.dir/hierarchy.cpp.o.d"
  "libsd_hierarchy.a"
  "libsd_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
