# Empty compiler generated dependencies file for sd_dynamic.
# This may be replaced when dependencies are built.
