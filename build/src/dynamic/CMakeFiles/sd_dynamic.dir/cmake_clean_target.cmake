file(REMOVE_RECURSE
  "libsd_dynamic.a"
)
