file(REMOVE_RECURSE
  "CMakeFiles/sd_dynamic.dir/interpreter.cpp.o"
  "CMakeFiles/sd_dynamic.dir/interpreter.cpp.o.d"
  "libsd_dynamic.a"
  "libsd_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
