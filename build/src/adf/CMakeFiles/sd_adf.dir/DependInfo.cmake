
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adf/image.cpp" "src/adf/CMakeFiles/sd_adf.dir/image.cpp.o" "gcc" "src/adf/CMakeFiles/sd_adf.dir/image.cpp.o.d"
  "/root/repo/src/adf/permissions.cpp" "src/adf/CMakeFiles/sd_adf.dir/permissions.cpp.o" "gcc" "src/adf/CMakeFiles/sd_adf.dir/permissions.cpp.o.d"
  "/root/repo/src/adf/repository.cpp" "src/adf/CMakeFiles/sd_adf.dir/repository.cpp.o" "gcc" "src/adf/CMakeFiles/sd_adf.dir/repository.cpp.o.d"
  "/root/repo/src/adf/spec.cpp" "src/adf/CMakeFiles/sd_adf.dir/spec.cpp.o" "gcc" "src/adf/CMakeFiles/sd_adf.dir/spec.cpp.o.d"
  "/root/repo/src/adf/synthetic.cpp" "src/adf/CMakeFiles/sd_adf.dir/synthetic.cpp.o" "gcc" "src/adf/CMakeFiles/sd_adf.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dex/CMakeFiles/sd_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
