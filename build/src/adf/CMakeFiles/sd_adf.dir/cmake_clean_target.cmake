file(REMOVE_RECURSE
  "libsd_adf.a"
)
