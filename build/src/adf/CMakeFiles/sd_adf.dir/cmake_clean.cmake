file(REMOVE_RECURSE
  "CMakeFiles/sd_adf.dir/image.cpp.o"
  "CMakeFiles/sd_adf.dir/image.cpp.o.d"
  "CMakeFiles/sd_adf.dir/permissions.cpp.o"
  "CMakeFiles/sd_adf.dir/permissions.cpp.o.d"
  "CMakeFiles/sd_adf.dir/repository.cpp.o"
  "CMakeFiles/sd_adf.dir/repository.cpp.o.d"
  "CMakeFiles/sd_adf.dir/spec.cpp.o"
  "CMakeFiles/sd_adf.dir/spec.cpp.o.d"
  "CMakeFiles/sd_adf.dir/synthetic.cpp.o"
  "CMakeFiles/sd_adf.dir/synthetic.cpp.o.d"
  "libsd_adf.a"
  "libsd_adf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_adf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
