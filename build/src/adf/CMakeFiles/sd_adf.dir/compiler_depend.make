# Empty compiler generated dependencies file for sd_adf.
# This may be replaced when dependencies are built.
