file(REMOVE_RECURSE
  "CMakeFiles/sd_support.dir/bytes.cpp.o"
  "CMakeFiles/sd_support.dir/bytes.cpp.o.d"
  "CMakeFiles/sd_support.dir/errors.cpp.o"
  "CMakeFiles/sd_support.dir/errors.cpp.o.d"
  "CMakeFiles/sd_support.dir/interner.cpp.o"
  "CMakeFiles/sd_support.dir/interner.cpp.o.d"
  "CMakeFiles/sd_support.dir/interval.cpp.o"
  "CMakeFiles/sd_support.dir/interval.cpp.o.d"
  "CMakeFiles/sd_support.dir/log.cpp.o"
  "CMakeFiles/sd_support.dir/log.cpp.o.d"
  "CMakeFiles/sd_support.dir/meter.cpp.o"
  "CMakeFiles/sd_support.dir/meter.cpp.o.d"
  "CMakeFiles/sd_support.dir/stats.cpp.o"
  "CMakeFiles/sd_support.dir/stats.cpp.o.d"
  "CMakeFiles/sd_support.dir/thread_pool.cpp.o"
  "CMakeFiles/sd_support.dir/thread_pool.cpp.o.d"
  "libsd_support.a"
  "libsd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
