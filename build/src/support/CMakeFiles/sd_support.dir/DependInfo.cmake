
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/bytes.cpp" "src/support/CMakeFiles/sd_support.dir/bytes.cpp.o" "gcc" "src/support/CMakeFiles/sd_support.dir/bytes.cpp.o.d"
  "/root/repo/src/support/errors.cpp" "src/support/CMakeFiles/sd_support.dir/errors.cpp.o" "gcc" "src/support/CMakeFiles/sd_support.dir/errors.cpp.o.d"
  "/root/repo/src/support/interner.cpp" "src/support/CMakeFiles/sd_support.dir/interner.cpp.o" "gcc" "src/support/CMakeFiles/sd_support.dir/interner.cpp.o.d"
  "/root/repo/src/support/interval.cpp" "src/support/CMakeFiles/sd_support.dir/interval.cpp.o" "gcc" "src/support/CMakeFiles/sd_support.dir/interval.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/support/CMakeFiles/sd_support.dir/log.cpp.o" "gcc" "src/support/CMakeFiles/sd_support.dir/log.cpp.o.d"
  "/root/repo/src/support/meter.cpp" "src/support/CMakeFiles/sd_support.dir/meter.cpp.o" "gcc" "src/support/CMakeFiles/sd_support.dir/meter.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/support/CMakeFiles/sd_support.dir/stats.cpp.o" "gcc" "src/support/CMakeFiles/sd_support.dir/stats.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/support/CMakeFiles/sd_support.dir/thread_pool.cpp.o" "gcc" "src/support/CMakeFiles/sd_support.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
