# Empty dependencies file for sd_support.
# This may be replaced when dependencies are built.
