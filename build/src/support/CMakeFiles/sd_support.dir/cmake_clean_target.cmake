file(REMOVE_RECURSE
  "libsd_support.a"
)
