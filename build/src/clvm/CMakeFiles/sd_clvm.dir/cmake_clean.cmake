file(REMOVE_RECURSE
  "CMakeFiles/sd_clvm.dir/clvm.cpp.o"
  "CMakeFiles/sd_clvm.dir/clvm.cpp.o.d"
  "libsd_clvm.a"
  "libsd_clvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_clvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
