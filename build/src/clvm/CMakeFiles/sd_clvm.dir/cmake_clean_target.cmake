file(REMOVE_RECURSE
  "libsd_clvm.a"
)
