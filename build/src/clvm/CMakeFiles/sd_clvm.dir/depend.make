# Empty dependencies file for sd_clvm.
# This may be replaced when dependencies are built.
