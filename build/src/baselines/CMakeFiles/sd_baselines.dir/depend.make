# Empty dependencies file for sd_baselines.
# This may be replaced when dependencies are built.
