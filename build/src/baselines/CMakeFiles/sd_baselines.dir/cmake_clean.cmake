file(REMOVE_RECURSE
  "CMakeFiles/sd_baselines.dir/cid.cpp.o"
  "CMakeFiles/sd_baselines.dir/cid.cpp.o.d"
  "CMakeFiles/sd_baselines.dir/cider.cpp.o"
  "CMakeFiles/sd_baselines.dir/cider.cpp.o.d"
  "CMakeFiles/sd_baselines.dir/flat_scan.cpp.o"
  "CMakeFiles/sd_baselines.dir/flat_scan.cpp.o.d"
  "CMakeFiles/sd_baselines.dir/lint.cpp.o"
  "CMakeFiles/sd_baselines.dir/lint.cpp.o.d"
  "libsd_baselines.a"
  "libsd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
