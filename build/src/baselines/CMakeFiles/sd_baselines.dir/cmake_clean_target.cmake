file(REMOVE_RECURSE
  "libsd_baselines.a"
)
