file(REMOVE_RECURSE
  "CMakeFiles/sd_core.dir/advisor.cpp.o"
  "CMakeFiles/sd_core.dir/advisor.cpp.o.d"
  "CMakeFiles/sd_core.dir/amd.cpp.o"
  "CMakeFiles/sd_core.dir/amd.cpp.o.d"
  "CMakeFiles/sd_core.dir/arm.cpp.o"
  "CMakeFiles/sd_core.dir/arm.cpp.o.d"
  "CMakeFiles/sd_core.dir/aum.cpp.o"
  "CMakeFiles/sd_core.dir/aum.cpp.o.d"
  "CMakeFiles/sd_core.dir/callgraph.cpp.o"
  "CMakeFiles/sd_core.dir/callgraph.cpp.o.d"
  "CMakeFiles/sd_core.dir/json.cpp.o"
  "CMakeFiles/sd_core.dir/json.cpp.o.d"
  "CMakeFiles/sd_core.dir/report.cpp.o"
  "CMakeFiles/sd_core.dir/report.cpp.o.d"
  "CMakeFiles/sd_core.dir/saintdroid.cpp.o"
  "CMakeFiles/sd_core.dir/saintdroid.cpp.o.d"
  "libsd_core.a"
  "libsd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
