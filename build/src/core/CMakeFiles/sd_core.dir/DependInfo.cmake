
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/sd_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/sd_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/amd.cpp" "src/core/CMakeFiles/sd_core.dir/amd.cpp.o" "gcc" "src/core/CMakeFiles/sd_core.dir/amd.cpp.o.d"
  "/root/repo/src/core/arm.cpp" "src/core/CMakeFiles/sd_core.dir/arm.cpp.o" "gcc" "src/core/CMakeFiles/sd_core.dir/arm.cpp.o.d"
  "/root/repo/src/core/aum.cpp" "src/core/CMakeFiles/sd_core.dir/aum.cpp.o" "gcc" "src/core/CMakeFiles/sd_core.dir/aum.cpp.o.d"
  "/root/repo/src/core/callgraph.cpp" "src/core/CMakeFiles/sd_core.dir/callgraph.cpp.o" "gcc" "src/core/CMakeFiles/sd_core.dir/callgraph.cpp.o.d"
  "/root/repo/src/core/json.cpp" "src/core/CMakeFiles/sd_core.dir/json.cpp.o" "gcc" "src/core/CMakeFiles/sd_core.dir/json.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/sd_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/sd_core.dir/report.cpp.o.d"
  "/root/repo/src/core/saintdroid.cpp" "src/core/CMakeFiles/sd_core.dir/saintdroid.cpp.o" "gcc" "src/core/CMakeFiles/sd_core.dir/saintdroid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adf/CMakeFiles/sd_adf.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/clvm/CMakeFiles/sd_clvm.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/sd_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/sd_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
