file(REMOVE_RECURSE
  "CMakeFiles/sd_workload.dir/app_builder.cpp.o"
  "CMakeFiles/sd_workload.dir/app_builder.cpp.o.d"
  "CMakeFiles/sd_workload.dir/benchmarks.cpp.o"
  "CMakeFiles/sd_workload.dir/benchmarks.cpp.o.d"
  "CMakeFiles/sd_workload.dir/catalog.cpp.o"
  "CMakeFiles/sd_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/sd_workload.dir/corpus.cpp.o"
  "CMakeFiles/sd_workload.dir/corpus.cpp.o.d"
  "CMakeFiles/sd_workload.dir/ground_truth.cpp.o"
  "CMakeFiles/sd_workload.dir/ground_truth.cpp.o.d"
  "CMakeFiles/sd_workload.dir/harness.cpp.o"
  "CMakeFiles/sd_workload.dir/harness.cpp.o.d"
  "libsd_workload.a"
  "libsd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
