# Empty compiler generated dependencies file for sd_workload.
# This may be replaced when dependencies are built.
