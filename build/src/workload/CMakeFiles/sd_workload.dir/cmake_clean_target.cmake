file(REMOVE_RECURSE
  "libsd_workload.a"
)
