file(REMOVE_RECURSE
  "libsd_analysis.a"
)
