file(REMOVE_RECURSE
  "CMakeFiles/sd_analysis.dir/cfg.cpp.o"
  "CMakeFiles/sd_analysis.dir/cfg.cpp.o.d"
  "CMakeFiles/sd_analysis.dir/dominators.cpp.o"
  "CMakeFiles/sd_analysis.dir/dominators.cpp.o.d"
  "CMakeFiles/sd_analysis.dir/dot.cpp.o"
  "CMakeFiles/sd_analysis.dir/dot.cpp.o.d"
  "CMakeFiles/sd_analysis.dir/guards.cpp.o"
  "CMakeFiles/sd_analysis.dir/guards.cpp.o.d"
  "libsd_analysis.a"
  "libsd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
