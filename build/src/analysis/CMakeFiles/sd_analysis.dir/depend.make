# Empty dependencies file for sd_analysis.
# This may be replaced when dependencies are built.
