# Empty compiler generated dependencies file for sd_dex.
# This may be replaced when dependencies are built.
