file(REMOVE_RECURSE
  "libsd_dex.a"
)
