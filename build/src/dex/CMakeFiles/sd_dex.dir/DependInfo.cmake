
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dex/apk.cpp" "src/dex/CMakeFiles/sd_dex.dir/apk.cpp.o" "gcc" "src/dex/CMakeFiles/sd_dex.dir/apk.cpp.o.d"
  "/root/repo/src/dex/builder.cpp" "src/dex/CMakeFiles/sd_dex.dir/builder.cpp.o" "gcc" "src/dex/CMakeFiles/sd_dex.dir/builder.cpp.o.d"
  "/root/repo/src/dex/dexfile.cpp" "src/dex/CMakeFiles/sd_dex.dir/dexfile.cpp.o" "gcc" "src/dex/CMakeFiles/sd_dex.dir/dexfile.cpp.o.d"
  "/root/repo/src/dex/disasm.cpp" "src/dex/CMakeFiles/sd_dex.dir/disasm.cpp.o" "gcc" "src/dex/CMakeFiles/sd_dex.dir/disasm.cpp.o.d"
  "/root/repo/src/dex/ids.cpp" "src/dex/CMakeFiles/sd_dex.dir/ids.cpp.o" "gcc" "src/dex/CMakeFiles/sd_dex.dir/ids.cpp.o.d"
  "/root/repo/src/dex/instruction.cpp" "src/dex/CMakeFiles/sd_dex.dir/instruction.cpp.o" "gcc" "src/dex/CMakeFiles/sd_dex.dir/instruction.cpp.o.d"
  "/root/repo/src/dex/manifest.cpp" "src/dex/CMakeFiles/sd_dex.dir/manifest.cpp.o" "gcc" "src/dex/CMakeFiles/sd_dex.dir/manifest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
