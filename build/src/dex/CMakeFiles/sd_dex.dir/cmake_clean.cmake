file(REMOVE_RECURSE
  "CMakeFiles/sd_dex.dir/apk.cpp.o"
  "CMakeFiles/sd_dex.dir/apk.cpp.o.d"
  "CMakeFiles/sd_dex.dir/builder.cpp.o"
  "CMakeFiles/sd_dex.dir/builder.cpp.o.d"
  "CMakeFiles/sd_dex.dir/dexfile.cpp.o"
  "CMakeFiles/sd_dex.dir/dexfile.cpp.o.d"
  "CMakeFiles/sd_dex.dir/disasm.cpp.o"
  "CMakeFiles/sd_dex.dir/disasm.cpp.o.d"
  "CMakeFiles/sd_dex.dir/ids.cpp.o"
  "CMakeFiles/sd_dex.dir/ids.cpp.o.d"
  "CMakeFiles/sd_dex.dir/instruction.cpp.o"
  "CMakeFiles/sd_dex.dir/instruction.cpp.o.d"
  "CMakeFiles/sd_dex.dir/manifest.cpp.o"
  "CMakeFiles/sd_dex.dir/manifest.cpp.o.d"
  "libsd_dex.a"
  "libsd_dex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_dex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
