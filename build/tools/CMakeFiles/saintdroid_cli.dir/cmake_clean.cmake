file(REMOVE_RECURSE
  "CMakeFiles/saintdroid_cli.dir/saintdroid_cli.cpp.o"
  "CMakeFiles/saintdroid_cli.dir/saintdroid_cli.cpp.o.d"
  "saintdroid"
  "saintdroid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saintdroid_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
