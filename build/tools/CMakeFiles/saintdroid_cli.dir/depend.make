# Empty dependencies file for saintdroid_cli.
# This may be replaced when dependencies are built.
