file(REMOVE_RECURSE
  "CMakeFiles/apkgen.dir/apkgen.cpp.o"
  "CMakeFiles/apkgen.dir/apkgen.cpp.o.d"
  "apkgen"
  "apkgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apkgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
