# Empty dependencies file for apkgen.
# This may be replaced when dependencies are built.
