file(REMOVE_RECURSE
  "CMakeFiles/appgraph.dir/appgraph.cpp.o"
  "CMakeFiles/appgraph.dir/appgraph.cpp.o.d"
  "appgraph"
  "appgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
