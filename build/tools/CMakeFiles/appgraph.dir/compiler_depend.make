# Empty compiler generated dependencies file for appgraph.
# This may be replaced when dependencies are built.
