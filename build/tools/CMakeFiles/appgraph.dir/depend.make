# Empty dependencies file for appgraph.
# This may be replaced when dependencies are built.
