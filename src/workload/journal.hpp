// Crash-safe suite journal: one JSONL row per completed app analysis.
//
// A 15,000-app batch that dies at app 14,990 — power loss, OOM kill, a
// preempted CI runner — must not start over. The harness appends every
// finished SuiteAppRow to this journal (one JSON object per line, flushed
// per row), and a `--resume` run loads the journal, keeps the rows it can
// parse, and analyzes only the remainder. Robustness rules:
//
//   * A truncated final line (the row in flight when the process died) is
//     skipped on load and sealed with a newline before the writer appends,
//     so a resumed journal never interleaves two rows on one line.
//   * Any unparseable line is skipped, never fatal — a corrupt journal
//     costs re-analysis of the affected apps, nothing more.
//   * Rows are matched by app name, not file position, so journal append
//     order (completion order under a parallel run) does not matter.
#pragma once

#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workload/harness.hpp"

namespace saintdroid {

/// Serializes one row as a single JSON object (no trailing newline).
std::string journal_line(const SuiteAppRow& row);

/// Parses one journal line; nullopt for malformed or truncated lines.
std::optional<SuiteAppRow> parse_journal_line(std::string_view line);

/// Loads every parseable row from `path`. A missing file yields an empty
/// vector; corrupt lines are skipped.
std::vector<SuiteAppRow> load_journal(const std::string& path);

/// Appends rows to a JSONL journal, flushing after every row. Thread-safe:
/// workers of a parallel suite run share one writer.
class JournalWriter {
 public:
  /// Opens `path` for appending (resume) or truncates it (fresh run). In
  /// append mode a partial trailing line left by a killed run is sealed
  /// with a newline first. Throws ConfigError if the file cannot be opened.
  JournalWriter(const std::string& path, bool append);

  void append(const SuiteAppRow& row);

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace saintdroid
