// Crash-safe suite journal: one JSONL row per completed app analysis.
//
// A 15,000-app batch that dies at app 14,990 — power loss, OOM kill, a
// preempted CI runner — must not start over. The harness appends every
// finished SuiteAppRow to this journal (one JSON object per line, flushed
// per row), and a `--resume` run loads the journal, keeps the rows it can
// parse, and analyzes only the remainder. Robustness rules:
//
//   * A truncated final line (the row in flight when the process died) is
//     skipped on load and sealed with a newline before the writer appends,
//     so a resumed journal never interleaves two rows on one line.
//   * Any unparseable line is skipped, never fatal — a corrupt journal
//     costs re-analysis of the affected apps, nothing more.
//   * Rows are matched by app name, not file position, so journal append
//     order (completion order under a parallel run) does not matter.
//
// Since schema 2 a journal may begin with a *header row* — a JSON object
// identified by a "journal" key — that records the schema version, a
// corpus fingerprint and the shard spec of the run that wrote it. The
// header is what makes journals a safe multi-process interchange format:
// `merge_journals` refuses to combine shard journals whose headers
// disagree (different corpus, schema or shard count), so merging the
// outputs of mismatched runs fails loudly instead of producing a quietly
// wrong SuiteResult. Headerless journals (schema 1) still load and merge.
#pragma once

#include <fstream>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "workload/harness.hpp"

namespace saintdroid {

/// Journal schema emitted by this build. Bumped when the row or header
/// layout changes incompatibly; merge_journals rejects mixed schemas.
inline constexpr int kJournalSchemaVersion = 2;

/// First-line metadata of a sharded (or merged) journal.
struct JournalHeader {
  int schema = kJournalSchemaVersion;
  /// Fingerprint of the *full* app list the run sharded (corpus_fingerprint
  /// over every app, not just this shard's slice) — two shards merge only
  /// if they were cut from the same list. Empty means "unspecified" and
  /// matches only other unspecified headers.
  std::string corpus;
  /// This journal's slice: shard_index in [0, shard_count), or -1 for the
  /// output of merge_journals ("merged").
  int shard_index = 0;
  int shard_count = 1;
  /// Tool name, informational only (not part of compatibility).
  std::string tool;

  bool merged() const { return shard_index < 0; }
};

/// Serializes a header as a single JSON object (no trailing newline).
std::string journal_header_line(const JournalHeader& header);

/// Parses a header line; nullopt unless the line is a JSON object with the
/// "journal" marker key, an int "schema" and a "shard" object.
std::optional<JournalHeader> parse_journal_header(std::string_view line);

/// True when the two headers may be merged into one result: same schema,
/// same corpus fingerprint, same shard count.
bool headers_compatible(const JournalHeader& a, const JournalHeader& b);

/// Serializes one row as a single JSON object (no trailing newline).
std::string journal_line(const SuiteAppRow& row);

/// Parses one journal line; nullopt for malformed or truncated lines and
/// for header lines (a header is not a row).
std::optional<SuiteAppRow> parse_journal_line(std::string_view line);

/// Canonical byte form of a row: journal_line with the wall-clock seconds
/// zeroed. Two rows are "the same result" iff their canonical bytes match;
/// this is the comparison merge_journals deduplicates on and the byte-
/// identity currency of the shard differential tests.
std::string canonical_row_bytes(const SuiteAppRow& row);

/// Loads every parseable row from `path`. A missing file yields an empty
/// vector; header lines and corrupt lines are skipped.
std::vector<SuiteAppRow> load_journal(const std::string& path);

/// A fully loaded journal: the header (when the first line carries one)
/// plus every parseable row, in file order.
struct JournalFile {
  std::optional<JournalHeader> header;
  std::vector<SuiteAppRow> rows;
};

/// Loads header and rows from `path`. Missing file: no header, no rows.
JournalFile load_journal_file(const std::string& path);

/// Two rows for the same app whose canonical bytes diverge — evidence that
/// the inputs were not shards of one deterministic run.
struct MergeConflict {
  std::string app;
  SuiteAppRow kept;      ///< the row that won (last writer)
  SuiteAppRow discarded; ///< the earlier divergent row
};

/// Per-input accounting of one merge — the data behind
/// `merge-journals --stats`. `canonical` is the per-shard spread: how many
/// merged rows each input ended up contributing (last writer wins), which
/// makes straggler skew visible from journals alone.
struct JournalInputStats {
  std::string path;
  /// The input's header, when it had one (shard index, corpus, tool).
  std::optional<JournalHeader> header;
  /// Parseable rows in the file.
  std::size_t rows = 0;
  /// Rows identical (canonical bytes) to a row already merged from an
  /// *earlier input* — re-executions, e.g. a reclaimed lease analyzed twice.
  std::size_t duplicates = 0;
  /// Rows repeating an app seen earlier in the *same file* — the signature
  /// of a resumed/appended run writing into one journal.
  std::size_t resumed = 0;
  /// Rows that diverged from an already-merged row (see MergeConflict).
  std::size_t conflicts = 0;
  /// Budget-degraded rows in this input (SuiteAppRow::incomplete): the
  /// analysis ran to completion but coverage was cut short by a
  /// class/step/deadline budget or a cancellation. Their own counter so
  /// overload degradation is visible from journals alone.
  std::size_t incomplete = 0;
  /// Rows of the merged output attributed to this input.
  std::size_t canonical = 0;
};

/// Result of merging shard journals.
struct JournalMerge {
  /// Synthesized header: current schema, the inputs' corpus fingerprint,
  /// shard_index -1 ("merged"), shard_count from the inputs.
  JournalHeader header;
  /// One row per app, sorted lexicographically by app name — deterministic
  /// regardless of input file order or per-shard completion order.
  std::vector<SuiteAppRow> rows;
  /// Divergent duplicate apps (see MergeConflict). A clean shard merge has
  /// none; any entry means the merged rows must not be trusted.
  std::vector<MergeConflict> conflicts;
  /// Duplicate rows whose canonical bytes matched and were deduplicated
  /// silently (last writer wins, so its wall-clock fields are kept).
  std::size_t duplicates = 0;
  /// Per-input accounting, in input order.
  std::vector<JournalInputStats> inputs;

  bool clean() const { return conflicts.empty(); }
};

/// Merges shard journals into one canonical row set. App-name dedup across
/// (and within) inputs: identical canonical payloads dedup silently with
/// last-writer-wins; divergent payloads keep the last writer and record a
/// MergeConflict. Throws ConfigError when `inputs` is empty, a file cannot
/// be read at all, or two headers are incompatible (schema, corpus or
/// shard-count mismatch — mismatched runs must fail loudly).
JournalMerge merge_journals(const std::vector<std::string>& inputs);

/// Writes a journal in one pass: header line first, then one line per row
/// in the given order. Throws ConfigError if the file cannot be opened.
void write_journal(const std::string& path, const JournalHeader& header,
                   std::span<const SuiteAppRow> rows);

/// Appends rows to a JSONL journal, flushing after every row. Thread-safe:
/// workers of a parallel suite run share one writer.
class JournalWriter {
 public:
  /// Opens `path` for appending (resume) or truncates it (fresh run). In
  /// append mode a partial trailing line left by a killed run is sealed
  /// with a newline first. When `header` is set, a fresh (or empty) journal
  /// starts with its header line, and appending to an existing journal
  /// whose header is incompatible throws ConfigError — a resume against
  /// the wrong shard's journal must fail loudly, not silently interleave
  /// two runs. A headerless existing journal is accepted as legacy. Throws
  /// ConfigError if the file cannot be opened.
  JournalWriter(const std::string& path, bool append,
                const std::optional<JournalHeader>& header = std::nullopt);

  void append(const SuiteAppRow& row);

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace saintdroid
