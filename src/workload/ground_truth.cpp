#include "workload/ground_truth.hpp"

#include <algorithm>
#include <unordered_set>

namespace saintdroid {

namespace {

bool is_permission_kind(MismatchKind kind) {
  return kind == MismatchKind::kPermissionRequest ||
         kind == MismatchKind::kPermissionRevocation;
}

std::string key_of(MismatchKind kind, const MethodId& location,
                   const MethodId& subject, const std::string& permission) {
  // Both permission kinds share one key family: which of the two forms an
  // app exhibits is determined by its target SDK, not by the seed.
  if (is_permission_kind(kind)) return std::string{"PRM|"} + permission;
  std::string k = mismatch_kind_name(kind);
  k += "|";
  k += location.to_string();
  k += "|";
  k += subject.to_string();
  // SDC lint rows carry identity in the permission field too (the
  // over-declared-permission lint has one row per permission, all with the
  // same synthetic subject) — mirror of Mismatch::key().
  if (kind == MismatchKind::kSdkDeclaration) {
    k += "|";
    k += permission;
  }
  return k;
}

}  // namespace

std::string SeededIssue::key() const {
  return key_of(kind, location, subject, permission);
}

std::string match_key(const Mismatch& m) {
  return key_of(m.kind, m.location, m.subject, m.permission);
}

std::size_t GroundTruth::real_count() const {
  return static_cast<std::size_t>(std::count_if(
      issues.begin(), issues.end(), [](const auto& i) { return i.real; }));
}

std::size_t GroundTruth::real_count(MismatchKind kind) const {
  const bool perm = is_permission_kind(kind);
  return static_cast<std::size_t>(
      std::count_if(issues.begin(), issues.end(), [&](const auto& i) {
        if (!i.real) return false;
        return perm ? is_permission_kind(i.kind) : i.kind == kind;
      }));
}

std::size_t GroundTruth::benign_count() const {
  return issues.size() - real_count();
}

void GroundTruth::merge(const GroundTruth& other) {
  issues.insert(issues.end(), other.issues.begin(), other.issues.end());
}

double Score::precision() const {
  const auto denom = tp + fp;
  return denom == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Score::recall() const {
  const auto denom = tp + fn;
  return denom == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Score::f_measure() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

Score& Score::operator+=(const Score& other) {
  tp += other.tp;
  fp += other.fp;
  fn += other.fn;
  return *this;
}

Score score_detections(const GroundTruth& truth,
                       const std::vector<Mismatch>& found,
                       std::optional<MismatchKind> kind) {
  const auto kind_matches = [&](MismatchKind k) {
    if (!kind) return true;
    if (is_permission_kind(*kind)) return is_permission_kind(k);
    return k == *kind;
  };

  std::unordered_set<std::string> real_keys;
  for (const auto& issue : truth.issues)
    if (issue.real && kind_matches(issue.kind)) real_keys.insert(issue.key());

  Score s;
  std::unordered_set<std::string> seen;  // dedupe duplicate detections
  for (const auto& m : found) {
    if (!kind_matches(m.kind)) continue;
    const std::string key = match_key(m);
    if (!seen.insert(key).second) continue;
    if (real_keys.contains(key))
      ++s.tp;
    else
      ++s.fp;
  }
  // Anything real and undetected is a miss.
  for (const auto& key : real_keys)
    if (!seen.contains(key)) ++s.fn;
  return s;
}

}  // namespace saintdroid
