#include "workload/catalog.hpp"

#include <unordered_map>
#include <unordered_set>

namespace saintdroid {

std::string make_descriptor(const std::string& return_type,
                            const std::vector<std::string>& params) {
  const auto append_type = [](std::string& out, const std::string& name) {
    if (name.size() == 1 || name.front() == '[')
      out += name;
    else
      out += "L" + name + ";";
  };
  std::string out = "(";
  for (const auto& p : params) append_type(out, p);
  out += ")";
  append_type(out, return_type);
  return out;
}

std::string ApiUse::descriptor() const {
  return make_descriptor(return_type, params);
}

MethodId ApiUse::declared_id() const {
  return MethodId{declaring, name, descriptor()};
}

std::string CallbackUse::descriptor() const {
  return make_descriptor("V", params);
}

MethodId CallbackUse::declared_id() const {
  return MethodId{framework_class, name, descriptor()};
}

namespace catalog {

namespace {
constexpr const char* kContext = "android/content/Context";
constexpr const char* kActivity = "android/app/Activity";
constexpr const char* kView = "android/view/View";
constexpr const char* kWebView = "android/webkit/WebView";
}  // namespace

ApiUse get_color_state_list(const std::string& receiver) {
  return {receiver, kContext, "getColorStateList",
          "android/content/res/ColorStateList", {"I"}, false};
}

ApiUse get_fragment_manager(const std::string& receiver) {
  return {receiver, kActivity, "getFragmentManager",
          "android/app/FragmentManager", {}, false};
}

ApiUse set_background(const std::string& receiver) {
  return {receiver, kView, "setBackground", "V",
          {"android/graphics/drawable/Drawable"}, false};
}

ApiUse evaluate_javascript(const std::string& receiver) {
  return {receiver, kWebView, "evaluateJavascript", "V",
          {"java/lang/String", "android/webkit/ValueCallback"}, false};
}

ApiUse create_web_message_channel(const std::string& receiver) {
  return {receiver, kWebView, "createWebMessageChannel", "java/lang/Object",
          {}, false};
}

ApiUse notification_channel_ctor() {
  return {"android/app/NotificationChannel", "android/app/NotificationChannel",
          "<init>", "V", {"java/lang/String", "java/lang/String", "I"},
          false};
}

ApiUse is_destroyed(const std::string& receiver) {
  return {receiver, kActivity, "isDestroyed", "Z", {}, false};
}

ApiUse http_client_execute() {
  return {"android/net/http/AndroidHttpClient",
          "android/net/http/AndroidHttpClient", "execute", "java/lang/Object",
          {"java/lang/String"}, false};
}

ApiUse request_permissions(const std::string& receiver) {
  return {receiver, kActivity, "requestPermissions", "V",
          {"[Ljava/lang/String;", "I"}, false};
}

ApiUse camera_open() {
  return {"android/hardware/Camera", "android/hardware/Camera", "open",
          "android/hardware/Camera", {}, true};
}

ApiUse set_audio_source() {
  return {"android/media/MediaRecorder", "android/media/MediaRecorder",
          "setAudioSource", "V", {"I"}, false};
}

ApiUse resolver_insert() {
  return {"android/content/ContentResolver", "android/content/ContentResolver",
          "insert", "android/net/Uri",
          {"android/net/Uri", "android/content/ContentValues"}, false};
}

ApiUse insert_image() {
  return {"android/provider/MediaStore$Images$Media",
          "android/provider/MediaStore$Images$Media", "insertImage",
          "java/lang/String",
          {"android/content/ContentResolver", "java/lang/String"}, true};
}

ApiUse last_known_location() {
  return {"android/location/LocationManager",
          "android/location/LocationManager", "getLastKnownLocation",
          "android/location/Location", {"java/lang/String"}, false};
}

ApiUse send_text_message() {
  return {"android/telephony/SmsManager", "android/telephony/SmsManager",
          "sendTextMessage", "V",
          {"java/lang/String", "java/lang/String", "java/lang/String"},
          false};
}

ApiUse get_device_id() {
  return {"android/telephony/TelephonyManager",
          "android/telephony/TelephonyManager", "getDeviceId",
          "java/lang/String", {}, false};
}

ApiUse ble_start_scan() {
  return {"android/bluetooth/le/BluetoothLeScanner",
          "android/bluetooth/le/BluetoothLeScanner", "startScan", "V",
          {"java/lang/Object"}, false};
}

ApiUse set_text_appearance(const std::string& receiver) {
  return {receiver, "android/widget/TextView", "setTextAppearance", "V",
          {"I"}, false};
}

ApiUse set_status_bar_color() {
  return {"android/view/Window", "android/view/Window", "setStatusBarColor",
          "V", {"I"}, false};
}

ApiUse create_notification_channel() {
  return {"android/app/NotificationManager",
          "android/app/NotificationManager", "createNotificationChannel",
          "V", {"android/app/NotificationChannel"}, false};
}

ApiUse get_active_network() {
  return {"android/net/ConnectivityManager", "android/net/ConnectivityManager",
          "getActiveNetwork", "java/lang/Object", {}, false};
}

ApiUse remove_all_cookies() {
  return {"android/webkit/CookieManager", "android/webkit/CookieManager",
          "removeAllCookies", "V", {"java/lang/Object"}, false};
}

CallbackUse on_attach_context() {
  return {"android/app/Fragment", "onAttach", {"android/content/Context"}};
}

CallbackUse drawable_hotspot_changed() {
  return {kView, "drawableHotspotChanged", {"F", "F"}};
}

CallbackUse on_apply_window_insets() {
  return {kView, "onApplyWindowInsets", {"android/view/WindowInsets"}};
}

CallbackUse on_provide_structure() {
  return {kView, "onProvideStructure", {"android/view/ViewStructure"}};
}

CallbackUse on_pointer_capture_change() {
  return {kView, "onPointerCaptureChange", {"Z"}};
}

CallbackUse on_multi_window_mode_changed() {
  return {kActivity, "onMultiWindowModeChanged", {"Z"}};
}

CallbackUse on_picture_in_picture_mode_changed() {
  return {kActivity, "onPictureInPictureModeChanged", {"Z"}};
}

CallbackUse on_top_resumed_activity_changed() {
  return {kActivity, "onTopResumedActivityChanged", {"Z"}};
}

CallbackUse on_trim_memory() {
  return {"android/app/Service", "onTrimMemory", {"I"}};
}

CallbackUse on_task_removed() {
  return {"android/app/Service", "onTaskRemoved",
          {"android/content/Intent"}};
}

CallbackUse on_start_command() {
  return {"android/app/Service", "onStartCommand",
          {"android/content/Intent", "I", "I"}};
}

CallbackUse on_page_commit_visible() {
  return {"android/webkit/WebViewClient", "onPageCommitVisible",
          {"android/webkit/WebView", "java/lang/String"}};
}

CallbackUse should_override_url_loading() {
  return {"android/webkit/WebViewClient", "shouldOverrideUrlLoading",
          {"android/webkit/WebView", "android/webkit/WebResourceRequest"}};
}

CallbackUse on_create_view() {
  return {"android/app/Fragment", "onCreateView", {"android/os/Bundle"}};
}

}  // namespace catalog

namespace {

ApiInterval spec_existence(const Lifecycle& life) { return life.existence(); }

bool covers(ApiInterval outer, ApiInterval inner) {
  return !inner.empty() && !outer.empty() && outer.lo() <= inner.lo() &&
         inner.hi() <= outer.hi();
}

/// "cls|name|descriptor" keys of every semantic-change row — the methods
/// every legacy collector must skip (see collect_semantic_apis's doc).
std::unordered_set<std::string> semantic_keys(const FrameworkSpec& spec) {
  std::unordered_set<std::string> keys;
  for (const auto& row : spec.semantic_changes)
    keys.insert(row.cls + "|" + row.name + "|" +
                make_descriptor(row.return_type, row.params));
  return keys;
}

bool is_semantic_method(const std::unordered_set<std::string>& keys,
                        const ClassSpec& cls, const MethodSpec& m) {
  if (keys.empty()) return false;
  return keys.contains(cls.name + "|" + m.name + "|" +
                       make_descriptor(m.return_type, m.params));
}

}  // namespace

std::vector<ApiUse> collect_safe_apis(const FrameworkSpec& spec,
                                      ApiInterval range, std::size_t limit) {
  const auto semantic = semantic_keys(spec);
  std::vector<ApiUse> out;
  for (const auto& cls : spec.classes) {
    if (cls.is_interface) continue;
    if (!covers(spec_existence(cls.life), range)) continue;
    for (const auto& m : cls.methods) {
      if (out.size() >= limit) return out;
      if (m.callback || !m.permission.empty()) continue;
      // Leaf methods only: a method with framework-internal calls may
      // *transitively* require a permission, which would make filler code
      // permission-relevant.
      if (!m.calls.empty()) continue;
      if (m.name == "<init>") continue;
      if (is_semantic_method(semantic, cls, m)) continue;
      if (!covers(spec_existence(m.life), range)) continue;
      out.push_back(ApiUse{cls.name, cls.name, m.name, m.return_type,
                           m.params, m.is_static});
    }
  }
  return out;
}

std::vector<ApiUse> collect_breadth_apis(const FrameworkSpec& spec,
                                         ApiInterval range,
                                         std::size_t limit) {
  // Local indices: FrameworkSpec::find_* scans linearly, and the
  // transitive check below resolves one callee per CallSpec edge.
  std::unordered_map<std::string_view, const ClassSpec*> by_name;
  by_name.reserve(spec.classes.size());
  for (const auto& cls : spec.classes) by_name.emplace(cls.name, &cls);
  const auto find_method = [&by_name](const std::string& cls,
                                      const std::string& name)
      -> const MethodSpec* {
    const auto it = by_name.find(std::string_view{cls});
    if (it == by_name.end()) return nullptr;
    for (const auto& m : it->second->methods)
      if (m.name == name) return &m;
    return nullptr;
  };

  // Transitive permission-freedom, memoized per method. Unresolvable
  // callees (and cycles mid-visit) are conservatively permission-relevant.
  std::unordered_map<const MethodSpec*, bool> clean;
  const auto permission_free = [&](const MethodSpec& m,
                                   const auto& self) -> bool {
    if (const auto it = clean.find(&m); it != clean.end()) return it->second;
    bool& slot = clean.emplace(&m, false).first->second;
    if (!m.permission.empty()) return false;
    for (const auto& call : m.calls) {
      const MethodSpec* callee = find_method(call.cls, call.name);
      if (callee == nullptr || !self(*callee, self)) return false;
    }
    return slot = true;
  };

  const auto semantic = semantic_keys(spec);
  std::vector<ApiUse> out;
  for (const auto& cls : spec.classes) {
    if (out.size() >= limit) break;
    if (cls.is_interface) continue;
    if (!covers(spec_existence(cls.life), range)) continue;
    for (const auto& m : cls.methods) {
      if (m.callback || m.name == "<init>") continue;
      if (is_semantic_method(semantic, cls, m)) continue;
      if (!covers(spec_existence(m.life), range)) continue;
      if (!permission_free(m, permission_free)) continue;
      out.push_back(ApiUse{cls.name, cls.name, m.name, m.return_type,
                           m.params, m.is_static});
      break;  // one per class: breadth over distinct classes, not depth
    }
  }
  return out;
}

std::vector<ApiUse> collect_mismatch_apis(const FrameworkSpec& spec,
                                          ApiInterval range,
                                          std::size_t limit) {
  const auto semantic = semantic_keys(spec);
  std::vector<ApiUse> out;
  for (const auto& cls : spec.classes) {
    if (cls.is_interface) continue;
    if (!cls.life.exists_at(range.hi())) continue;
    for (const auto& m : cls.methods) {
      if (out.size() >= limit) return out;
      if (m.callback || !m.permission.empty()) continue;
      if (m.name == "<init>") continue;
      if (is_semantic_method(semantic, cls, m)) continue;
      if (!m.life.exists_at(range.hi())) continue;
      // Introduced strictly inside the range: missing at the low end.
      if (m.life.introduced <= range.lo() ||
          m.life.introduced > range.hi())
        continue;
      out.push_back(ApiUse{cls.name, cls.name, m.name, m.return_type,
                           m.params, m.is_static});
    }
  }
  return out;
}

std::vector<CallbackUse> collect_mismatch_callbacks(const FrameworkSpec& spec,
                                                    ApiInterval range,
                                                    std::size_t limit) {
  const auto semantic = semantic_keys(spec);
  std::vector<CallbackUse> out;
  for (const auto& cls : spec.classes) {
    if (cls.is_interface) continue;
    if (!cls.life.exists_at(range.lo())) continue;
    for (const auto& m : cls.methods) {
      if (out.size() >= limit) return out;
      if (!m.callback) continue;
      if (is_semantic_method(semantic, cls, m)) continue;
      if (!m.life.exists_at(range.hi())) continue;
      if (m.life.introduced <= range.lo() ||
          m.life.introduced > range.hi())
        continue;
      out.push_back(CallbackUse{cls.name, m.name, m.params});
    }
  }
  return out;
}

std::vector<CallbackUse> collect_safe_callbacks(const FrameworkSpec& spec,
                                                ApiInterval range,
                                                std::size_t limit) {
  const auto semantic = semantic_keys(spec);
  std::vector<CallbackUse> out;
  for (const auto& cls : spec.classes) {
    if (cls.is_interface) continue;
    if (!covers(spec_existence(cls.life), range)) continue;
    for (const auto& m : cls.methods) {
      if (out.size() >= limit) return out;
      if (!m.callback) continue;
      if (is_semantic_method(semantic, cls, m)) continue;
      if (!covers(spec_existence(m.life), range)) continue;
      out.push_back(CallbackUse{cls.name, m.name, m.params});
    }
  }
  return out;
}

std::vector<ApiUse> collect_semantic_apis(const FrameworkSpec& spec) {
  std::vector<ApiUse> out;
  std::unordered_set<std::string> seen;  // one entry per method, not per row
  for (const auto& row : spec.semantic_changes) {
    const ClassSpec* cls = spec.find_class(row.cls);
    if (cls == nullptr) continue;
    const MethodSpec* method = nullptr;
    for (const auto& m : cls->methods)
      if (m.name == row.name && m.params == row.params) {
        method = &m;
        break;
      }
    if (method == nullptr || method->callback) continue;
    const std::string key = row.cls + "|" + row.name + "|" +
                            make_descriptor(row.return_type, row.params);
    if (!seen.insert(key).second) continue;
    out.push_back(ApiUse{row.cls, row.cls, row.name, row.return_type,
                         row.params, method->is_static});
  }
  return out;
}

}  // namespace saintdroid
