// AppBuilder: synthesizes APKs with known seeded constructs and a ground
// truth ledger.
//
// Every seed is placed so that its detectability profile is precise:
//
//   guard modes   — kNone (unprotected), kLocal (SDK_INT check in the same
//                   method; every tool handles it), kLocalViaRegister (the
//                   check flows through a register move; Lint's lexical
//                   recognition misses it), kCrossMethod (the check is in
//                   the caller; only SAINTDroid's context-sensitive
//                   analysis sees it), kHidden (the check calls into a
//                   class generated only at runtime; statically invisible
//                   to every tool — the paper's false-positive mechanism,
//                   §VI)
//   placements    — kReachable (invoked from a component entry point),
//                   kDeadCode (in a never-referenced helper class; tools
//                   without reachability analysis still flag it),
//                   kSecondaryDex (in a late-bound dex reached via
//                   load-class; only SAINTDroid follows it)
//
// The ledger entry for each seed (real vs benign) is derived from the
// framework spec's lifecycle facts, not hard-coded by the caller.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "adf/spec.hpp"
#include "dex/apk.hpp"
#include "dex/builder.hpp"
#include "workload/catalog.hpp"
#include "workload/ground_truth.hpp"

namespace saintdroid {

enum class GuardMode : std::uint8_t {
  kNone = 0,
  kLocal,
  kLocalViaRegister,
  /// The SDK_INT value is cached in an instance field first
  /// (`this.sdk = Build.VERSION.SDK_INT; if (this.sdk >= N) ...`) —
  /// requires field-fact tracking; CID and Lint both miss it.
  kLocalViaField,
  kCrossMethod,
  kHidden,
  /// The check lives in an app-internal `static boolean` helper method
  /// (`if (VersionUtil.isAtLeastN()) ...`) — the helper-method guard idiom
  /// AndroidCompass catalogues as the second most common protection after
  /// direct SDK_INT checks. Requires helper-predicate evaluation
  /// (AumOptions::helper_predicates); CID and Lint both miss it.
  kHelperMethod,
};

enum class Placement : std::uint8_t {
  kReachable = 0,
  kDeadCode,
  kSecondaryDex,
  /// In a class reached only through Class.forName("<name>") with a
  /// string-constant name — statically discoverable reflection, which
  /// SAINTDroid's conservative late-binding analysis follows.
  kReflection,
};

class AppBuilder {
 public:
  /// `spec` supplies lifecycle/permission facts for ledger derivation and
  /// must outlive the builder.
  AppBuilder(std::string app_name, std::string package,
             const FrameworkSpec& spec);

  // -- manifest ---------------------------------------------------------------
  AppBuilder& sdk(int min_sdk, int target_sdk, int max_sdk = 0);
  AppBuilder& buildable(bool value);
  AppBuilder& request_permission(const std::string& permission);

  // -- seeds ------------------------------------------------------------------
  /// Seeds one invocation of `api` under the given protection/placement.
  AppBuilder& api_call(const ApiUse& api, GuardMode guard = GuardMode::kNone,
                       Placement placement = Placement::kReachable);

  /// Seeds a call to `api` through a fresh app subclass of
  /// `api.declaring` as the declared receiver — only hierarchy-aware
  /// analysis resolves it into the framework.
  AppBuilder& inherited_api_call(const ApiUse& api,
                                 GuardMode guard = GuardMode::kNone);

  /// Seeds an override of `cb` in a fresh app subclass of its framework
  /// class. Whether it is a real APC mismatch follows from the spec.
  AppBuilder& callback_override(const CallbackUse& cb);

  /// Ledger-only: a callback override that lives in a runtime-generated
  /// (anonymous inner) class — no bytecode exists for any tool to see, so
  /// it is a universal false negative (paper §VI).
  AppBuilder& hidden_callback(const CallbackUse& cb);

  /// Ledger-only: an API invocation inside a runtime-generated class —
  /// like hidden_callback, statically invisible to every tool.
  AppBuilder& hidden_api_call(const ApiUse& api);

  /// Seeds a use of a permission-requiring API; the required permissions
  /// are mined from the spec (direct and transitive) and added to the
  /// manifest. Whether it becomes a request or revocation mismatch follows
  /// from the target SDK and protocol state at build().
  AppBuilder& permission_use(const ApiUse& api,
                             GuardMode guard = GuardMode::kNone);

  /// Implements the runtime permission protocol: overrides
  /// onRequestPermissionsResult and issues a guarded requestPermissions
  /// call. (With minSdk < 23 the override itself is a real APC mismatch,
  /// recorded automatically.)
  AppBuilder& implement_runtime_permission_protocol();

  /// Seeds one invocation of a semantic-change API (an entry of
  /// FrameworkSpec::semantic_changes; `api` must name one). Guards:
  /// kNone — a real SEM mismatch whenever the declared range overlaps the
  /// change window; kLocal — the *inverse* guard `if (SDK_INT < from)
  /// call()`, confining the call to the old behavior (benign);
  /// kHelperMethod — the same inverse check behind an app-internal static
  /// helper (benign, but only helper-predicate-aware analysis proves it).
  /// A kLocal request whose threshold the declared range never crosses
  /// (minSdk >= from) is emitted as kHelperMethod instead: the direct
  /// comparison would be vacuously true and trip the SDC guard lint.
  AppBuilder& semantic_call(const ApiUse& api,
                            GuardMode guard = GuardMode::kNone);

  /// Declares a dangerous permission that no seeded code exercises — SDC
  /// "unused-permission" lint material, ledgered real. The caller must
  /// pick a permission no permission_use seed requests.
  AppBuilder& declare_unused_permission(const std::string& permission);

  /// Seeds an SDK_INT comparison that decides the same way on every level
  /// of the declared range (`SDK_INT >= minSdk` when `always_true`, else
  /// `SDK_INT < minSdk`) — SDC "vacuous guard" lint material.
  AppBuilder& vacuous_sdk_guard(bool always_true);

  // -- version-chain slots ----------------------------------------------------
  // The version-chain corpus re-publishes one logical app as a sequence of
  // versions that differ in a handful of localized edits. A chain slot
  // hosts one seed in the stably named class `<pkg>/chain/Slot<k>` with
  // entry method `run`, wired into onCreate like any helper call. Because
  // the name is a function of the slot index alone (the global seed
  // counter is bypassed), re-emitting every *other* slot identically in
  // the next version leaves those classes' symbolic fingerprints
  // (core/incr_cache) stable no matter how this slot's material changed —
  // the localization the incremental layer's dirty-set analysis relies on.

  /// Routes the next single kReachable seed primitive (api_call,
  /// permission_use, semantic_call, vacuous_sdk_guard) into chain slot
  /// `slot`; end_chain_slot() must follow the one primitive. Guard modes
  /// that mint extra counter-named classes (kCrossMethod, kHelperMethod)
  /// are not chain material — their helper names would drift across
  /// versions and dirty untouched slots.
  AppBuilder& begin_chain_slot(int slot);
  AppBuilder& end_chain_slot();

  /// An edited-out chain slot: the class and its onCreate wiring remain,
  /// the run body is empty. Removal as an edit, without perturbing any
  /// other class's bytes.
  AppBuilder& chain_tombstone(int slot);

  /// A framework-subclass chain slot for APC material: `chain/Slot<k>`
  /// extends `cb.framework_class` and, when `enabled`, overrides the
  /// callback (ledgered exactly like callback_override). Deliberately
  /// referenced by nothing — the eager component scan still finds the
  /// override, and toggling it dirties exactly one class.
  AppBuilder& chain_callback_slot(int slot, const CallbackUse& cb,
                                  bool enabled);

  /// An unreferenced churn class `chain/Dead<slot>v<salt>` — dead-code
  /// add/remove noise between versions that the dirty set must absorb
  /// without touching any live fact.
  AppBuilder& chain_dead_class(int slot, int salt);

  /// True when a previous seed already put `permission` in the manifest
  /// (so corpus strata can pick a genuinely unused one to over-declare).
  bool requests_permission(const std::string& permission) const {
    return manifest_.requests_permission(permission);
  }

  /// True when some emitted call's spec target demands `permission`,
  /// directly or transitively — including mismatch-API seeds and bulk
  /// filler whose synthetic targets happen to enforce one. An
  /// over-declared permission must dodge these too, or the analysis
  /// rightly counts it as used (and, once the manifest requests it, may
  /// surface a real PRM finding the ledger never seeded).
  bool demands_permission(const std::string& permission) const {
    return demanded_permissions_.count(permission) != 0;
  }

  // -- bulk material ------------------------------------------------------------
  /// Adds one method invoking `count` distinct always-safe framework APIs
  /// (drives the number of classes an analysis must load — the
  /// "library-heavy" knob behind the Fig. 3 outliers).
  AppBuilder& framework_breadth(int count);

  /// Pads the app with benign filler methods until the total instruction
  /// count reaches at least `target_loc`.
  /// `live_stride` controls how much of the filler is reachable: every
  /// live_stride-th filler class is wired into onCreate, the rest model
  /// never-called bundled library code. 1 makes all filler live.
  AppBuilder& pad_to(std::uint64_t target_loc, int live_stride = 5);

  // -- finalization ---------------------------------------------------------
  struct Built {
    Apk apk;
    GroundTruth truth;
  };
  /// Assembles the APK (emitting the component's onCreate that reaches all
  /// reachable seeds) and finalizes the ledger. Single use.
  Built build();

 private:
  struct PermissionSeed {
    MethodId location;
    MethodId subject;
    std::string permission;
    GuardMode guard;
  };

  /// One emitted direct SDK_INT comparison the analysis will collect for
  /// the vacuous-guard lint. build() re-evaluates every site against the
  /// *final* declared range and ledgers the one-sided ones: a perfectly
  /// sensible guard becomes dead weight when a malformed maxSdk narrows
  /// the range below its threshold, and the lint is right to say so.
  struct GuardSite {
    MethodId method;
    CmpOp cmp;
    int literal;
  };

  MethodBuilder& new_seed_method(Placement placement, std::string* out_class,
                                 std::string* out_method);
  /// Marks `slot` taken (each chain slot hosts exactly one construct).
  void claim_chain_slot(int slot);
  std::string chain_slot_class(int slot) const;
  void emit_call(MethodBuilder& mb, const ApiUse& api);
  /// Emits guard prologue + call + epilogue into a seed method; for
  /// kCrossMethod the call is placed in a second helper method. Returns
  /// the method that physically contains the call.
  MethodId emit_guarded_call(const ApiUse& api, GuardMode guard,
                             Placement placement, int protect_level);
  /// Emits a fresh app-internal `static boolean` SDK_INT predicate
  /// (`return SDK_INT <cmp> literal`) and returns its (class, method).
  std::pair<std::string, std::string> emit_helper_predicate(CmpOp cmp,
                                                            int literal);
  const MethodSpec* find_spec_method(const ApiUse& api) const;
  const SemanticChangeSpec* find_semantic_row(const ApiUse& api) const;
  const MethodSpec* find_spec_callback(const CallbackUse& cb) const;
  /// Permissions required by `api` per the spec (direct + transitive).
  std::vector<std::string> spec_permissions(const ApiUse& api) const;

  std::string app_name_;
  std::string package_path_;  // slashed
  const FrameworkSpec* spec_;
  Manifest manifest_;

  DexBuilder main_dex_;
  std::unique_ptr<DexBuilder> secondary_dex_;
  ClassBuilder* main_activity_ = nullptr;

  std::vector<std::string> reachable_roots_;   // main-activity methods
  std::vector<std::pair<std::string, std::string>> helper_calls_;
  std::vector<std::string> plugin_classes_;    // secondary-dex classes
  std::vector<std::string> reflected_classes_; // Class.forName targets

  GroundTruth truth_;
  /// Union of spec_permissions() over every distinct API emit_call has
  /// emitted (memoized via mined_call_keys_ — filler cycles a small list).
  std::unordered_set<std::string> demanded_permissions_;
  std::unordered_set<std::string> mined_call_keys_;
  std::vector<GuardSite> guard_sites_;
  std::vector<PermissionSeed> permission_seeds_;
  bool protocol_implemented_ = false;
  int seed_counter_ = 0;
  int filler_counter_ = 0;
  int chain_slot_ = -1;             ///< open slot; -1 = not in a chain slot
  bool chain_slot_emitted_ = false;
  std::unordered_set<int> chain_slots_used_;
  bool built_ = false;
};

}  // namespace saintdroid
