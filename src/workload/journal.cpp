#include "workload/journal.hpp"

#include <cstdint>
#include <sstream>
#include <utility>

#include "core/json.hpp"
#include "support/errors.hpp"

namespace saintdroid {

namespace {

std::string quoted(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

void emit_score(std::ostringstream& out, const char* name,
                const Score& score) {
  out << "\"" << name << "\":{\"tp\":" << score.tp << ",\"fp\":" << score.fp
      << ",\"fn\":" << score.fn << "}";
}

std::uint64_t read_u64(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type() != JsonValue::Type::kNumber) return 0;
  const double number = value->as_number();
  return number > 0 ? static_cast<std::uint64_t>(number) : 0;
}

Score read_score(const JsonValue& scores, std::string_view family) {
  Score score;
  const JsonValue* object = scores.find(family);
  if (object == nullptr) return score;
  score.tp = static_cast<std::size_t>(read_u64(*object, "tp"));
  score.fp = static_cast<std::size_t>(read_u64(*object, "fp"));
  score.fn = static_cast<std::size_t>(read_u64(*object, "fn"));
  return score;
}

std::string read_string(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type() != JsonValue::Type::kString) return {};
  return value->as_string();
}

}  // namespace

std::string journal_line(const SuiteAppRow& row) {
  std::ostringstream out;
  out << "{\"app\":" << quoted(row.app)
      << ",\"completed\":" << (row.completed ? "true" : "false")
      << ",\"incomplete\":" << (row.incomplete ? "true" : "false");
  if (!row.failure_reason.empty())
    out << ",\"failure_reason\":" << quoted(row.failure_reason);
  if (row.failure.has_value()) {
    out << ",\"failure\":{\"kind\":"
        << quoted(failure_kind_name(row.failure->kind))
        << ",\"phase\":" << quoted(row.failure->phase)
        << ",\"message\":" << quoted(row.failure->message) << "}";
  }
  out << ",\"mismatches\":" << row.mismatch_count << ",\"scores\":{";
  emit_score(out, "api", row.scores.api);
  out << ",";
  emit_score(out, "apc", row.scores.apc);
  out << ",";
  emit_score(out, "prm", row.scores.prm);
  out << "},\"usage\":{\"seconds\":" << row.usage.seconds
      << ",\"peak_bytes\":" << row.usage.peak_bytes
      << ",\"loaded_classes\":" << row.usage.loaded_classes << "}}";
  return out.str();
}

std::optional<SuiteAppRow> parse_journal_line(std::string_view line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const ParseError&) {
    return std::nullopt;
  }
  const JsonValue* app = doc.find("app");
  const JsonValue* completed = doc.find("completed");
  if (app == nullptr || app->type() != JsonValue::Type::kString ||
      completed == nullptr || completed->type() != JsonValue::Type::kBool)
    return std::nullopt;

  SuiteAppRow row;
  row.app = app->as_string();
  row.completed = completed->as_bool();
  if (const JsonValue* inc = doc.find("incomplete");
      inc != nullptr && inc->type() == JsonValue::Type::kBool)
    row.incomplete = inc->as_bool();
  row.failure_reason = read_string(doc, "failure_reason");
  if (const JsonValue* failure = doc.find("failure");
      failure != nullptr && failure->type() == JsonValue::Type::kObject) {
    AnalysisFailure parsed;
    parsed.kind = failure_kind_from_name(read_string(*failure, "kind"));
    parsed.phase = read_string(*failure, "phase");
    parsed.message = read_string(*failure, "message");
    row.failure = std::move(parsed);
  }
  row.mismatch_count = static_cast<std::size_t>(read_u64(doc, "mismatches"));
  if (const JsonValue* scores = doc.find("scores");
      scores != nullptr && scores->type() == JsonValue::Type::kObject) {
    row.scores.api = read_score(*scores, "api");
    row.scores.apc = read_score(*scores, "apc");
    row.scores.prm = read_score(*scores, "prm");
  }
  if (const JsonValue* usage = doc.find("usage");
      usage != nullptr && usage->type() == JsonValue::Type::kObject) {
    if (const JsonValue* seconds = usage->find("seconds");
        seconds != nullptr && seconds->type() == JsonValue::Type::kNumber)
      row.usage.seconds = seconds->as_number();
    row.usage.peak_bytes = read_u64(*usage, "peak_bytes");
    row.usage.loaded_classes = read_u64(*usage, "loaded_classes");
  }
  return row;
}

std::vector<SuiteAppRow> load_journal(const std::string& path) {
  std::vector<SuiteAppRow> rows;
  std::ifstream in{path};
  if (!in.is_open()) return rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto row = parse_journal_line(line)) rows.push_back(std::move(*row));
  }
  return rows;
}

JournalWriter::JournalWriter(const std::string& path, bool append) {
  bool seal = false;
  if (append) {
    // A run killed mid-append leaves a partial line with no newline; seal
    // it so the next row starts on a fresh line (the partial row is then
    // skipped by load_journal as unparseable).
    std::ifstream existing{path, std::ios::binary};
    if (existing.is_open()) {
      existing.seekg(0, std::ios::end);
      const auto size = existing.tellg();
      if (size > 0) {
        existing.seekg(-1, std::ios::end);
        char last = '\n';
        existing.get(last);
        seal = last != '\n';
      }
    }
  }
  out_.open(path, append ? (std::ios::out | std::ios::app)
                         : (std::ios::out | std::ios::trunc));
  if (!out_.is_open())
    throw ConfigError("journal: cannot open " + path);
  if (seal) {
    out_ << '\n';
    out_.flush();
  }
}

void JournalWriter::append(const SuiteAppRow& row) {
  const std::lock_guard<std::mutex> lock{mutex_};
  out_ << journal_line(row) << '\n';
  out_.flush();
}

}  // namespace saintdroid
