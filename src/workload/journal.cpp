#include "workload/journal.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/json.hpp"
#include "support/errors.hpp"

namespace saintdroid {

namespace {

std::string quoted(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

void emit_score(std::ostringstream& out, const char* name,
                const Score& score) {
  out << "\"" << name << "\":{\"tp\":" << score.tp << ",\"fp\":" << score.fp
      << ",\"fn\":" << score.fn << "}";
}

std::uint64_t read_u64(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type() != JsonValue::Type::kNumber) return 0;
  const double number = value->as_number();
  return number > 0 ? static_cast<std::uint64_t>(number) : 0;
}

Score read_score(const JsonValue& scores, std::string_view family) {
  Score score;
  const JsonValue* object = scores.find(family);
  if (object == nullptr) return score;
  score.tp = static_cast<std::size_t>(read_u64(*object, "tp"));
  score.fp = static_cast<std::size_t>(read_u64(*object, "fp"));
  score.fn = static_cast<std::size_t>(read_u64(*object, "fn"));
  return score;
}

std::string read_string(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type() != JsonValue::Type::kString) return {};
  return value->as_string();
}

std::string shard_spec(const JournalHeader& header) {
  if (header.merged()) return "merged/" + std::to_string(header.shard_count);
  return std::to_string(header.shard_index) + "/" +
         std::to_string(header.shard_count);
}

}  // namespace

std::string journal_header_line(const JournalHeader& header) {
  std::ostringstream out;
  out << "{\"journal\":\"saintdroid-suite\",\"schema\":" << header.schema
      << ",\"corpus\":" << quoted(header.corpus)
      << ",\"shard\":{\"index\":" << header.shard_index
      << ",\"count\":" << header.shard_count << "}";
  if (!header.tool.empty()) out << ",\"tool\":" << quoted(header.tool);
  out << "}";
  return out.str();
}

std::optional<JournalHeader> parse_journal_header(std::string_view line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const ParseError&) {
    return std::nullopt;
  }
  const JsonValue* marker = doc.find("journal");
  const JsonValue* schema = doc.find("schema");
  const JsonValue* shard = doc.find("shard");
  if (marker == nullptr || marker->type() != JsonValue::Type::kString ||
      schema == nullptr || schema->type() != JsonValue::Type::kNumber ||
      shard == nullptr || shard->type() != JsonValue::Type::kObject)
    return std::nullopt;
  const JsonValue* index = shard->find("index");
  const JsonValue* count = shard->find("count");
  if (index == nullptr || index->type() != JsonValue::Type::kNumber ||
      count == nullptr || count->type() != JsonValue::Type::kNumber)
    return std::nullopt;

  JournalHeader header;
  header.schema = static_cast<int>(schema->as_number());
  header.corpus = read_string(doc, "corpus");
  header.shard_index = static_cast<int>(index->as_number());
  header.shard_count = static_cast<int>(count->as_number());
  header.tool = read_string(doc, "tool");
  return header;
}

bool headers_compatible(const JournalHeader& a, const JournalHeader& b) {
  return a.schema == b.schema && a.corpus == b.corpus &&
         a.shard_count == b.shard_count;
}

std::string journal_line(const SuiteAppRow& row) {
  std::ostringstream out;
  out << "{\"app\":" << quoted(row.app)
      << ",\"completed\":" << (row.completed ? "true" : "false")
      << ",\"incomplete\":" << (row.incomplete ? "true" : "false");
  if (!row.failure_reason.empty())
    out << ",\"failure_reason\":" << quoted(row.failure_reason);
  if (row.failure.has_value()) {
    out << ",\"failure\":{\"kind\":"
        << quoted(failure_kind_name(row.failure->kind))
        << ",\"phase\":" << quoted(row.failure->phase)
        << ",\"message\":" << quoted(row.failure->message) << "}";
  }
  out << ",\"mismatches\":" << row.mismatch_count << ",\"scores\":{";
  emit_score(out, "api", row.scores.api);
  out << ",";
  emit_score(out, "apc", row.scores.apc);
  out << ",";
  emit_score(out, "prm", row.scores.prm);
  // The SEM/SDC families are emitted sparsely — only when any count is
  // nonzero — so rows of apps without semantic/declaration material are
  // byte-identical to rows written before these families existed, and
  // pre-SEM/SDC journals parse as all-zero scores (read_score's default).
  const auto nonzero = [](const Score& s) { return (s.tp | s.fp | s.fn) != 0; };
  if (nonzero(row.scores.sem)) {
    out << ",";
    emit_score(out, "sem", row.scores.sem);
  }
  if (nonzero(row.scores.sdc)) {
    out << ",";
    emit_score(out, "sdc", row.scores.sdc);
  }
  out << "},\"usage\":{\"seconds\":" << row.usage.seconds
      << ",\"peak_bytes\":" << row.usage.peak_bytes
      << ",\"loaded_classes\":" << row.usage.loaded_classes << "}";
  // Incremental-layer telemetry, emitted sparsely like SEM/SDC above: rows
  // written without an incremental cache stay byte-identical to rows
  // written before the layer existed.
  if (row.incr.any()) {
    out << ",\"incr\":{\"attempted\":" << row.incr.attempted
        << ",\"hits\":" << row.incr.hits
        << ",\"dirty_classes\":" << row.incr.dirty_classes
        << ",\"fallbacks\":" << row.incr.fallbacks << "}";
  }
  out << "}";
  return out.str();
}

std::optional<SuiteAppRow> parse_journal_line(std::string_view line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const ParseError&) {
    return std::nullopt;
  }
  const JsonValue* app = doc.find("app");
  const JsonValue* completed = doc.find("completed");
  if (app == nullptr || app->type() != JsonValue::Type::kString ||
      completed == nullptr || completed->type() != JsonValue::Type::kBool)
    return std::nullopt;

  SuiteAppRow row;
  row.app = app->as_string();
  row.completed = completed->as_bool();
  if (const JsonValue* inc = doc.find("incomplete");
      inc != nullptr && inc->type() == JsonValue::Type::kBool)
    row.incomplete = inc->as_bool();
  row.failure_reason = read_string(doc, "failure_reason");
  if (const JsonValue* failure = doc.find("failure");
      failure != nullptr && failure->type() == JsonValue::Type::kObject) {
    AnalysisFailure parsed;
    parsed.kind = failure_kind_from_name(read_string(*failure, "kind"));
    parsed.phase = read_string(*failure, "phase");
    parsed.message = read_string(*failure, "message");
    row.failure = std::move(parsed);
  }
  row.mismatch_count = static_cast<std::size_t>(read_u64(doc, "mismatches"));
  if (const JsonValue* scores = doc.find("scores");
      scores != nullptr && scores->type() == JsonValue::Type::kObject) {
    row.scores.api = read_score(*scores, "api");
    row.scores.apc = read_score(*scores, "apc");
    row.scores.prm = read_score(*scores, "prm");
    row.scores.sem = read_score(*scores, "sem");
    row.scores.sdc = read_score(*scores, "sdc");
  }
  if (const JsonValue* usage = doc.find("usage");
      usage != nullptr && usage->type() == JsonValue::Type::kObject) {
    if (const JsonValue* seconds = usage->find("seconds");
        seconds != nullptr && seconds->type() == JsonValue::Type::kNumber)
      row.usage.seconds = seconds->as_number();
    row.usage.peak_bytes = read_u64(*usage, "peak_bytes");
    row.usage.loaded_classes = read_u64(*usage, "loaded_classes");
  }
  if (const JsonValue* incr = doc.find("incr");
      incr != nullptr && incr->type() == JsonValue::Type::kObject) {
    row.incr.attempted = read_u64(*incr, "attempted");
    row.incr.hits = read_u64(*incr, "hits");
    row.incr.dirty_classes = read_u64(*incr, "dirty_classes");
    row.incr.fallbacks = read_u64(*incr, "fallbacks");
  }
  return row;
}

std::string canonical_row_bytes(const SuiteAppRow& row) {
  SuiteAppRow canonical = row;
  canonical.usage.seconds = 0.0;
  // Incremental counters describe how the row was *served*, not what it
  // found — a cache hit and a from-scratch run must compare canonical-equal
  // (that equality is exactly what tests/test_incremental.cpp proves).
  canonical.incr = IncrementalStats{};
  return journal_line(canonical);
}

std::vector<SuiteAppRow> load_journal(const std::string& path) {
  return load_journal_file(path).rows;
}

JournalFile load_journal_file(const std::string& path) {
  JournalFile file;
  std::ifstream in{path};
  if (!in.is_open()) return file;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      first = false;
      if (!line.empty()) {
        if (auto header = parse_journal_header(line)) {
          file.header = std::move(*header);
          continue;
        }
      }
    }
    if (line.empty()) continue;
    if (auto row = parse_journal_line(line))
      file.rows.push_back(std::move(*row));
  }
  return file;
}

JournalMerge merge_journals(const std::vector<std::string>& inputs) {
  if (inputs.empty())
    throw ConfigError("merge-journals: no input journals given");

  JournalMerge merge;
  std::optional<JournalHeader> reference;
  std::string reference_path;
  std::unordered_map<std::string, std::size_t> by_app;
  // Which input currently owns each merged row (parallel to merge.rows),
  // so per-input canonical counts survive last-writer-wins overwrites.
  std::vector<std::size_t> owner;

  for (std::size_t input_index = 0; input_index < inputs.size();
       ++input_index) {
    const auto& path = inputs[input_index];
    {
      const std::ifstream probe{path, std::ios::binary};
      if (!probe.is_open())
        throw ConfigError("merge-journals: cannot open " + path);
    }
    JournalFile file = load_journal_file(path);
    JournalInputStats stats;
    stats.path = path;
    stats.header = file.header;
    stats.rows = file.rows.size();
    if (file.header.has_value()) {
      if (!reference.has_value()) {
        reference = *file.header;
        reference_path = path;
      } else if (!headers_compatible(*reference, *file.header)) {
        throw ConfigError(
            "merge-journals: " + path + " (schema " +
            std::to_string(file.header->schema) + ", corpus \"" +
            file.header->corpus + "\", shard " + shard_spec(*file.header) +
            ") is not mergeable with " + reference_path + " (schema " +
            std::to_string(reference->schema) + ", corpus \"" +
            reference->corpus + "\", shard " + shard_spec(*reference) + ")");
      }
    }
    for (auto& row : file.rows) {
      if (row.completed && row.incomplete) ++stats.incomplete;
      const auto it = by_app.find(row.app);
      if (it == by_app.end()) {
        by_app.emplace(row.app, merge.rows.size());
        merge.rows.push_back(std::move(row));
        owner.push_back(input_index);
        continue;
      }
      SuiteAppRow& kept = merge.rows[it->second];
      const bool same_file = owner[it->second] == input_index;
      if (canonical_row_bytes(kept) == canonical_row_bytes(row)) {
        ++merge.duplicates;  // same result twice: silently keep the later
        if (same_file)
          ++stats.resumed;
        else
          ++stats.duplicates;
      } else {
        merge.conflicts.push_back({row.app, row, kept});
        ++stats.conflicts;
      }
      kept = std::move(row);  // last writer wins either way
      owner[it->second] = input_index;
    }
    merge.inputs.push_back(std::move(stats));
  }
  for (const std::size_t input_index : owner)
    ++merge.inputs[input_index].canonical;

  merge.header.schema = kJournalSchemaVersion;
  merge.header.shard_index = -1;  // "merged"
  if (reference.has_value()) {
    merge.header.corpus = reference->corpus;
    merge.header.shard_count = reference->shard_count;
    merge.header.tool = reference->tool;
  }
  std::sort(merge.rows.begin(), merge.rows.end(),
            [](const SuiteAppRow& a, const SuiteAppRow& b) {
              return a.app < b.app;
            });
  return merge;
}

void write_journal(const std::string& path, const JournalHeader& header,
                   std::span<const SuiteAppRow> rows) {
  std::ofstream out{path, std::ios::out | std::ios::trunc};
  if (!out.is_open())
    throw ConfigError("journal: cannot write " + path);
  out << journal_header_line(header) << '\n';
  for (const auto& row : rows) out << journal_line(row) << '\n';
  out.flush();
  if (!out)
    throw ConfigError("journal: short write to " + path);
}

JournalWriter::JournalWriter(const std::string& path, bool append,
                             const std::optional<JournalHeader>& header) {
  bool seal = false;
  bool emit_header = header.has_value();
  if (append) {
    // A run killed mid-append leaves a partial line with no newline; seal
    // it so the next row starts on a fresh line (the partial row is then
    // skipped by load_journal as unparseable). An existing non-empty
    // journal keeps its header (or legacy headerlessness); writing a
    // second header mid-file would just be an unparseable row.
    std::ifstream existing{path, std::ios::binary};
    if (existing.is_open()) {
      existing.seekg(0, std::ios::end);
      const auto size = existing.tellg();
      if (size > 0) {
        emit_header = false;
        existing.seekg(-1, std::ios::end);
        char last = '\n';
        existing.get(last);
        seal = last != '\n';
        if (header.has_value()) {
          // Resuming into the wrong journal must fail loudly: the first
          // line's header (when present) has to denote the same run slice.
          existing.seekg(0, std::ios::beg);
          std::string first;
          std::getline(existing, first);
          if (const auto found = parse_journal_header(first);
              found.has_value() &&
              (!headers_compatible(*found, *header) ||
               found->shard_index != header->shard_index)) {
            throw ConfigError("journal: " + path + " belongs to shard " +
                              shard_spec(*found) + " of corpus \"" +
                              found->corpus + "\", not shard " +
                              shard_spec(*header) + " of corpus \"" +
                              header->corpus + "\"");
          }
        }
      }
    }
  }
  out_.open(path, append ? (std::ios::out | std::ios::app)
                         : (std::ios::out | std::ios::trunc));
  if (!out_.is_open())
    throw ConfigError("journal: cannot open " + path);
  if (seal) {
    out_ << '\n';
    out_.flush();
  }
  if (emit_header) {
    out_ << journal_header_line(*header) << '\n';
    out_.flush();
  }
}

void JournalWriter::append(const SuiteAppRow& row) {
  const std::lock_guard<std::mutex> lock{mutex_};
  out_ << journal_line(row) << '\n';
  out_.flush();
}

}  // namespace saintdroid
