// RealWorldCorpus: the 3,571-app population of the paper's RQ2 study
// (1,391 F-Droid + 2,300 AndroZoo apps minus 120 that failed to build).
//
// Apps are generated deterministically on demand (generate(i) always
// returns the same app for the same config), with the population
// statistics seeded to the paper's reported rates — the detectors still
// have to actually find the issues; nothing in the harness feeds ledger
// facts to the tools.
#pragma once

#include <cstdint>
#include <vector>

#include "adf/repository.hpp"
#include "workload/benchmarks.hpp"

namespace saintdroid {

struct CorpusConfig {
  std::uint64_t seed = 0xC0B75ULL;
  int app_count = 3571;
  /// Fraction of apps targeting API >= 23 (paper: 1,815 of 3,571).
  double target_runtime_fraction = 1815.0 / 3571.0;
  /// Fraction of apps harboring at least one API invocation mismatch
  /// (paper: 41.19%), and the mean count for such apps (68,268 total).
  double api_app_fraction = 0.4119;
  double api_issue_mean = 45.0;
  /// Ratio of statically-invisible (runtime-guarded) benign constructs to
  /// real API issues — drives the sampled API precision of ~85% (§V-B).
  double api_hidden_ratio = 0.18;
  /// Fraction of apps with callback mismatches (20.05%; 2,115 total).
  double apc_app_fraction = 0.2005;
  double apc_issue_mean = 5.5;
  /// Within the target>=23 group: fraction with a permission-request
  /// mismatch (12.34%). Within the target<23 group: fraction with a
  /// revocation mismatch (68.68%).
  double prm_request_fraction = 0.1234;
  double prm_revocation_fraction = 0.6868;
  /// App size (dex LOC) distribution: loc = size_base * exp(u * size_spread),
  /// capped at size_cap (Fig. 3's axis runs to ~80 KLOC).
  double size_base = 900.0;
  double size_spread = 3.4;
  std::uint64_t size_cap = 80'000;
  /// Fraction of apps that are "library-heavy" (high framework breadth at
  /// modest size — the Fig. 3 outliers).
  double library_heavy_fraction = 0.04;

  // --- SEM / SDC strata (all default-off) ------------------------------------
  // Every knob below defaults to 0 and its stratum draws nothing from the
  // app's random stream while disabled, so a default-config corpus is
  // byte-identical to one generated before these strata existed.

  /// Fraction of apps seeding semantic-change (SEM) call sites, and the
  /// mean count of real sites for such apps.
  double semantic_app_fraction = 0.0;
  double semantic_issue_mean = 3.0;
  /// Fraction of apps carrying one declared-SDK (SDC) lint issue: a
  /// self-contradictory range, an over-declared dangerous permission, or a
  /// vacuous SDK_INT guard.
  double declaration_issue_fraction = 0.0;
  /// Probability that a guarded benign look-alike (API or SEM) uses the
  /// helper-method idiom (GuardMode::kHelperMethod) instead of a direct
  /// SDK_INT check.
  double helper_guard_fraction = 0.0;
};

class RealWorldCorpus {
 public:
  /// `repo` must outlive the corpus.
  explicit RealWorldCorpus(const FrameworkRepository& repo,
                           CorpusConfig config = {});

  int size() const { return config_.app_count; }

  /// Generates app `index` (0-based). Deterministic per (config, index).
  BenchApp generate(int index) const;

  /// Generates apps [begin, end) across `jobs` workers. Because generate(i)
  /// is pure per (config, index), the result is index-ordered and identical
  /// for any `jobs`; `jobs <= 1` runs serially on the calling thread.
  std::vector<BenchApp> generate_range(int begin, int end, int jobs = 1) const;

  const CorpusConfig& config() const { return config_; }

 private:
  const FrameworkRepository* repo_;
  CorpusConfig config_;
};

}  // namespace saintdroid
