// RealWorldCorpus: the 3,571-app population of the paper's RQ2 study
// (1,391 F-Droid + 2,300 AndroZoo apps minus 120 that failed to build).
//
// Apps are generated deterministically on demand (generate(i) always
// returns the same app for the same config), with the population
// statistics seeded to the paper's reported rates — the detectors still
// have to actually find the issues; nothing in the harness feeds ledger
// facts to the tools.
#pragma once

#include <cstdint>
#include <vector>

#include "adf/repository.hpp"
#include "workload/benchmarks.hpp"

namespace saintdroid {

struct CorpusConfig {
  std::uint64_t seed = 0xC0B75ULL;
  int app_count = 3571;
  /// Fraction of apps targeting API >= 23 (paper: 1,815 of 3,571).
  double target_runtime_fraction = 1815.0 / 3571.0;
  /// Fraction of apps harboring at least one API invocation mismatch
  /// (paper: 41.19%), and the mean count for such apps (68,268 total).
  double api_app_fraction = 0.4119;
  double api_issue_mean = 45.0;
  /// Ratio of statically-invisible (runtime-guarded) benign constructs to
  /// real API issues — drives the sampled API precision of ~85% (§V-B).
  double api_hidden_ratio = 0.18;
  /// Fraction of apps with callback mismatches (20.05%; 2,115 total).
  double apc_app_fraction = 0.2005;
  double apc_issue_mean = 5.5;
  /// Within the target>=23 group: fraction with a permission-request
  /// mismatch (12.34%). Within the target<23 group: fraction with a
  /// revocation mismatch (68.68%).
  double prm_request_fraction = 0.1234;
  double prm_revocation_fraction = 0.6868;
  /// App size (dex LOC) distribution: loc = size_base * exp(u * size_spread),
  /// capped at size_cap (Fig. 3's axis runs to ~80 KLOC).
  double size_base = 900.0;
  double size_spread = 3.4;
  std::uint64_t size_cap = 80'000;
  /// Fraction of apps that are "library-heavy" (high framework breadth at
  /// modest size — the Fig. 3 outliers).
  double library_heavy_fraction = 0.04;

  // --- SEM / SDC strata (all default-off) ------------------------------------
  // Every knob below defaults to 0 and its stratum draws nothing from the
  // app's random stream while disabled, so a default-config corpus is
  // byte-identical to one generated before these strata existed.

  /// Fraction of apps seeding semantic-change (SEM) call sites, and the
  /// mean count of real sites for such apps.
  double semantic_app_fraction = 0.0;
  double semantic_issue_mean = 3.0;
  /// Fraction of apps carrying one declared-SDK (SDC) lint issue: a
  /// self-contradictory range, an over-declared dangerous permission, or a
  /// vacuous SDK_INT guard.
  double declaration_issue_fraction = 0.0;
  /// Probability that a guarded benign look-alike (API or SEM) uses the
  /// helper-method idiom (GuardMode::kHelperMethod) instead of a direct
  /// SDK_INT check.
  double helper_guard_fraction = 0.0;
};

class RealWorldCorpus {
 public:
  /// `repo` must outlive the corpus.
  explicit RealWorldCorpus(const FrameworkRepository& repo,
                           CorpusConfig config = {});

  int size() const { return config_.app_count; }

  /// Generates app `index` (0-based). Deterministic per (config, index).
  BenchApp generate(int index) const;

  /// Generates apps [begin, end) across `jobs` workers. Because generate(i)
  /// is pure per (config, index), the result is index-ordered and identical
  /// for any `jobs`; `jobs <= 1` runs serially on the calling thread.
  std::vector<BenchApp> generate_range(int begin, int end, int jobs = 1) const;

  const CorpusConfig& config() const { return config_; }

 private:
  const FrameworkRepository* repo_;
  CorpusConfig config_;
};

/// Knobs for the version-chain axis: one logical app re-published as
/// `versions` successive updates, each differing from its predecessor in a
/// handful of localized edits — guard flips, API substitutions, call
/// removal/revival, callback-override toggles, dead-class churn. The
/// workload the incremental layer (core/incr_cache) exists for.
struct VersionChainConfig {
  std::uint64_t seed = 0xC4A17ULL;
  /// Chain length: versions are numbered 0 (initial publish) .. versions-1.
  int versions = 4;
  /// Chain slots per app. Families are assigned round-robin
  /// (API, APC, PRM, SEM, SDC), so any slots >= 5 spans all five.
  int slots = 10;
  /// Localized slot edits per version bump. Bump v edits slots
  /// (v-1)*edits_per_version onward, consecutively mod `slots`, so a
  /// default-length chain provably touches every family while each bump
  /// still changes only a couple of classes.
  int edits_per_version = 2;
  /// Unreferenced `chain/Dead*` classes replaced wholesale every version —
  /// dead-code churn the dirty set must absorb without touching any live
  /// fact.
  int dead_churn = 1;
  /// When set, the final version bump also edits MainActivity (one extra
  /// framework-breadth call). onCreate references every slot, so the dirty
  /// frontier covers most of the app and the incremental layer must take
  /// its loud full-analysis fallback instead of splicing.
  bool edit_main_activity = false;
  int breadth = 12;
  std::uint64_t target_loc = 1200;
  /// Liveness of the padding: every filler_live_stride-th filler class is
  /// reachable from onCreate, the rest is dead bundled-library code. The
  /// update bench drops this to 1 (all filler live) so from-scratch cost
  /// reflects apps whose code is mostly reachable.
  int filler_live_stride = 5;
};

/// Generates version `version` of chain `chain`. Pure per (config, chain,
/// version): bump edits are replayed cumulatively, with no cross-version
/// state. All versions of a chain share one app name (the incremental
/// cache's key), and consecutive versions differ only in the edited slot
/// classes plus the dead-churn classes — every other class is re-emitted
/// byte-identically.
BenchApp generate_chain_version(const FrameworkRepository& repo,
                                const VersionChainConfig& config, int chain,
                                int version);

}  // namespace saintdroid
