// The two benchmark suites of the paper's accuracy study (§IV-A):
// CID-Bench (7 micro apps by the CID authors, each exercising one
// construct) and CIDER-Bench (20 real apps from the CIDER study, of which
// 8 do not build with current toolchains and are excluded, leaving the 12
// named in Tables II/III). The per-app seed profiles — which mismatches
// each app harbors, which benign look-alikes, sizes, SDK ranges — form our
// ground-truth ledger and are documented in EXPERIMENTS.md.
#pragma once

#include <vector>

#include "adf/repository.hpp"
#include "dex/apk.hpp"
#include "workload/ground_truth.hpp"

namespace saintdroid {

/// One benchmark app with its ledger.
struct BenchApp {
  Apk apk;
  GroundTruth truth;
};

/// The 7 CID-Bench apps: Basic, Forward, GenericType, Inheritance,
/// Protection, Protection2, Varargs.
std::vector<BenchApp> cid_bench(const FrameworkRepository& repo);

/// The 20 CIDER-Bench apps; the 8 that "do not build" carry
/// manifest.buildable == false.
std::vector<BenchApp> cider_bench(const FrameworkRepository& repo);

/// The 19 buildable apps of both suites — the paper's objects of analysis.
std::vector<BenchApp> accuracy_bench(const FrameworkRepository& repo);

}  // namespace saintdroid
