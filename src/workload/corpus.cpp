#include "workload/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <future>

#include "adf/permissions.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "workload/app_builder.hpp"

namespace saintdroid {

namespace {

namespace cat = catalog;

/// Exponentially distributed count with the given mean, at least 1.
int draw_count(Rng& rng, double mean) {
  const double u = rng.uniform01();
  const double draw = -mean * std::log(1.0 - u);
  return std::max(1, static_cast<int>(draw));
}

/// The permission-requiring curated APIs corpus apps draw from.
const std::vector<ApiUse>& permission_apis() {
  static const std::vector<ApiUse> apis = {
      cat::camera_open(),       cat::set_audio_source(),
      cat::resolver_insert(),   cat::insert_image(),
      cat::last_known_location(), cat::send_text_message(),
      cat::get_device_id(),
  };
  // (BluetoothLeScanner.startScan is deliberately absent: it is only
  // alive from API 21, so using it would seed an API mismatch on top of
  // the permission issue; corpus PRM seeds stay single-purpose.)
  return apis;
}

}  // namespace

RealWorldCorpus::RealWorldCorpus(const FrameworkRepository& repo,
                                 CorpusConfig config)
    : repo_(&repo), config_(config) {}

BenchApp RealWorldCorpus::generate(int index) const {
  // Decorrelate per-app streams while keeping generate(i) self-contained.
  std::uint64_t stream = config_.seed ^
                         (0x9e3779b97f4a7c15ULL *
                          (static_cast<std::uint64_t>(index) + 1));
  Rng rng{splitmix64(stream)};

  const FrameworkSpec& spec = repo_->spec();
  const bool fdroid = index < 1391;
  const std::string source = fdroid ? "fdroid" : "androzoo";
  const std::string name =
      source + "-app-" + std::to_string(index);

  // SDK range.
  const bool targets_runtime = rng.uniform01() < config_.target_runtime_fraction;
  const int min_sdk = static_cast<int>(rng.uniform(8, 21));
  const int target_sdk =
      targets_runtime
          ? static_cast<int>(rng.uniform(kRuntimePermissionLevel, 29))
          : static_cast<int>(rng.uniform(std::max(min_sdk, 14), 22));
  const ApiInterval range{min_sdk, kMaxApiLevel};

  AppBuilder b{name, "app.generated.a" + std::to_string(index), spec};
  b.sdk(min_sdk, target_sdk);

  // Declared-SDK lint stratum, part 1: the malformed-range variant must
  // land before any seed, because every ledger derivation below reads the
  // final declared range. The other two variants apply after every
  // call-emitting stratum (the over-declared permission has to dodge all
  // the permissions the app's calls request or demand). Gated on the
  // fraction so a disabled stratum draws nothing from the stream.
  bool declaration_stratum =
      config_.declaration_issue_fraction > 0.0 &&
      rng.uniform01() < config_.declaration_issue_fraction;
  int declaration_variant = 0;
  if (declaration_stratum) {
    declaration_variant = static_cast<int>(rng.uniform(0, 2));
    if (declaration_variant == 0) {
      if (target_sdk > min_sdk)
        b.sdk(min_sdk, target_sdk, target_sdk - 1);  // maxSdk < targetSdk
      else
        declaration_variant = 2;  // no room below target: vacuous guard
    }
  }

  const auto mismatch_apis = collect_mismatch_apis(spec, range);
  const auto mismatch_callbacks = collect_mismatch_callbacks(spec, range);
  const auto safe_callbacks = collect_safe_callbacks(spec, range);

  // API invocation mismatches.
  if (rng.uniform01() < config_.api_app_fraction && !mismatch_apis.empty()) {
    const int real = std::min(300, draw_count(rng, config_.api_issue_mean));
    for (int i = 0; i < real; ++i) {
      const ApiUse& api = rng.pick(mismatch_apis);
      // A slice of issues hides in late-bound code or behind app-subclass
      // receivers — material only holistic analysis detects.
      const double shape = rng.uniform01();
      if (shape < 0.06)
        b.api_call(api, GuardMode::kNone, Placement::kSecondaryDex);
      else if (shape < 0.12)
        b.inherited_api_call(api);
      else
        b.api_call(api);
    }
    // Benign constructs alongside: correctly-guarded and runtime-guarded.
    const int guarded = static_cast<int>(std::ceil(real * 0.3));
    for (int i = 0; i < guarded; ++i) {
      const ApiUse& api = rng.pick(mismatch_apis);
      // Helper-method-idiom slice (extra gated draw: a zero fraction —
      // the legacy config — leaves the stream untouched).
      if (config_.helper_guard_fraction > 0.0 &&
          rng.uniform01() < config_.helper_guard_fraction) {
        b.api_call(api, GuardMode::kHelperMethod);
        continue;
      }
      const double shape = rng.uniform01();
      if (shape < 0.5)
        b.api_call(api, GuardMode::kLocal);
      else if (shape < 0.8)
        b.api_call(api, GuardMode::kCrossMethod);
      else
        b.api_call(api, GuardMode::kLocalViaRegister);
    }
    const int hidden = static_cast<int>(
        std::lround(real * config_.api_hidden_ratio));
    for (int i = 0; i < hidden; ++i)
      b.api_call(rng.pick(mismatch_apis), GuardMode::kHidden);
  } else if (!mismatch_apis.empty() && rng.chance(0.3)) {
    // Clean apps still contain guarded uses of newer APIs.
    b.api_call(rng.pick(mismatch_apis), GuardMode::kLocal);
  }

  // Callback mismatches. Apps that implement the runtime-permission
  // protocol with minSdk < 23 carry a real APC of their own (the
  // onRequestPermissionsResult override), so the drawn fraction is reduced
  // by the protocol-app rate below to keep the observed population at the
  // paper's 20.05%.
  const double protocol_rate = config_.target_runtime_fraction * 0.25;
  if (rng.uniform01() < config_.apc_app_fraction - protocol_rate &&
      !mismatch_callbacks.empty()) {
    const int count = std::min(40, draw_count(rng, config_.apc_issue_mean));
    for (int i = 0; i < count; ++i)
      b.callback_override(rng.pick(mismatch_callbacks));
  }
  if (!safe_callbacks.empty() && rng.chance(0.5))
    b.callback_override(rng.pick(safe_callbacks));

  // Permission-induced mismatches.
  const double prm_fraction = targets_runtime ? config_.prm_request_fraction
                                              : config_.prm_revocation_fraction;
  if (rng.uniform01() < prm_fraction) {
    const int uses = static_cast<int>(rng.uniform(1, 2));
    for (int i = 0; i < uses; ++i)
      b.permission_use(rng.pick(permission_apis()));
  } else if (targets_runtime && rng.chance(0.25)) {
    // Apps that do it right: protocol plus a guarded use.
    b.implement_runtime_permission_protocol();
    b.permission_use(rng.pick(permission_apis()));
  }

  // Semantic-change (SEM) stratum: unguarded call sites of curated
  // semantic-change APIs, plus benign look-alikes behind the inverse
  // guard — a slice of them via the helper-method idiom.
  if (config_.semantic_app_fraction > 0.0 &&
      rng.uniform01() < config_.semantic_app_fraction) {
    const auto semantic_apis = collect_semantic_apis(spec);
    if (!semantic_apis.empty()) {
      const int real =
          std::min(12, draw_count(rng, config_.semantic_issue_mean));
      for (int i = 0; i < real; ++i)
        b.semantic_call(rng.pick(semantic_apis));
      const int guarded = static_cast<int>(std::ceil(real * 0.4));
      for (int i = 0; i < guarded; ++i) {
        const bool helper = config_.helper_guard_fraction > 0.0 &&
                            rng.uniform01() < config_.helper_guard_fraction;
        b.semantic_call(rng.pick(semantic_apis),
                        helper ? GuardMode::kHelperMethod : GuardMode::kLocal);
      }
    }
  }

  // Size and framework breadth.
  const std::uint64_t loc = std::min<std::uint64_t>(
      config_.size_cap,
      static_cast<std::uint64_t>(
          config_.size_base *
          std::exp(rng.uniform01() * config_.size_spread)));
  const bool library_heavy = rng.uniform01() < config_.library_heavy_fraction;
  b.framework_breadth(library_heavy
                          ? static_cast<int>(rng.uniform(150, 400))
                          : static_cast<int>(rng.uniform(5, 40)));
  b.pad_to(loc);

  // Declared-SDK lint stratum, part 2 (see part 1 above). This runs after
  // every call-emitting stratum — including breadth and filler — so the
  // over-declared permission can dodge everything the app's calls demand:
  // a synthetic bulk method behind any earlier seed may enforce a random
  // dangerous permission, and declaring *that* one would make the lint's
  // usage check (correctly) stay silent while the manifest request turns
  // the latent demand into an unseeded PRM finding.
  if (declaration_stratum && declaration_variant == 1) {
    const auto pool = dangerous_permissions();
    const std::size_t start = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1));
    bool declared = false;
    for (std::size_t k = 0; k < pool.size(); ++k) {
      const std::string permission{pool[(start + k) % pool.size()]};
      if (b.requests_permission(permission) ||
          b.demands_permission(permission))
        continue;
      b.declare_unused_permission(permission);
      declared = true;
      break;
    }
    // Every dangerous permission is spoken for (possible only under tiny
    // specs): fall back to the vacuous-guard variant so the stratum still
    // yields an SDC row.
    if (!declared) b.vacuous_sdk_guard(rng.chance(0.5));
  } else if (declaration_stratum && declaration_variant == 2) {
    b.vacuous_sdk_guard(rng.chance(0.5));
  }

  auto built = b.build();
  return BenchApp{std::move(built.apk), std::move(built.truth)};
}

std::vector<BenchApp> RealWorldCorpus::generate_range(int begin, int end,
                                                      int jobs) const {
  if (end < begin) end = begin;
  const std::size_t n = static_cast<std::size_t>(end - begin);
  std::vector<BenchApp> apps(n);
  if (jobs > static_cast<int>(n)) jobs = static_cast<int>(n);

  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i)
      apps[i] = generate(begin + static_cast<int>(i));
    return apps;
  }

  // generate(i) is pure per (config, index), so workers share nothing but
  // the immutable corpus; each slot is written exactly once at its index.
  ThreadPool pool{static_cast<std::size_t>(jobs)};
  std::vector<std::future<void>> done;
  done.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    done.push_back(pool.submit([&, w] {
      for (std::size_t i = static_cast<std::size_t>(w); i < n;
           i += static_cast<std::size_t>(jobs))
        apps[i] = generate(begin + static_cast<int>(i));
    }));
  }
  for (auto& f : done) f.get();
  return apps;
}

}  // namespace saintdroid
