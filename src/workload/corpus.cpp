#include "workload/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <future>

#include "adf/permissions.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "workload/app_builder.hpp"

namespace saintdroid {

namespace {

namespace cat = catalog;

/// Exponentially distributed count with the given mean, at least 1.
int draw_count(Rng& rng, double mean) {
  const double u = rng.uniform01();
  const double draw = -mean * std::log(1.0 - u);
  return std::max(1, static_cast<int>(draw));
}

/// The permission-requiring curated APIs corpus apps draw from.
const std::vector<ApiUse>& permission_apis() {
  static const std::vector<ApiUse> apis = {
      cat::camera_open(),       cat::set_audio_source(),
      cat::resolver_insert(),   cat::insert_image(),
      cat::last_known_location(), cat::send_text_message(),
      cat::get_device_id(),
  };
  // (BluetoothLeScanner.startScan is deliberately absent: it is only
  // alive from API 21, so using it would seed an API mismatch on top of
  // the permission issue; corpus PRM seeds stay single-purpose.)
  return apis;
}

}  // namespace

RealWorldCorpus::RealWorldCorpus(const FrameworkRepository& repo,
                                 CorpusConfig config)
    : repo_(&repo), config_(config) {}

BenchApp RealWorldCorpus::generate(int index) const {
  // Decorrelate per-app streams while keeping generate(i) self-contained.
  std::uint64_t stream = config_.seed ^
                         (0x9e3779b97f4a7c15ULL *
                          (static_cast<std::uint64_t>(index) + 1));
  Rng rng{splitmix64(stream)};

  const FrameworkSpec& spec = repo_->spec();
  const bool fdroid = index < 1391;
  const std::string source = fdroid ? "fdroid" : "androzoo";
  const std::string name =
      source + "-app-" + std::to_string(index);

  // SDK range.
  const bool targets_runtime = rng.uniform01() < config_.target_runtime_fraction;
  const int min_sdk = static_cast<int>(rng.uniform(8, 21));
  const int target_sdk =
      targets_runtime
          ? static_cast<int>(rng.uniform(kRuntimePermissionLevel, 29))
          : static_cast<int>(rng.uniform(std::max(min_sdk, 14), 22));
  const ApiInterval range{min_sdk, kMaxApiLevel};

  AppBuilder b{name, "app.generated.a" + std::to_string(index), spec};
  b.sdk(min_sdk, target_sdk);

  // Declared-SDK lint stratum, part 1: the malformed-range variant must
  // land before any seed, because every ledger derivation below reads the
  // final declared range. The other two variants apply after every
  // call-emitting stratum (the over-declared permission has to dodge all
  // the permissions the app's calls request or demand). Gated on the
  // fraction so a disabled stratum draws nothing from the stream.
  bool declaration_stratum =
      config_.declaration_issue_fraction > 0.0 &&
      rng.uniform01() < config_.declaration_issue_fraction;
  int declaration_variant = 0;
  if (declaration_stratum) {
    declaration_variant = static_cast<int>(rng.uniform(0, 2));
    if (declaration_variant == 0) {
      if (target_sdk > min_sdk)
        b.sdk(min_sdk, target_sdk, target_sdk - 1);  // maxSdk < targetSdk
      else
        declaration_variant = 2;  // no room below target: vacuous guard
    }
  }

  const auto mismatch_apis = collect_mismatch_apis(spec, range);
  const auto mismatch_callbacks = collect_mismatch_callbacks(spec, range);
  const auto safe_callbacks = collect_safe_callbacks(spec, range);

  // API invocation mismatches.
  if (rng.uniform01() < config_.api_app_fraction && !mismatch_apis.empty()) {
    const int real = std::min(300, draw_count(rng, config_.api_issue_mean));
    for (int i = 0; i < real; ++i) {
      const ApiUse& api = rng.pick(mismatch_apis);
      // A slice of issues hides in late-bound code or behind app-subclass
      // receivers — material only holistic analysis detects.
      const double shape = rng.uniform01();
      if (shape < 0.06)
        b.api_call(api, GuardMode::kNone, Placement::kSecondaryDex);
      else if (shape < 0.12)
        b.inherited_api_call(api);
      else
        b.api_call(api);
    }
    // Benign constructs alongside: correctly-guarded and runtime-guarded.
    const int guarded = static_cast<int>(std::ceil(real * 0.3));
    for (int i = 0; i < guarded; ++i) {
      const ApiUse& api = rng.pick(mismatch_apis);
      // Helper-method-idiom slice (extra gated draw: a zero fraction —
      // the legacy config — leaves the stream untouched).
      if (config_.helper_guard_fraction > 0.0 &&
          rng.uniform01() < config_.helper_guard_fraction) {
        b.api_call(api, GuardMode::kHelperMethod);
        continue;
      }
      const double shape = rng.uniform01();
      if (shape < 0.5)
        b.api_call(api, GuardMode::kLocal);
      else if (shape < 0.8)
        b.api_call(api, GuardMode::kCrossMethod);
      else
        b.api_call(api, GuardMode::kLocalViaRegister);
    }
    const int hidden = static_cast<int>(
        std::lround(real * config_.api_hidden_ratio));
    for (int i = 0; i < hidden; ++i)
      b.api_call(rng.pick(mismatch_apis), GuardMode::kHidden);
  } else if (!mismatch_apis.empty() && rng.chance(0.3)) {
    // Clean apps still contain guarded uses of newer APIs.
    b.api_call(rng.pick(mismatch_apis), GuardMode::kLocal);
  }

  // Callback mismatches. Apps that implement the runtime-permission
  // protocol with minSdk < 23 carry a real APC of their own (the
  // onRequestPermissionsResult override), so the drawn fraction is reduced
  // by the protocol-app rate below to keep the observed population at the
  // paper's 20.05%.
  const double protocol_rate = config_.target_runtime_fraction * 0.25;
  if (rng.uniform01() < config_.apc_app_fraction - protocol_rate &&
      !mismatch_callbacks.empty()) {
    const int count = std::min(40, draw_count(rng, config_.apc_issue_mean));
    for (int i = 0; i < count; ++i)
      b.callback_override(rng.pick(mismatch_callbacks));
  }
  if (!safe_callbacks.empty() && rng.chance(0.5))
    b.callback_override(rng.pick(safe_callbacks));

  // Permission-induced mismatches.
  const double prm_fraction = targets_runtime ? config_.prm_request_fraction
                                              : config_.prm_revocation_fraction;
  if (rng.uniform01() < prm_fraction) {
    const int uses = static_cast<int>(rng.uniform(1, 2));
    for (int i = 0; i < uses; ++i)
      b.permission_use(rng.pick(permission_apis()));
  } else if (targets_runtime && rng.chance(0.25)) {
    // Apps that do it right: protocol plus a guarded use.
    b.implement_runtime_permission_protocol();
    b.permission_use(rng.pick(permission_apis()));
  }

  // Semantic-change (SEM) stratum: unguarded call sites of curated
  // semantic-change APIs, plus benign look-alikes behind the inverse
  // guard — a slice of them via the helper-method idiom.
  if (config_.semantic_app_fraction > 0.0 &&
      rng.uniform01() < config_.semantic_app_fraction) {
    const auto semantic_apis = collect_semantic_apis(spec);
    if (!semantic_apis.empty()) {
      const int real =
          std::min(12, draw_count(rng, config_.semantic_issue_mean));
      for (int i = 0; i < real; ++i)
        b.semantic_call(rng.pick(semantic_apis));
      const int guarded = static_cast<int>(std::ceil(real * 0.4));
      for (int i = 0; i < guarded; ++i) {
        const bool helper = config_.helper_guard_fraction > 0.0 &&
                            rng.uniform01() < config_.helper_guard_fraction;
        b.semantic_call(rng.pick(semantic_apis),
                        helper ? GuardMode::kHelperMethod : GuardMode::kLocal);
      }
    }
  }

  // Size and framework breadth.
  const std::uint64_t loc = std::min<std::uint64_t>(
      config_.size_cap,
      static_cast<std::uint64_t>(
          config_.size_base *
          std::exp(rng.uniform01() * config_.size_spread)));
  const bool library_heavy = rng.uniform01() < config_.library_heavy_fraction;
  b.framework_breadth(library_heavy
                          ? static_cast<int>(rng.uniform(150, 400))
                          : static_cast<int>(rng.uniform(5, 40)));
  b.pad_to(loc);

  // Declared-SDK lint stratum, part 2 (see part 1 above). This runs after
  // every call-emitting stratum — including breadth and filler — so the
  // over-declared permission can dodge everything the app's calls demand:
  // a synthetic bulk method behind any earlier seed may enforce a random
  // dangerous permission, and declaring *that* one would make the lint's
  // usage check (correctly) stay silent while the manifest request turns
  // the latent demand into an unseeded PRM finding.
  if (declaration_stratum && declaration_variant == 1) {
    const auto pool = dangerous_permissions();
    const std::size_t start = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1));
    bool declared = false;
    for (std::size_t k = 0; k < pool.size(); ++k) {
      const std::string permission{pool[(start + k) % pool.size()]};
      if (b.requests_permission(permission) ||
          b.demands_permission(permission))
        continue;
      b.declare_unused_permission(permission);
      declared = true;
      break;
    }
    // Every dangerous permission is spoken for (possible only under tiny
    // specs): fall back to the vacuous-guard variant so the stratum still
    // yields an SDC row.
    if (!declared) b.vacuous_sdk_guard(rng.chance(0.5));
  } else if (declaration_stratum && declaration_variant == 2) {
    b.vacuous_sdk_guard(rng.chance(0.5));
  }

  auto built = b.build();
  return BenchApp{std::move(built.apk), std::move(built.truth)};
}

namespace {

const MethodSpec* find_method_spec(const FrameworkSpec& spec,
                                   const ApiUse& api) {
  const ClassSpec* cls = spec.find_class(api.declaring);
  if (!cls) return nullptr;
  for (const auto& m : cls->methods)
    if (m.name == api.name && m.params == api.params) return &m;
  return nullptr;
}

enum class ChainFamily : int { kApi = 0, kApc, kPrm, kSem, kSdc };

/// One chain slot's plan plus its mutable state; version bumps evolve the
/// state, generate_chain_version re-emits every slot from it.
struct ChainSlot {
  ChainFamily family = ChainFamily::kSdc;
  std::size_t pick = 0;     ///< index into the family's pool
  bool guarded = false;     ///< kApi/kPrm/kSem: protective guard present
  bool alive = true;        ///< kApi: false = tombstoned call
  bool enabled = true;      ///< kApc: override present
  bool always_true = true;  ///< kSdc: comparison direction
  int variant = 0;          ///< kApi: substitution offset within the pool
};

}  // namespace

BenchApp generate_chain_version(const FrameworkRepository& repo,
                                const VersionChainConfig& config, int chain,
                                int version) {
  SD_EXPECTS(version >= 0 && version < config.versions);
  SD_EXPECTS(config.slots >= 1 && config.edits_per_version >= 0);
  const FrameworkSpec& spec = repo.spec();

  // Chain-level plan stream: everything the initial publish decides.
  std::uint64_t stream =
      config.seed ^
      (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(chain) + 1));
  Rng rng{splitmix64(stream)};

  const int min_sdk = static_cast<int>(rng.uniform(8, 21));
  const int target_sdk =
      static_cast<int>(rng.uniform(kRuntimePermissionLevel, 29));
  const ApiInterval range{min_sdk, kMaxApiLevel};

  // Family pools, filtered so every edit action stays meaningful on this
  // chain's range: API slots use still-alive backward-mismatch APIs (a
  // guard flip toggles real <-> benign, and the kLocal guard is never
  // vacuous), SEM slots use changes whose threshold the range crosses (the
  // inverse guard survives as a direct comparison instead of degrading to
  // the counter-named helper idiom, which would drift across versions).
  std::vector<ApiUse> api_pool;
  for (const auto& api : collect_mismatch_apis(spec, range)) {
    const MethodSpec* m = find_method_spec(spec, api);
    if (m != nullptr && m->life.removed == 0 && m->life.introduced > min_sdk)
      api_pool.push_back(api);
  }
  std::vector<ApiUse> sem_pool;
  for (const auto& api : collect_semantic_apis(spec)) {
    for (const auto& row : spec.semantic_changes)
      if (row.cls == api.declaring && row.name == api.name &&
          row.params == api.params && row.from_level > min_sdk) {
        sem_pool.push_back(api);
        break;
      }
  }
  const auto cb_pool = collect_mismatch_callbacks(spec, range);
  const auto& prm_pool = permission_apis();

  // Round-robin family layout; a slot whose pool is empty (possible only
  // under tiny test specs) degrades to SDC, which needs nothing.
  std::vector<ChainSlot> slots(static_cast<std::size_t>(config.slots));
  for (std::size_t k = 0; k < slots.size(); ++k) {
    ChainSlot& slot = slots[k];
    switch (static_cast<int>(k % 5)) {
      case 0:
        slot.family =
            api_pool.empty() ? ChainFamily::kSdc : ChainFamily::kApi;
        break;
      case 1:
        slot.family = cb_pool.empty() ? ChainFamily::kSdc : ChainFamily::kApc;
        break;
      case 2:
        slot.family =
            prm_pool.empty() ? ChainFamily::kSdc : ChainFamily::kPrm;
        break;
      case 3:
        slot.family =
            sem_pool.empty() ? ChainFamily::kSdc : ChainFamily::kSem;
        break;
      default:
        slot.family = ChainFamily::kSdc;
        break;
    }
    slot.pick = static_cast<std::size_t>(rng.uniform(0, 1 << 16));
    slot.guarded = rng.chance(0.5);
    slot.always_true = rng.chance(0.5);
  }

  // Version bumps. Bump v's actions come from a per-(chain, v) stream and
  // are applied cumulatively — version N replays bumps 1..N, keeping the
  // generator pure per (config, chain, version). Slot selection is
  // consecutive, not drawn: localization stays provable (bump v touches
  // exactly its edits_per_version slots) and a default-length chain
  // walks every family.
  for (int v = 1; v <= version; ++v) {
    std::uint64_t estream =
        stream ^ (0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(v));
    Rng erng{splitmix64(estream)};
    for (int e = 0; e < config.edits_per_version; ++e) {
      const int k = (config.edits_per_version * (v - 1) + e) % config.slots;
      ChainSlot& slot = slots[static_cast<std::size_t>(k)];
      switch (slot.family) {
        case ChainFamily::kApi: {
          const int action = static_cast<int>(erng.uniform(0, 2));
          if (!slot.alive)
            slot.alive = true;             // revive, whatever was drawn
          else if (action == 0)
            slot.guarded = !slot.guarded;  // guard flip
          else if (action == 1)
            slot.alive = false;            // remove the call
          else
            ++slot.variant;                // substitute a different API
          break;
        }
        case ChainFamily::kApc:
          slot.enabled = !slot.enabled;
          break;
        case ChainFamily::kPrm:  // pre-23 guard flip; the manifest request
        case ChainFamily::kSem:  // stays, so the cache key is undisturbed
          slot.guarded = !slot.guarded;
          break;
        case ChainFamily::kSdc:
          slot.always_true = !slot.always_true;
          break;
      }
    }
  }

  AppBuilder b{"chain-app-" + std::to_string(chain),
               "app.chain.c" + std::to_string(chain), spec};
  b.sdk(min_sdk, target_sdk);
  for (std::size_t k = 0; k < slots.size(); ++k) {
    const ChainSlot& slot = slots[k];
    const int sk = static_cast<int>(k);
    const GuardMode guard =
        slot.guarded ? GuardMode::kLocal : GuardMode::kNone;
    switch (slot.family) {
      case ChainFamily::kApi: {
        if (!slot.alive) {
          b.chain_tombstone(sk);
          break;
        }
        const ApiUse& api =
            api_pool[(slot.pick + static_cast<std::size_t>(slot.variant)) %
                     api_pool.size()];
        b.begin_chain_slot(sk).api_call(api, guard).end_chain_slot();
        break;
      }
      case ChainFamily::kApc:
        b.chain_callback_slot(sk, cb_pool[slot.pick % cb_pool.size()],
                              slot.enabled);
        break;
      case ChainFamily::kPrm:
        b.begin_chain_slot(sk)
            .permission_use(prm_pool[slot.pick % prm_pool.size()], guard)
            .end_chain_slot();
        break;
      case ChainFamily::kSem:
        b.begin_chain_slot(sk)
            .semantic_call(sem_pool[slot.pick % sem_pool.size()], guard)
            .end_chain_slot();
        break;
      case ChainFamily::kSdc:
        b.begin_chain_slot(sk)
            .vacuous_sdk_guard(slot.always_true)
            .end_chain_slot();
        break;
    }
  }
  for (int d = 0; d < config.dead_churn; ++d) b.chain_dead_class(d, version);
  const bool explode =
      config.edit_main_activity && version == config.versions - 1;
  b.framework_breadth(config.breadth + (explode ? 1 : 0));
  b.pad_to(config.target_loc, config.filler_live_stride);

  auto built = b.build();
  return BenchApp{std::move(built.apk), std::move(built.truth)};
}

std::vector<BenchApp> RealWorldCorpus::generate_range(int begin, int end,
                                                      int jobs) const {
  if (end < begin) end = begin;
  const std::size_t n = static_cast<std::size_t>(end - begin);
  std::vector<BenchApp> apps(n);
  if (jobs > static_cast<int>(n)) jobs = static_cast<int>(n);

  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i)
      apps[i] = generate(begin + static_cast<int>(i));
    return apps;
  }

  // generate(i) is pure per (config, index), so workers share nothing but
  // the immutable corpus; each slot is written exactly once at its index.
  ThreadPool pool{static_cast<std::size_t>(jobs)};
  std::vector<std::future<void>> done;
  done.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    done.push_back(pool.submit([&, w] {
      for (std::size_t i = static_cast<std::size_t>(w); i < n;
           i += static_cast<std::size_t>(jobs))
        apps[i] = generate(begin + static_cast<int>(i));
    }));
  }
  for (auto& f : done) f.get();
  return apps;
}

}  // namespace saintdroid
