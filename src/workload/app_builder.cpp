#include "workload/app_builder.hpp"

#include <algorithm>

#include "adf/permissions.hpp"
#include "support/errors.hpp"

namespace saintdroid {

namespace {

/// Class used for the statically-invisible runtime guard helper; it is
/// deliberately absent from every dex, modelling code generated only at
/// runtime (anonymous inner classes, paper §VI).
constexpr const char* kRuntimeCheckClass = "com/runtime/GeneratedCheck";

bool params_match(const std::vector<std::string>& a,
                  const std::vector<std::string>& b) {
  return a == b;
}

}  // namespace

AppBuilder::AppBuilder(std::string app_name, std::string package,
                       const FrameworkSpec& spec)
    : app_name_(std::move(app_name)), spec_(&spec) {
  manifest_.package = package;
  // Slash the dotted package for class names.
  package_path_ = std::move(package);
  std::replace(package_path_.begin(), package_path_.end(), '.', '/');
  main_activity_ = &main_dex_.add_class(package_path_ + "/MainActivity",
                                        "android/app/Activity");
}

AppBuilder& AppBuilder::sdk(int min_sdk, int target_sdk, int max_sdk) {
  SD_EXPECTS(min_sdk >= 1 && (max_sdk == 0 || max_sdk >= min_sdk));
  manifest_.min_sdk = min_sdk;
  manifest_.target_sdk = target_sdk;
  manifest_.max_sdk = max_sdk;
  return *this;
}

AppBuilder& AppBuilder::buildable(bool value) {
  manifest_.buildable = value;
  return *this;
}

AppBuilder& AppBuilder::request_permission(const std::string& permission) {
  if (!manifest_.requests_permission(permission))
    manifest_.permissions.push_back(permission);
  return *this;
}

const MethodSpec* AppBuilder::find_spec_method(const ApiUse& api) const {
  const ClassSpec* cls = spec_->find_class(api.declaring);
  if (!cls) return nullptr;
  for (const auto& m : cls->methods)
    if (m.name == api.name && params_match(m.params, api.params)) return &m;
  return nullptr;
}

const MethodSpec* AppBuilder::find_spec_callback(const CallbackUse& cb) const {
  const ClassSpec* cls = spec_->find_class(cb.framework_class);
  if (!cls) return nullptr;
  for (const auto& m : cls->methods)
    if (m.callback && m.name == cb.name && params_match(m.params, cb.params))
      return &m;
  return nullptr;
}

std::vector<std::string> AppBuilder::spec_permissions(const ApiUse& api) const {
  // Direct requirement plus a bounded walk through spec-internal calls
  // (mirrors the ARM's transitive permission mining).
  std::vector<std::string> out;
  struct Frame {
    std::string cls, name;
    std::vector<std::string> params;
  };
  std::vector<Frame> stack{{api.declaring, api.name, api.params}};
  std::vector<std::string> visited;
  int steps = 0;
  while (!stack.empty() && steps++ < 64) {
    const Frame frame = std::move(stack.back());
    stack.pop_back();
    const std::string key = frame.cls + "." + frame.name;
    if (std::find(visited.begin(), visited.end(), key) != visited.end())
      continue;
    visited.push_back(key);
    const ClassSpec* cls = spec_->find_class(frame.cls);
    if (!cls) continue;
    for (const auto& m : cls->methods) {
      if (m.name != frame.name || !params_match(m.params, frame.params))
        continue;
      if (!m.permission.empty() &&
          std::find(out.begin(), out.end(), m.permission) == out.end())
        out.push_back(m.permission);
      for (const auto& call : m.calls)
        stack.push_back(Frame{call.cls, call.name, call.params});
      break;
    }
  }
  return out;
}

MethodBuilder& AppBuilder::new_seed_method(Placement placement,
                                           std::string* out_class,
                                           std::string* out_method) {
  const int n = seed_counter_++;
  const std::string method_name = "seed" + std::to_string(n);
  switch (placement) {
    case Placement::kReachable: {
      *out_class = package_path_ + "/MainActivity";
      *out_method = method_name;
      reachable_roots_.push_back(method_name);
      return main_activity_->add_method(method_name);
    }
    case Placement::kDeadCode: {
      const std::string cls_name =
          package_path_ + "/util/Dead" + std::to_string(n);
      auto& cls = main_dex_.add_class(cls_name);
      *out_class = cls_name;
      *out_method = method_name;
      return cls.add_method(method_name);
    }
    case Placement::kSecondaryDex: {
      if (!secondary_dex_) secondary_dex_ = std::make_unique<DexBuilder>();
      const std::string cls_name =
          package_path_ + "/plugin/Plugin" + std::to_string(n);
      auto& cls = secondary_dex_->add_class(cls_name);
      plugin_classes_.push_back(cls_name);
      *out_class = cls_name;
      *out_method = method_name;
      return cls.add_method(method_name);
    }
    case Placement::kReflection: {
      // The host class is ordinary main-dex code, but nothing references
      // it except a Class.forName with its dotted name from an entry
      // point (emitted in build()).
      const std::string cls_name =
          package_path_ + "/dyn/Dyn" + std::to_string(n);
      auto& cls = main_dex_.add_class(cls_name);
      reflected_classes_.push_back(cls_name);
      *out_class = cls_name;
      *out_method = method_name;
      return cls.add_method(method_name);
    }
  }
  SD_EXPECTS(false);
  return main_activity_->add_method(method_name);  // unreachable
}

void AppBuilder::emit_call(MethodBuilder& mb, const ApiUse& api) {
  if (api.name == "<init>") {
    mb.new_instance(3, api.receiver);
    mb.invoke(InvokeKind::kDirect, api.receiver, api.name, api.return_type,
              api.params, {3});
    return;
  }
  mb.invoke(api.is_static ? InvokeKind::kStatic : InvokeKind::kVirtual,
            api.receiver, api.name, api.return_type, api.params);
}

MethodId AppBuilder::emit_guarded_call(const ApiUse& api, GuardMode guard,
                                       Placement placement,
                                       int protect_level) {
  std::string host_class;
  std::string host_method;

  if (guard == GuardMode::kCrossMethod) {
    // Guard in one method, call in another — in a non-component helper
    // class so that only context-sensitive exploration sees the guard.
    const int n = seed_counter_++;
    const std::string cls_name =
        package_path_ + "/logic/Helper" + std::to_string(n);
    auto& cls = main_dex_.add_class(cls_name);
    const std::string guard_name = "guarded" + std::to_string(n);
    const std::string impl_name = "impl" + std::to_string(n);

    auto& guard_mb = cls.add_method(guard_name);
    guard_mb.sget_sdk_int(0);
    Label skip = guard_mb.new_label();
    guard_mb.if_lit(CmpOp::kLt, 0, protect_level, skip);
    guard_mb.invoke_virtual(cls_name, impl_name);
    guard_mb.bind(skip);
    guard_mb.return_void();

    auto& impl_mb = cls.add_method(impl_name);
    emit_call(impl_mb, api);
    impl_mb.return_void();

    helper_calls_.emplace_back(cls_name, guard_name);
    return MethodId{cls_name, impl_name, "()V"};
  }

  MethodBuilder& mb = new_seed_method(placement, &host_class, &host_method);
  switch (guard) {
    case GuardMode::kNone:
      emit_call(mb, api);
      break;
    case GuardMode::kLocal: {
      mb.sget_sdk_int(0);
      Label skip = mb.new_label();
      mb.if_lit(CmpOp::kLt, 0, protect_level, skip);
      emit_call(mb, api);
      mb.bind(skip);
      break;
    }
    case GuardMode::kLocalViaField: {
      // Cache SDK_INT in an instance field, read it back, then compare —
      // the common "config object" idiom.
      mb.sget_sdk_int(0);
      mb.iput(0, 5, host_class, "cachedSdk", "I");
      mb.iget(1, 5, host_class, "cachedSdk", "I");
      Label skip = mb.new_label();
      mb.if_lit(CmpOp::kLt, 1, protect_level, skip);
      emit_call(mb, api);
      mb.bind(skip);
      break;
    }
    case GuardMode::kLocalViaRegister: {
      // The SDK_INT value and the threshold both travel through registers;
      // recognizing this guard requires register tracking (Lint's lexical
      // check gives up).
      mb.sget_sdk_int(0);
      mb.move(1, 0);
      mb.const_int(2, protect_level);
      Label skip = mb.new_label();
      mb.if_reg(CmpOp::kLt, 1, 2, skip);
      emit_call(mb, api);
      mb.bind(skip);
      break;
    }
    case GuardMode::kHidden: {
      // The check lives in a class generated only at runtime: statically
      // unresolvable, so no tool can prove the call protected.
      mb.const_int(1, protect_level);
      mb.invoke_static(kRuntimeCheckClass, "isAtLeast", "Z", {"I"}, {1});
      mb.move_result(0);
      Label skip = mb.new_label();
      mb.if_lit(CmpOp::kEq, 0, 0, skip);
      emit_call(mb, api);
      mb.bind(skip);
      break;
    }
    case GuardMode::kCrossMethod:
      SD_EXPECTS(false);  // handled above
      break;
  }
  mb.return_void();
  return MethodId{host_class, host_method, "()V"};
}

AppBuilder& AppBuilder::api_call(const ApiUse& api, GuardMode guard,
                                 Placement placement) {
  const MethodSpec* spec = find_spec_method(api);
  SD_EXPECTS(spec != nullptr);
  const Lifecycle life = spec->life;

  const MethodId location =
      emit_guarded_call(api, guard, placement, life.introduced);

  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const bool statically_guarded = guard == GuardMode::kLocal ||
                                  guard == GuardMode::kLocalViaRegister ||
                                  guard == GuardMode::kLocalViaField ||
                                  guard == GuardMode::kCrossMethod;
  const bool runtime_guarded = guard == GuardMode::kHidden;
  const bool backward_issue =
      !statically_guarded && !runtime_guarded && range.lo() < life.introduced;
  const bool forward_issue =
      life.removed != 0 && range.hi() >= life.removed && !runtime_guarded;
  const bool live = placement != Placement::kDeadCode;

  SeededIssue issue;
  issue.kind = MismatchKind::kApiInvocation;
  issue.location = location;
  issue.subject = api.declared_id();
  issue.real = live && (backward_issue || forward_issue);
  if (!live)
    issue.tag = "dead_code";
  else if (runtime_guarded)
    issue.tag = "guarded_hidden";
  else if (guard == GuardMode::kCrossMethod)
    issue.tag = backward_issue || forward_issue ? "forward" : "guarded_cross_method";
  else if (statically_guarded)
    issue.tag = forward_issue          ? "forward"
                : guard == GuardMode::kLocal ? "guarded_local"
                : guard == GuardMode::kLocalViaField ? "guarded_field"
                                             : "guarded_register";
  else if (placement == Placement::kSecondaryDex)
    issue.tag = "secondary_dex";
  else if (placement == Placement::kReflection)
    issue.tag = "reflection";
  else if (forward_issue && !backward_issue)
    issue.tag = "forward";
  else if (issue.real)
    issue.tag = "unguarded";
  else
    issue.tag = "safe";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::inherited_api_call(const ApiUse& api,
                                           GuardMode guard) {
  // A fresh app subclass of the declaring framework class becomes the
  // declared receiver at the call site.
  const int n = seed_counter_++;
  const std::string widget =
      package_path_ + "/widget/W" + std::to_string(n);
  main_dex_.add_class(widget, api.declaring);

  ApiUse through_subclass = api;
  through_subclass.receiver = widget;
  api_call(through_subclass, guard, Placement::kReachable);
  // Re-tag: the interesting property of this seed is the app receiver.
  auto& issue = truth_.issues.back();
  if (issue.tag == "unguarded") issue.tag = "inherited_receiver";
  return *this;
}

AppBuilder& AppBuilder::callback_override(const CallbackUse& cb) {
  const MethodSpec* spec = find_spec_callback(cb);
  SD_EXPECTS(spec != nullptr);
  const ClassSpec* owner = spec_->find_class(cb.framework_class);
  SD_EXPECTS(owner != nullptr);

  const int n = seed_counter_++;
  const std::string cls_name = package_path_ + "/ui/Cb" + std::to_string(n);
  auto& cls = main_dex_.add_class(cls_name, cb.framework_class);
  auto& mb = cls.add_method(cb.name, "V", cb.params);
  mb.return_void();

  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const Lifecycle life = spec->life;
  const bool backward_issue = range.lo() < life.introduced;
  const bool forward_issue = life.removed != 0 && range.hi() >= life.removed;

  SeededIssue issue;
  issue.kind = MismatchKind::kApiCallback;
  issue.location = MethodId{cls_name, cb.name, cb.descriptor()};
  issue.subject = cb.declared_id();
  issue.real = backward_issue || forward_issue;
  issue.tag = issue.real ? (backward_issue ? "unguarded" : "forward")
                         : "safe";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::hidden_callback(const CallbackUse& cb) {
  const MethodSpec* spec = find_spec_callback(cb);
  SD_EXPECTS(spec != nullptr);
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const Lifecycle life = spec->life;

  const int n = seed_counter_++;
  SeededIssue issue;
  issue.kind = MismatchKind::kApiCallback;
  issue.location = MethodId{package_path_ + "/ui/Anon" + std::to_string(n),
                            cb.name, cb.descriptor()};
  issue.subject = cb.declared_id();
  issue.real = range.lo() < life.introduced ||
               (life.removed != 0 && range.hi() >= life.removed);
  issue.tag = "hidden_callback";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::hidden_api_call(const ApiUse& api) {
  const MethodSpec* spec = find_spec_method(api);
  SD_EXPECTS(spec != nullptr);
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const Lifecycle life = spec->life;

  const int n = seed_counter_++;
  SeededIssue issue;
  issue.kind = MismatchKind::kApiInvocation;
  issue.location = MethodId{package_path_ + "/ui/Anon" + std::to_string(n),
                            "call", "()V"};
  issue.subject = api.declared_id();
  issue.real = range.lo() < life.introduced ||
               (life.removed != 0 && range.hi() >= life.removed);
  issue.tag = "hidden_site";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::permission_use(const ApiUse& api, GuardMode guard) {
  const auto permissions = spec_permissions(api);
  SD_EXPECTS(!permissions.empty());

  MethodId location;
  if (guard == GuardMode::kLocal) {
    // For permission seeds, a local guard means "only use the API on
    // pre-runtime-permission devices": if (SDK_INT < 23) use(). The use is
    // then unreachable on any level where revocation/request mismatches
    // exist, so it is benign — and context-aware guard analysis proves it.
    std::string host_class;
    std::string host_method;
    MethodBuilder& mb =
        new_seed_method(Placement::kReachable, &host_class, &host_method);
    mb.sget_sdk_int(0);
    Label skip = mb.new_label();
    mb.if_lit(CmpOp::kGe, 0, kRuntimePermissionLevel, skip);
    emit_call(mb, api);
    mb.bind(skip);
    mb.return_void();
    location = MethodId{host_class, host_method, "()V"};
  } else {
    location = emit_guarded_call(api, guard, Placement::kReachable,
                                 kRuntimePermissionLevel);
  }

  for (const auto& permission : permissions) {
    request_permission(permission);
    permission_seeds_.push_back(
        PermissionSeed{location, api.declared_id(), permission, guard});
  }
  return *this;
}

AppBuilder& AppBuilder::implement_runtime_permission_protocol() {
  SD_EXPECTS(!protocol_implemented_);
  protocol_implemented_ = true;

  // The result callback override.
  auto& cb = main_activity_->add_method(
      "onRequestPermissionsResult", "V", {"I", "[Ljava/lang/String;", "[I"});
  cb.return_void();

  // A guarded runtime request from an entry-point method.
  auto& mb = main_activity_->add_method("initPermissions");
  mb.sget_sdk_int(0);
  Label skip = mb.new_label();
  mb.if_lit(CmpOp::kLt, 0, kRuntimePermissionLevel, skip);
  mb.invoke_virtual(package_path_ + "/MainActivity", "requestPermissions",
                    "V", {"[Ljava/lang/String;", "I"});
  mb.bind(skip);
  mb.return_void();
  reachable_roots_.push_back("initPermissions");

  // With minSdk < 23 the override itself is a real APC mismatch — the
  // callback does not exist on older devices.
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  SeededIssue issue;
  issue.kind = MismatchKind::kApiCallback;
  issue.location = MethodId{package_path_ + "/MainActivity",
                            "onRequestPermissionsResult",
                            "(I[Ljava/lang/String;[I)V"};
  issue.subject = MethodId{"android/app/Activity",
                           "onRequestPermissionsResult",
                           "(I[Ljava/lang/String;[I)V"};
  issue.real = range.lo() < kRuntimePermissionLevel;
  issue.tag = "protocol_override";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::framework_breadth(int count) {
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  // Breadth means *distinct classes*: each call targets a different
  // framework class (cycling only past the spec's supply), so a
  // library-heavy app drags hundreds of framework classes — and whatever
  // their bodies reach — into the analysis, like the Fig. 3 outliers do.
  const auto breadth = collect_breadth_apis(*spec_, range);
  SD_EXPECTS(!breadth.empty());

  const std::string method_name =
      "breadth" + std::to_string(seed_counter_++);
  auto& mb = main_activity_->add_method(method_name);
  for (int i = 0; i < count; ++i) emit_call(mb, breadth[i % breadth.size()]);
  mb.return_void();
  reachable_roots_.push_back(method_name);
  return *this;
}

AppBuilder& AppBuilder::pad_to(std::uint64_t target_loc) {
  // Rough running size: each filler method contributes exactly its body.
  // Current content is estimated from emitted constructs.
  const std::uint64_t estimated_existing =
      static_cast<std::uint64_t>(seed_counter_) * 10 + 64;
  if (target_loc <= estimated_existing) return *this;
  std::uint64_t remaining = target_loc - estimated_existing;

  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const auto safe = collect_safe_apis(*spec_, range);

  // Filler classes of 48 methods. Every fifth class is wired into the
  // component's onCreate (live application logic); the rest model bundled
  // library code the app never calls — the dominant case in real APKs
  // (most of a typical APK's bytecode is unused library surface) and the
  // reason reachability-driven analysis beats whole-program scanning on
  // wall-clock (paper RQ3).
  while (remaining > 0) {
    const int class_index = filler_counter_++;
    const std::string cls_name =
        package_path_ + "/fill/Filler" + std::to_string(class_index);
    auto& cls = main_dex_.add_class(cls_name);
    auto& run = cls.add_method("run");
    constexpr int kMethodsPerClass = 48;
    for (int m = 0; m < kMethodsPerClass; ++m) {
      const std::string name = "f" + std::to_string(m);
      auto& mb = cls.add_method(name);
      // 12 instructions of benign arithmetic/branch/API mix.
      mb.const_int(0, m);
      mb.const_int(1, class_index);
      mb.move(2, 0);
      Label join = mb.new_label();
      mb.if_reg(CmpOp::kLt, 2, 1, join);
      mb.const_int(3, 7);
      mb.move(4, 3);
      mb.bind(join);
      if (!safe.empty() && m % 4 == 0)
        emit_call(mb, safe[static_cast<std::size_t>(class_index * 48 + m) %
                           safe.size()]);
      else
        mb.const_int(5, 1);
      mb.const_int(6, 2);
      mb.move(7, 6);
      mb.const_int(5, 9);
      mb.move(6, 5);
      mb.return_void();
      remaining = remaining > 12 ? remaining - 12 : 0;
      run.invoke_virtual(cls_name, name);
    }
    run.return_void();
    remaining = remaining > kMethodsPerClass ? remaining - kMethodsPerClass : 0;
    if (class_index % 5 == 0) helper_calls_.emplace_back(cls_name, "run");
  }
  return *this;
}

AppBuilder::Built AppBuilder::build() {
  SD_EXPECTS(!built_);
  built_ = true;

  // The component entry point reaching every live seed.
  auto& on_create =
      main_activity_->add_method("onCreate", "V", {"android/os/Bundle"});
  on_create.invoke_super("android/app/Activity", "onCreate", "V",
                         {"android/os/Bundle"});
  // Late-bound code is activated before the app's own logic runs, so a
  // crash in an early root cannot mask the plugin surface.
  for (const auto& plugin : plugin_classes_)
    on_create.load_class(0, plugin);
  for (const auto& reflected : reflected_classes_) {
    // Dotted name, as Java source would write it.
    std::string dotted = reflected;
    std::replace(dotted.begin(), dotted.end(), '/', '.');
    on_create.const_string(1, dotted);
    on_create.invoke_static("java/lang/Class", "forName", "java/lang/Class",
                            {"java/lang/String"}, {1});
  }
  for (const auto& root : reachable_roots_)
    on_create.invoke_virtual(package_path_ + "/MainActivity", root);
  for (const auto& [cls, method] : helper_calls_)
    on_create.invoke_virtual(cls, method);
  on_create.return_void();

  manifest_.components.push_back(
      Component{ComponentKind::kActivity, package_path_ + "/MainActivity"});

  // Finalize permission seeds now that target SDK and protocol state are
  // known.
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const ApiInterval runtime_range =
      range.intersect(ApiInterval{kRuntimePermissionLevel, kMaxApiLevel});
  const bool targets_runtime =
      manifest_.target_sdk >= kRuntimePermissionLevel;
  for (const auto& seed : permission_seeds_) {
    SeededIssue issue;
    issue.kind = targets_runtime ? MismatchKind::kPermissionRequest
                                 : MismatchKind::kPermissionRevocation;
    issue.location = seed.location;
    issue.subject = seed.subject;
    issue.permission = seed.permission;
    const bool protected_by_protocol = targets_runtime && protocol_implemented_;
    const bool statically_guarded = seed.guard == GuardMode::kCrossMethod ||
                                    seed.guard == GuardMode::kLocal;
    const bool runtime_guarded = seed.guard == GuardMode::kHidden;
    issue.real = !runtime_range.empty() && !protected_by_protocol &&
                 !statically_guarded && !runtime_guarded;
    if (protected_by_protocol)
      issue.tag = "protocol_ok";
    else if (runtime_guarded)
      issue.tag = "guarded_hidden";
    else if (statically_guarded)
      issue.tag = seed.guard == GuardMode::kLocal ? "guarded_pre23"
                                                  : "guarded_cross_method";
    else if (runtime_range.empty())
      issue.tag = "pre23_only";
    else
      issue.tag = "unguarded";
    truth_.issues.push_back(std::move(issue));
  }

  Built built;
  built.apk.name = app_name_;
  built.apk.manifest = std::move(manifest_);
  built.apk.dexes.push_back(main_dex_.build());
  if (secondary_dex_) built.apk.dexes.push_back(secondary_dex_->build());
  built.truth = std::move(truth_);
  return built;
}

}  // namespace saintdroid
