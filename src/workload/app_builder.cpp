#include "workload/app_builder.hpp"

#include <algorithm>

#include "adf/permissions.hpp"
#include "support/errors.hpp"

namespace saintdroid {

namespace {

/// Class used for the statically-invisible runtime guard helper; it is
/// deliberately absent from every dex, modelling code generated only at
/// runtime (anonymous inner classes, paper §VI).
constexpr const char* kRuntimeCheckClass = "com/runtime/GeneratedCheck";

bool params_match(const std::vector<std::string>& a,
                  const std::vector<std::string>& b) {
  return a == b;
}

}  // namespace

AppBuilder::AppBuilder(std::string app_name, std::string package,
                       const FrameworkSpec& spec)
    : app_name_(std::move(app_name)), spec_(&spec) {
  manifest_.package = package;
  // Slash the dotted package for class names.
  package_path_ = std::move(package);
  std::replace(package_path_.begin(), package_path_.end(), '.', '/');
  main_activity_ = &main_dex_.add_class(package_path_ + "/MainActivity",
                                        "android/app/Activity");
}

AppBuilder& AppBuilder::sdk(int min_sdk, int target_sdk, int max_sdk) {
  SD_EXPECTS(min_sdk >= 1 && (max_sdk == 0 || max_sdk >= min_sdk));
  manifest_.min_sdk = min_sdk;
  manifest_.target_sdk = target_sdk;
  manifest_.max_sdk = max_sdk;
  return *this;
}

AppBuilder& AppBuilder::buildable(bool value) {
  manifest_.buildable = value;
  return *this;
}

AppBuilder& AppBuilder::request_permission(const std::string& permission) {
  if (!manifest_.requests_permission(permission))
    manifest_.permissions.push_back(permission);
  return *this;
}

const MethodSpec* AppBuilder::find_spec_method(const ApiUse& api) const {
  const ClassSpec* cls = spec_->find_class(api.declaring);
  if (!cls) return nullptr;
  for (const auto& m : cls->methods)
    if (m.name == api.name && params_match(m.params, api.params)) return &m;
  return nullptr;
}

const SemanticChangeSpec* AppBuilder::find_semantic_row(
    const ApiUse& api) const {
  for (const auto& row : spec_->semantic_changes)
    if (row.cls == api.declaring && row.name == api.name &&
        params_match(row.params, api.params))
      return &row;
  return nullptr;
}

const MethodSpec* AppBuilder::find_spec_callback(const CallbackUse& cb) const {
  const ClassSpec* cls = spec_->find_class(cb.framework_class);
  if (!cls) return nullptr;
  for (const auto& m : cls->methods)
    if (m.callback && m.name == cb.name && params_match(m.params, cb.params))
      return &m;
  return nullptr;
}

std::vector<std::string> AppBuilder::spec_permissions(const ApiUse& api) const {
  // Direct requirement plus the transitive walk through spec-internal
  // calls. This must mirror the ARM's permission mining *closure* — the
  // ARM propagates with no depth bound, so a truncated walk here would
  // ledger fewer permissions than the analysis detects (and let
  // demands_permission() miss a demand buried deep in the synthetic call
  // graph). The visited set is the real bound; the step cap is a safety
  // valve far above any spec's method count.
  std::vector<std::string> out;
  struct Frame {
    std::string cls, name;
    std::vector<std::string> params;
  };
  std::vector<Frame> stack{{api.declaring, api.name, api.params}};
  std::unordered_set<std::string> visited;
  int steps = 0;
  while (!stack.empty() && steps++ < (1 << 16)) {
    const Frame frame = std::move(stack.back());
    stack.pop_back();
    if (!visited.insert(frame.cls + "." + frame.name).second) continue;
    const ClassSpec* cls = spec_->find_class(frame.cls);
    if (!cls) continue;
    for (const auto& m : cls->methods) {
      if (m.name != frame.name || !params_match(m.params, frame.params))
        continue;
      if (!m.permission.empty() &&
          std::find(out.begin(), out.end(), m.permission) == out.end())
        out.push_back(m.permission);
      for (const auto& call : m.calls)
        stack.push_back(Frame{call.cls, call.name, call.params});
      break;
    }
  }
  return out;
}

MethodBuilder& AppBuilder::new_seed_method(Placement placement,
                                           std::string* out_class,
                                           std::string* out_method) {
  if (chain_slot_ >= 0) {
    // Chain slots bypass the seed counter entirely: class and method names
    // are functions of the slot index alone, so re-emitting every other
    // slot identically in the next version keeps their symbolic
    // fingerprints byte-stable no matter how this slot changed.
    SD_EXPECTS(placement == Placement::kReachable);
    SD_EXPECTS(!chain_slot_emitted_);
    chain_slot_emitted_ = true;
    const std::string cls_name = chain_slot_class(chain_slot_);
    auto& cls = main_dex_.add_class(cls_name);
    helper_calls_.emplace_back(cls_name, "run");
    *out_class = cls_name;
    *out_method = "run";
    return cls.add_method("run");
  }
  const int n = seed_counter_++;
  const std::string method_name = "seed" + std::to_string(n);
  switch (placement) {
    case Placement::kReachable: {
      *out_class = package_path_ + "/MainActivity";
      *out_method = method_name;
      reachable_roots_.push_back(method_name);
      return main_activity_->add_method(method_name);
    }
    case Placement::kDeadCode: {
      const std::string cls_name =
          package_path_ + "/util/Dead" + std::to_string(n);
      auto& cls = main_dex_.add_class(cls_name);
      *out_class = cls_name;
      *out_method = method_name;
      return cls.add_method(method_name);
    }
    case Placement::kSecondaryDex: {
      if (!secondary_dex_) secondary_dex_ = std::make_unique<DexBuilder>();
      const std::string cls_name =
          package_path_ + "/plugin/Plugin" + std::to_string(n);
      auto& cls = secondary_dex_->add_class(cls_name);
      plugin_classes_.push_back(cls_name);
      *out_class = cls_name;
      *out_method = method_name;
      return cls.add_method(method_name);
    }
    case Placement::kReflection: {
      // The host class is ordinary main-dex code, but nothing references
      // it except a Class.forName with its dotted name from an entry
      // point (emitted in build()).
      const std::string cls_name =
          package_path_ + "/dyn/Dyn" + std::to_string(n);
      auto& cls = main_dex_.add_class(cls_name);
      reflected_classes_.push_back(cls_name);
      *out_class = cls_name;
      *out_method = method_name;
      return cls.add_method(method_name);
    }
  }
  SD_EXPECTS(false);
  return main_activity_->add_method(method_name);  // unreachable
}

void AppBuilder::emit_call(MethodBuilder& mb, const ApiUse& api) {
  // Every framework invocation funnels through here, so this is the one
  // place to learn which permissions the app's calls demand (the set
  // demands_permission() reports). Mined once per distinct API.
  std::string key = api.declaring + "." + api.name + "(";
  for (const auto& p : api.params) key += p;
  key += ")";
  if (mined_call_keys_.insert(std::move(key)).second)
    for (const auto& permission : spec_permissions(api))
      demanded_permissions_.insert(permission);
  if (api.name == "<init>") {
    mb.new_instance(3, api.receiver);
    mb.invoke(InvokeKind::kDirect, api.receiver, api.name, api.return_type,
              api.params, {3});
    return;
  }
  mb.invoke(api.is_static ? InvokeKind::kStatic : InvokeKind::kVirtual,
            api.receiver, api.name, api.return_type, api.params);
}

std::pair<std::string, std::string> AppBuilder::emit_helper_predicate(
    CmpOp cmp, int literal) {
  const int n = seed_counter_++;
  const std::string cls_name = package_path_ + "/guard/Ver" + std::to_string(n);
  auto& cls = main_dex_.add_class(cls_name);
  // Static, no parameters, boolean return — the exact shape the AUM's
  // helper-predicate evaluator accepts (see Aum::predicate_for).
  auto& mb = cls.add_method("mayCall", "Z", {}, kAccPublic | kAccStatic);
  mb.sget_sdk_int(0);
  Label yes = mb.new_label();
  mb.if_lit(cmp, 0, literal, yes);
  mb.const_int(1, 0);
  mb.return_reg(1);
  mb.bind(yes);
  mb.const_int(1, 1);
  mb.return_reg(1);
  return {cls_name, "mayCall"};
}

MethodId AppBuilder::emit_guarded_call(const ApiUse& api, GuardMode guard,
                                       Placement placement,
                                       int protect_level) {
  std::string host_class;
  std::string host_method;

  if (guard == GuardMode::kCrossMethod) {
    // Guard in one method, call in another — in a non-component helper
    // class so that only context-sensitive exploration sees the guard.
    const int n = seed_counter_++;
    const std::string cls_name =
        package_path_ + "/logic/Helper" + std::to_string(n);
    auto& cls = main_dex_.add_class(cls_name);
    const std::string guard_name = "guarded" + std::to_string(n);
    const std::string impl_name = "impl" + std::to_string(n);

    auto& guard_mb = cls.add_method(guard_name);
    guard_mb.sget_sdk_int(0);
    Label skip = guard_mb.new_label();
    guard_mb.if_lit(CmpOp::kLt, 0, protect_level, skip);
    guard_mb.invoke_virtual(cls_name, impl_name);
    guard_mb.bind(skip);
    guard_mb.return_void();
    guard_sites_.push_back(GuardSite{MethodId{cls_name, guard_name, "()V"},
                                     CmpOp::kLt, protect_level});

    auto& impl_mb = cls.add_method(impl_name);
    emit_call(impl_mb, api);
    impl_mb.return_void();

    helper_calls_.emplace_back(cls_name, guard_name);
    return MethodId{cls_name, impl_name, "()V"};
  }

  MethodBuilder& mb = new_seed_method(placement, &host_class, &host_method);
  // Direct comparisons in the three local-guard shapes all reach the
  // analysis's check collection (dead code is never explored, so those
  // sites go unseen and stay out of the ledger too).
  const bool direct_comparison = guard == GuardMode::kLocal ||
                                 guard == GuardMode::kLocalViaField ||
                                 guard == GuardMode::kLocalViaRegister;
  if (direct_comparison && placement != Placement::kDeadCode)
    guard_sites_.push_back(GuardSite{MethodId{host_class, host_method, "()V"},
                                     CmpOp::kLt, protect_level});
  switch (guard) {
    case GuardMode::kNone:
      emit_call(mb, api);
      break;
    case GuardMode::kLocal: {
      mb.sget_sdk_int(0);
      Label skip = mb.new_label();
      mb.if_lit(CmpOp::kLt, 0, protect_level, skip);
      emit_call(mb, api);
      mb.bind(skip);
      break;
    }
    case GuardMode::kLocalViaField: {
      // Cache SDK_INT in an instance field, read it back, then compare —
      // the common "config object" idiom.
      mb.sget_sdk_int(0);
      mb.iput(0, 5, host_class, "cachedSdk", "I");
      mb.iget(1, 5, host_class, "cachedSdk", "I");
      Label skip = mb.new_label();
      mb.if_lit(CmpOp::kLt, 1, protect_level, skip);
      emit_call(mb, api);
      mb.bind(skip);
      break;
    }
    case GuardMode::kLocalViaRegister: {
      // The SDK_INT value and the threshold both travel through registers;
      // recognizing this guard requires register tracking (Lint's lexical
      // check gives up).
      mb.sget_sdk_int(0);
      mb.move(1, 0);
      mb.const_int(2, protect_level);
      Label skip = mb.new_label();
      mb.if_reg(CmpOp::kLt, 1, 2, skip);
      emit_call(mb, api);
      mb.bind(skip);
      break;
    }
    case GuardMode::kHidden: {
      // The check lives in a class generated only at runtime: statically
      // unresolvable, so no tool can prove the call protected.
      mb.const_int(1, protect_level);
      mb.invoke_static(kRuntimeCheckClass, "isAtLeast", "Z", {"I"}, {1});
      mb.move_result(0);
      Label skip = mb.new_label();
      mb.if_lit(CmpOp::kEq, 0, 0, skip);
      emit_call(mb, api);
      mb.bind(skip);
      break;
    }
    case GuardMode::kHelperMethod: {
      // Same shape as kHidden, but the helper is ordinary app code whose
      // body a helper-predicate-aware analysis can evaluate.
      const auto [guard_cls, guard_name] =
          emit_helper_predicate(CmpOp::kGe, protect_level);
      mb.invoke_static(guard_cls, guard_name, "Z");
      mb.move_result(0);
      Label skip = mb.new_label();
      mb.if_lit(CmpOp::kEq, 0, 0, skip);
      emit_call(mb, api);
      mb.bind(skip);
      break;
    }
    case GuardMode::kCrossMethod:
      SD_EXPECTS(false);  // handled above
      break;
  }
  mb.return_void();
  return MethodId{host_class, host_method, "()V"};
}

AppBuilder& AppBuilder::api_call(const ApiUse& api, GuardMode guard,
                                 Placement placement) {
  const MethodSpec* spec = find_spec_method(api);
  SD_EXPECTS(spec != nullptr);
  const Lifecycle life = spec->life;

  const MethodId location =
      emit_guarded_call(api, guard, placement, life.introduced);

  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const bool statically_guarded = guard == GuardMode::kLocal ||
                                  guard == GuardMode::kLocalViaRegister ||
                                  guard == GuardMode::kLocalViaField ||
                                  guard == GuardMode::kCrossMethod ||
                                  guard == GuardMode::kHelperMethod;
  const bool runtime_guarded = guard == GuardMode::kHidden;
  const bool backward_issue =
      !statically_guarded && !runtime_guarded && range.lo() < life.introduced;
  const bool forward_issue =
      life.removed != 0 && range.hi() >= life.removed && !runtime_guarded;
  const bool live = placement != Placement::kDeadCode;

  SeededIssue issue;
  issue.kind = MismatchKind::kApiInvocation;
  issue.location = location;
  issue.subject = api.declared_id();
  issue.real = live && (backward_issue || forward_issue);
  if (!live)
    issue.tag = "dead_code";
  else if (runtime_guarded)
    issue.tag = "guarded_hidden";
  else if (guard == GuardMode::kCrossMethod)
    issue.tag = backward_issue || forward_issue ? "forward" : "guarded_cross_method";
  else if (statically_guarded)
    issue.tag = forward_issue          ? "forward"
                : guard == GuardMode::kLocal ? "guarded_local"
                : guard == GuardMode::kLocalViaField ? "guarded_field"
                : guard == GuardMode::kHelperMethod ? "guarded_helper"
                                             : "guarded_register";
  else if (placement == Placement::kSecondaryDex)
    issue.tag = "secondary_dex";
  else if (placement == Placement::kReflection)
    issue.tag = "reflection";
  else if (forward_issue && !backward_issue)
    issue.tag = "forward";
  else if (issue.real)
    issue.tag = "unguarded";
  else
    issue.tag = "safe";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::inherited_api_call(const ApiUse& api,
                                           GuardMode guard) {
  // A fresh app subclass of the declaring framework class becomes the
  // declared receiver at the call site.
  const int n = seed_counter_++;
  const std::string widget =
      package_path_ + "/widget/W" + std::to_string(n);
  main_dex_.add_class(widget, api.declaring);

  ApiUse through_subclass = api;
  through_subclass.receiver = widget;
  api_call(through_subclass, guard, Placement::kReachable);
  // Re-tag: the interesting property of this seed is the app receiver.
  auto& issue = truth_.issues.back();
  if (issue.tag == "unguarded") issue.tag = "inherited_receiver";
  return *this;
}

AppBuilder& AppBuilder::callback_override(const CallbackUse& cb) {
  const MethodSpec* spec = find_spec_callback(cb);
  SD_EXPECTS(spec != nullptr);
  const ClassSpec* owner = spec_->find_class(cb.framework_class);
  SD_EXPECTS(owner != nullptr);

  const int n = seed_counter_++;
  const std::string cls_name = package_path_ + "/ui/Cb" + std::to_string(n);
  auto& cls = main_dex_.add_class(cls_name, cb.framework_class);
  auto& mb = cls.add_method(cb.name, "V", cb.params);
  mb.return_void();

  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const Lifecycle life = spec->life;
  const bool backward_issue = range.lo() < life.introduced;
  const bool forward_issue = life.removed != 0 && range.hi() >= life.removed;

  SeededIssue issue;
  issue.kind = MismatchKind::kApiCallback;
  issue.location = MethodId{cls_name, cb.name, cb.descriptor()};
  issue.subject = cb.declared_id();
  issue.real = backward_issue || forward_issue;
  issue.tag = issue.real ? (backward_issue ? "unguarded" : "forward")
                         : "safe";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::hidden_callback(const CallbackUse& cb) {
  const MethodSpec* spec = find_spec_callback(cb);
  SD_EXPECTS(spec != nullptr);
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const Lifecycle life = spec->life;

  const int n = seed_counter_++;
  SeededIssue issue;
  issue.kind = MismatchKind::kApiCallback;
  issue.location = MethodId{package_path_ + "/ui/Anon" + std::to_string(n),
                            cb.name, cb.descriptor()};
  issue.subject = cb.declared_id();
  issue.real = range.lo() < life.introduced ||
               (life.removed != 0 && range.hi() >= life.removed);
  issue.tag = "hidden_callback";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::hidden_api_call(const ApiUse& api) {
  const MethodSpec* spec = find_spec_method(api);
  SD_EXPECTS(spec != nullptr);
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const Lifecycle life = spec->life;

  const int n = seed_counter_++;
  SeededIssue issue;
  issue.kind = MismatchKind::kApiInvocation;
  issue.location = MethodId{package_path_ + "/ui/Anon" + std::to_string(n),
                            "call", "()V"};
  issue.subject = api.declared_id();
  issue.real = range.lo() < life.introduced ||
               (life.removed != 0 && range.hi() >= life.removed);
  issue.tag = "hidden_site";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::permission_use(const ApiUse& api, GuardMode guard) {
  const auto permissions = spec_permissions(api);
  SD_EXPECTS(!permissions.empty());

  MethodId location;
  if (guard == GuardMode::kLocal) {
    // For permission seeds, a local guard means "only use the API on
    // pre-runtime-permission devices": if (SDK_INT < 23) use(). The use is
    // then unreachable on any level where revocation/request mismatches
    // exist, so it is benign — and context-aware guard analysis proves it.
    std::string host_class;
    std::string host_method;
    MethodBuilder& mb =
        new_seed_method(Placement::kReachable, &host_class, &host_method);
    mb.sget_sdk_int(0);
    Label skip = mb.new_label();
    mb.if_lit(CmpOp::kGe, 0, kRuntimePermissionLevel, skip);
    emit_call(mb, api);
    mb.bind(skip);
    mb.return_void();
    location = MethodId{host_class, host_method, "()V"};
    guard_sites_.push_back(
        GuardSite{location, CmpOp::kGe, kRuntimePermissionLevel});
  } else {
    location = emit_guarded_call(api, guard, Placement::kReachable,
                                 kRuntimePermissionLevel);
  }

  for (const auto& permission : permissions) {
    request_permission(permission);
    permission_seeds_.push_back(
        PermissionSeed{location, api.declared_id(), permission, guard});
  }
  return *this;
}

AppBuilder& AppBuilder::implement_runtime_permission_protocol() {
  SD_EXPECTS(!protocol_implemented_);
  protocol_implemented_ = true;

  // The result callback override.
  auto& cb = main_activity_->add_method(
      "onRequestPermissionsResult", "V", {"I", "[Ljava/lang/String;", "[I"});
  cb.return_void();

  // A guarded runtime request from an entry-point method.
  auto& mb = main_activity_->add_method("initPermissions");
  mb.sget_sdk_int(0);
  Label skip = mb.new_label();
  mb.if_lit(CmpOp::kLt, 0, kRuntimePermissionLevel, skip);
  mb.invoke_virtual(package_path_ + "/MainActivity", "requestPermissions",
                    "V", {"[Ljava/lang/String;", "I"});
  mb.bind(skip);
  mb.return_void();
  reachable_roots_.push_back("initPermissions");
  guard_sites_.push_back(GuardSite{
      MethodId{package_path_ + "/MainActivity", "initPermissions", "()V"},
      CmpOp::kLt, kRuntimePermissionLevel});

  // With minSdk < 23 the override itself is a real APC mismatch — the
  // callback does not exist on older devices.
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  SeededIssue issue;
  issue.kind = MismatchKind::kApiCallback;
  issue.location = MethodId{package_path_ + "/MainActivity",
                            "onRequestPermissionsResult",
                            "(I[Ljava/lang/String;[I)V"};
  issue.subject = MethodId{"android/app/Activity",
                           "onRequestPermissionsResult",
                           "(I[Ljava/lang/String;[I)V"};
  issue.real = range.lo() < kRuntimePermissionLevel;
  issue.tag = "protocol_override";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::semantic_call(const ApiUse& api, GuardMode guard) {
  const SemanticChangeSpec* row = find_semantic_row(api);
  SD_EXPECTS(row != nullptr);
  SD_EXPECTS(guard == GuardMode::kNone || guard == GuardMode::kLocal ||
             guard == GuardMode::kHelperMethod);
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const ApiInterval window = row->levels().intersect(ApiInterval::full());

  // A direct inverse guard whose threshold the declared range never
  // crosses would itself be a vacuous-guard lint; the helper idiom's check
  // is not a direct SDK_INT comparison, so it stays out of the lint's view.
  if (guard == GuardMode::kLocal && range.lo() >= row->from_level)
    guard = GuardMode::kHelperMethod;

  std::string host_class;
  std::string host_method;
  MethodBuilder& mb =
      new_seed_method(Placement::kReachable, &host_class, &host_method);
  switch (guard) {
    case GuardMode::kNone:
      emit_call(mb, api);
      break;
    case GuardMode::kLocal: {
      // Inverse guard: only call while the behavior is still the old one.
      mb.sget_sdk_int(0);
      Label skip = mb.new_label();
      mb.if_lit(CmpOp::kGe, 0, row->from_level, skip);
      emit_call(mb, api);
      mb.bind(skip);
      guard_sites_.push_back(
          GuardSite{MethodId{host_class, host_method, "()V"}, CmpOp::kGe,
                    row->from_level});
      break;
    }
    case GuardMode::kHelperMethod: {
      const auto [guard_cls, guard_name] =
          emit_helper_predicate(CmpOp::kLt, row->from_level);
      mb.invoke_static(guard_cls, guard_name, "Z");
      mb.move_result(0);
      Label skip = mb.new_label();
      mb.if_lit(CmpOp::kEq, 0, 0, skip);
      emit_call(mb, api);
      mb.bind(skip);
      break;
    }
    default:
      SD_EXPECTS(false);
      break;
  }
  mb.return_void();

  const bool guarded = guard != GuardMode::kNone;
  SeededIssue issue;
  issue.kind = MismatchKind::kSemanticChange;
  issue.location = MethodId{host_class, host_method, "()V"};
  issue.subject = api.declared_id();
  issue.real = !guarded && !range.intersect(window).empty();
  issue.tag = !guarded ? (issue.real ? "sem_unguarded" : "sem_outside_range")
              : guard == GuardMode::kLocal ? "sem_guarded_local"
                                           : "sem_guarded_helper";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::declare_unused_permission(
    const std::string& permission) {
  SD_EXPECTS(is_dangerous_permission(permission));
  SD_EXPECTS(!manifest_.requests_permission(permission));
  request_permission(permission);
  SeededIssue issue;
  issue.kind = MismatchKind::kSdkDeclaration;
  issue.subject = MethodId{"", "unused-permission", ""};
  issue.permission = permission;
  issue.real = true;
  issue.tag = "unused_permission";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::vacuous_sdk_guard(bool always_true) {
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  SD_EXPECTS(!range.empty());
  // `SDK_INT >= minSdk` holds on every supported level; `SDK_INT < minSdk`
  // on none. Either way the branch decides nothing.
  const CmpOp cmp = always_true ? CmpOp::kGe : CmpOp::kLt;
  const int literal = range.lo();

  std::string host_class;
  std::string host_method;
  MethodBuilder& mb =
      new_seed_method(Placement::kReachable, &host_class, &host_method);
  mb.sget_sdk_int(0);
  Label skip = mb.new_label();
  mb.if_lit(cmp, 0, literal, skip);
  mb.const_int(1, 1);
  mb.bind(skip);
  mb.return_void();

  // Ledgered by build()'s vacuous-guard derivation like every other
  // recorded comparison site — one-sided by construction, so the derived
  // row is guaranteed.
  guard_sites_.push_back(
      GuardSite{MethodId{host_class, host_method, "()V"}, cmp, literal});
  return *this;
}

void AppBuilder::claim_chain_slot(int slot) {
  SD_EXPECTS(slot >= 0);
  SD_EXPECTS(chain_slots_used_.insert(slot).second);
}

std::string AppBuilder::chain_slot_class(int slot) const {
  return package_path_ + "/chain/Slot" + std::to_string(slot);
}

AppBuilder& AppBuilder::begin_chain_slot(int slot) {
  SD_EXPECTS(chain_slot_ < 0);
  claim_chain_slot(slot);
  chain_slot_ = slot;
  chain_slot_emitted_ = false;
  return *this;
}

AppBuilder& AppBuilder::end_chain_slot() {
  // Exactly one seed must have landed in the slot — a primitive that never
  // reached new_seed_method (e.g. a kCrossMethod guard, which mints its
  // own helper class) would leave the slot class unmaterialized and the
  // onCreate wiring dangling.
  SD_EXPECTS(chain_slot_ >= 0 && chain_slot_emitted_);
  chain_slot_ = -1;
  return *this;
}

AppBuilder& AppBuilder::chain_tombstone(int slot) {
  SD_EXPECTS(chain_slot_ < 0);
  claim_chain_slot(slot);
  const std::string cls_name = chain_slot_class(slot);
  auto& mb = main_dex_.add_class(cls_name).add_method("run");
  mb.return_void();
  helper_calls_.emplace_back(cls_name, "run");
  return *this;
}

AppBuilder& AppBuilder::chain_callback_slot(int slot, const CallbackUse& cb,
                                            bool enabled) {
  SD_EXPECTS(chain_slot_ < 0);
  claim_chain_slot(slot);
  const MethodSpec* spec = find_spec_callback(cb);
  SD_EXPECTS(spec != nullptr);
  const std::string cls_name = chain_slot_class(slot);
  auto& cls = main_dex_.add_class(cls_name, cb.framework_class);
  if (!enabled) return *this;  // the subclass stays, the override goes
  auto& mb = cls.add_method(cb.name, "V", cb.params);
  mb.return_void();

  // Same ledger derivation as callback_override, minus the counter-named
  // host class.
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const Lifecycle life = spec->life;
  const bool backward_issue = range.lo() < life.introduced;
  const bool forward_issue = life.removed != 0 && range.hi() >= life.removed;

  SeededIssue issue;
  issue.kind = MismatchKind::kApiCallback;
  issue.location = MethodId{cls_name, cb.name, cb.descriptor()};
  issue.subject = cb.declared_id();
  issue.real = backward_issue || forward_issue;
  issue.tag = issue.real ? (backward_issue ? "unguarded" : "forward")
                         : "safe";
  truth_.issues.push_back(std::move(issue));
  return *this;
}

AppBuilder& AppBuilder::chain_dead_class(int slot, int salt) {
  const std::string cls_name = package_path_ + "/chain/Dead" +
                               std::to_string(slot) + "v" +
                               std::to_string(salt);
  auto& mb = main_dex_.add_class(cls_name).add_method("run");
  mb.const_int(0, salt);
  mb.return_void();
  return *this;
}

AppBuilder& AppBuilder::framework_breadth(int count) {
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  // Breadth means *distinct classes*: each call targets a different
  // framework class (cycling only past the spec's supply), so a
  // library-heavy app drags hundreds of framework classes — and whatever
  // their bodies reach — into the analysis, like the Fig. 3 outliers do.
  const auto breadth = collect_breadth_apis(*spec_, range);
  SD_EXPECTS(!breadth.empty());

  const std::string method_name =
      "breadth" + std::to_string(seed_counter_++);
  auto& mb = main_activity_->add_method(method_name);
  for (int i = 0; i < count; ++i) emit_call(mb, breadth[i % breadth.size()]);
  mb.return_void();
  reachable_roots_.push_back(method_name);
  return *this;
}

AppBuilder& AppBuilder::pad_to(std::uint64_t target_loc, int live_stride) {
  SD_EXPECTS(live_stride >= 1);
  // Rough running size: each filler method contributes exactly its body.
  // Current content is estimated from emitted constructs.
  const std::uint64_t estimated_existing =
      static_cast<std::uint64_t>(seed_counter_) * 10 + 64;
  if (target_loc <= estimated_existing) return *this;
  std::uint64_t remaining = target_loc - estimated_existing;

  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const auto safe = collect_safe_apis(*spec_, range);

  // Filler classes of 48 methods. Every live_stride-th class is wired into
  // the component's onCreate (live application logic); the rest model
  // bundled library code the app never calls — the dominant case in real APKs
  // (most of a typical APK's bytecode is unused library surface) and the
  // reason reachability-driven analysis beats whole-program scanning on
  // wall-clock (paper RQ3).
  while (remaining > 0) {
    const int class_index = filler_counter_++;
    const std::string cls_name =
        package_path_ + "/fill/Filler" + std::to_string(class_index);
    auto& cls = main_dex_.add_class(cls_name);
    auto& run = cls.add_method("run");
    constexpr int kMethodsPerClass = 48;
    for (int m = 0; m < kMethodsPerClass; ++m) {
      const std::string name = "f" + std::to_string(m);
      auto& mb = cls.add_method(name);
      // 12 instructions of benign arithmetic/branch/API mix.
      mb.const_int(0, m);
      mb.const_int(1, class_index);
      mb.move(2, 0);
      Label join = mb.new_label();
      mb.if_reg(CmpOp::kLt, 2, 1, join);
      mb.const_int(3, 7);
      mb.move(4, 3);
      mb.bind(join);
      if (!safe.empty() && m % 4 == 0)
        emit_call(mb, safe[static_cast<std::size_t>(class_index * 48 + m) %
                           safe.size()]);
      else
        mb.const_int(5, 1);
      mb.const_int(6, 2);
      mb.move(7, 6);
      mb.const_int(5, 9);
      mb.move(6, 5);
      mb.return_void();
      remaining = remaining > 12 ? remaining - 12 : 0;
      run.invoke_virtual(cls_name, name);
    }
    run.return_void();
    remaining = remaining > kMethodsPerClass ? remaining - kMethodsPerClass : 0;
    if (class_index % live_stride == 0)
      helper_calls_.emplace_back(cls_name, "run");
  }
  return *this;
}

AppBuilder::Built AppBuilder::build() {
  SD_EXPECTS(!built_);
  built_ = true;

  // The component entry point reaching every live seed.
  auto& on_create =
      main_activity_->add_method("onCreate", "V", {"android/os/Bundle"});
  on_create.invoke_super("android/app/Activity", "onCreate", "V",
                         {"android/os/Bundle"});
  // Late-bound code is activated before the app's own logic runs, so a
  // crash in an early root cannot mask the plugin surface.
  for (const auto& plugin : plugin_classes_)
    on_create.load_class(0, plugin);
  for (const auto& reflected : reflected_classes_) {
    // Dotted name, as Java source would write it.
    std::string dotted = reflected;
    std::replace(dotted.begin(), dotted.end(), '/', '.');
    on_create.const_string(1, dotted);
    on_create.invoke_static("java/lang/Class", "forName", "java/lang/Class",
                            {"java/lang/String"}, {1});
  }
  for (const auto& root : reachable_roots_)
    on_create.invoke_virtual(package_path_ + "/MainActivity", root);
  for (const auto& [cls, method] : helper_calls_)
    on_create.invoke_virtual(cls, method);
  on_create.return_void();

  manifest_.components.push_back(
      Component{ComponentKind::kActivity, package_path_ + "/MainActivity"});

  // A self-contradictory declared range (the SDC range lint's subject) is
  // ledgered automatically — mirrors Amd::detect_declarations lint 1, so
  // corpus strata only need to declare the bad range. sdk() rejects
  // maxSdk < minSdk up front, leaving the two target-relative forms.
  if (manifest_.target_sdk < manifest_.min_sdk ||
      (manifest_.max_sdk != 0 && manifest_.max_sdk < manifest_.target_sdk)) {
    SeededIssue issue;
    issue.kind = MismatchKind::kSdkDeclaration;
    issue.subject = MethodId{"", "declared-range", ""};
    issue.real = true;
    issue.tag = "bad_range";
    truth_.issues.push_back(std::move(issue));
  }

  // Finalize permission seeds now that target SDK and protocol state are
  // known.
  const ApiInterval range =
      manifest_.supported_range().intersect(ApiInterval::full());
  const ApiInterval runtime_range =
      range.intersect(ApiInterval{kRuntimePermissionLevel, kMaxApiLevel});
  const bool targets_runtime =
      manifest_.target_sdk >= kRuntimePermissionLevel;
  for (const auto& seed : permission_seeds_) {
    SeededIssue issue;
    issue.kind = targets_runtime ? MismatchKind::kPermissionRequest
                                 : MismatchKind::kPermissionRevocation;
    issue.location = seed.location;
    issue.subject = seed.subject;
    issue.permission = seed.permission;
    const bool protected_by_protocol = targets_runtime && protocol_implemented_;
    const bool statically_guarded = seed.guard == GuardMode::kCrossMethod ||
                                    seed.guard == GuardMode::kLocal;
    const bool runtime_guarded = seed.guard == GuardMode::kHidden;
    issue.real = !runtime_range.empty() && !protected_by_protocol &&
                 !statically_guarded && !runtime_guarded;
    if (protected_by_protocol)
      issue.tag = "protocol_ok";
    else if (runtime_guarded)
      issue.tag = "guarded_hidden";
    else if (statically_guarded)
      issue.tag = seed.guard == GuardMode::kLocal ? "guarded_pre23"
                                                  : "guarded_cross_method";
    else if (runtime_range.empty())
      issue.tag = "pre23_only";
    else
      issue.tag = "unguarded";
    truth_.issues.push_back(std::move(issue));
  }

  // Vacuous-guard derivation: re-evaluate every recorded direct SDK_INT
  // comparison against the final declared range, exactly as lint 3 does.
  // A guard seeded as protection can still end up one-sided — a malformed
  // maxSdk narrows the range below its threshold — and the ledger must
  // agree with the lint that the comparison decides nothing. Skipped for
  // an empty declared range, mirroring the lint.
  if (!range.empty()) {
    for (const auto& site : guard_sites_) {
      int satisfied = 0;
      for (int level = range.lo(); level <= range.hi(); ++level)
        if (eval_cmp(site.cmp, level, site.literal)) ++satisfied;
      if (satisfied != 0 && satisfied != range.size()) continue;
      SeededIssue issue;
      issue.kind = MismatchKind::kSdkDeclaration;
      issue.location = site.method;
      issue.subject = MethodId{"android/os/Build$VERSION", "SDK_INT",
                               sdk_guard_descriptor(site.cmp, site.literal)};
      issue.real = true;
      issue.tag = "vacuous_guard";
      truth_.issues.push_back(std::move(issue));
    }
  }

  Built built;
  built.apk.name = app_name_;
  built.apk.manifest = std::move(manifest_);
  built.apk.dexes.push_back(main_dex_.build());
  if (secondary_dex_) built.apk.dexes.push_back(secondary_dex_->build());
  built.truth = std::move(truth_);
  return built;
}

}  // namespace saintdroid
