#include "workload/harness.hpp"

#include <utility>

#include "support/thread_pool.hpp"

namespace saintdroid {

Score FamilyScores::total() const {
  Score t;
  t += api;
  t += apc;
  t += prm;
  return t;
}

FamilyScores& FamilyScores::operator+=(const FamilyScores& other) {
  api += other.api;
  apc += other.apc;
  prm += other.prm;
  return *this;
}

namespace {

/// Analyzes and scores one app — the single definition of row semantics
/// shared by the serial and parallel paths, so they cannot drift apart.
SuiteAppRow score_app(Analyzer& tool, const BenchApp& app) {
  SuiteAppRow row;
  row.app = app.apk.name;
  const AnalysisResult result = tool.analyze(app.apk);
  row.completed = result.completed;
  row.failure_reason = result.failure_reason;
  row.usage = result.usage;
  if (!result.completed) {
    row.scores.api.fn = app.truth.real_count(MismatchKind::kApiInvocation);
    row.scores.apc.fn = app.truth.real_count(MismatchKind::kApiCallback);
    row.scores.prm.fn =
        app.truth.real_count(MismatchKind::kPermissionRequest);
  } else {
    row.scores.api = score_detections(app.truth, result.mismatches,
                                      MismatchKind::kApiInvocation);
    row.scores.apc = score_detections(app.truth, result.mismatches,
                                      MismatchKind::kApiCallback);
    row.scores.prm = score_detections(app.truth, result.mismatches,
                                      MismatchKind::kPermissionRequest);
  }
  return row;
}

/// Folds rows (already in input order) into the suite aggregate — shared
/// by both paths so merge semantics are defined exactly once.
void aggregate_rows(SuiteResult& suite) {
  for (const auto& row : suite.rows) {
    if (!row.completed) ++suite.failures;
    suite.aggregate += row.scores;
  }
}

}  // namespace

SuiteResult run_suite(Analyzer& tool, std::span<const BenchApp> apps) {
  SuiteResult suite;
  suite.tool = std::string{tool.name()};
  suite.rows.reserve(apps.size());
  for (const auto& app : apps) suite.rows.push_back(score_app(tool, app));
  aggregate_rows(suite);
  return suite;
}

SuiteResult run_suite_parallel(const AnalyzerFactory& factory,
                               std::span<const BenchApp> apps, int jobs) {
  const std::size_t n = apps.size();
  if (jobs > static_cast<int>(n)) jobs = static_cast<int>(n);

  if (jobs <= 1) {
    const std::unique_ptr<Analyzer> tool = factory();
    return run_suite(*tool, apps);
  }

  SuiteResult suite;
  suite.rows.resize(n);

  // One analyzer per worker, constructed up front on this thread so
  // factory() itself needs no synchronization. Worker w owns the
  // interleaved slots {w, w + jobs, ...}: interleaving balances the
  // long-tailed app-size distribution better than contiguous blocks, and
  // each slot is written exactly once by exactly one worker, so rows need
  // no locking and land at their input index regardless of scheduling.
  std::vector<std::unique_ptr<Analyzer>> tools;
  tools.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) tools.push_back(factory());
  suite.tool = std::string{tools.front()->name()};

  {
    ThreadPool pool{static_cast<std::size_t>(jobs)};
    std::vector<std::future<void>> done;
    done.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      done.push_back(pool.submit([&, w] {
        Analyzer& tool = *tools[static_cast<std::size_t>(w)];
        for (std::size_t i = static_cast<std::size_t>(w); i < n;
             i += static_cast<std::size_t>(jobs))
          suite.rows[i] = score_app(tool, apps[i]);
      }));
    }
    // get() (not just wait) so a worker's exception propagates to the
    // caller instead of being swallowed.
    for (auto& f : done) f.get();
  }

  aggregate_rows(suite);
  return suite;
}

}  // namespace saintdroid
