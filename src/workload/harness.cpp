#include "workload/harness.hpp"

namespace saintdroid {

Score FamilyScores::total() const {
  Score t;
  t += api;
  t += apc;
  t += prm;
  return t;
}

FamilyScores& FamilyScores::operator+=(const FamilyScores& other) {
  api += other.api;
  apc += other.apc;
  prm += other.prm;
  return *this;
}

SuiteResult run_suite(Analyzer& tool, std::span<const BenchApp> apps) {
  SuiteResult suite;
  suite.tool = std::string{tool.name()};
  suite.rows.reserve(apps.size());

  for (const auto& app : apps) {
    SuiteAppRow row;
    row.app = app.apk.name;
    const AnalysisResult result = tool.analyze(app.apk);
    row.completed = result.completed;
    row.failure_reason = result.failure_reason;
    row.usage = result.usage;
    if (!result.completed) {
      ++suite.failures;
      row.scores.api.fn = app.truth.real_count(MismatchKind::kApiInvocation);
      row.scores.apc.fn = app.truth.real_count(MismatchKind::kApiCallback);
      row.scores.prm.fn =
          app.truth.real_count(MismatchKind::kPermissionRequest);
    } else {
      row.scores.api = score_detections(app.truth, result.mismatches,
                                        MismatchKind::kApiInvocation);
      row.scores.apc = score_detections(app.truth, result.mismatches,
                                        MismatchKind::kApiCallback);
      row.scores.prm = score_detections(app.truth, result.mismatches,
                                        MismatchKind::kPermissionRequest);
    }
    suite.aggregate += row.scores;
    suite.rows.push_back(std::move(row));
  }
  return suite;
}

}  // namespace saintdroid
