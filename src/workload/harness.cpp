#include "workload/harness.hpp"

#include <memory>
#include <unordered_map>
#include <utility>

#include "adf/repository.hpp"
#include "support/errors.hpp"
#include "support/sdmc.hpp"
#include "support/thread_pool.hpp"
#include "workload/journal.hpp"

namespace saintdroid {

Score FamilyScores::total() const {
  Score t;
  t += api;
  t += apc;
  t += prm;
  t += sem;
  t += sdc;
  return t;
}

FamilyScores& FamilyScores::operator+=(const FamilyScores& other) {
  api += other.api;
  apc += other.apc;
  prm += other.prm;
  sem += other.sem;
  sdc += other.sdc;
  return *this;
}

SuiteAppRow analyze_app_row(Analyzer& tool, const BenchApp& app) {
  SuiteAppRow row;
  row.app = app.apk.name;
  const AppOutcome outcome = analyze_outcome(tool, app.apk);
  const AnalysisResult& result = outcome.report;
  row.completed = result.completed;
  row.incomplete = result.incomplete;
  row.failure_reason = result.failure_reason;
  row.failure = outcome.failure;
  row.mismatch_count = result.mismatches.size();
  row.usage = result.usage;
  row.incr = result.incremental;
  if (!result.completed) {
    row.scores.api.fn = app.truth.real_count(MismatchKind::kApiInvocation);
    row.scores.apc.fn = app.truth.real_count(MismatchKind::kApiCallback);
    row.scores.prm.fn =
        app.truth.real_count(MismatchKind::kPermissionRequest);
    row.scores.sem.fn = app.truth.real_count(MismatchKind::kSemanticChange);
    row.scores.sdc.fn = app.truth.real_count(MismatchKind::kSdkDeclaration);
  } else {
    row.scores.api = score_detections(app.truth, result.mismatches,
                                      MismatchKind::kApiInvocation);
    row.scores.apc = score_detections(app.truth, result.mismatches,
                                      MismatchKind::kApiCallback);
    row.scores.prm = score_detections(app.truth, result.mismatches,
                                      MismatchKind::kPermissionRequest);
    row.scores.sem = score_detections(app.truth, result.mismatches,
                                      MismatchKind::kSemanticChange);
    row.scores.sdc = score_detections(app.truth, result.mismatches,
                                      MismatchKind::kSdkDeclaration);
  }
  return row;
}

namespace {

/// Folds rows (already in input order) into the suite aggregate — shared
/// by both paths so merge semantics are defined exactly once.
void aggregate_rows(SuiteResult& suite) {
  for (const auto& row : suite.rows) {
    if (!row.completed) ++suite.failures;
    if (row.completed && row.incomplete) ++suite.incomplete;
    suite.aggregate += row.scores;
    suite.incremental += row.incr;
  }
}

}  // namespace

SuiteResult suite_from_rows(std::string tool, std::vector<SuiteAppRow> rows) {
  SuiteResult suite;
  suite.tool = std::move(tool);
  suite.rows = std::move(rows);
  aggregate_rows(suite);
  return suite;
}

std::vector<BenchApp> shard_slice(std::span<const BenchApp> apps,
                                  int shard_index, int shard_count) {
  if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count)
    throw ConfigError("shard_slice: invalid shard " +
                      std::to_string(shard_index) + "/" +
                      std::to_string(shard_count));
  std::vector<BenchApp> slice;
  slice.reserve(apps.size() / static_cast<std::size_t>(shard_count) + 1);
  for (std::size_t i = static_cast<std::size_t>(shard_index); i < apps.size();
       i += static_cast<std::size_t>(shard_count))
    slice.push_back(apps[i]);
  return slice;
}

std::string corpus_fingerprint(std::span<const BenchApp> apps) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  const auto mix = [&hash](unsigned char byte) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  };
  for (const auto& app : apps) {
    for (const char c : app.apk.name) mix(static_cast<unsigned char>(c));
    mix('\n');  // separator: names must not concatenate ambiguously
  }
  static const char* digits = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return hex;
}

SuiteResult run_suite(Analyzer& tool, std::span<const BenchApp> apps) {
  const std::uint64_t retries_before = framework_build_retries();
  SuiteResult suite;
  suite.tool = std::string{tool.name()};
  suite.rows.reserve(apps.size());
  for (const auto& app : apps) suite.rows.push_back(analyze_app_row(tool, app));
  aggregate_rows(suite);
  suite.framework_retries = framework_build_retries() - retries_before;
  return suite;
}

SuiteResult run_suite_parallel(const AnalyzerFactory& factory,
                               std::span<const BenchApp> apps, int jobs) {
  SuiteRunOptions options;
  options.jobs = jobs;
  return run_suite_parallel(factory, apps, options);
}

SuiteResult run_suite_parallel(const AnalyzerFactory& factory,
                               std::span<const BenchApp> apps,
                               const SuiteRunOptions& options) {
  const std::size_t n = apps.size();
  const std::uint64_t retries_before = framework_build_retries();
  int jobs = options.jobs;
  if (jobs > static_cast<int>(n)) jobs = static_cast<int>(n);

  // Resume: journaled rows are merged back verbatim (matched by app name)
  // and their apps are never re-analyzed or re-journaled.
  std::unordered_map<std::string, SuiteAppRow> journaled;
  if (options.resume && !options.journal_path.empty()) {
    for (auto& row : load_journal(options.journal_path)) {
      std::string key = row.app;
      journaled.insert_or_assign(std::move(key), std::move(row));
    }
  }

  std::unique_ptr<JournalWriter> journal;
  if (!options.journal_path.empty()) {
    JournalHeader header;
    header.corpus = options.corpus_id;
    header.shard_index = options.shard_index;
    header.shard_count = options.shard_count;
    journal = std::make_unique<JournalWriter>(options.journal_path,
                                              options.resume, header);
  }

  SuiteResult suite;
  suite.rows.resize(n);
  std::vector<char> resumed(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = journaled.find(apps[i].apk.name);
    if (it == journaled.end()) continue;
    suite.rows[i] = it->second;
    resumed[i] = 1;
    ++suite.resumed_rows;
  }

  // Attach the on-disk model cache before warming, so the warmup's
  // substrate builds rebind from persisted tables (or persist them for the
  // next process) instead of re-deriving everything per run.
  if (options.repository != nullptr && !options.model_cache_dir.empty())
    options.repository->set_model_cache_dir(options.model_cache_dir);

  // Create the incremental fact cache directory up front: a bad path fails
  // the run here, loudly, instead of as a per-app store failure inside
  // every worker.
  if (!options.incr_cache_dir.empty()) ensure_directory(options.incr_cache_dir);

  // Warm shared immutable state (images, substrates) once, on this thread,
  // before any analyzer exists — the fan-out then reads hot caches.
  if (options.warmup) options.warmup();

  // Graceful shutdown: `stop` is polled between apps, never mid-analysis,
  // so a stopping run finishes (and journals) every app it started and
  // skips the rest. Skipped slots are dropped from the result afterwards —
  // the journal holds exactly the analyzed rows, sealed, and a --resume
  // run picks up the remainder.
  std::vector<char> analyzed(n, 0);
  const auto stopping = [&options] {
    return options.stop && options.stop();
  };
  const auto drop_skipped = [&] {
    if (!options.stop) return;
    std::vector<SuiteAppRow> kept;
    kept.reserve(suite.rows.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (resumed[i] || analyzed[i])
        kept.push_back(std::move(suite.rows[i]));
      else
        ++suite.skipped_rows;
    }
    suite.rows = std::move(kept);
  };

  const auto process = [&](Analyzer& tool, std::size_t i) {
    suite.rows[i] = analyze_app_row(tool, apps[i]);
    if (journal) journal->append(suite.rows[i]);
    analyzed[i] = 1;
  };

  if (jobs <= 1) {
    const std::unique_ptr<Analyzer> tool = factory();
    suite.tool = std::string{tool->name()};
    for (std::size_t i = 0; i < n; ++i) {
      if (resumed[i]) continue;
      if (stopping()) break;
      process(*tool, i);
    }
    drop_skipped();
    aggregate_rows(suite);
    suite.framework_retries = framework_build_retries() - retries_before;
    return suite;
  }

  // One analyzer per worker, constructed up front on this thread so
  // factory() itself needs no synchronization. Worker w owns the
  // interleaved slots {w, w + jobs, ...}: interleaving balances the
  // long-tailed app-size distribution better than contiguous blocks, and
  // each slot is written exactly once by exactly one worker, so rows need
  // no locking and land at their input index regardless of scheduling.
  std::vector<std::unique_ptr<Analyzer>> tools;
  tools.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) tools.push_back(factory());
  suite.tool = std::string{tools.front()->name()};

  {
    ThreadPool pool{static_cast<std::size_t>(jobs)};
    std::vector<std::future<void>> done;
    done.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      done.push_back(pool.submit([&, w] {
        Analyzer& tool = *tools[static_cast<std::size_t>(w)];
        for (std::size_t i = static_cast<std::size_t>(w); i < n;
             i += static_cast<std::size_t>(jobs)) {
          if (resumed[i]) continue;
          if (stopping()) break;
          process(tool, i);
        }
      }));
    }
    // get() (not just wait) so a worker's exception propagates to the
    // caller instead of being swallowed. With the analyze_outcome boundary
    // in score_app, only harness bugs — not app analyses — can throw here.
    for (auto& f : done) f.get();
  }

  drop_skipped();
  aggregate_rows(suite);
  suite.framework_retries = framework_build_retries() - retries_before;
  return suite;
}

}  // namespace saintdroid
