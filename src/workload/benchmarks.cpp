#include "workload/benchmarks.hpp"

#include "support/rng.hpp"
#include "workload/app_builder.hpp"

namespace saintdroid {

namespace {

namespace cat = catalog;

/// Adds `count` real APC seeds drawn from the synthetic-bulk callback
/// surface (classes CIDER has no model for).
void add_bulk_apc(AppBuilder& builder, const FrameworkSpec& spec,
                  ApiInterval range, int count, Rng& rng) {
  const auto candidates = collect_mismatch_callbacks(spec, range);
  for (int i = 0; i < count && !candidates.empty(); ++i)
    builder.callback_override(rng.pick(candidates));
}

/// Adds `count` real unguarded API-invocation seeds from the bulk surface.
void add_bulk_api(AppBuilder& builder, const FrameworkSpec& spec,
                  ApiInterval range, int count, Rng& rng) {
  const auto candidates = collect_mismatch_apis(spec, range);
  for (int i = 0; i < count && !candidates.empty(); ++i)
    builder.api_call(rng.pick(candidates));
}

ApiInterval range_of(int min_sdk, int max_sdk = 0) {
  return ApiInterval{min_sdk, max_sdk == 0 ? kMaxApiLevel : max_sdk};
}

}  // namespace

std::vector<BenchApp> cid_bench(const FrameworkRepository& repo) {
  const FrameworkSpec& spec = repo.spec();
  std::vector<BenchApp> out;

  {  // Basic: one unguarded post-minSdk API call plus a guarded twin.
    AppBuilder b{"Basic", "com.cidbench.basic", spec};
    b.sdk(21, 27);
    b.api_call(cat::get_color_state_list());                      // real
    b.api_call(cat::get_color_state_list(), GuardMode::kLocal);   // benign
    b.pad_to(10'400);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // Forward: a call to an API removed inside the supported range.
    AppBuilder b{"Forward", "com.cidbench.forward", spec};
    b.sdk(21, 27);
    b.api_call(cat::http_client_execute());  // removed at 23 -> forward
    b.pad_to(10'400);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // GenericType: the mismatching API uses object-typed parameters.
    AppBuilder b{"GenericType", "com.cidbench.generictype", spec};
    b.sdk(21, 27);
    b.api_call(cat::evaluate_javascript());  // 19 < 21: safe (descriptor test)
    b.api_call(cat::create_web_message_channel());  // 23 > 21: real
    b.pad_to(10'400);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // Inheritance: the API is declared on a superclass of the receiver.
    AppBuilder b{"Inheritance", "com.cidbench.inheritance", spec};
    b.sdk(21, 27);
    // Framework-subclass receiver: resolvable by any hierarchy-aware tool.
    b.api_call(cat::get_color_state_list("android/app/Activity"));  // real
    // App-subclass receiver: only SAINTDroid's holistic analysis resolves.
    b.inherited_api_call(cat::get_color_state_list("android/view/View"));
    b.pad_to(10'400);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // Protection: a correctly guarded call — silence is the right answer.
    AppBuilder b{"Protection", "com.cidbench.protection", spec};
    b.sdk(21, 27);
    b.api_call(cat::get_color_state_list(), GuardMode::kLocal);
    b.api_call(cat::notification_channel_ctor(), GuardMode::kCrossMethod);
    b.pad_to(10'400);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // Protection2: the guard flows through registers (Lint's blind spot).
    AppBuilder b{"Protection2", "com.cidbench.protection2", spec};
    b.sdk(21, 27);
    b.api_call(cat::get_color_state_list(), GuardMode::kLocalViaRegister);
    b.pad_to(10'400);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // Varargs: array-typed descriptor matching.
    AppBuilder b{"Varargs", "com.cidbench.varargs", spec};
    b.sdk(21, 27);
    b.api_call(cat::request_permissions("android/app/Activity"));  // 23: real
    b.pad_to(10'400);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  return out;
}

std::vector<BenchApp> cider_bench(const FrameworkRepository& repo) {
  const FrameworkSpec& spec = repo.spec();
  std::vector<BenchApp> out;
  Rng rng{0xC1DE2022ULL};

  {  // AFWall+: large firewall app; CID cannot finish it.
    AppBuilder b{"AFWall+", "dev.ukanth.ufirewall", spec};
    b.sdk(14, 26);
    b.callback_override(cat::drawable_hotspot_changed());
    b.callback_override(cat::on_apply_window_insets());
    b.callback_override(cat::on_provide_structure());
    b.callback_override(cat::on_multi_window_mode_changed());  // in-model
    b.hidden_callback(cat::on_apply_window_insets());  // universal FN
    b.api_call(cat::get_color_state_list());
    b.api_call(cat::is_destroyed());
    b.api_call(cat::get_fragment_manager(), GuardMode::kLocal);
    b.api_call(cat::set_background(), GuardMode::kCrossMethod);
    b.api_call(cat::create_web_message_channel(), GuardMode::kHidden);
    b.api_call(cat::is_destroyed(), GuardMode::kHidden);
    b.hidden_api_call(cat::notification_channel_ctor());  // universal FN
    b.permission_use(cat::resolver_insert());  // tgt 26, no protocol: request
    add_bulk_apc(b, spec, range_of(14), 3, rng);
    add_bulk_api(b, spec, range_of(14), 6, rng);
    b.framework_breadth(40);
    b.pad_to(70'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // DuckDuckGo: browser; implements the runtime-permission protocol.
    AppBuilder b{"DuckDuckGo", "com.duckduckgo.mobile.android", spec};
    b.sdk(16, 26);
    b.callback_override(cat::on_provide_structure());
    b.callback_override(cat::on_page_commit_visible());
    b.callback_override(cat::should_override_url_loading());
    b.callback_override(cat::on_attach_context());  // in-model
    b.api_call(cat::create_web_message_channel());
    b.api_call(cat::evaluate_javascript());
    b.api_call(cat::get_color_state_list(), GuardMode::kCrossMethod);
    b.api_call(cat::is_destroyed(), GuardMode::kHidden);  // universal FP
    b.api_call(cat::notification_channel_ctor(), GuardMode::kHidden);
    b.implement_runtime_permission_protocol();
    b.permission_use(cat::last_known_location());  // protocol: benign
    add_bulk_apc(b, spec, range_of(16), 1, rng);
    add_bulk_api(b, spec, range_of(16), 3, rng);
    b.framework_breadth(25);
    b.pad_to(30'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // FOSS Browser
    AppBuilder b{"FOSS Browser", "de.baumann.browser", spec};
    b.sdk(19, 27);
    b.callback_override(cat::should_override_url_loading());
    b.callback_override(cat::on_pointer_capture_change());
    b.callback_override(cat::on_multi_window_mode_changed());  // in-model
    b.api_call(cat::create_web_message_channel());
    b.api_call(cat::notification_channel_ctor());
    b.api_call(cat::evaluate_javascript(), GuardMode::kLocal);  // 19: safe anyway
    b.api_call(cat::get_color_state_list(), GuardMode::kHidden);
    add_bulk_apc(b, spec, range_of(19), 1, rng);
    add_bulk_api(b, spec, range_of(19), 3, rng);
    b.framework_breadth(20);
    b.pad_to(25'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // Kolab notes: the paper's permission-request example (§V-B).
    AppBuilder b{"Kolab notes", "org.kore.kolabnotes.android", spec};
    b.sdk(16, 26);
    b.permission_use(cat::resolver_insert());  // WRITE_EXTERNAL_STORAGE
    b.api_call(cat::get_color_state_list());
    b.api_call(cat::set_background(), GuardMode::kLocal);
    b.callback_override(cat::on_create_view());     // 11 < 16: benign
    b.callback_override(cat::on_attach_context());  // 23 > 16: in-model
    add_bulk_api(b, spec, range_of(16), 2, rng);
    b.framework_breadth(15);
    b.pad_to(20'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // MaterialFBook
    AppBuilder b{"MaterialFBook", "me.zeeroooo.materialfb", spec};
    b.sdk(17, 25);
    b.callback_override(cat::drawable_hotspot_changed());
    b.callback_override(cat::on_multi_window_mode_changed());
    b.api_call(cat::create_web_message_channel());
    b.api_call(cat::set_background());  // 16 < 17: safe
    b.api_call(cat::get_color_state_list(), GuardMode::kLocalViaRegister);
    b.api_call(cat::create_web_message_channel(), GuardMode::kHidden);
    add_bulk_apc(b, spec, range_of(17), 2, rng);
    add_bulk_api(b, spec, range_of(17), 2, rng);
    b.framework_breadth(18);
    b.pad_to(18'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // NetworkMonitor: large; CID cannot finish it. minSdk 13 makes the
     // CIDER documentation error on onTrimMemory (13 vs 14) visible.
    AppBuilder b{"NetworkMonitor", "ca.rmen.android.networkmonitor", spec};
    b.sdk(13, 26);
    b.callback_override(cat::on_trim_memory());   // real at [13,13]
    b.callback_override(cat::on_task_removed());  // real at [13,13]
    b.callback_override(cat::on_top_resumed_activity_changed());  // 29
    b.api_call(cat::is_destroyed());
    b.api_call(cat::get_color_state_list());
    b.api_call(cat::create_web_message_channel(), GuardMode::kHidden);
    b.api_call(cat::notification_channel_ctor(), GuardMode::kHidden);
    b.hidden_api_call(cat::get_color_state_list());  // universal FN
    b.permission_use(cat::get_device_id());  // READ_PHONE_STATE: request
    add_bulk_apc(b, spec, range_of(13), 2, rng);
    add_bulk_api(b, spec, range_of(13), 6, rng);
    b.framework_breadth(60);
    b.pad_to(80'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // NyaaPantsu: the largest app; Lint crashes on it; has late-bound code.
    AppBuilder b{"NyaaPantsu", "cat.pantsu.nyaapantsu", spec};
    b.sdk(15, 25);
    b.callback_override(cat::drawable_hotspot_changed());
    b.callback_override(cat::on_attach_context());  // 23 > 15: in-model
    b.api_call(cat::evaluate_javascript());
    b.api_call(cat::get_color_state_list(), GuardMode::kNone,
               Placement::kSecondaryDex);
    b.api_call(cat::is_destroyed(), GuardMode::kHidden);
    b.api_call(cat::notification_channel_ctor(), GuardMode::kHidden);
    b.permission_use(cat::camera_open());
    add_bulk_apc(b, spec, range_of(15), 2, rng);
    add_bulk_api(b, spec, range_of(15), 5, rng);
    b.framework_breadth(30);
    b.pad_to(130'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // Padland: small and clean.
    AppBuilder b{"Padland", "com.mikifus.padland", spec};
    b.sdk(16, 24);
    b.api_call(cat::get_fragment_manager());  // 11 < 16: safe
    b.api_call(cat::is_destroyed());          // 17 > 16: real
    b.framework_breadth(10);
    b.pad_to(11'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // PassAndroid: large; CID cannot finish it.
    AppBuilder b{"PassAndroid", "org.ligi.passandroid", spec};
    b.sdk(14, 27);
    b.callback_override(cat::on_attach_context());
    b.callback_override(cat::on_create_view());  // 11 < 14: benign
    b.callback_override(cat::on_picture_in_picture_mode_changed());
    b.callback_override(cat::on_multi_window_mode_changed());  // in-model
    b.api_call(cat::notification_channel_ctor());
    b.api_call(cat::http_client_execute());  // forward
    b.api_call(cat::get_color_state_list(), GuardMode::kLocal);
    b.api_call(cat::is_destroyed(), GuardMode::kCrossMethod);
    b.api_call(cat::set_background(), GuardMode::kNone, Placement::kDeadCode);
    b.api_call(cat::get_color_state_list(), GuardMode::kHidden);
    b.api_call(cat::create_web_message_channel(), GuardMode::kHidden);
    b.hidden_api_call(cat::is_destroyed());  // universal FN
    b.permission_use(cat::insert_image());  // transitive WRITE_EXTERNAL
    add_bulk_apc(b, spec, range_of(14), 3, rng);
    add_bulk_api(b, spec, range_of(14), 5, rng);
    b.framework_breadth(35);
    b.pad_to(75'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // SimpleSolitaire: the paper's Listing 2 app.
    AppBuilder b{"SimpleSolitaire", "de.tobiasbielefeld.solitaire", spec};
    b.sdk(14, 27);
    b.callback_override(cat::on_attach_context());  // the Listing 2 issue
    b.api_call(cat::set_background());              // 16 > 14: real
    b.framework_breadth(12);
    b.pad_to(15'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // SurvivalManual
    AppBuilder b{"SurvivalManual", "org.ligi.survivalmanual", spec};
    b.sdk(19, 26);
    b.callback_override(cat::on_apply_window_insets());  // 20 > 19: real
    b.api_call(cat::get_color_state_list());
    b.api_call(cat::create_web_message_channel(), GuardMode::kHidden);
    add_bulk_api(b, spec, range_of(19), 2, rng);
    b.framework_breadth(16);
    b.pad_to(22'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  {  // Uber ride (the Uber client from the CIDER set)
    AppBuilder b{"Uber ride", "com.ubercab", spec};
    b.sdk(19, 26);
    b.callback_override(cat::on_provide_structure());
    b.hidden_callback(cat::drawable_hotspot_changed());  // universal FN
    b.api_call(cat::create_web_message_channel());
    b.api_call(cat::get_color_state_list(), GuardMode::kCrossMethod);
    b.api_call(cat::notification_channel_ctor(), GuardMode::kHidden);
    b.hidden_api_call(cat::get_color_state_list());  // universal FN
    b.permission_use(cat::send_text_message());
    add_bulk_api(b, spec, range_of(19), 3, rng);
    b.framework_breadth(22);
    b.pad_to(28'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }

  // The 8 CIDER-Bench apps that no longer build (excluded from analysis).
  for (int i = 0; i < 8; ++i) {
    AppBuilder b{"CiderBench-unbuildable-" + std::to_string(i + 1),
                 "com.ciderbench.x" + std::to_string(i + 1), spec};
    b.sdk(static_cast<int>(rng.uniform(14, 19)), 26);
    b.buildable(false);
    b.api_call(cat::get_color_state_list());
    b.callback_override(cat::drawable_hotspot_changed());
    b.pad_to(12'000);
    auto built = b.build();
    out.push_back(BenchApp{std::move(built.apk), std::move(built.truth)});
  }
  return out;
}

std::vector<BenchApp> accuracy_bench(const FrameworkRepository& repo) {
  std::vector<BenchApp> out = cid_bench(repo);
  for (auto& app : cider_bench(repo))
    if (app.apk.manifest.buildable) out.push_back(std::move(app));
  return out;
}

}  // namespace saintdroid
