// Head-to-head evaluation harness: runs an analyzer over a suite of
// ground-truthed apps and aggregates the confusion counts the paper's
// Table II reports. Shared by the accuracy bench and the integration
// regression gates so both always agree on methodology (failed runs count
// every real issue in the app as a miss, per family).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/outcome.hpp"
#include "workload/benchmarks.hpp"
#include "workload/ground_truth.hpp"

namespace saintdroid {

class FrameworkRepository;

/// Per-family confusion counts.
struct FamilyScores {
  Score api;
  Score apc;
  Score prm;
  Score sem;  ///< semantic-change findings (MismatchKind::kSemanticChange)
  Score sdc;  ///< declared-SDK lint findings (MismatchKind::kSdkDeclaration)

  Score total() const;
  FamilyScores& operator+=(const FamilyScores& other);
};

/// One app's outcome under one tool.
struct SuiteAppRow {
  std::string app;
  bool completed = true;
  /// Budget-degraded partial report (run completed, coverage did not).
  bool incomplete = false;
  std::string failure_reason;
  /// Structured failure (taxonomy kind, phase, message) when !completed.
  std::optional<AnalysisFailure> failure;
  /// Detections reported, independent of ground-truth scoring — what the
  /// batch CLI prints when no ledger exists.
  std::size_t mismatch_count = 0;
  FamilyScores scores;
  ResourceUsage usage;
  /// How the incremental analysis layer served this app (all-zero when no
  /// incremental cache was configured). Operational telemetry, journaled
  /// sparsely and cleared in canonical row bytes: a cache hit and a full
  /// run are required to produce identical canonical rows.
  IncrementalStats incr;
};

/// How many leases one worker completed in a work-stealing run — the
/// skew-visibility datum: a fast worker shows more leases, a straggler
/// fewer, and a dead worker's leases show up under whoever reclaimed them.
struct WorkerLeaseCount {
  std::string worker;
  int leases = 0;
};

/// One tool's outcome over a whole suite.
struct SuiteResult {
  std::string tool;
  std::vector<SuiteAppRow> rows;
  FamilyScores aggregate;
  int failures = 0;
  /// Rows whose analysis completed but was budget-degraded (partial
  /// coverage, SuiteAppRow::incomplete) — surfaced separately in batch
  /// summaries so overload shedding is visible in offline runs too.
  int incomplete = 0;
  /// Apps skipped because a graceful-shutdown stop was requested mid-run
  /// (SuiteRunOptions::stop). Their slots are dropped from `rows`; a
  /// resumed run analyzes exactly these apps.
  std::size_t skipped_rows = 0;
  /// Framework build retries (see framework_build_retries() in
  /// adf/repository.hpp) observed process-wide during this run: image or
  /// substrate once-guard re-entries after a failed attempt. Zero on a
  /// healthy host; nonzero means transient framework failures were retried
  /// and is worth surfacing in batch summaries. Operational telemetry —
  /// not part of the deterministic row contract.
  std::uint64_t framework_retries = 0;
  /// Rows merged back from the journal instead of being analyzed (only a
  /// resumed run has any). Operational telemetry — the rows themselves are
  /// identical either way, this just records how much work resume saved.
  std::size_t resumed_rows = 0;
  /// Lease accounting of a distributed work-stealing run (src/dist) —
  /// filled by the coordinator's collect(), zero/empty everywhere else.
  /// Operational telemetry, never part of the deterministic row contract.
  std::size_t leases_issued = 0;
  /// Reclaim generations summed over all leases: how many times an expired
  /// or crashed claim was reissued. Zero on a healthy run.
  std::size_t leases_reclaimed = 0;
  /// Per-worker completed-lease counts, sorted by worker name.
  std::vector<WorkerLeaseCount> worker_lease_counts;
  /// Suite-wide incremental-layer counters, summed over rows. Operational
  /// telemetry — batch summaries surface it; never part of the
  /// deterministic row contract.
  IncrementalStats incremental;
};

/// Deterministic interleaved shard slice for multi-process corpus runs:
/// shard `shard_index` of `shard_count` owns apps at input positions
/// {shard_index, shard_index + shard_count, ...}, in input order. The
/// slices partition the input exactly, and interleaving balances the
/// long-tailed app-size distribution across shards the same way the
/// in-process worker sharding does. Throws ConfigError unless
/// 0 <= shard_index < shard_count.
std::vector<BenchApp> shard_slice(std::span<const BenchApp> apps,
                                  int shard_index, int shard_count);

/// Order-sensitive FNV-1a fingerprint over the app names of `apps`,
/// rendered as 16 hex digits. Two shard journals merge only if they were
/// cut from app lists with the same fingerprint — always fingerprint the
/// *full* list, before shard_slice.
std::string corpus_fingerprint(std::span<const BenchApp> apps);

/// Rebuilds a SuiteResult from already-scored rows — e.g. merged journal
/// rows reordered to corpus order by the work-stealing coordinator. Folds
/// the aggregate and failure count with exactly the semantics of run_suite
/// so a rebuilt result compares equal to a live run's (wall-clock usage
/// fields aside).
SuiteResult suite_from_rows(std::string tool, std::vector<SuiteAppRow> rows);

/// Analyzes and scores one app — the single definition of row semantics
/// shared by the serial and parallel suite paths and by the online serve
/// layer, so a served response row is byte-identical to the row a batch
/// run would journal for the same app. Runs inside the analyze_outcome
/// isolation boundary: a throwing analysis becomes a structured failure
/// row, never an escaping exception.
SuiteAppRow analyze_app_row(Analyzer& tool, const BenchApp& app);

/// Runs `tool` over `apps`, scoring each result against its ledger. Every
/// per-app analysis runs inside the analyze_outcome isolation boundary: an
/// app whose analysis throws yields a structured failure row (never sinks
/// the suite), and a failed analysis contributes every real issue of the
/// app as a false negative in its family.
SuiteResult run_suite(Analyzer& tool, std::span<const BenchApp> apps);

/// Makes one analyzer instance for one worker of a parallel suite run.
/// Called once per worker (not per app); implementations should share the
/// expensive immutable state — the FrameworkRepository and a pre-mined
/// ApiDatabase — and keep only cheap mutable state per instance. Must be
/// callable from the submitting thread before any worker runs.
using AnalyzerFactory = std::function<std::unique_ptr<Analyzer>()>;

/// Parallel run_suite: shards `apps` across `jobs` workers, each with its
/// own factory-made analyzer, and merges rows back in input order. The
/// result is deterministic — identical rows, aggregate, and failure count
/// to run_suite for any `jobs`, because every row slot is written exactly
/// once at its input index and aggregation happens after the join, in
/// order. (Wall-clock fields inside ResourceUsage still vary run to run,
/// exactly as they do serially.) `jobs <= 1` degenerates to the serial
/// loop on the calling thread.
SuiteResult run_suite_parallel(const AnalyzerFactory& factory,
                               std::span<const BenchApp> apps, int jobs);

/// Knobs for a journaled (crash-safe, resumable) suite run.
struct SuiteRunOptions {
  int jobs = 1;
  /// When non-empty, every completed row is appended to this JSONL journal
  /// as soon as it finishes (flushed per row), so a killed run loses at
  /// most the rows in flight.
  std::string journal_path;
  /// Skip apps already present in the journal: their journaled rows are
  /// merged back verbatim (matched by app name) and only the remainder is
  /// analyzed. Without a journal_path this is a no-op.
  bool resume = false;
  /// Journal header metadata (journal schema 2): the fingerprint of the
  /// full app list this run is a slice of (corpus_fingerprint, empty for
  /// "unspecified") and this run's shard spec. Recorded as the journal's
  /// first line; on resume, a journal whose header names a different
  /// corpus or shard fails loudly instead of silently interleaving runs,
  /// and merge-journals uses the same header to refuse mismatched shards.
  std::string corpus_id;
  int shard_index = 0;
  int shard_count = 1;
  /// Run once on the calling thread after resume merging, before the
  /// serial loop or any worker starts — the place to pre-build shared
  /// immutable state (framework images, substrates) so a cold cache is
  /// warmed once instead of stampeded by the fan-out. Must not throw;
  /// swallow per-level failures and let the analyses attribute them.
  std::function<void()> warmup;
  /// On-disk model cache (see core/model_cache.hpp): when both fields are
  /// set, `repository` is pointed at `model_cache_dir` before warmup runs,
  /// so warmed substrates rebind from persisted tables instead of
  /// re-deriving them — and a cold cache is populated for the next run.
  /// Rows are byte-identical either way; only startup cost changes.
  std::string model_cache_dir;
  const FrameworkRepository* repository = nullptr;
  /// Per-app incremental fact cache directory (core/incr_cache.hpp). The
  /// harness ensures the directory exists before any worker starts (so a
  /// bad path fails loudly up front, once, instead of per app) — the
  /// analyzer factory is responsible for pointing its facades'
  /// SaintDroidOptions::incr_cache at the same directory, as the CLI and
  /// serve layers do. Rows are byte-identical with or without it; only
  /// re-analysis cost and the sparse journal "incr" telemetry change.
  std::string incr_cache_dir;
  /// Graceful-shutdown probe, polled between apps (never mid-analysis).
  /// Once it returns true, no further app is started: the in-flight apps
  /// finish and journal normally, the not-yet-started ones are skipped and
  /// counted in SuiteResult::skipped_rows. Must be thread-safe (workers of
  /// a parallel run poll it concurrently); an empty function never stops.
  std::function<bool()> stop;
};

/// run_suite_parallel with a crash-safe journal. Rows land at their input
/// index exactly as in the plain overload; journal append order follows
/// completion order, which is fine because resume matches rows by app
/// name, not position. A resumed run's SuiteResult equals the result of an
/// uninterrupted run except for wall-clock usage fields of resumed rows.
SuiteResult run_suite_parallel(const AnalyzerFactory& factory,
                               std::span<const BenchApp> apps,
                               const SuiteRunOptions& options);

}  // namespace saintdroid
