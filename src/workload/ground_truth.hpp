// Ground-truth ledger and scoring.
//
// Every construct the app synthesizer seeds — real mismatches and benign
// look-alikes engineered to trigger false alarms in particular tools — is
// recorded here, so the accuracy harness (Table II) can compute TP/FP/FN
// mechanically instead of by manual inspection. A detection matches a
// ledger entry when kind, containing method and subject agree (for
// permission mismatches: kind and permission, since the paper reports one
// finding per permission).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "dex/ids.hpp"

namespace saintdroid {

/// One seeded construct.
struct SeededIssue {
  MismatchKind kind = MismatchKind::kApiInvocation;
  MethodId location;   ///< app method containing the construct
  MethodId subject;    ///< the framework API/callback involved
  std::string permission;  ///< PRM kinds only
  /// True for an actual incompatibility; false for a benign construct
  /// (guarded call, dead code, runtime-protected path).
  bool real = true;
  /// Why it is (or is not) an issue: "unguarded", "forward",
  /// "inherited_receiver", "secondary_dex", "hidden_callback",
  /// "guarded_local", "guarded_cross_method", "guarded_hidden",
  /// "dead_code", ...
  std::string tag;

  /// Ledger key compatible with detections (see match_key()).
  std::string key() const;
};

/// Canonical key for matching a detection against the ledger.
std::string match_key(const Mismatch& m);

/// The full ledger for one synthesized app.
struct GroundTruth {
  std::vector<SeededIssue> issues;

  std::size_t real_count() const;
  std::size_t real_count(MismatchKind kind) const;
  std::size_t benign_count() const;

  void merge(const GroundTruth& other);
};

/// Confusion counts of one detector run against one or more ledgers.
struct Score {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  double precision() const;
  double recall() const;
  double f_measure() const;

  Score& operator+=(const Score& other);
};

/// Scores `found` against `truth`. When `kind` is set, both the ledger and
/// the detections are filtered to that mismatch kind first (PRM kinds are
/// treated as one family when either permission kind is passed).
Score score_detections(const GroundTruth& truth,
                       const std::vector<Mismatch>& found,
                       std::optional<MismatchKind> kind = std::nullopt);

}  // namespace saintdroid
