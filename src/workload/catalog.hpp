// Named handles for the curated framework surface, used by the benchmark
// suites to seed the exact constructs the paper's examples describe.
#pragma once

#include <string>
#include <vector>

#include "adf/spec.hpp"

namespace saintdroid {

/// A framework API as used from app code: the receiver class written at
/// the call site (which may be a subclass of the declaring class) and the
/// declaring class the hierarchy resolves to.
struct ApiUse {
  std::string receiver;   ///< declared receiver at the call site
  std::string declaring;  ///< class that declares the method in the spec
  std::string name;
  std::string return_type = "V";
  std::vector<std::string> params;
  bool is_static = false;

  /// JVM descriptor of the method (same construction as DexFile).
  std::string descriptor() const;

  /// Identity at the declaring class — what detectors report as subject.
  MethodId declared_id() const;
};

/// A framework callback as overridden by app code.
struct CallbackUse {
  std::string framework_class;
  std::string name;
  std::vector<std::string> params;  // callbacks return void

  std::string descriptor() const;
  MethodId declared_id() const;
};

/// Builds a JVM descriptor from a return type and parameter list using the
/// same rules as DexFile::descriptor_of.
std::string make_descriptor(const std::string& return_type,
                            const std::vector<std::string>& params);

// --- curated APIs from the paper's narrative ---------------------------------
namespace catalog {

/// Context.getColorStateList, introduced at 23 (paper Listing 1).
ApiUse get_color_state_list(const std::string& receiver = "android/content/Context");
/// Activity.getFragmentManager, introduced at 11 (Offline Calendar).
ApiUse get_fragment_manager(const std::string& receiver = "android/app/Activity");
/// View.setBackground, introduced at 16.
ApiUse set_background(const std::string& receiver = "android/view/View");
/// WebView.evaluateJavascript, introduced at 19.
ApiUse evaluate_javascript(const std::string& receiver = "android/webkit/WebView");
/// WebView.createWebMessageChannel, introduced at 23.
ApiUse create_web_message_channel(const std::string& receiver = "android/webkit/WebView");
/// NotificationChannel constructor, introduced at 26.
ApiUse notification_channel_ctor();
/// Activity.isDestroyed, introduced at 17.
ApiUse is_destroyed(const std::string& receiver = "android/app/Activity");
/// AndroidHttpClient.execute — removed at 23 (forward incompatibility).
ApiUse http_client_execute();
/// Activity.requestPermissions, introduced at 23.
ApiUse request_permissions(const std::string& receiver);

/// Camera.open — requires CAMERA.
ApiUse camera_open();
/// MediaRecorder.setAudioSource — requires RECORD_AUDIO.
ApiUse set_audio_source();
/// ContentResolver.insert — requires WRITE_EXTERNAL_STORAGE.
ApiUse resolver_insert();
/// MediaStore.Images.Media.insertImage — *transitively* requires
/// WRITE_EXTERNAL_STORAGE through ContentResolver.insert.
ApiUse insert_image();
/// LocationManager.getLastKnownLocation — requires ACCESS_FINE_LOCATION.
ApiUse last_known_location();
/// SmsManager.sendTextMessage — requires SEND_SMS.
ApiUse send_text_message();
/// TelephonyManager.getDeviceId — requires READ_PHONE_STATE.
ApiUse get_device_id();
/// BluetoothLeScanner.startScan — requires ACCESS_FINE_LOCATION (@21).
ApiUse ble_start_scan();
/// TextView.setTextAppearance(int), the Context-less overload (@23).
ApiUse set_text_appearance(const std::string& receiver = "android/widget/TextView");
/// Window.setStatusBarColor (@21).
ApiUse set_status_bar_color();
/// NotificationManager.createNotificationChannel (@26).
ApiUse create_notification_channel();
/// ConnectivityManager.getActiveNetwork (@23).
ApiUse get_active_network();
/// CookieManager.removeAllCookies (@21).
ApiUse remove_all_cookies();

/// Fragment.onAttach(Context), introduced at 23 (paper Listing 2 /
/// Simple Solitaire).
CallbackUse on_attach_context();
/// View.drawableHotspotChanged, introduced at 21 (FOSDEM example).
CallbackUse drawable_hotspot_changed();
/// View.onApplyWindowInsets, introduced at 20.
CallbackUse on_apply_window_insets();
/// View.onProvideStructure, introduced at 23.
CallbackUse on_provide_structure();
/// View.onPointerCaptureChange, introduced at 26.
CallbackUse on_pointer_capture_change();
/// Activity.onMultiWindowModeChanged, introduced at 24 (in CIDER's model).
CallbackUse on_multi_window_mode_changed();
/// Activity.onPictureInPictureModeChanged, 24 (absent from CIDER's model).
CallbackUse on_picture_in_picture_mode_changed();
/// Activity.onTopResumedActivityChanged, 29 (absent from CIDER's model).
CallbackUse on_top_resumed_activity_changed();
/// Service.onTrimMemory, introduced at 14 (CIDER documents 13).
CallbackUse on_trim_memory();
/// Service.onTaskRemoved, 14 (absent from CIDER's model).
CallbackUse on_task_removed();
/// Service.onStartCommand, introduced at 5 (in CIDER's model).
CallbackUse on_start_command();
/// WebViewClient.onPageCommitVisible, 23 (in CIDER's model).
CallbackUse on_page_commit_visible();
/// WebViewClient.shouldOverrideUrlLoading(WebResourceRequest), 24 (absent
/// from CIDER's model).
CallbackUse should_override_url_loading();
/// Fragment.onCreateView, 11 (absent from CIDER's model).
CallbackUse on_create_view();

}  // namespace catalog

/// All spec methods that are safe filler material for an app supporting
/// `range`: alive across the whole range, permission-free, not callbacks.
std::vector<ApiUse> collect_safe_apis(const FrameworkSpec& spec,
                                      ApiInterval range,
                                      std::size_t limit = 2000);

/// Breadth filler: at most one safe method per spec class — alive across
/// the whole range, not a callback, and *transitively* permission-free
/// (the callee chain never reaches an enforced permission, so the mined
/// permission map stays silent about it). Where collect_safe_apis keeps
/// only leaf methods of the curated classes, this spans the full synthetic
/// framework — the material for library-heavy apps, whose defining trait
/// is how many distinct framework classes they touch (Fig. 3's outliers).
std::vector<ApiUse> collect_breadth_apis(const FrameworkSpec& spec,
                                         ApiInterval range,
                                         std::size_t limit = 2000);

/// Spec methods whose introduction falls strictly inside `range` (usable as
/// backward-mismatch material), excluding permission-requiring ones.
std::vector<ApiUse> collect_mismatch_apis(const FrameworkSpec& spec,
                                          ApiInterval range,
                                          std::size_t limit = 2000);

/// Spec callbacks usable as APC material for `range` (introduced strictly
/// inside it).
std::vector<CallbackUse> collect_mismatch_callbacks(const FrameworkSpec& spec,
                                                    ApiInterval range,
                                                    std::size_t limit = 2000);

/// Spec callbacks alive across all of `range` (benign override material).
std::vector<CallbackUse> collect_safe_callbacks(const FrameworkSpec& spec,
                                                ApiInterval range,
                                                std::size_t limit = 2000);

/// The methods carrying curated semantic-change rows
/// (FrameworkSpec::semantic_changes), as callable ApiUse entries — the SEM
/// corpus stratum's material. Every collector above *excludes* these
/// methods: a semantic-changed API handed out as filler or mismatch
/// material would seed SEM findings into strata whose ledgers know
/// nothing about them.
std::vector<ApiUse> collect_semantic_apis(const FrameworkSpec& spec);

}  // namespace saintdroid
