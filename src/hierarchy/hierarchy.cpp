#include "hierarchy/hierarchy.hpp"

namespace saintdroid {

bool method_matches(const DexFile& dex, const MethodDef& method,
                    const std::string& name, const std::string& descriptor) {
  return dex.string_at(method.name) == name &&
         dex.descriptor_of(method.proto) == descriptor;
}

const MethodDef* ClassHierarchy::find_method_in(
    const LoadedClass& cls, const std::string& name,
    const std::string& descriptor) const {
  if (const auto* entry = substrate_entry(cls)) {
    // Declaration order with prebuilt names and descriptors: the first
    // match is the same method the fallback scan finds, without any
    // string building.
    for (const auto& m : entry->methods)
      if (m.name == name && m.descriptor == descriptor) return m.def;
    return nullptr;
  }
  for (const auto& m : cls.def->methods)
    if (method_matches(*cls.dex, m, name, descriptor)) return &m;
  return nullptr;
}

const LoadedClass* ClassHierarchy::load_super(const LoadedClass& cls) {
  if (substrate_ != nullptr && cls.from_framework) {
    if (const auto* e = substrate_->entry_of(cls); e && e->super)
      return provider_->load_framework(&e->super->cls, e->super->slot);
  }
  return provider_->load(cls.super_name);
}

std::optional<MethodResolution> ClassHierarchy::find_in_class(
    const LoadedClass& cls, const std::string& name,
    const std::string& descriptor) {
  const MethodDef* method = find_method_in(cls, name, descriptor);
  if (method == nullptr) return std::nullopt;
  MethodResolution res;
  res.declaring_class = &cls;
  res.method = method;
  res.id = MethodId{cls.name, name, descriptor};
  return res;
}

std::optional<MethodResolution> ClassHierarchy::resolve_in_interfaces(
    const LoadedClass& cls, const std::string& name,
    const std::string& descriptor) {
  for (const auto& iface_name : cls.interface_names) {
    const LoadedClass* iface = provider_->load(iface_name);
    if (!iface) continue;
    if (auto res = find_in_class(*iface, name, descriptor)) return res;
    // Super-interfaces.
    if (auto res = resolve_in_interfaces(*iface, name, descriptor))
      return res;
  }
  return std::nullopt;
}

std::optional<MethodResolution> ClassHierarchy::resolve(
    const std::string& class_name, const std::string& name,
    const std::string& descriptor) {
  // Superclass chain first (JLS resolution order), then interfaces of each
  // class on the chain.
  const LoadedClass* current = provider_->load(class_name);
  std::vector<const LoadedClass*> chain;
  while (current) {
    if (auto res = find_in_class(*current, name, descriptor)) return res;
    chain.push_back(current);
    if (current->super_name.empty()) break;
    current = load_super(*current);
  }
  for (const auto* cls : chain)
    if (auto res = resolve_in_interfaces(*cls, name, descriptor)) return res;
  return std::nullopt;
}

std::optional<MethodResolution> ClassHierarchy::overridden_framework_method(
    const LoadedClass& cls, const MethodDef& method) {
  const std::string& name = cls.dex->string_at(method.name);
  // The descriptor is only built when an ancestor has a same-named method
  // — the override scan runs over every app method, so this lazy path is
  // hot.
  std::string descriptor;
  const auto matches = [&](const LoadedClass& ancestor,
                           const MethodDef& candidate) {
    if (ancestor.dex->string_at(candidate.name) != name) return false;
    if (descriptor.empty())
      descriptor = cls.dex->descriptor_of(method.proto);
    return ancestor.dex->descriptor_of(candidate.proto) == descriptor;
  };

  // Superclass chain first (not the class itself), then the interfaces of
  // each class on the chain including the class's own.
  std::vector<const LoadedClass*> chain{&cls};
  const LoadedClass* current =
      cls.super_name.empty() ? nullptr : provider_->load(cls.super_name);
  while (current) {
    const auto* entry = substrate_entry(*current);
    if (entry != nullptr) {
      // A substrate-owned ancestor is framework by construction, so any
      // name+descriptor match is the overridden framework declaration.
      for (const auto& c : entry->methods) {
        if (c.name != name) continue;
        if (descriptor.empty())
          descriptor = cls.dex->descriptor_of(method.proto);
        if (c.descriptor != descriptor) continue;
        MethodResolution res;
        res.declaring_class = current;
        res.method = c.def;
        res.id = MethodId{current->name, name, descriptor};
        return res;
      }
    } else {
      for (const auto& m : current->def->methods) {
        if (!matches(*current, m)) continue;
        if (!current->from_framework) return std::nullopt;  // app override
        MethodResolution res;
        res.declaring_class = current;
        res.method = &m;
        res.id = MethodId{current->name, name, descriptor};
        return res;
      }
    }
    chain.push_back(current);
    if (current->super_name.empty()) break;
    current = load_super(*current);
  }
  for (const auto* link : chain) {
    if (link->interface_names.empty()) continue;
    if (descriptor.empty()) descriptor = cls.dex->descriptor_of(method.proto);
    auto res = resolve_in_interfaces(*link, name, descriptor);
    if (res && res->declaring_class->from_framework) return res;
  }
  return std::nullopt;
}

bool ClassHierarchy::is_subtype_of(const std::string& derived,
                                   const std::string& base) {
  if (derived == base) return true;
  const LoadedClass* cls = provider_->load(derived);
  while (cls) {
    if (cls->name == base) return true;
    for (const auto& iface : cls->interface_names)
      if (is_subtype_of(iface, base)) return true;
    if (cls->super_name.empty()) return false;
    cls = load_super(*cls);
  }
  return false;
}

const LoadedClass* ClassHierarchy::nearest_framework_ancestor(
    const std::string& class_name) {
  const LoadedClass* cls = provider_->load(class_name);
  while (cls) {
    if (cls->from_framework) return cls;
    if (cls->super_name.empty()) return nullptr;
    cls = load_super(*cls);
  }
  return nullptr;
}

}  // namespace saintdroid
