// Class-hierarchy analysis over a ClassProvider.
//
// Virtual/interface method resolution walks the superclass chain and
// interface set exactly the way the Dalvik resolver does, loading classes
// on demand through the provider — with the lazy CLVM behind it, hierarchy
// queries are what drive incremental loading (paper Algorithm 1). This is
// also where override detection lives: an app method "overrides an API
// callback" (Algorithm 3) when a framework ancestor declares a method with
// the same name and descriptor.
//
// When the analysis runs against a shared FrameworkSubstrate, queries over
// substrate-owned framework classes ride its precomputed structure: method
// tables with prebuilt descriptors (no per-app string building), direct
// superclass pointers (chain walks skip name lookups via
// ClassProvider::load_framework), and per-method invoke edges (the
// framework walk replays pointers instead of re-decoding instructions).
// Results are identical to the scans — only the work moves.
#pragma once

#include <optional>
#include <string>

#include "clvm/class_provider.hpp"
#include "clvm/substrate.hpp"
#include "dex/ids.hpp"

namespace saintdroid {

/// The outcome of resolving a method against the hierarchy.
struct MethodResolution {
  const LoadedClass* declaring_class = nullptr;
  const MethodDef* method = nullptr;
  /// Identity at the *declaring* class (e.g. resolving
  /// com/app/MyView.setBackground yields android/view/View.setBackground).
  MethodId id;
};

class ClassHierarchy {
 public:
  /// `provider` (and `substrate`, when given) must outlive the hierarchy.
  /// `substrate` should be the shared framework layer the provider hands
  /// out pointers into; lookups fall back to scanning for any class the
  /// substrate does not own, so a mismatched substrate is slow, not wrong.
  explicit ClassHierarchy(ClassProvider& provider,
                          const FrameworkSubstrate* substrate = nullptr)
      : provider_(&provider), substrate_(substrate) {}

  /// Passthrough load (kept so callers need only a hierarchy reference).
  const LoadedClass* load(const std::string& name) {
    return provider_->load(name);
  }

  /// Resolves `name:descriptor` starting at `class_name`, walking the
  /// superclass chain, then each ancestor's interfaces (and their
  /// super-interfaces). Returns nullopt when the start class is unknown or
  /// no ancestor declares the method.
  std::optional<MethodResolution> resolve(const std::string& class_name,
                                          const std::string& name,
                                          const std::string& descriptor);

  /// For a method defined in app class `cls`: the framework declaration it
  /// overrides, if any. Starts the walk at the superclass (a definition
  /// does not override itself).
  std::optional<MethodResolution> overridden_framework_method(
      const LoadedClass& cls, const MethodDef& method);

  /// True when `derived` equals `base` or transitively extends/implements
  /// it. Unresolvable ancestors terminate the walk (conservative false).
  bool is_subtype_of(const std::string& derived, const std::string& base);

  /// The nearest *framework* ancestor class of `class_name` (for CIDER's
  /// modelled-class check), or nullptr.
  const LoadedClass* nearest_framework_ancestor(const std::string& class_name);

  /// The first method of `cls` (declaration order) matching
  /// `name:descriptor`, or nullptr — the indexed equivalent of scanning
  /// cls.def->methods with method_matches(). Does not walk ancestors.
  const MethodDef* find_method_in(const LoadedClass& cls,
                                  const std::string& name,
                                  const std::string& descriptor) const;

  /// The shared framework substrate this hierarchy reads, or nullptr —
  /// callers (the AUM framework walk) use its precomputed method tables
  /// and invoke edges directly when present and indexed.
  const FrameworkSubstrate* substrate() const { return substrate_; }

  /// Passthrough to ClassProvider::load_framework (see there).
  const LoadedClass* load_framework(const LoadedClass* cls,
                                    std::uint32_t slot) {
    return provider_->load_framework(cls, slot);
  }

  ClassProvider& provider() { return *provider_; }

 private:
  /// The substrate entry for `cls` when its precomputed method tables may
  /// be used, else nullptr.
  const FrameworkSubstrate::ClassEntry* substrate_entry(
      const LoadedClass& cls) const {
    if (substrate_ == nullptr || !cls.from_framework) return nullptr;
    if (!substrate_->options().index_methods) return nullptr;
    return substrate_->entry_of(cls);
  }

  /// Advances a chain walk to `cls`'s superclass, taking the substrate's
  /// direct super pointer when available.
  const LoadedClass* load_super(const LoadedClass& cls);

  std::optional<MethodResolution> find_in_class(const LoadedClass& cls,
                                                const std::string& name,
                                                const std::string& descriptor);
  std::optional<MethodResolution> resolve_in_interfaces(
      const LoadedClass& cls, const std::string& name,
      const std::string& descriptor);

  ClassProvider* provider_;
  const FrameworkSubstrate* substrate_ = nullptr;  // optional, not owned
};

/// True when a method definition in `dex` matches `name:descriptor`.
bool method_matches(const DexFile& dex, const MethodDef& method,
                    const std::string& name, const std::string& descriptor);

}  // namespace saintdroid
