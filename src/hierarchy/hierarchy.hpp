// Class-hierarchy analysis over a ClassProvider.
//
// Virtual/interface method resolution walks the superclass chain and
// interface set exactly the way the Dalvik resolver does, loading classes
// on demand through the provider — with the lazy CLVM behind it, hierarchy
// queries are what drive incremental loading (paper Algorithm 1). This is
// also where override detection lives: an app method "overrides an API
// callback" (Algorithm 3) when a framework ancestor declares a method with
// the same name and descriptor.
#pragma once

#include <optional>
#include <string>

#include "clvm/class_provider.hpp"
#include "dex/ids.hpp"

namespace saintdroid {

/// The outcome of resolving a method against the hierarchy.
struct MethodResolution {
  const LoadedClass* declaring_class = nullptr;
  const MethodDef* method = nullptr;
  /// Identity at the *declaring* class (e.g. resolving
  /// com/app/MyView.setBackground yields android/view/View.setBackground).
  MethodId id;
};

class ClassHierarchy {
 public:
  /// `provider` must outlive the hierarchy.
  explicit ClassHierarchy(ClassProvider& provider) : provider_(&provider) {}

  /// Passthrough load (kept so callers need only a hierarchy reference).
  const LoadedClass* load(const std::string& name) {
    return provider_->load(name);
  }

  /// Resolves `name:descriptor` starting at `class_name`, walking the
  /// superclass chain, then each ancestor's interfaces (and their
  /// super-interfaces). Returns nullopt when the start class is unknown or
  /// no ancestor declares the method.
  std::optional<MethodResolution> resolve(const std::string& class_name,
                                          const std::string& name,
                                          const std::string& descriptor);

  /// For a method defined in app class `cls`: the framework declaration it
  /// overrides, if any. Starts the walk at the superclass (a definition
  /// does not override itself).
  std::optional<MethodResolution> overridden_framework_method(
      const LoadedClass& cls, const MethodDef& method);

  /// True when `derived` equals `base` or transitively extends/implements
  /// it. Unresolvable ancestors terminate the walk (conservative false).
  bool is_subtype_of(const std::string& derived, const std::string& base);

  /// The nearest *framework* ancestor class of `class_name` (for CIDER's
  /// modelled-class check), or nullptr.
  const LoadedClass* nearest_framework_ancestor(const std::string& class_name);

  ClassProvider& provider() { return *provider_; }

 private:
  std::optional<MethodResolution> find_in_class(const LoadedClass& cls,
                                                const std::string& name,
                                                const std::string& descriptor);
  std::optional<MethodResolution> resolve_in_interfaces(
      const LoadedClass& cls, const std::string& name,
      const std::string& descriptor);

  ClassProvider* provider_;
};

/// True when a method definition in `dex` matches `name:descriptor`.
bool method_matches(const DexFile& dex, const MethodDef& method,
                    const std::string& name, const std::string& descriptor);

}  // namespace saintdroid
