// Dynamic verification — the paper's §VI future-work direction: "utilize
// dynamic analysis techniques to automatically verify incompatibilities
// identified through our conservative, static-analysis-based detection".
//
// The Interpreter executes an app's framework-invoked surface on a
// simulated device at one concrete API level: invokes resolve against the
// framework image *of that level* (a missing method is a NoSuchMethodError
// crash — an API mismatch materialized), Build.VERSION.SDK_INT reads yield
// the device level (so real guards really protect), runtime-generated
// guard helpers are simulated faithfully (so statically-invisible guards
// really protect too — refuting static false alarms), framework permission
// enforcement raises SecurityException per the install-time/runtime rules
// on either side of API 23, and callbacks missing from the device's
// framework are recorded as silently skipped (an APC mismatch
// materialized).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adf/repository.hpp"
#include "dex/apk.hpp"
#include "dex/ids.hpp"

namespace saintdroid {

/// A crash observed during execution.
struct CrashEvent {
  enum class Kind : std::uint8_t {
    kNoSuchMethod = 0,    ///< invoked API absent at the device level
    kSecurityException,   ///< dangerous permission not granted / revoked
  };
  Kind kind = Kind::kNoSuchMethod;
  MethodId location;           ///< app method executing when it happened
  std::uint32_t insn_index = 0;
  MethodId missing_api;        ///< kNoSuchMethod: the absent method
  std::string permission;      ///< kSecurityException: the permission

  std::string to_string() const;
};

/// A framework callback the device never invokes (absent at its level).
struct SkippedCallback {
  MethodId app_method;
  MethodId framework_callback;
};

/// Outcome of one device run.
struct ExecutionResult {
  int device_level = 0;
  std::vector<CrashEvent> crashes;
  std::vector<SkippedCallback> skipped_callbacks;
  std::uint64_t steps = 0;
  bool step_limit_hit = false;

  bool crashed() const { return !crashes.empty(); }
};

/// The simulated device and user.
struct DeviceConfig {
  int level = kMaxApiLevel;
  /// Whether the user grants runtime permission dialogs the app raises.
  bool user_grants_requests = false;
  /// Whether the user revokes install-time-granted dangerous permissions
  /// on a >= 23 device (the AdAway revocation scenario).
  bool user_revokes_dangerous = true;
};

/// Executes one app per device configuration. The interpreter is
/// deterministic and bounded (step and depth caps); it never throws on
/// well-formed packages.
class Interpreter {
 public:
  /// `apk` and `repo` must outlive the interpreter.
  Interpreter(const Apk& apk, const FrameworkRepository& repo);
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  ExecutionResult run(const DeviceConfig& device);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace saintdroid
