#include "dynamic/interpreter.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "adf/permissions.hpp"
#include "adf/spec.hpp"
#include "clvm/clvm.hpp"
#include "hierarchy/hierarchy.hpp"

namespace saintdroid {

std::string CrashEvent::to_string() const {
  std::ostringstream out;
  if (kind == Kind::kNoSuchMethod)
    out << "NoSuchMethodError: " << missing_api.to_string() << " in "
        << location.to_string() << " @" << insn_index;
  else
    out << "SecurityException: " << permission << " in "
        << location.to_string() << " @" << insn_index;
  return out.str();
}

namespace {

constexpr const char* kRuntimeCheckClass = "com/runtime/GeneratedCheck";
constexpr std::uint64_t kStepLimit = 500'000;
constexpr int kDepthLimit = 64;

/// A runtime value: integers, string constants and opaque object refs.
struct Value {
  enum class Kind : std::uint8_t { kInt = 0, kString, kObject, kNull };
  Kind kind = Kind::kNull;
  std::int64_t i = 0;
  std::string s;    // kString
  std::string cls;  // kObject: dynamic class name

  static Value integer(std::int64_t v) { return {Kind::kInt, v, {}, {}}; }
  static Value string(std::string v) {
    return {Kind::kString, 0, std::move(v), {}};
  }
  static Value object(std::string class_name) {
    return {Kind::kObject, 0, {}, std::move(class_name)};
  }
};

/// Thrown to unwind the interpreter's call stack on a simulated crash.
struct CrashSignal {
  CrashEvent event;
};

std::string descriptor_of_spec(const MethodSpec& m) {
  const auto append_type = [](std::string& out, const std::string& name) {
    if (name.size() == 1 || name.front() == '[')
      out += name;
    else
      out += "L" + name + ";";
  };
  std::string out = "(";
  for (const auto& p : m.params) append_type(out, p);
  out += ")";
  append_type(out, m.return_type);
  return out;
}

}  // namespace

struct Interpreter::Impl {
  const Apk* apk;
  const FrameworkRepository* repo;

  // Per-run state.
  const DeviceConfig* device = nullptr;
  std::unique_ptr<ClassLoaderVm> vm;
  std::unique_ptr<ClassHierarchy> hierarchy;
  ExecutionResult result;
  std::unordered_map<std::string, Value> fields;  // object-insensitive store
  std::unordered_set<std::string> granted;
  std::unordered_set<const MethodDef*> activated;
  std::unordered_set<std::string> crash_keys;
  bool runtime_request_issued = false;

  Impl(const Apk& a, const FrameworkRepository& r) : apk(&a), repo(&r) {}

  // --- permission machinery --------------------------------------------------

  void install_grants() {
    granted.clear();
    // Install-time model: everything requested is granted below 23; on a
    // >= 23 device an app targeting <= 22 keeps its install-time grants
    // unless the user revokes them.
    const bool runtime_device = device->level >= kRuntimePermissionLevel;
    const bool runtime_target =
        apk->manifest.target_sdk >= kRuntimePermissionLevel;
    for (const auto& p : apk->manifest.permissions) {
      if (!runtime_device) {
        granted.insert(p);
        continue;
      }
      if (!is_dangerous_permission(p)) {
        granted.insert(p);
        continue;
      }
      if (!runtime_target && !device->user_revokes_dangerous)
        granted.insert(p);
      // runtime_target: dangerous permissions start ungranted.
    }
  }

  void enforce(const std::string& permission, const MethodId& where,
               std::uint32_t insn) {
    if (!is_dangerous_permission(permission)) return;  // normal perms: granted
    if (!apk->manifest.requests_permission(permission)) {
      // Undeclared use fails at any level (Listing 3's crash).
      throw CrashSignal{CrashEvent{CrashEvent::Kind::kSecurityException,
                                   where, insn, {}, permission}};
    }
    if (!granted.contains(permission))
      throw CrashSignal{CrashEvent{CrashEvent::Kind::kSecurityException,
                                   where, insn, {}, permission}};
  }

  void handle_runtime_request() {
    runtime_request_issued = true;
    if (!device->user_grants_requests) return;
    for (const auto& p : apk->manifest.permissions)
      if (is_dangerous_permission(p)) granted.insert(p);
  }

  // --- spec-side callback classification ---------------------------------------

  /// Finds the framework callback this app method overrides in the spec,
  /// walking through app-level intermediate classes; nullptr when none.
  const MethodSpec* spec_callback(const LoadedClass& cls,
                                  const MethodDef& method,
                                  std::string* declaring) const {
    const std::string& name = cls.dex->string_at(method.name);
    const std::string descriptor = cls.dex->descriptor_of(method.proto);
    std::string current = cls.super_name;
    for (int hops = 0; hops < 64 && !current.empty(); ++hops) {
      if (const ClassSpec* spec_cls = repo->spec().find_class(current)) {
        for (const auto& m : spec_cls->methods)
          if (m.callback && m.name == name &&
              descriptor_of_spec(m) == descriptor) {
            *declaring = current;
            return &m;
          }
        current = spec_cls->super;
        continue;
      }
      // App-level intermediate: follow its declared superclass.
      const auto loc = apk->find_class(current);
      if (!loc.class_def) break;
      current = loc.class_def->super_type == kNoIndex
                    ? ""
                    : apk->dexes[loc.dex_index].type_name(
                          loc.class_def->super_type);
    }
    return nullptr;
  }

  // --- execution -----------------------------------------------------------------

  void activate_class(const LoadedClass& cls) {
    for (const auto& m : cls.def->methods) {
      if (!activated.insert(&m).second) continue;
      try {
        execute(cls, m, 0);
      } catch (const CrashSignal& crash) {
        record(crash.event);
      }
    }
  }

  void record(const CrashEvent& event) {
    std::string key = std::to_string(static_cast<int>(event.kind)) + "|" +
                      event.location.to_string() + "|" +
                      std::to_string(event.insn_index) + "|" +
                      event.missing_api.to_string() + "|" + event.permission;
    if (crash_keys.insert(std::move(key)).second)
      result.crashes.push_back(event);
  }

  Value execute(const LoadedClass& cls, const MethodDef& method, int depth) {
    if (!method.code || method.code->insns.empty()) return {};
    if (depth > kDepthLimit) return {};

    const DexFile& dex = *cls.dex;
    const MethodId self = dex.method_id(*cls.def, method);
    std::vector<Value> regs(method.code->register_count);
    Value last_result;
    const auto& insns = method.code->insns;

    const auto reg = [&regs](std::uint16_t r) -> Value& {
      static Value scratch;
      return r < regs.size() ? regs[r] : scratch;
    };

    std::uint32_t pc = 0;
    while (pc < insns.size()) {
      if (++result.steps > kStepLimit) {
        result.step_limit_hit = true;
        return {};
      }
      const Instruction& insn = insns[pc];
      switch (insn.op) {
        case Opcode::kNop:
          break;
        case Opcode::kConst:
          reg(insn.reg_a) = Value::integer(insn.literal);
          break;
        case Opcode::kConstString:
          reg(insn.reg_a) = Value::string(dex.string_at(insn.index));
          break;
        case Opcode::kMove:
          reg(insn.reg_a) = reg(insn.reg_b);
          break;
        case Opcode::kSget: {
          const FieldId field = dex.field_id_at(insn.index);
          reg(insn.reg_a) = field == kSdkIntField
                                ? Value::integer(device->level)
                                : Value::integer(0);
          break;
        }
        case Opcode::kSput:
          break;  // static app state is not modelled
        case Opcode::kIput:
          fields[dex.field_id_at(insn.index).to_string()] = reg(insn.reg_a);
          break;
        case Opcode::kIget: {
          const auto it = fields.find(dex.field_id_at(insn.index).to_string());
          reg(insn.reg_a) = it != fields.end() ? it->second : Value{};
          break;
        }
        case Opcode::kIfCmp: {
          const std::int64_t lhs = reg(insn.reg_a).i;
          const std::int64_t rhs =
              insn.cmp_with_literal ? insn.literal : reg(insn.reg_b).i;
          if (eval_cmp(insn.cmp, lhs, rhs)) {
            pc = insn.target;
            continue;
          }
          break;
        }
        case Opcode::kGoto:
          pc = insn.target;
          continue;
        case Opcode::kNewInstance:
          // Resolution is deferred to the constructor invoke, so that a
          // missing class crashes with the constructor as the subject.
          reg(insn.reg_a) = Value::object(dex.type_name(insn.index));
          break;
        case Opcode::kLoadClass: {
          const std::string type = dex.type_name(insn.index);
          reg(insn.reg_a) = Value::object("java/lang/Class");
          if (const LoadedClass* loaded = hierarchy->load(type);
              loaded && !loaded->from_framework)
            activate_class(*loaded);
          break;
        }
        case Opcode::kThrow:
          return {};  // app-raised exception: abort the method quietly
        case Opcode::kReturnVoid:
          return {};
        case Opcode::kReturn:
          return reg(insn.reg_a);
        case Opcode::kMoveResult:
          reg(insn.reg_a) = last_result;
          break;
        case Opcode::kInvoke:
          last_result = invoke(self, dex, insn, pc, reg, depth);
          break;
      }
      ++pc;
    }
    return {};
  }

  Value invoke(const MethodId& self, const DexFile& dex,
               const Instruction& insn, std::uint32_t pc,
               const std::function<Value&(std::uint16_t)>& reg, int depth) {
    const MethodId declared = dex.method_id_at(insn.index);

    // Runtime-generated guard helper: it exists at runtime and answers
    // truthfully, which is exactly why statically-flagged sites behind it
    // never actually crash.
    if (declared.class_name == kRuntimeCheckClass) {
      const std::int64_t threshold =
          insn.args.empty() ? 0 : reg(insn.args.front()).i;
      return Value::integer(device->level >= threshold ? 1 : 0);
    }
    // Reflection: activate the named class (plugin surface).
    if (declared.class_name == "java/lang/Class" &&
        declared.name == "forName") {
      if (!insn.args.empty() &&
          reg(insn.args.front()).kind == Value::Kind::kString) {
        std::string type = reg(insn.args.front()).s;
        std::replace(type.begin(), type.end(), '.', '/');
        if (const LoadedClass* loaded = hierarchy->load(type);
            loaded && !loaded->from_framework)
          activate_class(*loaded);
      }
      return Value::object("java/lang/Class");
    }
    // Framework permission enforcement.
    if (declared.class_name == kPermissionEnforcerClass &&
        declared.name == kPermissionEnforcerMethod) {
      if (!insn.args.empty() &&
          reg(insn.args.front()).kind == Value::Kind::kString)
        enforce(reg(insn.args.front()).s, self, pc);
      return {};
    }
    // The runtime permission dialog.
    if (declared.name == "requestPermissions") handle_runtime_request();

    const auto resolution = hierarchy->resolve(
        declared.class_name, declared.name, declared.descriptor);
    if (!resolution) {
      const bool class_known =
          hierarchy.get() && hierarchy->load(declared.class_name) != nullptr;
      if (is_framework_class_name(declared.class_name) || class_known) {
        // The receiver class exists on this device (or is platform
        // namespace) but the method does not: the mismatch crash.
        throw CrashSignal{CrashEvent{CrashEvent::Kind::kNoSuchMethod, self,
                                     pc, declared, {}}};
      }
      return Value::integer(0);  // external/unknown code: no-op
    }
    if (!resolution->method->code) return {};
    return execute(*resolution->declaring_class, *resolution->method,
                   depth + 1);
  }

  ExecutionResult run(const DeviceConfig& config) {
    DeviceConfig clamped = config;
    clamped.level = FrameworkRepository::clamp_level(config.level);
    device = &clamped;

    result = {};
    result.device_level = clamped.level;
    fields.clear();
    activated.clear();
    crash_keys.clear();
    runtime_request_issued = false;

    vm = std::make_unique<ClassLoaderVm>(*apk, repo->image(clamped.level),
                                         true,
                                         &repo->class_index(clamped.level));
    hierarchy = std::make_unique<ClassHierarchy>(*vm);
    install_grants();

    // The framework-driven surface: component methods and dispatched
    // callbacks. Overrides of callbacks absent at this level are recorded
    // as skipped — the APC mismatch materialized. Lifecycle entry points
    // (onCreate) run first, mirroring the framework's driving order, so
    // that e.g. runtime-permission requests issued during creation precede
    // later permission uses.
    struct Entry {
      const LoadedClass* cls;
      const MethodDef* def;
      bool lifecycle_first;
    };
    std::vector<Entry> entries;

    const DexFile& main_dex = apk->dexes.front();
    for (const auto& cls_def : main_dex.classes()) {
      const LoadedClass* cls =
          hierarchy->load(main_dex.type_name(cls_def.type));
      if (!cls || cls->from_framework) continue;
      const bool is_component = [&] {
        for (const auto& c : apk->manifest.components)
          if (c.class_name == cls->name) return true;
        return false;
      }();
      for (const auto& m : cls->def->methods) {
        std::string declaring;
        const MethodSpec* cb = spec_callback(*cls, m, &declaring);
        if (cb && !cb->life.exists_at(clamped.level)) {
          result.skipped_callbacks.push_back(SkippedCallback{
              cls->dex->method_id(*cls->def, m),
              MethodId{declaring, cb->name, descriptor_of_spec(*cb)}});
          continue;  // the framework never dispatches it here
        }
        if (!is_component && !cb) continue;  // not framework-invoked
        const bool lifecycle =
            is_component && cls->dex->string_at(m.name) == "onCreate";
        entries.push_back(Entry{cls, &m, lifecycle});
      }
    }
    std::stable_partition(entries.begin(), entries.end(),
                          [](const Entry& e) { return e.lifecycle_first; });
    for (const auto& entry : entries) {
      if (!activated.insert(entry.def).second) continue;
      try {
        execute(*entry.cls, *entry.def, 0);
      } catch (const CrashSignal& crash) {
        record(crash.event);
      }
    }
    device = nullptr;
    return std::move(result);
  }
};

Interpreter::Interpreter(const Apk& apk, const FrameworkRepository& repo)
    : impl_(std::make_unique<Impl>(apk, repo)) {}

Interpreter::~Interpreter() = default;

ExecutionResult Interpreter::run(const DeviceConfig& device) {
  return impl_->run(device);
}

}  // namespace saintdroid
