#include "core/arm.hpp"

#include <algorithm>
#include <deque>
#include <future>
#include <tuple>
#include <utility>
#include <vector>

#include "support/bytes.hpp"
#include "support/thread_pool.hpp"

#include "adf/spec.hpp"
#include "core/semantics.hpp"

namespace saintdroid {

namespace {

/// Direct permission enforcement: a const-string that reaches an
/// enforcePermission call within the same body. Our emitted framework puts
/// the two adjacent, but the miner tracks the register to stay robust.
std::vector<std::string> mine_direct_permissions(const DexFile& dex,
                                                 const MethodCode& code) {
  std::vector<std::string> perms;
  std::unordered_map<std::uint16_t, std::string> string_regs;
  for (const auto& insn : code.insns) {
    if (insn.op == Opcode::kConstString) {
      string_regs[insn.reg_a] = dex.string_at(insn.index);
    } else if (insn.op == Opcode::kInvoke) {
      const MethodId target = dex.method_id_at(insn.index);
      if (target.class_name == kPermissionEnforcerClass &&
          target.name == kPermissionEnforcerMethod && !insn.args.empty()) {
        const auto it = string_regs.find(insn.args.front());
        if (it != string_regs.end()) perms.push_back(it->second);
      }
    }
  }
  return perms;
}

/// Everything one level's scan contributes, in scan order, with no shared
/// state touched — the unit of work a pool worker produces. Deduplication
/// and map insertion happen only at merge time, on the calling thread, in
/// level order, so the mined database is bit-for-bit independent of how
/// many workers scanned.
struct MethodScan {
  MethodId id;
  bool dispatcher = false;
  std::vector<MethodId> callback_targets;  ///< dispatcher bodies only
  std::vector<std::string> direct_perms;   ///< raw, pre-dedup
  std::vector<MethodId> callees;           ///< instruction order, pre-dedup
};

struct LevelPartial {
  std::vector<std::string> class_names;
  std::vector<MethodScan> methods;
};

LevelPartial scan_level(const DexFile& image) {
  LevelPartial out;
  for (const auto& cls : image.classes()) {
    out.class_names.push_back(image.type_name(cls.type));
    for (const auto& m : cls.methods) {
      MethodScan scan;
      scan.id = image.method_id(cls, m);
      scan.dispatcher = scan.id.name == kCallbackDispatcherName;
      if (m.code) {
        if (scan.dispatcher) {
          // Callback mining: dispatcher bodies list the methods the
          // framework invokes on subclasses.
          for (const auto& insn : m.code->insns)
            if (insn.op == Opcode::kInvoke &&
                (insn.invoke_kind == InvokeKind::kVirtual ||
                 insn.invoke_kind == InvokeKind::kInterface))
              scan.callback_targets.push_back(image.method_id_at(insn.index));
        } else {
          // Permission mining: direct enforcement plus reverse call edges.
          scan.direct_perms = mine_direct_permissions(image, *m.code);
          for (const auto& insn : m.code->insns) {
            if (insn.op != Opcode::kInvoke) continue;
            MethodId callee = image.method_id_at(insn.index);
            if (callee.class_name == kPermissionEnforcerClass) continue;
            scan.callees.push_back(std::move(callee));
          }
        }
      }
      out.methods.push_back(std::move(scan));
    }
  }
  return out;
}

}  // namespace

ApiDatabase ApiDatabase::mine(const FrameworkRepository& repo, int jobs) {
  ApiDatabase db;

  // Union call graph across levels for transitive permission propagation.
  std::unordered_map<MethodId, std::vector<MethodId>> callers_of;
  std::unordered_map<MethodId, std::vector<std::string>> direct_perms;

  // Folds one level's partial into the database with exactly the insertion
  // sequence the serial miner used, so even unordered-map iteration orders
  // (which the permission closure below observes) match a serial mine.
  const auto merge_level = [&](int level, LevelPartial partial) {
    for (auto& name : partial.class_names)
      db.classes_.insert(std::move(name));
    for (auto& scan : partial.methods) {
      if (!scan.dispatcher) {
        db.presence_[scan.id] |= std::uint32_t{1} << level;
        db.method_names_.insert(scan.id.class_name + "|" + scan.id.name);
      } else {
        for (auto& target : scan.callback_targets)
          db.callbacks_.insert(std::move(target));
      }
      if (!scan.direct_perms.empty()) {
        auto& slot = direct_perms[scan.id];
        for (auto& p : scan.direct_perms) {
          if (std::find(slot.begin(), slot.end(), p) == slot.end())
            slot.push_back(std::move(p));
        }
      }
      for (auto& callee : scan.callees) {
        auto& callers = callers_of[callee];
        if (std::find(callers.begin(), callers.end(), scan.id) ==
            callers.end())
          callers.push_back(scan.id);
      }
    }
  };

  if (jobs <= 0) jobs = static_cast<int>(ThreadPool::default_workers());
  constexpr int kLevels = kMaxApiLevel - kMinApiLevel + 1;
  if (jobs > kLevels) jobs = kLevels;

  if (jobs <= 1) {
    for (int level = kMinApiLevel; level <= kMaxApiLevel; ++level)
      merge_level(level, scan_level(repo.image(level)));
  } else {
    // One task per level: workers scan (and, on a cold repository, build)
    // level images concurrently; the calling thread merges completed
    // partials strictly in level order. An image-build failure surfaces at
    // the lowest failing level's get(), matching the serial pass.
    ThreadPool pool{static_cast<std::size_t>(jobs)};
    std::vector<std::future<LevelPartial>> scans;
    scans.reserve(kLevels);
    for (int level = kMinApiLevel; level <= kMaxApiLevel; ++level)
      scans.push_back(pool.submit(
          [&repo, level] { return scan_level(repo.image(level)); }));
    for (int level = kMinApiLevel; level <= kMaxApiLevel; ++level)
      merge_level(level,
                  scans[static_cast<std::size_t>(level - kMinApiLevel)].get());
  }

  // Transitive closure: propagate each required permission backwards along
  // call edges (a caller requires what its callees require).
  std::deque<std::pair<MethodId, std::string>> worklist;
  for (const auto& [method, perms] : direct_perms)
    for (const auto& p : perms) worklist.emplace_back(method, p);
  std::unordered_map<MethodId, std::vector<std::string>> required =
      std::move(direct_perms);
  while (!worklist.empty()) {
    auto [method, perm] = std::move(worklist.front());
    worklist.pop_front();
    const auto it = callers_of.find(method);
    if (it == callers_of.end()) continue;
    for (const auto& caller : it->second) {
      auto& slot = required[caller];
      if (std::find(slot.begin(), slot.end(), perm) != slot.end()) continue;
      slot.push_back(perm);
      worklist.emplace_back(caller, perm);
    }
  }
  db.permissions_ = std::move(required);

  // The curated semantic-change table rides alongside the signature data.
  db.semantics_ = std::make_shared<const SemanticTable>(
      mine_semantic_table(repo.spec()));

  return db;
}

std::vector<std::uint8_t> ApiDatabase::serialize() const {
  ByteWriter w;
  w.u32(0x42444153);  // "SADB"
  w.u32(1);           // version

  // Canonical ordering so equal databases serialize identically.
  const auto sorted_methods = [](const auto& map) {
    std::vector<const MethodId*> keys;
    keys.reserve(map.size());
    for (const auto& [id, value] : map) keys.push_back(&id);
    std::sort(keys.begin(), keys.end(),
              [](const MethodId* a, const MethodId* b) {
                return std::tie(a->class_name, a->name, a->descriptor) <
                       std::tie(b->class_name, b->name, b->descriptor);
              });
    return keys;
  };
  const auto write_id = [&w](const MethodId& id) {
    w.str(id.class_name);
    w.str(id.name);
    w.str(id.descriptor);
  };

  w.uleb(presence_.size());
  for (const MethodId* id : sorted_methods(presence_)) {
    write_id(*id);
    w.u32(presence_.at(*id));
  }

  std::vector<const MethodId*> callbacks;
  callbacks.reserve(callbacks_.size());
  for (const auto& id : callbacks_) callbacks.push_back(&id);
  std::sort(callbacks.begin(), callbacks.end(),
            [](const MethodId* a, const MethodId* b) {
              return std::tie(a->class_name, a->name, a->descriptor) <
                     std::tie(b->class_name, b->name, b->descriptor);
            });
  w.uleb(callbacks.size());
  for (const MethodId* id : callbacks) write_id(*id);

  w.uleb(permissions_.size());
  for (const MethodId* id : sorted_methods(permissions_)) {
    write_id(*id);
    const auto& perms = permissions_.at(*id);
    std::vector<std::string> sorted_perms(perms.begin(), perms.end());
    std::sort(sorted_perms.begin(), sorted_perms.end());
    w.uleb(sorted_perms.size());
    for (const auto& p : sorted_perms) w.str(p);
  }

  std::vector<std::string> classes(classes_.begin(), classes_.end());
  std::sort(classes.begin(), classes.end());
  w.uleb(classes.size());
  for (const auto& c : classes) w.str(c);
  return w.take();
}

ApiDatabase ApiDatabase::parse(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  if (r.u32() != 0x42444153) throw ParseError("bad API database magic");
  if (r.u32() != 1) throw ParseError("unsupported API database version");

  const auto read_id = [&r] {
    MethodId id;
    id.class_name = r.str();
    id.name = r.str();
    id.descriptor = r.str();
    return id;
  };

  ApiDatabase db;
  const auto presence_count = r.count();
  db.presence_.reserve(presence_count);
  for (std::uint64_t i = 0; i < presence_count; ++i) {
    MethodId id = read_id();
    const std::uint32_t bits = r.u32();
    db.method_names_.insert(id.class_name + "|" + id.name);
    db.presence_.emplace(std::move(id), bits);
  }
  const auto callback_count = r.count();
  for (std::uint64_t i = 0; i < callback_count; ++i)
    db.callbacks_.insert(read_id());
  const auto perm_count = r.count();
  for (std::uint64_t i = 0; i < perm_count; ++i) {
    MethodId id = read_id();
    const auto n = r.count();
    std::vector<std::string> perms;
    perms.reserve(n);
    for (std::uint64_t j = 0; j < n; ++j) perms.push_back(r.str());
    db.permissions_.emplace(std::move(id), std::move(perms));
  }
  const auto class_count = r.count();
  for (std::uint64_t i = 0; i < class_count; ++i)
    db.classes_.insert(r.str());
  if (!r.at_end()) throw ParseError("trailing bytes after API database");
  return db;
}

bool ApiDatabase::contains(const MethodId& method, int level) const {
  const auto it = presence_.find(method);
  if (it == presence_.end()) return false;
  return (it->second >> level) & 1u;
}

std::optional<ApiInterval> ApiDatabase::defined_levels(
    const MethodId& method) const {
  const auto it = presence_.find(method);
  if (it == presence_.end()) return std::nullopt;
  const std::uint32_t bits = it->second;
  int lo = -1;
  int hi = -1;
  for (int level = kMinApiLevel; level <= kMaxApiLevel; ++level) {
    if ((bits >> level) & 1u) {
      if (lo < 0) lo = level;
      hi = level;
    }
  }
  if (lo < 0) return std::nullopt;
  return ApiInterval{lo, hi};
}

bool ApiDatabase::is_callback(const MethodId& method) const {
  return callbacks_.contains(method);
}

const std::vector<std::string>& ApiDatabase::permissions_for(
    const MethodId& method) const {
  static const std::vector<std::string> kNone;
  const auto it = permissions_.find(method);
  return it == permissions_.end() ? kNone : it->second;
}

bool ApiDatabase::is_known_class(const std::string& name) const {
  return classes_.contains(name);
}

bool ApiDatabase::class_has_method_named(const std::string& cls,
                                         const std::string& name) const {
  return method_names_.contains(cls + "|" + name);
}

const ApiDatabase& standard_api_database() {
  static const ApiDatabase db =
      ApiDatabase::mine(FrameworkRepository::standard());
  return db;
}

std::shared_ptr<const ApiDatabase> shared_api_database(
    const FrameworkRepository& repo) {
  if (&repo == &FrameworkRepository::standard()) {
    // Aliasing handle: the static database outlives every caller, so the
    // handle carries no ownership.
    return std::shared_ptr<const ApiDatabase>{std::shared_ptr<const void>{},
                                              &standard_api_database()};
  }
  return std::make_shared<const ApiDatabase>(ApiDatabase::mine(repo));
}

}  // namespace saintdroid
