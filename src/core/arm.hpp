// ARM — Android Revision Modeler (paper §III-B).
//
// Mines the per-level framework images into the API database the detectors
// query: (1) the lifecycle of every public framework method (which levels
// define it), (2) the callback set (methods the framework itself invokes on
// app subclasses — mined from dispatch invocations, not from documentation
// or hand-built models), and (3) the PScout-style permission map, including
// permissions required *transitively* through framework-internal call
// chains. The database is built once per framework and reused across every
// app analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adf/repository.hpp"
#include "dex/ids.hpp"
#include "support/interval.hpp"

namespace saintdroid {

class SemanticTable;

class ApiDatabase {
 public:
  /// Mines every level image of `repo`. `repo` must outlive the database.
  /// The per-level scan passes fan out over `jobs` pool workers (0 = one
  /// per hardware thread; <= 1 = serial); results are merged level-by-level
  /// in level order on the calling thread, so the mined database — down to
  /// hash-map iteration order — is identical at every jobs value.
  static ApiDatabase mine(const FrameworkRepository& repo, int jobs = 0);

  /// The database is "constructed once for a given framework ... as a
  /// reusable model" (§III-B): serialize/parse persist it so later runs
  /// skip the mining pass entirely. parse() validates and throws
  /// ParseError on corrupt input; serialize(parse(b)) == b.
  std::vector<std::uint8_t> serialize() const;
  static ApiDatabase parse(std::span<const std::uint8_t> bytes);

  /// Paper Algorithm 2 line 6: is `method` defined at `level`?
  bool contains(const MethodId& method, int level) const;

  /// The contiguous interval of levels defining `method`, or nullopt when
  /// the method is unknown to the framework entirely.
  std::optional<ApiInterval> defined_levels(const MethodId& method) const;

  /// True when the framework invokes `method` on app subclasses (mined
  /// callback set, the input to Algorithm 3).
  bool is_callback(const MethodId& method) const;

  /// Permissions required to execute `method`, directly or through
  /// framework-internal calls; empty when none.
  const std::vector<std::string>& permissions_for(const MethodId& method) const;

  /// The semantic-change table riding alongside the signature data
  /// (docs/DETECTORS.md §SEM). mine() attaches the table mined from the
  /// repository's spec; parse() leaves it unattached (the table travels as
  /// its own .sdmc kind — see core/model_cache — and the cache re-attaches
  /// it after both loads), so serialize() stays a pure function of the
  /// signature data and warm/cold database bytes compare equal.
  void attach_semantics(std::shared_ptr<const SemanticTable> table) {
    semantics_ = std::move(table);
  }
  const SemanticTable* semantics() const { return semantics_.get(); }
  std::shared_ptr<const SemanticTable> shared_semantics() const {
    return semantics_;
  }

  /// True when `name` is a class defined at any mined level.
  bool is_known_class(const std::string& name) const;

  /// Fast pre-filter: does `cls` declare any method named `name` at any
  /// level? Lets override scans skip descriptor construction for the
  /// overwhelming majority of app methods.
  bool class_has_method_named(const std::string& cls,
                              const std::string& name) const;

  // Introspection for reports and tests.
  std::size_t method_count() const { return presence_.size(); }
  std::size_t callback_count() const { return callbacks_.size(); }
  std::size_t permission_mapping_count() const { return permissions_.size(); }

 private:
  // Bit l set <=> method defined at level l. 32 bits cover levels 2..29.
  std::unordered_map<MethodId, std::uint32_t> presence_;
  std::unordered_set<MethodId> callbacks_;
  std::unordered_map<MethodId, std::vector<std::string>> permissions_;
  std::unordered_set<std::string> classes_;
  std::unordered_set<std::string> method_names_;  // "cls|name"
  std::shared_ptr<const SemanticTable> semantics_;
};

/// Process-wide database mined from FrameworkRepository::standard(); built
/// on first use.
const ApiDatabase& standard_api_database();

/// A shareable handle on the database for `repo`: the standard repository
/// borrows the process-wide standard_api_database() (non-owning aliasing
/// handle — no second mining pass, no copy), any other repository mines a
/// fresh owned database. The cheap default for components that accept an
/// injected database but are constructed without one (see the Lint and CID
/// baselines).
std::shared_ptr<const ApiDatabase> shared_api_database(
    const FrameworkRepository& repo);

}  // namespace saintdroid
