#include "core/aum.hpp"

#include <algorithm>
#include <deque>

#include "adf/spec.hpp"
#include "support/errors.hpp"

namespace saintdroid {

namespace {

bool interval_covers(ApiInterval outer, ApiInterval inner) {
  if (inner.empty()) return true;
  if (outer.empty()) return false;
  return outer.lo() <= inner.lo() && inner.hi() <= outer.hi();
}

/// Numeric call-site identity: the defining MethodDef is unique per method
/// for the analysis' lifetime, so pointer + instruction index identify a
/// site without string building.
std::uint64_t site_key(const MethodDef* def, std::uint32_t insn_index) {
  return reinterpret_cast<std::uintptr_t>(def) * 1000003ULL + insn_index;
}

/// Concretely evaluates a candidate SDK-check helper body at one device
/// level; nullopt when the body is not a trivial straight-line/branching
/// computation over constants and SDK_INT (the only shape we summarize).
std::optional<bool> run_predicate_at(const DexFile& dex,
                                     const MethodCode& code, int level) {
  const auto& insns = code.insns;
  std::vector<std::optional<std::int32_t>> regs(code.register_count);
  std::uint32_t pc = 0;
  for (int steps = 0; steps < 64; ++steps) {
    if (pc >= insns.size()) return std::nullopt;
    const Instruction& insn = insns[pc];
    switch (insn.op) {
      case Opcode::kNop:
        ++pc;
        break;
      case Opcode::kConst:
        if (insn.reg_a >= regs.size()) return std::nullopt;
        regs[insn.reg_a] = insn.literal;
        ++pc;
        break;
      case Opcode::kMove:
        if (insn.reg_a >= regs.size() || insn.reg_b >= regs.size())
          return std::nullopt;
        regs[insn.reg_a] = regs[insn.reg_b];
        ++pc;
        break;
      case Opcode::kSget:
        if (insn.reg_a >= regs.size()) return std::nullopt;
        if (!(dex.field_id_at(insn.index) == kSdkIntField))
          return std::nullopt;
        regs[insn.reg_a] = level;
        ++pc;
        break;
      case Opcode::kIfCmp: {
        if (insn.reg_a >= regs.size() || !regs[insn.reg_a])
          return std::nullopt;
        std::int32_t rhs;
        if (insn.cmp_with_literal) {
          rhs = insn.literal;
        } else {
          if (insn.reg_b >= regs.size() || !regs[insn.reg_b])
            return std::nullopt;
          rhs = *regs[insn.reg_b];
        }
        pc = eval_cmp(insn.cmp, *regs[insn.reg_a], rhs) ? insn.target : pc + 1;
        break;
      }
      case Opcode::kGoto:
        pc = insn.target;
        break;
      case Opcode::kReturn:
        if (insn.reg_a >= regs.size() || !regs[insn.reg_a])
          return std::nullopt;
        return *regs[insn.reg_a] != 0;
      default:
        return std::nullopt;  // anything else disqualifies the helper
    }
  }
  return std::nullopt;  // step cap: not a trivial helper
}

/// Summarizes a helper body as the contiguous interval of levels at which
/// it returns true; nullopt when any level fails to evaluate or the true
/// set is empty or non-contiguous.
std::optional<ApiInterval> evaluate_sdk_predicate(const DexFile& dex,
                                                  const MethodCode& code) {
  int lo = -1;
  int hi = -1;
  for (int level = kMinApiLevel; level <= kMaxApiLevel; ++level) {
    const auto outcome = run_predicate_at(dex, code, level);
    if (!outcome) return std::nullopt;
    if (*outcome) {
      if (lo < 0) lo = level;
      else if (hi != level - 1) return std::nullopt;  // non-contiguous
      hi = level;
    }
  }
  if (lo < 0) return std::nullopt;
  return ApiInterval{lo, hi};
}

}  // namespace

void ClassTrace::add_resolve(const MethodId& id) {
  if (resolve_seen_.insert(id).second) resolves.push_back(id);
}

void ClassTrace::add_walk_root(const MethodId& id) {
  if (walk_seen_.insert(id).second) walk_roots.push_back(id);
}

void ClassTrace::add_latebind(const std::string& type, int depth) {
  if (const auto [it, inserted] = latebind_index_.emplace(type, latebinds.size());
      inserted) {
    latebinds.push_back(TraceLatebind{type, depth});
  } else {
    auto& entry = latebinds[it->second];
    entry.depth = std::min(entry.depth, depth);
  }
}

void ClassTrace::add_edge(const MethodId& callee, ApiInterval context,
                          int depth) {
  if (const auto [it, inserted] = edge_index_.emplace(callee, edges.size());
      inserted) {
    edges.push_back(TraceEdge{callee, context, depth});
  } else {
    auto& entry = edges[it->second];
    entry.context = entry.context.hull(context);
    entry.depth = std::min(entry.depth, depth);
  }
}

Aum::Aum(ClassHierarchy& hierarchy, const ApiDatabase& db, AumOptions options,
         BudgetTracker* budget)
    : hierarchy_(&hierarchy), db_(&db), options_(options), budget_(budget) {}

const Cfg& Aum::cfg_for(const MethodDef& def) {
  auto& slot = cfg_cache_[&def];
  if (!slot) slot = std::make_unique<Cfg>(Cfg::build(*def.code));
  return *slot;
}

const Aum::RefResolution& Aum::resolve_ref(const DexFile& dex,
                                           std::uint32_t ref_idx) {
  auto& per_dex = ref_cache_[&dex];
  if (per_dex.empty()) per_dex.resize(dex.method_ref_count());
  auto& slot = per_dex[ref_idx];
  if (!slot) {
    slot = std::make_unique<RefResolution>();
    slot->declared = dex.method_id_at(ref_idx);
    slot->resolution = hierarchy_->resolve(
        slot->declared.class_name, slot->declared.name,
        slot->declared.descriptor);
  }
  // Recorded on every call, memo hits included: the trace must credit each
  // *class* with every resolution its methods perform, not only the one
  // that first populated the shared per-dex slot.
  if (trace_cls_ != nullptr) trace_cls_->add_resolve(slot->declared);
  return *slot;
}

std::optional<ApiInterval> Aum::predicate_for(const DexFile& dex,
                                              std::uint32_t ref_idx) {
  resolve_ref(dex, ref_idx);  // populate the slot
  RefResolution& slot = *ref_cache_[&dex][ref_idx];
  if (slot.predicate_computed) return slot.predicate;
  slot.predicate_computed = true;
  const auto& res = slot.resolution;
  if (!res || res->declaring_class->from_framework) return std::nullopt;
  const MethodDef* method = res->method;
  if (method == nullptr || !method->code) return std::nullopt;
  // Only no-argument static boolean helpers have a context-free summary.
  if ((method->access_flags & kAccStatic) == 0) return std::nullopt;
  if (slot.declared.descriptor != "()Z" && slot.declared.descriptor != "()I")
    return std::nullopt;
  slot.predicate =
      evaluate_sdk_predicate(*res->declaring_class->dex, *method->code);
  return slot.predicate;
}

void Aum::walk_framework(const MethodId& api, int depth) {
  if (depth >= options_.framework_walk_depth) return;
  if (auto [it, inserted] = framework_walked_.emplace(api, true); !inserted)
    return;
  const LoadedClass* cls = hierarchy_->load(api.class_name);
  if (!cls || !cls->from_framework) return;
  const MethodDef* method =
      hierarchy_->find_method_in(*cls, api.name, api.descriptor);
  if (!method || !method->code) return;
  for (const auto& insn : method->code->insns) {
    if (insn.op != Opcode::kInvoke) continue;
    const MethodId callee = cls->dex->method_id_at(insn.index);
    hierarchy_->load(callee.class_name);  // materialize what the ADF touches
    walk_framework(callee, depth + 1);
  }
}

// The two fast-path methods replay walk_framework over the substrate's
// precomputed graph. Load-for-load equivalence with the string path:
//   - the per-edge class load happens for every edge arrival in both paths
//     (walk_framework loads callee.class_name before recursing);
//   - walk_framework's load at recursion entry is always a cache hit — the
//     parent loop (or, for roots, resolve_ref) just loaded the same class —
//     except for callees the substrate does not own, where the first
//     arrival takes the full miss path (budget check, fault point). Those
//     keep walk_framework's exact bookkeeping: a framework_walked_ entry
//     plus the one extra load on first arrival.
void Aum::walk_root_fast(const MethodResolution& res) {
  if (options_.framework_walk_depth <= 0) return;
  const auto* entry = FrameworkSubstrate::entry_of(*res.declaring_class);
  if (entry == nullptr) {
    // Not substrate-owned (possible only if a provider mixes private
    // framework copies in): take the string path, which handles anything.
    walk_framework(res.id, 0);
    return;
  }
  // res.method points into the declaring class's definition, so the
  // parallel method table gives the MethodEntry by index.
  const auto& me = entry->methods[static_cast<std::size_t>(
      res.method - entry->cls.def->methods.data())];
  if (walked_fast_[me.slot]) return;
  walked_fast_[me.slot] = 1;
  walk_edges_fast(me, 0);
}

void Aum::walk_edges_fast(const FrameworkSubstrate::MethodEntry& me,
                          int depth) {
  for (const auto& edge : me.callees) {
    if (edge.target != nullptr)
      hierarchy_->load_framework(edge.target, edge.target_slot);
    else
      hierarchy_->load(edge.id->class_name);
    const int child_depth = depth + 1;
    if (child_depth >= options_.framework_walk_depth) continue;
    if (edge.target == nullptr) {
      // Outside the substrate: mirror walk_framework exactly — memoize the
      // identity and retry the load once (the recursion-entry load, a full
      // miss every time for a class that never materializes).
      if (framework_walked_.emplace(*edge.id, true).second)
        hierarchy_->load(edge.id->class_name);
      continue;
    }
    if (edge.resolved == nullptr) continue;  // target declares no such method
    if (walked_fast_[edge.resolved->slot]) continue;
    walked_fast_[edge.resolved->slot] = 1;
    walk_edges_fast(*edge.resolved, child_depth);
  }
}

void Aum::explore_method(const MethodWork& work, UsageModel& model) {
  // Incremental scope check: the dirty set is a forward closure over the
  // reference graph, so a scoped run can never legitimately reach a class
  // outside it. Arriving here anyway means the closure (or the cached
  // traces that seeded us) is stale — flag it so the caller discards the
  // run instead of serving facts computed from a broken premise.
  if (scope_ != nullptr && scope_->count(work.cls->name) == 0) {
    scope_violation_ = true;
    return;
  }
  const MethodDef& def = *work.def;
  if (!def.code || def.code->insns.empty()) return;

  // Memoize on the widest context analyzed so far.
  if (const auto it = analyzed_.find(&def); it != analyzed_.end()) {
    if (interval_covers(it->second, work.context)) return;
    it->second = it->second.hull(work.context);
  } else {
    analyzed_.emplace(&def, work.context);
    model.reachable_methods.push_back(
        work.cls->dex->method_id(*work.cls->def, def));
  }

  const DexFile& dex = *work.cls->dex;
  const MethodId caller = dex.method_id(*work.cls->def, def);
  // Route every recording below (including resolve_ref calls made from
  // inside the guard fixpoint's predicate lookups) to this class's trace.
  trace_cls_ =
      record_ != nullptr ? &record_->classes[caller.class_name] : nullptr;
  const Cfg& cfg = cfg_for(def);
  SdkPredicateLookup predicate_lookup;
  const SdkPredicateLookup* predicates = nullptr;
  if (options_.helper_predicates && options_.guards.enabled &&
      options_.guards.track_registers) {
    predicate_lookup = [this, &dex](std::uint32_t ref_idx) {
      return predicate_for(dex, ref_idx);
    };
    predicates = &predicate_lookup;
  }
  const GuardResult guards = analyze_guards(dex, *def.code, cfg,
                                            work.context, options_.guards,
                                            budget_, predicates);

  // Record recognized direct SDK_INT comparisons for the SDC lint,
  // deduplicated per site (context re-analysis replays the same branches).
  // A helper predicate's comparison is its *return value*, not a guard
  // over any action — `return SDK_INT >= N` is definitionally one-sided
  // over narrow app ranges, so collecting it would trip the vacuous-guard
  // lint on every helper-guarded app. Same shape test as predicate_for.
  const bool predicate_body =
      !guards.checks.empty() && (def.access_flags & kAccStatic) != 0 &&
      (caller.descriptor == "()Z" || caller.descriptor == "()I") &&
      evaluate_sdk_predicate(dex, *def.code).has_value();
  if (!predicate_body) {
    for (const auto& check : guards.checks) {
      if (guard_check_sites_.insert(site_key(&def, check.insn_index)).second)
        model.guard_checks.push_back(
            GuardCheck{caller, check.insn_index, check.cmp, check.literal});
    }
  }

  // Linear pre-pass tracking string constants per register, for
  // reflection-based late binding (Class.forName with a statically-known
  // name). Flow-insensitive within the method — conservative in the
  // direction the paper takes for dynamically-bound code.
  const auto& insns = def.code->insns;
  std::unordered_map<std::uint16_t, std::uint32_t> string_regs;  // reg -> string idx
  std::vector<std::uint32_t> string_at(insns.size(), kNoIndex);
  for (std::uint32_t i = 0; i < insns.size(); ++i) {
    const Instruction& insn = insns[i];
    if (insn.op == Opcode::kConstString) {
      string_regs[insn.reg_a] = insn.index;
    } else if (insn.op == Opcode::kInvoke && !insn.args.empty()) {
      if (const auto it = string_regs.find(insn.args.front());
          it != string_regs.end())
        string_at[i] = it->second;
    }
  }
  for (std::uint32_t i = 0; i < insns.size(); ++i) {
    const Instruction& insn = insns[i];
    const ApiInterval interval = guards.at(cfg, i);
    if (interval.empty()) continue;  // path-sensitively dead under context

    if (insn.op == Opcode::kLoadClass && options_.follow_late_binding) {
      // Late binding: conservatively analyze every method of the
      // statically-named class (paper §III-A).
      const std::string type = dex.type_name(insn.index);
      if (trace_cls_ != nullptr) trace_cls_->add_latebind(type, work.depth + 1);
      const LoadedClass* loaded = hierarchy_->load(type);
      if (loaded && !loaded->from_framework) {
        for (const auto& m : loaded->def->methods)
          worklist_.push_back(MethodWork{loaded, &m,
                                         ApiInterval::full(), work.depth + 1});
      }
      continue;
    }

    if (insn.op != Opcode::kInvoke) continue;
    const RefResolution& ref = resolve_ref(dex, insn.index);
    const MethodId& declared = ref.declared;
    const auto& resolution = ref.resolution;

    // Reflection-based late binding: Class.forName on a statically-known
    // name pulls the named class into the analysis, just like kLoadClass.
    if (options_.follow_late_binding &&
        declared.class_name == "java/lang/Class" &&
        declared.name == "forName" && string_at[i] != kNoIndex) {
      std::string type = dex.string_at(string_at[i]);
      std::replace(type.begin(), type.end(), '.', '/');
      if (trace_cls_ != nullptr) trace_cls_->add_latebind(type, work.depth + 1);
      const LoadedClass* loaded = hierarchy_->load(type);
      if (loaded && !loaded->from_framework) {
        for (const auto& m : loaded->def->methods)
          worklist_.push_back(
              MethodWork{loaded, &m, ApiInterval::full(), work.depth + 1});
      }
      continue;
    }

    if (resolution && resolution->declaring_class->from_framework) {
      // A framework API call (possibly reached via inheritance).
      const MethodId& api = resolution->id;
      if (api.name == "requestPermissions") {
        model.requests_runtime_permissions = true;
        if (trace_cls_ != nullptr)
          trace_cls_->requests_runtime_permissions = true;
      }

      const std::uint64_t key = site_key(&def, i);
      if (const auto it = api_site_index_.find(key);
          it != api_site_index_.end()) {
        auto& site = model.api_calls[it->second];
        site.guard = site.guard.hull(interval);
      } else {
        api_site_index_.emplace(key, model.api_calls.size());
        model.api_calls.push_back(
            ApiCallSite{caller, i, declared, api, interval});
      }

      for (const auto& permission : db_->permissions_for(api)) {
        auto& entries = perm_site_index_[key];
        bool found = false;
        for (auto& [perm, index] : entries) {
          if (perm != permission) continue;
          auto& use = model.permission_uses[index];
          use.guard = use.guard.hull(interval);
          found = true;
          break;
        }
        if (!found) {
          entries.emplace_back(permission, model.permission_uses.size());
          model.permission_uses.push_back(
              PermissionUse{caller, i, api, permission, interval});
        }
      }

      if (trace_cls_ != nullptr) trace_cls_->add_walk_root(declared);
      if (use_fast_walk_)
        walk_root_fast(*resolution);
      else
        walk_framework(api, 0);
      continue;
    }

    if (resolution) {
      // App-internal call: recurse under the site's guard context
      // (Algorithm 2 lines 8-9).
      if (work.depth >= options_.max_call_depth) continue;
      const ApiInterval child_context = options_.interprocedural_guards
                                            ? interval
                                            : work.context;
      if (trace_cls_ != nullptr)
        trace_cls_->add_edge(declared, child_context, work.depth + 1);
      worklist_.push_back(MethodWork{resolution->declaring_class,
                                     resolution->method, child_context,
                                     work.depth + 1});
      continue;
    }

    // Unresolved. If the declared receiver is a framework class, the
    // method may simply not exist in the image we analyze against (e.g.
    // introduced at a later level); the database still knows it.
    if (is_framework_class_name(declared.class_name) &&
        db_->defined_levels(declared)) {
      const std::uint64_t key = site_key(&def, i);
      if (const auto it = api_site_index_.find(key);
          it != api_site_index_.end()) {
        auto& site = model.api_calls[it->second];
        site.guard = site.guard.hull(interval);
      } else {
        api_site_index_.emplace(key, model.api_calls.size());
        model.api_calls.push_back(
            ApiCallSite{caller, i, declared, declared, interval});
      }
      for (const auto& permission : db_->permissions_for(declared)) {
        auto& entries = perm_site_index_[key];
        bool found = false;
        for (const auto& [perm, index] : entries)
          if (perm == permission) {
            found = true;
            break;
          }
        if (!found) {
          entries.emplace_back(permission, model.permission_uses.size());
          model.permission_uses.push_back(
              PermissionUse{caller, i, declared, permission, interval});
        }
      }
    }
    // Otherwise: statically-unknown target (e.g. code generated only at
    // runtime) — conservatively skipped, as the paper's tool does (§VI).
  }
}

void Aum::scan_entry_points(const Apk& apk, UsageModel& model,
                            const std::unordered_set<std::string>* dirty) {
  cfg_cache_.clear();
  analyzed_.clear();
  api_site_index_.clear();
  perm_site_index_.clear();
  guard_check_sites_.clear();
  framework_walked_.clear();
  ref_cache_.clear();
  worklist_.clear();
  trace_cls_ = nullptr;
  scope_violation_ = false;

  const FrameworkSubstrate* substrate = hierarchy_->substrate();
  use_fast_walk_ = substrate != nullptr && substrate->options().index_methods;
  walked_fast_.assign(use_fast_walk_ ? substrate->method_count() : 0, 0);

  const ApiInterval app_range =
      apk.manifest.supported_range().intersect(ApiInterval::full());

  // Enumerate the installed (main-dex) classes: detect overrides of
  // framework methods and collect the framework-invoked entry points.
  // An incremental run performs this scan in full — every load, every
  // override probe — so overrides/handles_permission_results are always
  // complete and the scan's class-loading footprint matches a full run;
  // only the *root pushes* are restricted to the dirty set.
  const DexFile& main_dex = apk.dexes.front();
  for (const auto& cls_def : main_dex.classes()) {
    const LoadedClass* cls = hierarchy_->load(main_dex.type_name(cls_def.type));
    if (!cls || cls->from_framework) continue;
    const bool in_scope = dirty == nullptr || dirty->count(cls->name) != 0;
    for (const auto& m : cls->def->methods) {
      std::optional<MethodId> overridden_id;
      if (const auto res = hierarchy_->overridden_framework_method(*cls, m)) {
        overridden_id = res->id;
      } else {
        // The declaration may not exist in the analysis-level image at all
        // (a callback introduced at a later level than the app targets);
        // Algorithm 3 consults the revision database across *all* levels,
        // so walk the ancestor chain and ask the database directly. The
        // descriptor is built lazily — only when an ancestor declares a
        // method of the same name at some level.
        const std::string& name = cls->dex->string_at(m.name);
        std::string descriptor;
        const LoadedClass* ancestor =
            cls->super_name.empty() ? nullptr
                                    : hierarchy_->load(cls->super_name);
        while (ancestor) {
          if (db_->class_has_method_named(ancestor->name, name)) {
            if (descriptor.empty())
              descriptor = cls->dex->descriptor_of(m.proto);
            const MethodId candidate{ancestor->name, name, descriptor};
            if (db_->defined_levels(candidate)) {
              overridden_id = candidate;
              break;
            }
          }
          if (ancestor->super_name.empty()) break;
          ancestor = hierarchy_->load(ancestor->super_name);
        }
      }
      if (!overridden_id) continue;
      const MethodId app_method = cls->dex->method_id(*cls->def, m);
      model.overrides.push_back(CallbackOverride{app_method, *overridden_id});
      if (overridden_id->name == "onRequestPermissionsResult")
        model.handles_permission_results = true;
      // Framework-invoked methods are exploration roots.
      if (in_scope) worklist_.push_back(MethodWork{cls, &m, app_range, 0});
    }
  }

  // Component classes: the framework instantiates them and drives their
  // lifecycle, so all their methods are roots.
  for (const auto& component : apk.manifest.components) {
    const LoadedClass* cls = hierarchy_->load(component.class_name);
    if (!cls || cls->from_framework) continue;
    if (dirty != nullptr && dirty->count(cls->name) == 0) continue;
    for (const auto& m : cls->def->methods)
      worklist_.push_back(MethodWork{cls, &m, app_range, 0});
  }
}

UsageModel Aum::model(const Apk& apk, ExplorationTrace* record) {
  record_ = record;
  scope_ = nullptr;

  UsageModel model;
  scan_entry_points(apk, model, nullptr);

  while (!worklist_.empty()) {
    if (budget_ && !budget_->allow_step()) break;
    const MethodWork work = worklist_.back();
    worklist_.pop_back();
    explore_method(work, model);
  }

  // Exhaustion anywhere — worklist steps, guard fixpoints, or the CLVM
  // class cap — leaves a truncated (still sound per-fact) model.
  if (budget_ && budget_->exhausted()) model.incomplete = true;

  record_ = nullptr;
  trace_cls_ = nullptr;
  return model;
}

UsageModel Aum::model_incremental(const Apk& apk,
                                  const IncrementalScope& scope,
                                  ExplorationTrace* record) {
  record_ = record;
  scope_ = scope.dirty;

  UsageModel model;
  scan_entry_points(apk, model, scope.dirty);

  // Re-seed the clean->dirty boundary from the prior run's traces: every
  // app-internal call edge and late-binding a clean class pushed into a
  // now-dirty class is pushed again, under the recorded (hulled) guard
  // context. The dirty set is a forward closure, so dirty classes can only
  // call dirty classes — these seeds plus the dirty roots reproduce every
  // worklist entry the full run would create inside the dirty region.
  for (const CleanClass& cc : scope.clean) {
    if (!cc.seed_candidate) continue;
    const ClassTrace& trace = *cc.trace;
    for (const auto& edge : trace.edges) {
      // Virtual resolution walks the callee's super/interface chain; when
      // that whole chain is clean it resolves exactly as the prior run did
      // (never into the dirty set, never into a new violation), so the
      // resolve is skipped here and its load side effects are reproduced
      // by the replay pass below. Removed callees are always dirty (their
      // referrers' fingerprints changed), so violations are never masked.
      if (scope.dirty_targets != nullptr &&
          scope.dirty_targets->count(edge.callee.class_name) == 0)
        continue;
      const auto res =
          hierarchy_->resolve(edge.callee.class_name, edge.callee.name,
                              edge.callee.descriptor);
      if (!res || res->declaring_class->from_framework) {
        // A clean caller's callee vanished without dirtying the caller:
        // the fingerprint diff missed an interface change. Unusable.
        scope_violation_ = true;
        continue;
      }
      if (scope.dirty->count(res->declaring_class->name) == 0) continue;
      worklist_.push_back(MethodWork{res->declaring_class, res->method,
                                     edge.context, edge.depth});
    }
    for (const auto& lb : trace.latebinds) {
      if (scope.dirty->count(lb.type) == 0) continue;
      const LoadedClass* loaded = hierarchy_->load(lb.type);
      if (!loaded || loaded->from_framework) continue;
      for (const auto& m : loaded->def->methods)
        worklist_.push_back(
            MethodWork{loaded, &m, ApiInterval::full(), lb.depth});
    }
  }

  while (!worklist_.empty()) {
    if (budget_ && !budget_->allow_step()) break;
    const MethodWork work = worklist_.back();
    worklist_.pop_back();
    explore_method(work, model);
  }

  // Replay the clean classes' load side effects. CLVM loads are memoized
  // and never released, so memory/budget accounting is a function of the
  // loaded *set*, not the load order: replaying each clean class's
  // resolutions, framework-walk roots, and late-binding loads after the
  // dirty fixpoint reproduces the full run's footprint exactly. No facts
  // are recorded here (the clean facts come from the cache) and no trace
  // is captured (the clean traces are kept as-is).
  record_ = nullptr;
  trace_cls_ = nullptr;
  for (const CleanClass& cc : scope.clean) {
    const ClassTrace& trace = *cc.trace;
    for (const auto& id : trace.resolves)
      hierarchy_->resolve(id.class_name, id.name, id.descriptor);
    for (const auto& id : trace.walk_roots) {
      const auto res = hierarchy_->resolve(id.class_name, id.name,
                                           id.descriptor);
      if (!res || !res->declaring_class->from_framework) {
        scope_violation_ = true;
        continue;
      }
      if (use_fast_walk_)
        walk_root_fast(*res);
      else
        walk_framework(res->id, 0);
    }
    for (const auto& lb : trace.latebinds) hierarchy_->load(lb.type);
  }

  if (budget_ && budget_->exhausted()) model.incomplete = true;

  scope_ = nullptr;
  return model;
}

}  // namespace saintdroid
