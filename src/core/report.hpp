// Mismatch and report types shared by SAINTDroid and all baselines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dex/ids.hpp"
#include "dex/instruction.hpp"
#include "support/interval.hpp"
#include "support/meter.hpp"

namespace saintdroid {

/// The mismatch taxonomy of paper Table I (PRM split into its two forms),
/// extended with the semantic-incompatibility and declared-SDK lint classes
/// (docs/DETECTORS.md).
enum class MismatchKind : std::uint8_t {
  kApiInvocation = 0,    ///< API: app invokes a method absent at some level
  kApiCallback,          ///< APC: app overrides a callback absent at some level
  kPermissionRequest,    ///< PRM: target >= 23 without runtime request protocol
  kPermissionRevocation, ///< PRM: target <= 22, revocable dangerous permission
  kSemanticChange,       ///< SEM: API behavior (not signature) changed in range
  kSdkDeclaration,       ///< SDC: declared SDK/permission facts inconsistent
};

const char* mismatch_kind_name(MismatchKind kind);
/// Abbreviation: API / APC / PRM (both permission forms map to PRM) /
/// SEM / SDC.
const char* mismatch_kind_abbr(MismatchKind kind);

/// Canonical rendering of an SDK_INT comparison, used as the subject
/// descriptor of vacuous-guard SDC findings ("<23", ">=29", ...). Shared
/// by the detector and the ground-truth ledger so their keys agree.
std::string sdk_guard_descriptor(CmpOp cmp, std::int32_t literal);

/// One detected incompatibility.
struct Mismatch {
  MismatchKind kind = MismatchKind::kApiInvocation;
  /// App method containing the problem (call site's method, or the
  /// overriding method for APC).
  MethodId location;
  /// Instruction index of the call site within `location` (0 for APC/PRM
  /// summaries).
  std::uint32_t insn_index = 0;
  /// The framework API involved: invoked method (API), overridden callback
  /// (APC), or the permission-requiring API (PRM).
  MethodId subject;
  /// Device API levels on which the app misbehaves.
  ApiInterval problem_levels;
  /// The dangerous permission (PRM kinds only).
  std::string permission;
  /// Free-form detail ("introduced at 23", "removed at 23", ...).
  std::string note;

  /// Join key for scoring against a GroundTruth ledger: identifies the
  /// issue irrespective of how the detector phrased it.
  std::string key() const;

  /// One-line human-readable rendering.
  std::string to_string() const;
};

/// Counters describing how the incremental analysis layer served one app
/// (all zero when no incremental cache is configured). Aggregated across
/// the per-level runs of analyze_versions.
struct IncrementalStats {
  /// Level runs that consulted an incremental cache at all.
  std::uint64_t attempted = 0;
  /// Level runs served by splicing cached clean-class facts.
  std::uint64_t hits = 0;
  /// Classes re-analyzed across all incremental hits.
  std::uint64_t dirty_classes = 0;
  /// Level runs that fell back to full analysis: no/invalid cache entry,
  /// manifest or options drift, an over-budget dirty frontier, a scoped
  /// run that lost its budget, or a scope violation.
  std::uint64_t fallbacks = 0;

  bool any() const {
    return (attempted | hits | dirty_classes | fallbacks) != 0;
  }

  IncrementalStats& operator+=(const IncrementalStats& other) {
    attempted += other.attempted;
    hits += other.hits;
    dirty_classes += other.dirty_classes;
    fallbacks += other.fallbacks;
    return *this;
  }
};

/// Outcome of one analyzer run on one app.
struct AnalysisResult {
  /// False when the tool failed on this app (crash, timeout, unbuildable
  /// source) — rendered as a dash in Table III.
  bool completed = true;
  std::string failure_reason;
  /// True when an analysis budget exhausted and the analyzer degraded to
  /// a partial exploration plus a flat-scan fallback: the run *completed*
  /// (completed stays true) but the report under-approximates what an
  /// unbudgeted run would find. incomplete_reason names the limit hit
  /// ("classes", "steps" or "deadline").
  bool incomplete = false;
  std::string incomplete_reason;
  std::vector<Mismatch> mismatches;
  ResourceUsage usage;
  /// How the incremental layer served this analysis (all-zero without one).
  IncrementalStats incremental;

  std::size_t count(MismatchKind kind) const;
  /// Count of both PRM forms together (the paper's PRM column).
  std::size_t permission_count() const;

  /// Multi-line report for the examples and tools.
  std::string to_text(const std::string& app_name) const;
};

}  // namespace saintdroid
