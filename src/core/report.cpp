#include "core/report.hpp"

#include <algorithm>
#include <sstream>

namespace saintdroid {

const char* mismatch_kind_name(MismatchKind kind) {
  switch (kind) {
    case MismatchKind::kApiInvocation: return "api-invocation";
    case MismatchKind::kApiCallback: return "api-callback";
    case MismatchKind::kPermissionRequest: return "permission-request";
    case MismatchKind::kPermissionRevocation: return "permission-revocation";
    case MismatchKind::kSemanticChange: return "semantic-change";
    case MismatchKind::kSdkDeclaration: return "sdk-declaration";
  }
  return "?";
}

const char* mismatch_kind_abbr(MismatchKind kind) {
  switch (kind) {
    case MismatchKind::kApiInvocation: return "API";
    case MismatchKind::kApiCallback: return "APC";
    case MismatchKind::kPermissionRequest:
    case MismatchKind::kPermissionRevocation:
      return "PRM";
    case MismatchKind::kSemanticChange: return "SEM";
    case MismatchKind::kSdkDeclaration: return "SDC";
  }
  return "?";
}

std::string sdk_guard_descriptor(CmpOp cmp, std::int32_t literal) {
  std::string out;
  switch (cmp) {
    case CmpOp::kEq: out = "=="; break;
    case CmpOp::kNe: out = "!="; break;
    case CmpOp::kLt: out = "<"; break;
    case CmpOp::kLe: out = "<="; break;
    case CmpOp::kGt: out = ">"; break;
    case CmpOp::kGe: out = ">="; break;
  }
  out += std::to_string(literal);
  return out;
}

std::string Mismatch::key() const {
  std::string k = mismatch_kind_name(kind);
  k += "|";
  k += location.to_string();
  k += "|";
  if (kind == MismatchKind::kPermissionRequest ||
      kind == MismatchKind::kPermissionRevocation) {
    k += permission;
  } else if (kind == MismatchKind::kSdkDeclaration) {
    // SDC findings are manifest-scoped: several distinct lints share an
    // empty location, so the subject AND the permission both join the key.
    k += subject.to_string();
    k += "|";
    k += permission;
  } else {
    k += subject.to_string();
  }
  return k;
}

std::string Mismatch::to_string() const {
  std::ostringstream out;
  out << "[" << mismatch_kind_abbr(kind) << "] " << location.to_string();
  switch (kind) {
    case MismatchKind::kApiInvocation:
      out << " invokes " << subject.to_string() << " missing on levels "
          << problem_levels.to_string();
      break;
    case MismatchKind::kApiCallback:
      out << " overrides " << subject.to_string() << " absent on levels "
          << problem_levels.to_string();
      break;
    case MismatchKind::kPermissionRequest:
      out << " uses " << permission
          << " without the runtime request protocol (levels "
          << problem_levels.to_string() << ")";
      break;
    case MismatchKind::kPermissionRevocation:
      out << " uses revocable " << permission << " on levels "
          << problem_levels.to_string();
      break;
    case MismatchKind::kSemanticChange:
      out << " invokes " << subject.to_string()
          << " whose behavior differs on levels "
          << problem_levels.to_string();
      break;
    case MismatchKind::kSdkDeclaration:
      out << " declaration " << subject.to_string();
      if (!permission.empty()) out << " " << permission;
      if (!problem_levels.empty())
        out << " (levels " << problem_levels.to_string() << ")";
      break;
  }
  if (!note.empty()) out << " — " << note;
  return out.str();
}

std::size_t AnalysisResult::count(MismatchKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(mismatches.begin(), mismatches.end(),
                    [kind](const Mismatch& m) { return m.kind == kind; }));
}

std::size_t AnalysisResult::permission_count() const {
  return count(MismatchKind::kPermissionRequest) +
         count(MismatchKind::kPermissionRevocation);
}

std::string AnalysisResult::to_text(const std::string& app_name) const {
  std::ostringstream out;
  out << "=== " << app_name << " ===\n";
  if (!completed) {
    out << "analysis failed: " << failure_reason << "\n";
    return out.str();
  }
  if (incomplete)
    out << "incomplete: analysis budget exhausted (" << incomplete_reason
        << "); partial report with flat-scan fallback\n";
  out << "mismatches: " << mismatches.size() << " (API "
      << count(MismatchKind::kApiInvocation) << ", APC "
      << count(MismatchKind::kApiCallback) << ", PRM " << permission_count();
  // The two lint families print only when present, so reports from apps
  // with none of them render exactly as they did before the families
  // existed.
  if (const auto sem = count(MismatchKind::kSemanticChange)) out << ", SEM " << sem;
  if (const auto sdc = count(MismatchKind::kSdkDeclaration)) out << ", SDC " << sdc;
  out << ")\n";
  for (const auto& m : mismatches) out << "  " << m.to_string() << "\n";
  out << "time: " << usage.seconds << "s, peak "
      << usage.peak_bytes / 1024 << " KiB, " << usage.loaded_classes
      << " classes loaded\n";
  return out.str();
}

}  // namespace saintdroid
