#include "core/amd.hpp"

#include <algorithm>
#include <unordered_set>

#include "adf/permissions.hpp"
#include "core/semantics.hpp"

namespace saintdroid {

Amd::Amd(const ApiDatabase& db, AmdOptions options)
    : db_(&db), options_(options) {}

std::vector<Mismatch> Amd::detect(const Manifest& manifest,
                                  const UsageModel& model) const {
  std::vector<Mismatch> out;
  if (options_.detect_api) {
    auto api = detect_invocations(manifest, model);
    out.insert(out.end(), api.begin(), api.end());
  }
  if (options_.detect_callbacks) {
    auto apc = detect_callbacks(manifest, model);
    out.insert(out.end(), apc.begin(), apc.end());
  }
  if (options_.detect_permissions) {
    auto prm = detect_permissions(manifest, model);
    out.insert(out.end(), prm.begin(), prm.end());
  }
  if (options_.detect_semantics) {
    auto sem = detect_semantics(manifest, model);
    out.insert(out.end(), sem.begin(), sem.end());
  }
  if (options_.detect_declarations) {
    auto sdc = detect_declarations(manifest, model);
    out.insert(out.end(), sdc.begin(), sdc.end());
  }
  return out;
}

std::vector<Mismatch> Amd::detect_invocations(const Manifest& manifest,
                                              const UsageModel& model) const {
  std::vector<Mismatch> out;
  const ApiInterval app_range =
      manifest.supported_range().intersect(ApiInterval::full());

  for (const auto& site : model.api_calls) {
    const auto defined = db_->defined_levels(site.resolved_target);
    if (!defined) continue;  // unknown to every mined level: cannot judge
    const ApiInterval exposed = app_range.intersect(site.guard);
    if (exposed.empty()) continue;  // guard fully protects the site

    // Backward mismatch: levels below the introduction.
    if (exposed.lo() < defined->lo()) {
      Mismatch m;
      m.kind = MismatchKind::kApiInvocation;
      m.location = site.caller;
      m.insn_index = site.insn_index;
      m.subject = site.resolved_target;
      m.problem_levels = ApiInterval{
          exposed.lo(), std::min(exposed.hi(), defined->lo() - 1)};
      m.note = "introduced at API level " + std::to_string(defined->lo());
      out.push_back(std::move(m));
    }
    // Forward mismatch: levels at/after removal.
    if (options_.detect_forward && exposed.hi() > defined->hi()) {
      Mismatch m;
      m.kind = MismatchKind::kApiInvocation;
      m.location = site.caller;
      m.insn_index = site.insn_index;
      m.subject = site.resolved_target;
      m.problem_levels = ApiInterval{
          std::max(exposed.lo(), defined->hi() + 1), exposed.hi()};
      m.note = "removed at API level " + std::to_string(defined->hi() + 1);
      out.push_back(std::move(m));
    }
  }
  return out;
}

std::vector<Mismatch> Amd::detect_callbacks(const Manifest& manifest,
                                            const UsageModel& model) const {
  std::vector<Mismatch> out;
  const ApiInterval app_range =
      manifest.supported_range().intersect(ApiInterval::full());

  for (const auto& ov : model.overrides) {
    if (!db_->is_callback(ov.framework_method)) continue;
    const auto defined = db_->defined_levels(ov.framework_method);
    if (!defined) continue;

    if (app_range.lo() < defined->lo()) {
      Mismatch m;
      m.kind = MismatchKind::kApiCallback;
      m.location = ov.app_method;
      m.subject = ov.framework_method;
      m.problem_levels = ApiInterval{
          app_range.lo(), std::min(app_range.hi(), defined->lo() - 1)};
      m.note = "callback introduced at API level " +
               std::to_string(defined->lo()) + "; never invoked below";
      out.push_back(std::move(m));
    }
    if (options_.detect_forward && app_range.hi() > defined->hi()) {
      Mismatch m;
      m.kind = MismatchKind::kApiCallback;
      m.location = ov.app_method;
      m.subject = ov.framework_method;
      m.problem_levels = ApiInterval{
          std::max(app_range.lo(), defined->hi() + 1), app_range.hi()};
      m.note = "callback removed at API level " +
               std::to_string(defined->hi() + 1) + "; never invoked after";
      out.push_back(std::move(m));
    }
  }
  return out;
}

std::vector<Mismatch> Amd::detect_permissions(const Manifest& manifest,
                                              const UsageModel& model) const {
  std::vector<Mismatch> out;
  const ApiInterval app_range =
      manifest.supported_range().intersect(ApiInterval::full());
  // Runtime permissions only exist on devices at level >= 23.
  const ApiInterval runtime_levels =
      app_range.intersect(ApiInterval{kRuntimePermissionLevel, kMaxApiLevel});
  if (runtime_levels.empty()) return out;

  const bool targets_runtime_system =
      manifest.target_sdk >= kRuntimePermissionLevel;
  // Algorithm 4 lines 6-9: an app that both handles the permission result
  // callback and issues runtime requests implements the new protocol.
  const bool implements_protocol =
      model.handles_permission_results && model.requests_runtime_permissions;
  if (targets_runtime_system && implements_protocol) return out;

  // Algorithm 4 line 2: the dangerous permissions the manifest requests.
  std::unordered_set<std::string> manifest_dangerous;
  for (const auto& p : manifest.permissions)
    if (is_dangerous_permission(p)) manifest_dangerous.insert(p);
  if (manifest_dangerous.empty()) return out;

  // One mismatch per distinct dangerous permission actually used (all uses
  // of one permission share the same fix; the paper reports them this way).
  std::unordered_set<std::string> reported;
  for (const auto& use : model.permission_uses) {
    if (!manifest_dangerous.contains(use.permission)) continue;
    const ApiInterval exposed = use.guard.intersect(runtime_levels);
    if (exposed.empty()) continue;  // only reachable on pre-23 devices
    if (!reported.insert(use.permission).second) continue;

    Mismatch m;
    m.location = use.caller;
    m.insn_index = use.insn_index;
    m.subject = use.api;
    m.permission = use.permission;
    m.problem_levels = exposed;
    if (targets_runtime_system) {
      m.kind = MismatchKind::kPermissionRequest;
      m.note = "targets API " + std::to_string(manifest.target_sdk) +
               " but never requests the permission at runtime";
    } else {
      m.kind = MismatchKind::kPermissionRevocation;
      m.note = "targets API " + std::to_string(manifest.target_sdk) +
               "; the user can revoke the permission on >=23 devices";
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Mismatch> Amd::detect_semantics(const Manifest& manifest,
                                            const UsageModel& model) const {
  std::vector<Mismatch> out;
  const SemanticTable* table = db_->semantics();
  if (table == nullptr || table->size() == 0) return out;
  const ApiInterval app_range =
      manifest.supported_range().intersect(ApiInterval::full());

  // Same exposure logic as Algorithm 2, with the semantic-change window in
  // place of the lifecycle: a site is a SEM mismatch when, on some level it
  // may execute under, the called API behaves differently than the app's
  // baseline expectation.
  for (const auto& site : model.api_calls) {
    const auto rows = table->changes_for(site.resolved_target);
    if (rows.empty()) continue;
    const ApiInterval exposed = app_range.intersect(site.guard);
    if (exposed.empty()) continue;  // guard fully protects the site
    for (const auto& row : rows) {
      const ApiInterval overlap = exposed.intersect(row.levels);
      if (overlap.empty()) continue;
      Mismatch m;
      m.kind = MismatchKind::kSemanticChange;
      m.location = site.caller;
      m.insn_index = site.insn_index;
      m.subject = site.resolved_target;
      m.problem_levels = overlap;
      m.note = row.kind + ": " + row.note;
      out.push_back(std::move(m));
    }
  }
  return out;
}

std::vector<Mismatch> Amd::detect_declarations(const Manifest& manifest,
                                               const UsageModel& model) const {
  std::vector<Mismatch> out;
  const ApiInterval app_range =
      manifest.supported_range().intersect(ApiInterval::full());

  // Lint 1: a declared range that contradicts itself. Manifest-only, so it
  // holds even for an incomplete usage model.
  {
    std::string reason;
    if (manifest.target_sdk < manifest.min_sdk)
      reason = "targetSdk " + std::to_string(manifest.target_sdk) +
               " below minSdk " + std::to_string(manifest.min_sdk);
    else if (manifest.max_sdk != 0 && manifest.max_sdk < manifest.min_sdk)
      reason = "maxSdk " + std::to_string(manifest.max_sdk) +
               " below minSdk " + std::to_string(manifest.min_sdk);
    else if (manifest.max_sdk != 0 && manifest.max_sdk < manifest.target_sdk)
      reason = "maxSdk " + std::to_string(manifest.max_sdk) +
               " below targetSdk " + std::to_string(manifest.target_sdk);
    if (!reason.empty()) {
      Mismatch m;
      m.kind = MismatchKind::kSdkDeclaration;
      m.subject = MethodId{"", "declared-range", ""};
      m.note = "inconsistent declared SDK range: " + reason;
      out.push_back(std::move(m));
    }
  }

  // The remaining lints assert the *absence* of usage facts, so a model
  // truncated by a budget or degraded to the flat fallback (which gathers
  // no permission uses and no guard checks) must not raise them.
  if (model.incomplete) return out;

  // Lint 2: over-declared dangerous permissions — requested in the
  // manifest, demanded by no reachable API call. Manifest order.
  {
    std::unordered_set<std::string> used;
    for (const auto& use : model.permission_uses) used.insert(use.permission);
    for (const auto& p : manifest.permissions) {
      if (!is_dangerous_permission(p) || used.contains(p)) continue;
      Mismatch m;
      m.kind = MismatchKind::kSdkDeclaration;
      m.subject = MethodId{"", "unused-permission", ""};
      m.permission = p;
      m.note = "dangerous permission declared but demanded by no reachable "
               "API call";
      out.push_back(std::move(m));
    }
  }

  // Lint 3: vacuous SDK_INT guards — comparisons that decide the same way
  // on every level the declared range admits. Exact per-level evaluation
  // (refine_interval over-approximates kNe mid-range). An empty declared
  // range makes vacuity meaningless, so it is skipped.
  if (app_range.empty()) return out;
  for (const auto& check : model.guard_checks) {
    int satisfied = 0;
    for (int level = app_range.lo(); level <= app_range.hi(); ++level)
      if (eval_cmp(check.cmp, level, check.literal)) ++satisfied;
    if (satisfied != 0 && satisfied != app_range.size()) continue;
    Mismatch m;
    m.kind = MismatchKind::kSdkDeclaration;
    m.location = check.method;
    m.insn_index = check.insn_index;
    m.subject = MethodId{"android/os/Build$VERSION", "SDK_INT",
                         sdk_guard_descriptor(check.cmp, check.literal)};
    m.problem_levels = app_range;
    m.note = std::string{"SDK_INT check is always "} +
             (satisfied == 0 ? "false" : "true") + " on the declared range " +
             app_range.to_string();
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace saintdroid
