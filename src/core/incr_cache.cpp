#include "core/incr_cache.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>

#include "adf/spec.hpp"
#include "support/bytes.hpp"
#include "support/errors.hpp"
#include "support/sdmc.hpp"

namespace saintdroid {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

// ---------------------------------------------------------------------------
// Fingerprinting
//
// Class hashes are *symbolic* (pool-index-free): re-serializing an
// unchanged class over a shuffled pool must hash identically, so every
// operand is resolved through the pools. Resolving per instruction — the
// obvious encoding — costs more than the analysis the fingerprint guards,
// so each pool entry's hash is precomputed once per dex and the per-
// instruction work collapses to a few word mixes. One traversal produces
// the content hash, the interface hash, and the reference edges together.

std::uint64_t hash_chars(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  // Length is folded in so "ab"+"c" and "a"+"bc" cannot collide when the
  // pieces are concatenated by the caller.
  h ^= s.size();
  return h * kFnvPrime;
}

/// Order-sensitive word mixer (SplitMix64 finalizer per word).
struct WordMix {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  void word(std::uint64_t v) {
    std::uint64_t z = h ^ v;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = (z ^ (z >> 31)) + 0x9e3779b97f4a7c15ULL;
  }
};

/// Per-dex pool hashes, shared by every class in the dex.
struct PoolHashes {
  std::vector<std::uint64_t> str, type, desc, method, field;

  explicit PoolHashes(const DexFile& dex) {
    str.reserve(dex.string_count());
    for (std::uint32_t i = 0; i < dex.string_count(); ++i)
      str.push_back(hash_chars(dex.string_at(i)));
    type.reserve(dex.type_count());
    for (std::uint32_t i = 0; i < dex.type_count(); ++i)
      type.push_back(hash_chars(dex.type_name(i)));
    desc.reserve(dex.proto_count());
    for (std::uint32_t i = 0; i < dex.proto_count(); ++i)
      desc.push_back(hash_chars(dex.descriptor_of(i)));
    method.reserve(dex.method_ref_count());
    for (std::uint32_t i = 0; i < dex.method_ref_count(); ++i) {
      const MethodRef& ref = dex.method_ref_at(i);
      WordMix m;
      m.word(type[ref.class_type]);
      m.word(str[ref.name]);
      m.word(desc[ref.proto]);
      method.push_back(m.h);
    }
    field.reserve(dex.field_ref_count());
    for (std::uint32_t i = 0; i < dex.field_ref_count(); ++i) {
      const FieldRef& ref = dex.field_ref_at(i);
      WordMix m;
      m.word(type[ref.class_type]);
      m.word(str[ref.name]);
      m.word(type[ref.type]);
      field.push_back(m.h);
    }
  }
};

/// Callers' guard analyses summarize the bodies of trivial SDK-check
/// helpers (static ()Z/()I), so those bodies are part of a class's
/// observable interface.
bool predicate_eligible(const DexFile& dex, const MethodDef& m) {
  if ((m.access_flags & kAccStatic) == 0 || !m.code.has_value()) return false;
  const Proto& proto = dex.proto_at(m.proto);
  if (!proto.param_types.empty()) return false;
  const std::string& ret = dex.type_name(proto.return_type);
  return ret == "Z" || ret == "I";
}

/// Hashes one body and collects its outgoing reference operands (type-pool
/// indices for invoke/field/new/load targets, string-pool indices for
/// const-string Class.forName candidates).
std::uint64_t body_hash(const DexFile& dex, const PoolHashes& ph,
                        const MethodCode& code,
                        std::vector<std::uint32_t>& type_refs,
                        std::vector<std::uint32_t>& string_refs) {
  WordMix m;
  m.word(code.register_count);
  m.word(code.insns.size());
  for (const auto& insn : code.insns) {
    m.word(static_cast<std::uint64_t>(insn.op) |
           static_cast<std::uint64_t>(insn.cmp) << 8 |
           static_cast<std::uint64_t>(insn.invoke_kind) << 16 |
           static_cast<std::uint64_t>(insn.cmp_with_literal ? 1 : 0) << 24 |
           static_cast<std::uint64_t>(insn.reg_a) << 32 |
           static_cast<std::uint64_t>(insn.reg_b) << 48);
    m.word(static_cast<std::uint64_t>(insn.literal));
    m.word(static_cast<std::uint64_t>(insn.target) |
           static_cast<std::uint64_t>(insn.args.size()) << 32);
    for (const std::uint16_t arg : insn.args) m.word(arg);
    switch (insn.op) {
      case Opcode::kConstString:
        m.word(ph.str[insn.index]);
        string_refs.push_back(insn.index);
        break;
      case Opcode::kSget:
      case Opcode::kSput:
      case Opcode::kIget:
      case Opcode::kIput:
        m.word(ph.field[insn.index]);
        type_refs.push_back(dex.field_ref_at(insn.index).class_type);
        break;
      case Opcode::kInvoke:
        m.word(ph.method[insn.index]);
        type_refs.push_back(dex.method_ref_at(insn.index).class_type);
        break;
      case Opcode::kNewInstance:
      case Opcode::kLoadClass:
        m.word(ph.type[insn.index]);
        type_refs.push_back(insn.index);
        break;
      default:
        m.word(insn.index);
        break;
    }
  }
  return m.h;
}

void add_ref(std::vector<std::string>& refs, std::string name) {
  if (name.empty() || is_framework_class_name(name)) return;
  refs.push_back(std::move(name));
}

/// Single-pass class fingerprint: content hash (full bodies), interface
/// hash (shape + predicate-eligible bodies), and reference edges.
ClassFingerprint fingerprint_class(const DexFile& dex, const PoolHashes& ph,
                                   const ClassDef& cls) {
  ClassFingerprint fp;
  WordMix content, iface;
  const auto both = [&](std::uint64_t v) {
    content.word(v);
    iface.word(v);
  };
  both(ph.type[cls.type]);
  both(cls.super_type == kNoIndex ? 0 : ph.type[cls.super_type]);
  both(cls.interfaces.size());
  for (const std::uint32_t idx : cls.interfaces) both(ph.type[idx]);
  both(cls.access_flags);
  both(cls.methods.size());

  std::vector<std::uint32_t> type_refs;
  std::vector<std::uint32_t> string_refs;
  for (const auto& m : cls.methods) {
    both(ph.str[m.name]);
    both(ph.desc[m.proto]);
    both(m.access_flags);
    const bool iface_body = predicate_eligible(dex, m);
    both(static_cast<std::uint64_t>(m.code.has_value() ? 1 : 0) |
         static_cast<std::uint64_t>(iface_body ? 2 : 0));
    if (m.code.has_value()) {
      const std::uint64_t bh =
          body_hash(dex, ph, *m.code, type_refs, string_refs);
      content.word(bh);
      if (iface_body) iface.word(bh);
    }
  }
  fp.content = content.h;
  fp.iface = iface.h;

  fp.super_name = cls.super_type == kNoIndex ? std::string{}
                                             : dex.type_name(cls.super_type);
  for (const std::uint32_t idx : cls.interfaces)
    fp.interfaces.push_back(dex.type_name(idx));

  // Materialize reference names once per *unique* operand index.
  std::sort(type_refs.begin(), type_refs.end());
  type_refs.erase(std::unique(type_refs.begin(), type_refs.end()),
                  type_refs.end());
  std::sort(string_refs.begin(), string_refs.end());
  string_refs.erase(std::unique(string_refs.begin(), string_refs.end()),
                    string_refs.end());
  if (cls.super_type != kNoIndex)
    add_ref(fp.refs, dex.type_name(cls.super_type));
  for (const std::uint32_t idx : cls.interfaces)
    add_ref(fp.refs, dex.type_name(idx));
  for (const std::uint32_t idx : type_refs) add_ref(fp.refs, dex.type_name(idx));
  for (const std::uint32_t idx : string_refs) {
    // Any string constant is a potential Class.forName target; edges to
    // names that denote no app class are pruned by the caller.
    std::string name = dex.string_at(idx);
    std::replace(name.begin(), name.end(), '.', '/');
    add_ref(fp.refs, std::move(name));
  }
  std::sort(fp.refs.begin(), fp.refs.end());
  fp.refs.erase(std::unique(fp.refs.begin(), fp.refs.end()), fp.refs.end());
  return fp;
}

// ---------------------------------------------------------------------------
// Dirty-set computation

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

using FingerprintView =
    std::unordered_map<std::string, const ClassFingerprint*>;

/// Effective interface fingerprints: the raw interface hash Merkle-mixed
/// through the app-internal super/interface chain, so a parent's interface
/// change surfaces in every transitive subtype (resolution walks chains).
class EffectiveIface {
 public:
  explicit EffectiveIface(const FingerprintView& side) : side_(&side) {}

  std::uint64_t of(const std::string& name) {
    const auto found = side_->find(name);
    if (found == side_->end()) return 0;  // framework / absent: stable
    if (const auto memo = memo_.find(name); memo != memo_.end())
      return memo->second;
    if (!in_progress_.insert(name).second)
      return found->second->iface;  // defensive cycle break
    const ClassFingerprint& fp = *found->second;
    std::uint64_t h = mix(kFnvOffset, fp.iface);
    if (!fp.super_name.empty() && side_->count(fp.super_name) != 0)
      h = mix(h, of(fp.super_name));
    for (const auto& iface : fp.interfaces)
      if (side_->count(iface) != 0) h = mix(h, of(iface));
    in_progress_.erase(name);
    memo_.emplace(name, h);
    return h;
  }

 private:
  const FingerprintView* side_;
  std::unordered_map<std::string, std::uint64_t> memo_;
  std::unordered_set<std::string> in_progress_;
};

}  // namespace

ApkFingerprints fingerprint_apk(const Apk& apk) {
  ApkFingerprints out;
  for (const auto& dex : apk.dexes) {
    const PoolHashes ph{dex};
    for (const auto& cls : dex.classes()) {
      const std::string& name = dex.type_name(cls.type);
      if (out.count(name) != 0) continue;  // first definition wins
      out.emplace(name, fingerprint_class(dex, ph, cls));
    }
  }
  // Prune edges to names that denote no class of this apk: the dirty
  // closure only ever walks names present on one side of the diff, so
  // spurious const-string edges and dangling targets carry no information
  // — dropping them shrinks entries and every later pass over the refs.
  // (Edges into *removed* classes survive on the cached side, whose refs
  // were pruned against the old class set — exactly the side the union
  // graph needs them from.)
  for (auto& [name, fp] : out) {
    std::erase_if(fp.refs, [&](const std::string& ref) {
      return out.count(ref) == 0;
    });
  }
  return out;
}

std::uint64_t manifest_fingerprint(const Manifest& manifest) {
  ByteWriter w;
  manifest.serialize(w);
  return sdmc_checksum(w.data());
}

std::uint64_t aum_options_fingerprint(const AumOptions& options) {
  ByteWriter w;
  w.u8(1);  // fingerprint schema version
  w.u8(options.guards.enabled ? 1 : 0);
  w.u8(options.guards.track_registers ? 1 : 0);
  w.u8(options.guards.track_fields ? 1 : 0);
  w.u8(options.interprocedural_guards ? 1 : 0);
  w.u8(options.follow_late_binding ? 1 : 0);
  w.u8(options.helper_predicates ? 1 : 0);
  w.sleb(options.framework_walk_depth);
  w.sleb(options.max_call_depth);
  return sdmc_checksum(w.data());
}

DirtyDelta compute_dirty(const IncrEntry& cached,
                         const ApkFingerprints& fresh) {
  FingerprintView old_view;
  for (const auto& [name, cc] : cached.classes)
    old_view.emplace(name, &cc.fingerprint);
  FingerprintView new_view;
  for (const auto& [name, fp] : fresh) new_view.emplace(name, &fp);

  // Every class name on either side, each with its union edge set.
  std::unordered_map<std::string, std::vector<const std::vector<std::string>*>>
      edges;
  for (const auto& [name, fp] : old_view) edges[name].push_back(&fp->refs);
  for (const auto& [name, fp] : new_view) edges[name].push_back(&fp->refs);

  EffectiveIface old_eff{old_view};
  EffectiveIface new_eff{new_view};

  std::unordered_set<std::string> changed;
  std::unordered_set<std::string> iface_changed;
  for (const auto& [name, unused] : edges) {
    const auto old_it = old_view.find(name);
    const auto new_it = new_view.find(name);
    if (old_it == old_view.end() || new_it == new_view.end()) {
      changed.insert(name);  // added or removed
      iface_changed.insert(name);
      continue;
    }
    if (old_it->second->content != new_it->second->content)
      changed.insert(name);
    if (old_eff.of(name) != new_eff.of(name)) iface_changed.insert(name);
  }

  DirtyDelta delta;
  delta.total_classes = fresh.size();

  // Seed: changed classes, plus the one-level referrers of every
  // interface-changed class (their resolution outcomes and predicate
  // summaries may differ). The forward closure below then covers every
  // class any dirty class can push work into.
  std::deque<std::string> queue;
  const auto seed = [&](const std::string& name) {
    if (delta.dirty.insert(name).second) queue.push_back(name);
  };
  for (const auto& name : changed) seed(name);
  if (!iface_changed.empty()) {
    for (const auto& [name, ref_sets] : edges) {
      bool referrer = false;
      for (const auto* refs : ref_sets) {
        for (const auto& target : *refs)
          if (iface_changed.count(target) != 0) {
            referrer = true;
            break;
          }
        if (referrer) break;
      }
      if (referrer) seed(name);
    }
  }

  while (!queue.empty()) {
    const std::string name = std::move(queue.front());
    queue.pop_front();
    const auto it = edges.find(name);
    if (it == edges.end()) continue;
    for (const auto* refs : it->second)
      for (const auto& target : *refs)
        if (edges.count(target) != 0) seed(target);
  }
  return delta;
}

// ---------------------------------------------------------------------------
// Fact partitioning and splicing

void partition_model_facts(const UsageModel& model,
                           std::map<std::string, CachedClassFacts>& by_class) {
  for (const auto& site : model.api_calls)
    by_class[site.caller.class_name].api_calls.push_back(site);
  for (const auto& use : model.permission_uses)
    by_class[use.caller.class_name].permission_uses.push_back(use);
  for (const auto& check : model.guard_checks)
    by_class[check.method.class_name].guard_checks.push_back(check);
  for (const auto& method : model.reachable_methods)
    by_class[method.class_name].reachable_methods.push_back(method);
}

void splice_clean_facts(const IncrEntry& cached,
                        const std::unordered_set<std::string>& dirty,
                        UsageModel& model) {
  for (const auto& [name, cc] : cached.classes) {
    if (dirty.count(name) != 0) continue;
    const CachedClassFacts& facts = cc.facts;
    model.api_calls.insert(model.api_calls.end(), facts.api_calls.begin(),
                           facts.api_calls.end());
    model.permission_uses.insert(model.permission_uses.end(),
                                 facts.permission_uses.begin(),
                                 facts.permission_uses.end());
    model.guard_checks.insert(model.guard_checks.end(),
                              facts.guard_checks.begin(),
                              facts.guard_checks.end());
    model.reachable_methods.insert(model.reachable_methods.end(),
                                   facts.reachable_methods.begin(),
                                   facts.reachable_methods.end());
    if (cc.trace.requests_runtime_permissions)
      model.requests_runtime_permissions = true;
  }
}

IncrEntry make_incr_entry(std::string app, std::uint64_t manifest_fp,
                          std::uint64_t options_fp,
                          const ApkFingerprints& fingerprints,
                          const ExplorationTrace& trace,
                          const UsageModel& model) {
  IncrEntry entry;
  entry.app = std::move(app);
  entry.manifest_fp = manifest_fp;
  entry.options_fp = options_fp;
  std::map<std::string, CachedClassFacts> facts;
  partition_model_facts(model, facts);
  for (const auto& [name, fp] : fingerprints) {
    CachedClass cc;
    cc.fingerprint = fp;
    if (const auto it = trace.classes.find(name); it != trace.classes.end())
      cc.trace = it->second;
    if (const auto it = facts.find(name); it != facts.end())
      cc.facts = std::move(it->second);
    entry.classes.emplace(name, std::move(cc));
  }
  return entry;
}

IncrEntry update_incr_entry(const IncrEntry& cached,
                            const std::unordered_set<std::string>& dirty,
                            const ApkFingerprints& fingerprints,
                            const ExplorationTrace& dirty_trace,
                            const UsageModel& scoped_model) {
  IncrEntry entry;
  entry.app = cached.app;
  entry.manifest_fp = cached.manifest_fp;
  entry.options_fp = cached.options_fp;
  std::map<std::string, CachedClassFacts> facts;
  partition_model_facts(scoped_model, facts);
  for (const auto& [name, fp] : fingerprints) {
    if (dirty.count(name) == 0) {
      // Clean: carry the cached record forward (fingerprints are equal by
      // definition of clean; the cached one is authoritative).
      const auto it = cached.classes.find(name);
      if (it != cached.classes.end()) {
        entry.classes.emplace(name, it->second);
        continue;
      }
      // A clean class absent from the cache would have been classified as
      // added (hence dirty); reaching here means the diff is inconsistent —
      // store a bare record so the next run sees it as clean-but-factless
      // only if it also records nothing, which is safe (empty facts for an
      // unexplored class are exact).
    }
    CachedClass cc;
    cc.fingerprint = fp;
    if (const auto it = dirty_trace.classes.find(name);
        it != dirty_trace.classes.end())
      cc.trace = it->second;
    if (const auto it = facts.find(name); it != facts.end())
      cc.facts = std::move(it->second);
    entry.classes.emplace(name, std::move(cc));
  }
  return entry;
}

// ---------------------------------------------------------------------------
// Entry codec

namespace {

void write_method_id(ByteWriter& w, const MethodId& id) {
  w.str(id.class_name);
  w.str(id.name);
  w.str(id.descriptor);
}

MethodId read_method_id(ByteReader& r) {
  MethodId id;
  id.class_name = r.str();
  id.name = r.str();
  id.descriptor = r.str();
  return id;
}

void write_interval(ByteWriter& w, ApiInterval interval) {
  w.sleb(interval.lo());
  w.sleb(interval.hi());
}

ApiInterval read_interval(ByteReader& r) {
  const std::int64_t lo = r.sleb();
  const std::int64_t hi = r.sleb();
  if (lo < -1000 || lo > 1000 || hi < -1000 || hi > 1000)
    throw ParseError("incr entry: implausible interval bound");
  return ApiInterval{static_cast<int>(lo), static_cast<int>(hi)};
}

int read_depth(ByteReader& r) {
  const std::uint64_t depth = r.uleb();
  if (depth > 1u << 20) throw ParseError("incr entry: implausible depth");
  return static_cast<int>(depth);
}

void write_facts(ByteWriter& w, const CachedClassFacts& facts) {
  w.uleb(facts.api_calls.size());
  for (const auto& site : facts.api_calls) {
    write_method_id(w, site.caller);
    w.uleb(site.insn_index);
    write_method_id(w, site.declared_target);
    write_method_id(w, site.resolved_target);
    write_interval(w, site.guard);
  }
  w.uleb(facts.permission_uses.size());
  for (const auto& use : facts.permission_uses) {
    write_method_id(w, use.caller);
    w.uleb(use.insn_index);
    write_method_id(w, use.api);
    w.str(use.permission);
    write_interval(w, use.guard);
  }
  w.uleb(facts.guard_checks.size());
  for (const auto& check : facts.guard_checks) {
    write_method_id(w, check.method);
    w.uleb(check.insn_index);
    w.u8(static_cast<std::uint8_t>(check.cmp));
    w.sleb(check.literal);
  }
  w.uleb(facts.reachable_methods.size());
  for (const auto& method : facts.reachable_methods)
    write_method_id(w, method);
}

CachedClassFacts read_facts(ByteReader& r) {
  CachedClassFacts facts;
  const std::uint64_t api_count = r.count(4);
  facts.api_calls.reserve(api_count);
  for (std::uint64_t i = 0; i < api_count; ++i) {
    ApiCallSite site;
    site.caller = read_method_id(r);
    site.insn_index = static_cast<std::uint32_t>(r.uleb());
    site.declared_target = read_method_id(r);
    site.resolved_target = read_method_id(r);
    site.guard = read_interval(r);
    facts.api_calls.push_back(std::move(site));
  }
  const std::uint64_t perm_count = r.count(4);
  facts.permission_uses.reserve(perm_count);
  for (std::uint64_t i = 0; i < perm_count; ++i) {
    PermissionUse use;
    use.caller = read_method_id(r);
    use.insn_index = static_cast<std::uint32_t>(r.uleb());
    use.api = read_method_id(r);
    use.permission = r.str();
    use.guard = read_interval(r);
    facts.permission_uses.push_back(std::move(use));
  }
  const std::uint64_t check_count = r.count(4);
  facts.guard_checks.reserve(check_count);
  for (std::uint64_t i = 0; i < check_count; ++i) {
    GuardCheck check;
    check.method = read_method_id(r);
    check.insn_index = static_cast<std::uint32_t>(r.uleb());
    const std::uint8_t cmp = r.u8();
    if (cmp > static_cast<std::uint8_t>(CmpOp::kGe))
      throw ParseError("incr entry: bad comparison op");
    check.cmp = static_cast<CmpOp>(cmp);
    check.literal = static_cast<std::int32_t>(r.sleb());
    facts.guard_checks.push_back(std::move(check));
  }
  const std::uint64_t reach_count = r.count(3);
  facts.reachable_methods.reserve(reach_count);
  for (std::uint64_t i = 0; i < reach_count; ++i)
    facts.reachable_methods.push_back(read_method_id(r));
  return facts;
}

void write_trace(ByteWriter& w, const ClassTrace& trace) {
  w.uleb(trace.resolves.size());
  for (const auto& id : trace.resolves) write_method_id(w, id);
  w.uleb(trace.walk_roots.size());
  for (const auto& id : trace.walk_roots) write_method_id(w, id);
  w.uleb(trace.latebinds.size());
  for (const auto& lb : trace.latebinds) {
    w.str(lb.type);
    w.uleb(static_cast<std::uint64_t>(lb.depth));
  }
  w.uleb(trace.edges.size());
  for (const auto& edge : trace.edges) {
    write_method_id(w, edge.callee);
    write_interval(w, edge.context);
    w.uleb(static_cast<std::uint64_t>(edge.depth));
  }
  w.u8(trace.requests_runtime_permissions ? 1 : 0);
}

ClassTrace read_trace(ByteReader& r) {
  // Parsed traces are replay-only and never record, so the elements go
  // straight into the vectors without rebuilding the add_* dedup indexes
  // (hashing three strings per element). A hand-forged duplicate only
  // costs redundant replay of idempotent, memoized loads.
  ClassTrace trace;
  const std::uint64_t resolve_count = r.count(3);
  trace.resolves.reserve(resolve_count);
  for (std::uint64_t i = 0; i < resolve_count; ++i)
    trace.resolves.push_back(read_method_id(r));
  const std::uint64_t walk_count = r.count(3);
  trace.walk_roots.reserve(walk_count);
  for (std::uint64_t i = 0; i < walk_count; ++i)
    trace.walk_roots.push_back(read_method_id(r));
  const std::uint64_t latebind_count = r.count(2);
  trace.latebinds.reserve(latebind_count);
  for (std::uint64_t i = 0; i < latebind_count; ++i) {
    std::string type = r.str();
    trace.latebinds.push_back(TraceLatebind{std::move(type), read_depth(r)});
  }
  const std::uint64_t edge_count = r.count(5);
  trace.edges.reserve(edge_count);
  for (std::uint64_t i = 0; i < edge_count; ++i) {
    TraceEdge edge;
    edge.callee = read_method_id(r);
    edge.context = read_interval(r);
    edge.depth = read_depth(r);
    trace.edges.push_back(std::move(edge));
  }
  const std::uint8_t requests = r.u8();
  if (requests > 1) throw ParseError("incr entry: bad flag byte");
  trace.requests_runtime_permissions = requests != 0;
  return trace;
}

}  // namespace

std::vector<std::uint8_t> serialize_incr_entry(const IncrEntry& entry) {
  ByteWriter w;
  w.str(entry.app);
  w.u64(entry.manifest_fp);
  w.u64(entry.options_fp);
  w.uleb(entry.classes.size());
  for (const auto& [name, cc] : entry.classes) {
    w.str(name);
    w.u64(cc.fingerprint.content);
    w.u64(cc.fingerprint.iface);
    w.str(cc.fingerprint.super_name);
    w.uleb(cc.fingerprint.interfaces.size());
    for (const auto& iface : cc.fingerprint.interfaces) w.str(iface);
    w.uleb(cc.fingerprint.refs.size());
    for (const auto& ref : cc.fingerprint.refs) w.str(ref);
    write_trace(w, cc.trace);
    write_facts(w, cc.facts);
  }
  return w.take();
}

IncrEntry parse_incr_entry(std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  IncrEntry entry;
  entry.app = r.str();
  entry.manifest_fp = r.u64();
  entry.options_fp = r.u64();
  const std::uint64_t class_count = r.count(24);
  for (std::uint64_t i = 0; i < class_count; ++i) {
    std::string name = r.str();
    CachedClass cc;
    cc.fingerprint.content = r.u64();
    cc.fingerprint.iface = r.u64();
    cc.fingerprint.super_name = r.str();
    const std::uint64_t iface_count = r.count(1);
    for (std::uint64_t k = 0; k < iface_count; ++k)
      cc.fingerprint.interfaces.push_back(r.str());
    const std::uint64_t ref_count = r.count(1);
    for (std::uint64_t k = 0; k < ref_count; ++k)
      cc.fingerprint.refs.push_back(r.str());
    cc.trace = read_trace(r);
    cc.facts = read_facts(r);
    if (!entry.classes.emplace(std::move(name), std::move(cc)).second)
      throw ParseError("incr entry: duplicate class record");
  }
  if (!r.at_end()) throw ParseError("incr entry: trailing bytes");
  return entry;
}

// ---------------------------------------------------------------------------
// Directory engine

namespace {

SdmcKey incr_key(const FrameworkRepository& repo, int level) {
  SdmcKey key;
  key.kind = SdmcKind::kIncrementalFacts;
  key.fingerprint = repo.fingerprint();
  key.level = level;
  return key;
}

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

IncrCache::IncrCache(std::string dir) : dir_(std::move(dir)) {
  ensure_directory(dir_);
}

std::string IncrCache::entry_path(const FrameworkRepository& repo,
                                  const std::string& app, int level) const {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(app.data());
  const std::uint64_t hash =
      sdmc_checksum(std::span<const std::uint8_t>{bytes, app.size()});
  (void)repo;  // the framework binds through the container key, not the name
  return dir_ + "/incr-" + hex64(hash) + "-L" + std::to_string(level) +
         ".sdmc";
}

std::optional<IncrEntry> IncrCache::try_load(const FrameworkRepository& repo,
                                             const std::string& app,
                                             int level) const {
  try {
    const auto blob = read_file_bytes(entry_path(repo, app, level));
    if (!blob) return std::nullopt;
    IncrEntry entry = parse_incr_entry(sdmc_open(*blob, incr_key(repo, level)));
    if (entry.app != app) return std::nullopt;  // file-name hash collision
    return entry;
  } catch (const Error&) {
    return std::nullopt;  // stale/foreign/corrupt: caller analyzes in full
  }
}

void IncrCache::store(const FrameworkRepository& repo, int level,
                      const IncrEntry& entry) const {
  write_file_atomic(entry_path(repo, entry.app, level),
                    sdmc_seal(incr_key(repo, level), serialize_incr_entry(entry)));
}

}  // namespace saintdroid
