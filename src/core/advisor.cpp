#include "core/advisor.hpp"

#include <sstream>

#include "support/interval.hpp"

namespace saintdroid {

const char* repair_kind_name(RepairKind kind) {
  switch (kind) {
    case RepairKind::kAddSdkGuard: return "add-sdk-guard";
    case RepairKind::kRaiseMinSdk: return "raise-min-sdk";
    case RepairKind::kReplaceRemovedApi: return "replace-removed-api";
    case RepairKind::kImplementRuntimePermissions:
      return "implement-runtime-permissions";
    case RepairKind::kRaiseTargetSdk: return "raise-target-sdk";
    case RepairKind::kRemoveDeadOverride: return "gate-dead-override";
  }
  return "?";
}

namespace {

RepairSuggestion make(RepairKind kind, const Mismatch& m,
                      std::string description, int level = 0) {
  RepairSuggestion s;
  s.kind = kind;
  s.mismatch = m;
  s.description = std::move(description);
  s.level = level;
  return s;
}

void suggest_for_invocation(const Mismatch& m,
                            std::vector<RepairSuggestion>& out) {
  const bool forward = m.note.rfind("removed", 0) == 0;
  if (forward) {
    out.push_back(make(
        RepairKind::kReplaceRemovedApi, m,
        "migrate off " + m.subject.to_string() +
            "; it no longer exists from API level " +
            std::to_string(m.problem_levels.lo()) +
            " (guard with if (Build.VERSION.SDK_INT < " +
            std::to_string(m.problem_levels.lo()) + ") as a stopgap)"));
    return;
  }
  const int introduced = m.problem_levels.hi() + 1;
  out.push_back(make(
      RepairKind::kAddSdkGuard, m,
      "wrap the call to " + m.subject.to_string() + " in " +
          m.location.to_string() + " with if (Build.VERSION.SDK_INT >= " +
          std::to_string(introduced) + ")",
      introduced));
  out.push_back(make(
      RepairKind::kRaiseMinSdk, m,
      "or raise minSdkVersion to " + std::to_string(introduced) +
          " if devices below it need not be supported",
      introduced));
}

void suggest_for_callback(const Mismatch& m,
                          std::vector<RepairSuggestion>& out) {
  const int introduced = m.problem_levels.hi() + 1;
  out.push_back(make(
      RepairKind::kRemoveDeadOverride, m,
      m.location.to_string() + " is never invoked on API levels " +
          m.problem_levels.to_string() +
          "; move critical work into a code path that also runs there, or "
          "raise minSdkVersion to " +
          std::to_string(introduced),
      introduced));
  out.push_back(make(RepairKind::kRaiseMinSdk, m,
                     "alternatively raise minSdkVersion to " +
                         std::to_string(introduced),
                     introduced));
}

void suggest_for_permission(const Manifest& manifest, const Mismatch& m,
                            std::vector<RepairSuggestion>& out) {
  if (m.kind == MismatchKind::kPermissionRequest) {
    out.push_back(make(
        RepairKind::kImplementRuntimePermissions, m,
        "request " + m.permission +
            " at runtime (Activity.requestPermissions) and override "
            "onRequestPermissionsResult before calling " +
            m.subject.to_string()));
    return;
  }
  out.push_back(make(
      RepairKind::kRaiseTargetSdk, m,
      "targetSdkVersion " + std::to_string(manifest.target_sdk) +
          " leaves " + m.permission +
          " revocable without notice on API >= 23 devices; raise the "
          "target past 22 and adopt the runtime permission flow"));
  out.push_back(make(
      RepairKind::kImplementRuntimePermissions, m,
      "then guard each use of " + m.permission +
          " with checkSelfPermission and a runtime request"));
}

void suggest_for_semantic(const Mismatch& m,
                          std::vector<RepairSuggestion>& out) {
  out.push_back(make(
      RepairKind::kAddSdkGuard, m,
      m.subject.to_string() + " behaves differently on API levels " +
          m.problem_levels.to_string() + " (" + m.note +
          "); branch on Build.VERSION.SDK_INT and handle both behaviors",
      m.problem_levels.lo()));
}

}  // namespace

std::vector<RepairSuggestion> suggest_repairs(
    const Manifest& manifest, std::span<const Mismatch> mismatches) {
  std::vector<RepairSuggestion> out;
  for (const auto& m : mismatches) {
    switch (m.kind) {
      case MismatchKind::kApiInvocation:
        suggest_for_invocation(m, out);
        break;
      case MismatchKind::kApiCallback:
        suggest_for_callback(m, out);
        break;
      case MismatchKind::kPermissionRequest:
      case MismatchKind::kPermissionRevocation:
        suggest_for_permission(manifest, m, out);
        break;
      case MismatchKind::kSemanticChange:
        suggest_for_semantic(m, out);
        break;
      case MismatchKind::kSdkDeclaration:
        // The lint row is its own advice: fix the declaration it names.
        break;
    }
  }
  return out;
}

std::string render_repairs(std::span<const RepairSuggestion> suggestions) {
  std::ostringstream out;
  const Mismatch* current = nullptr;
  for (const auto& s : suggestions) {
    if (!current || !(current->key() == s.mismatch.key())) {
      out << s.mismatch.to_string() << "\n";
      current = &s.mismatch;
    }
    out << "    [" << repair_kind_name(s.kind) << "] " << s.description
        << "\n";
  }
  return out.str();
}

}  // namespace saintdroid
