// IncrCache — the per-app incremental analysis fact cache.
//
// App stores re-analyze every app on every version bump, yet most updates
// touch a handful of classes. This layer makes re-analysis cost scale with
// the *diff*: after a full analysis, every app class's facts (API call
// sites, permission uses, guard checks, reachable methods) and exploration
// side effects (an aum ClassTrace) are persisted in a `.sdmc` entry (kind
// kIncrementalFacts) keyed by the framework fingerprint and analysis
// level, alongside per-class *content fingerprints* and the class's
// app-internal reference edges. On re-analysis of a modified APK the
// engine diffs fingerprints, computes the dirty set —
//
//   dirty = forward-closure( changed ∪ referrers-of(interface-changed) )
//
// over the union of the old and new reference graphs — re-runs AUM over
// the dirty region only (Aum::model_incremental), splices the cached
// clean-class facts into the model, and re-runs the (cheap) AMD detectors
// in full. Soundness of the one-level reverse step: a class's *own* facts
// depend only on its bytecode, the interfaces of what it references
// (resolution outcomes, helper-predicate summaries — all folded into the
// interface fingerprint, which is Merkle-hashed through app-internal
// super/interface chains), and the guard contexts its callers push; the
// forward closure re-analyzes every class a dirty class can push, so
// context ripples propagate forward, while clean classes' callers are
// provably clean. When the dirty frontier exceeds a budgeted fraction of
// the app — or the cache entry is missing, corrupt, keyed to a different
// manifest or option set, or a scoped run trips its safety nets — the
// engine falls back to full analysis, loudly counted in
// IncrementalStats::fallbacks. The cache can only change analysis *cost*:
// equivalence with from-scratch analysis is proven byte-identically by
// tests/test_incremental.cpp over generated version-chains.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "adf/repository.hpp"
#include "core/aum.hpp"
#include "dex/apk.hpp"

namespace saintdroid {

/// Structural identity of one app class, derived purely from dex content
/// (symbolic — pool-index shuffles do not change it).
struct ClassFingerprint {
  /// Hash of the full symbolic definition: name, super, interfaces, flags,
  /// method signatures and bodies. Differing content => the class changed.
  std::uint64_t content = 0;
  /// Hash of what *other* classes' analyses can observe: name, super,
  /// interfaces, flags, method signatures, plus the bodies of
  /// helper-predicate-eligible methods (static ()Z/()I — callers summarize
  /// those bodies into guard intervals). Raw, not Merkle: the effective
  /// (chain-hashed) form is computed at diff time.
  std::uint64_t iface = 0;
  std::string super_name;               ///< "" for root classes
  std::vector<std::string> interfaces;  ///< declared order
  /// App-internal classes this class references: super, interfaces, invoke
  /// and field receivers, new-instance / load-class types, and const-string
  /// values (dots slashed — Class.forName targets). Sorted, deduplicated,
  /// framework names excluded. These are the dependency edges the dirty-set
  /// closure walks.
  std::vector<std::string> refs;

  friend bool operator==(const ClassFingerprint&,
                         const ClassFingerprint&) = default;
};

/// Per-class fingerprints of one APK (all dexes; first definition of a
/// name wins, mirroring class-load resolution order).
using ApkFingerprints = std::map<std::string, ClassFingerprint>;

ApkFingerprints fingerprint_apk(const Apk& apk);

/// Content hash of a manifest — any manifest edit (SDK range, permissions,
/// components) invalidates the whole entry: manifest facts feed every
/// detector and the root set.
std::uint64_t manifest_fingerprint(const Manifest& manifest);

/// Hash of the exploration-relevant analysis options; cached facts are
/// only reusable under the exact option set that produced them.
std::uint64_t aum_options_fingerprint(const AumOptions& options);

/// Usage-model facts attributable to one class (everything in a UsageModel
/// except overrides / handles_permission_results, which the incremental
/// scan recomputes in full, and requests_runtime_permissions, carried per
/// class on the ClassTrace).
struct CachedClassFacts {
  std::vector<ApiCallSite> api_calls;
  std::vector<PermissionUse> permission_uses;
  std::vector<GuardCheck> guard_checks;
  std::vector<MethodId> reachable_methods;
};

/// One class's complete cache record.
struct CachedClass {
  ClassFingerprint fingerprint;
  ClassTrace trace;
  CachedClassFacts facts;
};

/// One app's complete cache entry at one analysis level.
struct IncrEntry {
  std::string app;
  std::uint64_t manifest_fp = 0;
  std::uint64_t options_fp = 0;
  std::map<std::string, CachedClass> classes;
};

/// Payload codec for the kIncrementalFacts `.sdmc` kind. parse throws
/// ParseError on any structural defect (truncation, bad enum value,
/// trailing bytes); the engine converts that into a counted full-analysis
/// fallback.
std::vector<std::uint8_t> serialize_incr_entry(const IncrEntry& entry);
IncrEntry parse_incr_entry(std::span<const std::uint8_t> payload);

/// The dirty set of a re-analysis: classes whose facts cannot be reused.
struct DirtyDelta {
  std::unordered_set<std::string> dirty;
  std::size_t total_classes = 0;  ///< classes in the *new* APK

  double fraction() const {
    return total_classes == 0
               ? 1.0
               : static_cast<double>(dirty.size()) /
                     static_cast<double>(total_classes);
  }
};

/// Diffs a cache entry against fresh fingerprints: changed = added ∪
/// removed ∪ content-differs; interface-changed uses effective (Merkle)
/// interface fingerprints hashed through app-internal super/interface
/// chains; dirty = forward closure over the union reference graph of
/// changed ∪ one-level referrers of interface-changed.
DirtyDelta compute_dirty(const IncrEntry& cached, const ApkFingerprints& fresh);

/// Splits a usage model's facts by owning class (the caller/method class
/// name), appending into `by_class`.
void partition_model_facts(const UsageModel& model,
                           std::map<std::string, CachedClassFacts>& by_class);

/// Appends the cached facts of every clean class into `model` (and ORs in
/// the per-class requests_runtime_permissions flags) — the splice step
/// after a scoped re-exploration.
void splice_clean_facts(const IncrEntry& cached,
                        const std::unordered_set<std::string>& dirty,
                        UsageModel& model);

/// Builds a fresh entry from a *full* run: fingerprints + recorded traces
/// + partitioned model facts.
IncrEntry make_incr_entry(std::string app, std::uint64_t manifest_fp,
                          std::uint64_t options_fp,
                          const ApkFingerprints& fingerprints,
                          const ExplorationTrace& trace,
                          const UsageModel& model);

/// Builds the successor entry after an incremental hit: clean classes keep
/// their cached record, dirty classes are rebuilt from the scoped run's
/// trace and (pre-splice) model facts.
IncrEntry update_incr_entry(const IncrEntry& cached,
                            const std::unordered_set<std::string>& dirty,
                            const ApkFingerprints& fingerprints,
                            const ExplorationTrace& dirty_trace,
                            const UsageModel& scoped_model);

/// A directory of per-(app, level) incremental entries, shareable across
/// workers and processes: loads swallow every defect into a miss, stores
/// are rename-atomic.
class IncrCache {
 public:
  /// Opens `dir`, creating it if needed; throws ConfigError on failure.
  explicit IncrCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// `incr-<hash(app)>-L<level>.sdmc` inside the cache directory.
  std::string entry_path(const FrameworkRepository& repo,
                         const std::string& app, int level) const;

  /// Loads the entry for (app, level), or nullopt when it is missing,
  /// keyed to a different framework or format version, corrupt, or names
  /// a different app (hash collision) — the caller runs a full analysis.
  std::optional<IncrEntry> try_load(const FrameworkRepository& repo,
                                    const std::string& app, int level) const;

  /// Stores `entry` rename-atomically; throws ConfigError on I/O failure
  /// (callers treat storing as best-effort).
  void store(const FrameworkRepository& repo, int level,
             const IncrEntry& entry) const;

 private:
  std::string dir_;
};

}  // namespace saintdroid
