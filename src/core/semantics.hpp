// SemanticTable — the curated semantic-change table (docs/DETECTORS.md §SEM).
//
// Signature mining (ARM) can only see methods appearing and disappearing;
// APIs whose *behavior* changed while the signature stayed put are invisible
// to it. Field studies (*A Large-scale Investigation of Semantically
// Incompatible APIs*, PAPERS.md) show these cause a large share of real
// compatibility crashes, so the framework spec carries a curated table of
// such changes (SemanticChangeSpec rows) and this module mines it into the
// versioned, serializable form the SEM detector queries: one row per method
// descriptor with the closed level range over which the changed behavior is
// in effect, a change-kind slug, and a one-line note for reports.
//
// The table rides alongside the mined ApiDatabase: attached to it in memory
// (ApiDatabase::attach_semantics), persisted in the .sdmc model cache as its
// own table kind (docs/FORMAT.md), and covered by the same framework
// fingerprint — any spec edit strands stale cached tables.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "adf/spec.hpp"
#include "dex/ids.hpp"
#include "support/interval.hpp"

namespace saintdroid {

/// One mined semantic-change row.
struct SemanticChange {
  MethodId method;
  /// Closed level range over which the changed behavior is in effect.
  ApiInterval levels;
  /// Change taxonomy slug ("default-change", "exception-change", ...).
  std::string kind;
  /// One-line description, rendered in report rows.
  std::string note;
};

/// The queryable table. Rows are held in canonical order (by class, name,
/// descriptor, then range) so serialize() is deterministic regardless of
/// spec ordering.
class SemanticTable {
 public:
  SemanticTable() = default;
  explicit SemanticTable(std::vector<SemanticChange> rows);

  /// All rows for `method` (a method may change behavior more than once
  /// across the level axis). Empty span when the method has no entry.
  std::span<const SemanticChange> changes_for(const MethodId& method) const;

  std::size_t size() const { return rows_.size(); }
  const std::vector<SemanticChange>& rows() const { return rows_; }

  /// Versioned binary form for the .sdmc model cache; parse() validates and
  /// throws ParseError on any defect, and serialize(parse(b)) == b.
  std::vector<std::uint8_t> serialize() const;
  static SemanticTable parse(std::span<const std::uint8_t> bytes);

 private:
  std::vector<SemanticChange> rows_;
};

/// Mines the curated semantic-change rows of `spec` into a table, building
/// JVM descriptors with the same rules the framework image emitter uses so
/// table keys match the MethodIds the analysis resolves.
SemanticTable mine_semantic_table(const FrameworkSpec& spec);

}  // namespace saintdroid
