#include "core/model_cache.hpp"

#include <utility>

#include "support/errors.hpp"
#include "support/sdmc.hpp"

namespace saintdroid {

namespace {

SdmcKey api_database_key(const FrameworkRepository& repo) {
  SdmcKey key;
  key.kind = SdmcKind::kApiDatabase;
  key.fingerprint = repo.fingerprint();
  return key;
}

}  // namespace

ModelCache::ModelCache(std::string dir) : dir_(std::move(dir)) {
  ensure_directory(dir_);
}

std::string ModelCache::api_database_path(
    const FrameworkRepository& repo) const {
  return dir_ + "/apidb-" + repo.fingerprint() + ".sdmc";
}

std::optional<ApiDatabase> ModelCache::try_load_api_database(
    const FrameworkRepository& repo) const {
  try {
    const auto blob = read_file_bytes(api_database_path(repo));
    if (!blob) return std::nullopt;
    return ApiDatabase::parse(sdmc_open(*blob, api_database_key(repo)));
  } catch (const Error&) {
    return std::nullopt;  // stale/foreign/corrupt entry: caller re-mines
  }
}

void ModelCache::store_api_database(const FrameworkRepository& repo,
                                    const ApiDatabase& db) const {
  write_file_atomic(api_database_path(repo),
                    sdmc_seal(api_database_key(repo), db.serialize()));
}

std::shared_ptr<const ApiDatabase> ModelCache::api_database(
    const FrameworkRepository& repo, int jobs,
    bool* served_from_cache) const {
  if (auto cached = try_load_api_database(repo)) {
    if (served_from_cache != nullptr) *served_from_cache = true;
    return std::make_shared<const ApiDatabase>(*std::move(cached));
  }
  if (served_from_cache != nullptr) *served_from_cache = false;
  auto db = std::make_shared<const ApiDatabase>(ApiDatabase::mine(repo, jobs));
  try {
    store_api_database(repo, *db);
  } catch (const Error&) {
    // A read-only or full cache directory costs only the next warm start.
  }
  return db;
}

}  // namespace saintdroid
