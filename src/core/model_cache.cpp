#include "core/model_cache.hpp"

#include <utility>

#include "core/semantics.hpp"
#include "support/errors.hpp"
#include "support/sdmc.hpp"

namespace saintdroid {

namespace {

SdmcKey api_database_key(const FrameworkRepository& repo) {
  SdmcKey key;
  key.kind = SdmcKind::kApiDatabase;
  key.fingerprint = repo.fingerprint();
  return key;
}

SdmcKey semantic_table_key(const FrameworkRepository& repo) {
  SdmcKey key;
  key.kind = SdmcKind::kSemanticTable;
  key.fingerprint = repo.fingerprint();
  return key;
}

}  // namespace

ModelCache::ModelCache(std::string dir) : dir_(std::move(dir)) {
  ensure_directory(dir_);
}

std::string ModelCache::api_database_path(
    const FrameworkRepository& repo) const {
  return dir_ + "/apidb-" + repo.fingerprint() + ".sdmc";
}

std::optional<ApiDatabase> ModelCache::try_load_api_database(
    const FrameworkRepository& repo) const {
  try {
    const auto blob = read_file_bytes(api_database_path(repo));
    if (!blob) return std::nullopt;
    return ApiDatabase::parse(sdmc_open(*blob, api_database_key(repo)));
  } catch (const Error&) {
    return std::nullopt;  // stale/foreign/corrupt entry: caller re-mines
  }
}

void ModelCache::store_api_database(const FrameworkRepository& repo,
                                    const ApiDatabase& db) const {
  write_file_atomic(api_database_path(repo),
                    sdmc_seal(api_database_key(repo), db.serialize()));
}

std::string ModelCache::semantic_table_path(
    const FrameworkRepository& repo) const {
  return dir_ + "/semtab-" + repo.fingerprint() + ".sdmc";
}

std::shared_ptr<const ApiDatabase> ModelCache::api_database(
    const FrameworkRepository& repo, int jobs,
    bool* served_from_cache) const {
  // Ensures the returned database carries the semantic table: cached entry
  // when valid, else re-derived from the spec (no mining pass) and stored
  // for the next process.
  const auto attach_semantics = [this, &repo](ApiDatabase& db) {
    try {
      if (const auto blob = read_file_bytes(semantic_table_path(repo))) {
        db.attach_semantics(std::make_shared<const SemanticTable>(
            SemanticTable::parse(sdmc_open(*blob, semantic_table_key(repo)))));
        return;
      }
    } catch (const Error&) {
      // Stale/foreign/corrupt entry: fall through and re-derive.
    }
    auto table =
        std::make_shared<const SemanticTable>(mine_semantic_table(repo.spec()));
    db.attach_semantics(table);
    try {
      write_file_atomic(semantic_table_path(repo),
                        sdmc_seal(semantic_table_key(repo),
                                  table->serialize()));
    } catch (const Error&) {
      // A read-only or full cache directory costs only the next warm start.
    }
  };

  if (auto cached = try_load_api_database(repo)) {
    if (served_from_cache != nullptr) *served_from_cache = true;
    attach_semantics(*cached);
    return std::make_shared<const ApiDatabase>(*std::move(cached));
  }
  if (served_from_cache != nullptr) *served_from_cache = false;
  auto mined = ApiDatabase::mine(repo, jobs);
  attach_semantics(mined);  // replaces the mined table with the cached one
  auto db = std::make_shared<const ApiDatabase>(std::move(mined));
  try {
    store_api_database(repo, *db);
  } catch (const Error&) {
    // A read-only or full cache directory costs only the next warm start.
  }
  return db;
}

}  // namespace saintdroid
