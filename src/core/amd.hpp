// AMD — Android Mismatch Detector (paper §III-C, Algorithms 2-4).
//
// Consumes the AUM usage model and the ARM database and emits the mismatch
// list. Invocation mismatches (Algorithm 2): for each API call site, the
// levels the site may execute under (manifest range filtered by guards)
// are checked against the API's lifecycle — a backward mismatch below the
// introduction level, a forward mismatch at/after removal. Callback
// mismatches (Algorithm 3): each override of a mined framework callback is
// checked for existence across the declared range. Permission mismatches
// (Algorithm 4): dangerous-permission uses crossing the API-23 runtime
// permission boundary without the request protocol (request mismatch, tgt
// >= 23) or with install-time grants the user can revoke (revocation
// mismatch, tgt <= 22).
#pragma once

#include <vector>

#include "core/arm.hpp"
#include "core/aum.hpp"
#include "core/report.hpp"
#include "dex/manifest.hpp"

namespace saintdroid {

/// Feature switches for the detectors; everything on for SAINTDroid.
struct AmdOptions {
  bool detect_api = true;
  bool detect_callbacks = true;
  bool detect_permissions = true;
  /// Also detect forward (removed-API) mismatches. CID and Lint only model
  /// backward incompatibility (paper §VII), so the baselines turn this off.
  bool detect_forward = true;
  /// Semantic-incompatibility findings (SEM, docs/DETECTORS.md): call
  /// sites exposed to a level range where the API's behavior changed.
  bool detect_semantics = true;
  /// Declared-SDK consistency lint (SDC): malformed declared ranges,
  /// over-declared dangerous permissions, vacuous SDK_INT guards.
  bool detect_declarations = true;
};

class Amd {
 public:
  Amd(const ApiDatabase& db, AmdOptions options = {});

  std::vector<Mismatch> detect(const Manifest& manifest,
                               const UsageModel& model) const;

  // Individual detectors, exposed for unit testing and the baselines.
  std::vector<Mismatch> detect_invocations(const Manifest& manifest,
                                           const UsageModel& model) const;
  std::vector<Mismatch> detect_callbacks(const Manifest& manifest,
                                         const UsageModel& model) const;
  std::vector<Mismatch> detect_permissions(const Manifest& manifest,
                                           const UsageModel& model) const;
  std::vector<Mismatch> detect_semantics(const Manifest& manifest,
                                         const UsageModel& model) const;
  std::vector<Mismatch> detect_declarations(const Manifest& manifest,
                                            const UsageModel& model) const;

 private:
  const ApiDatabase* db_;
  AmdOptions options_;
};

}  // namespace saintdroid
