// AppOutcome: the fault-isolation boundary around one app's analysis.
//
// A corpus run must survive any single app — a malformed container, an
// injected fault, an analyzer bug surfacing as an exception. analyze_outcome
// is the one place that boundary is drawn: it establishes the app's fault
// context, runs the analyzer, and converts any escaping exception into a
// structured AnalysisFailure (taxonomy kind, the analysis phase it escaped
// from, and the message) instead of letting it sink the batch. Both the
// serial and parallel suite harnesses (workload/harness.hpp) and the batch
// CLI route every per-app analysis through it.
#pragma once

#include <optional>
#include <string>

#include "core/analyzer.hpp"
#include "support/errors.hpp"

namespace saintdroid {

/// Structured description of one app's failed analysis.
struct AnalysisFailure {
  FailureKind kind = FailureKind::kInternal;
  /// Analysis phase the error escaped from ("framework", "load", "model",
  /// "detect"), or "analyze" when it fell outside any instrumented phase.
  std::string phase;
  std::string message;
};

/// One app's analysis: either a report or a structured failure.
struct AppOutcome {
  std::string app;
  /// Valid when ok(); default-constructed on failure.
  AnalysisResult report;
  std::optional<AnalysisFailure> failure;

  bool ok() const { return !failure.has_value(); }
};

/// Runs `tool` over `apk` inside the isolation boundary: the app's name is
/// the active fault context for the duration, and any std::exception the
/// analyzer throws is caught and classified. Contract violations
/// (SD_EXPECTS) still abort — a broken invariant must not be papered over.
AppOutcome analyze_outcome(Analyzer& tool, const Apk& apk);

}  // namespace saintdroid
