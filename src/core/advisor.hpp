// Repair advisor — the paper's future-work direction (§VIII): "develop a
// complementing code synthesizer to help repair apps that do not properly
// handle detected mismatches."
//
// For each detected mismatch the advisor derives the concrete remediations
// the paper walks through in its case studies (§V-B): wrap the call in an
// SDK_INT guard at the introduction level, raise minSdkVersion, stop
// targeting removed APIs, implement the runtime permission protocol, or
// bump targetSdkVersion past the runtime-permission boundary.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "dex/manifest.hpp"

namespace saintdroid {

enum class RepairKind : std::uint8_t {
  kAddSdkGuard = 0,    ///< wrap the call site in if (SDK_INT >= N)
  kRaiseMinSdk,        ///< set minSdkVersion to the introduction level
  kReplaceRemovedApi,  ///< the API is gone going forward; migrate off it
  kImplementRuntimePermissions,  ///< add requestPermissions + result hook
  kRaiseTargetSdk,     ///< move past the runtime-permission boundary
  kRemoveDeadOverride, ///< callback never invoked below N; guard or gate it
};

const char* repair_kind_name(RepairKind kind);

/// One actionable remediation for one mismatch.
struct RepairSuggestion {
  RepairKind kind = RepairKind::kAddSdkGuard;
  /// The mismatch being repaired (copied so reports are self-contained).
  Mismatch mismatch;
  /// Human-readable instruction, e.g. "wrap the call to
  /// Context.getColorStateList in if (Build.VERSION.SDK_INT >= 23)".
  std::string description;
  /// For kAddSdkGuard / kRaiseMinSdk: the level to guard at / raise to.
  int level = 0;
};

/// Derives suggestions for every mismatch. Pure function of its inputs;
/// multiple suggestions may target one mismatch when the paper offers
/// alternatives (e.g. guard *or* raise minSdk).
std::vector<RepairSuggestion> suggest_repairs(
    const Manifest& manifest, std::span<const Mismatch> mismatches);

/// Renders a suggestion list as an indented text block.
std::string render_repairs(std::span<const RepairSuggestion> suggestions);

}  // namespace saintdroid
