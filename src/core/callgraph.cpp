#include "core/callgraph.hpp"

#include <deque>
#include <sstream>

#include "dex/dexfile.hpp"

namespace saintdroid {

std::uint32_t CallGraph::intern_node(const MethodId& id, bool framework,
                                     bool entry) {
  if (const auto it = index_.find(id); it != index_.end()) {
    if (entry) nodes_[it->second].is_entry = true;
    return it->second;
  }
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(CallGraphNode{id, framework, entry});
  index_.emplace(id, idx);
  return idx;
}

CallGraph CallGraph::build(const Apk& apk, ClassHierarchy& hierarchy) {
  CallGraph graph;

  struct Work {
    const LoadedClass* cls;
    const MethodDef* def;
    std::uint32_t node;
  };
  std::deque<Work> worklist;
  std::unordered_map<const MethodDef*, bool> visited;

  const auto enqueue = [&](const LoadedClass* cls, const MethodDef& def,
                           bool entry) {
    const MethodId id = cls->dex->method_id(*cls->def, def);
    const std::uint32_t node = graph.intern_node(id, false, entry);
    if (const auto [it, inserted] = visited.emplace(&def, true); inserted)
      worklist.push_back(Work{cls, &def, node});
    return node;
  };

  // Entry points: component methods + overrides of framework methods.
  const DexFile& main_dex = apk.dexes.front();
  for (const auto& cls_def : main_dex.classes()) {
    const LoadedClass* cls =
        hierarchy.load(main_dex.type_name(cls_def.type));
    if (!cls || cls->from_framework) continue;
    const bool is_component = [&] {
      for (const auto& c : apk.manifest.components)
        if (c.class_name == cls->name) return true;
      return false;
    }();
    for (const auto& m : cls->def->methods) {
      if (is_component) {
        enqueue(cls, m, true);
      } else if (hierarchy.overridden_framework_method(*cls, m)) {
        enqueue(cls, m, true);
      }
    }
  }

  while (!worklist.empty()) {
    const Work work = worklist.front();
    worklist.pop_front();
    if (!work.def->code) continue;
    const DexFile& dex = *work.cls->dex;
    const auto& insns = work.def->code->insns;
    for (std::uint32_t i = 0; i < insns.size(); ++i) {
      const Instruction& insn = insns[i];
      if (insn.op == Opcode::kLoadClass) {
        const LoadedClass* loaded =
            hierarchy.load(dex.type_name(insn.index));
        if (loaded && !loaded->from_framework)
          for (const auto& m : loaded->def->methods) enqueue(loaded, m, true);
        continue;
      }
      if (insn.op != Opcode::kInvoke) continue;
      const MethodId declared = dex.method_id_at(insn.index);
      const auto res = hierarchy.resolve(declared.class_name, declared.name,
                                         declared.descriptor);
      std::uint32_t callee;
      if (!res) {
        // Unresolvable: a boundary node under the declared identity.
        callee = graph.intern_node(declared, true, false);
      } else if (res->declaring_class->from_framework) {
        callee = graph.intern_node(res->id, true, false);
      } else {
        callee = enqueue(res->declaring_class, *res->method, false);
      }
      graph.edges_.push_back(
          CallGraphEdge{work.node, callee, i, insn.invoke_kind});
    }
  }
  return graph;
}

std::uint32_t CallGraph::find(const MethodId& id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? kNoIndex : it->second;
}

std::vector<const CallGraphEdge*> CallGraph::out_edges(
    std::uint32_t node) const {
  std::vector<const CallGraphEdge*> out;
  for (const auto& edge : edges_)
    if (edge.caller == node) out.push_back(&edge);
  return out;
}

std::size_t CallGraph::reachable_app_methods() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += !node.is_framework;
  return n;
}

std::string CallGraph::to_dot(const std::string& graph_name) const {
  std::ostringstream out;
  out << "digraph \"" << graph_name << "\" {\n"
      << "  rankdir=LR;\n  node [fontname=\"monospace\"];\n";
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const CallGraphNode& node = nodes_[i];
    out << "  n" << i << " [label=\"" << node.id.class_name << "\\n"
        << node.id.name << "\", shape="
        << (node.is_framework ? "ellipse" : "box");
    if (node.is_entry) out << ", style=bold";
    out << "];\n";
  }
  for (const auto& edge : edges_)
    out << "  n" << edge.caller << " -> n" << edge.callee << " [label=\""
        << invoke_kind_name(edge.kind) << "\"];\n";
  out << "}\n";
  return out.str();
}

}  // namespace saintdroid
