#include "core/outcome.hpp"

#include "support/faults.hpp"

namespace saintdroid {

AppOutcome analyze_outcome(Analyzer& tool, const Apk& apk) {
  AppOutcome outcome;
  outcome.app = apk.name;
  const FaultContextScope context{apk.name};
  clear_failure_phase();  // drop any phase a previous app's failure left
  try {
    outcome.report = tool.analyze(apk);
  } catch (const std::exception& error) {
    AnalysisFailure failure;
    failure.kind = classify_failure(error);
    failure.phase = take_failure_phase();
    if (failure.phase.empty()) failure.phase = "analyze";
    failure.message = error.what();
    outcome.failure = std::move(failure);
    outcome.report = AnalysisResult{};
    outcome.report.completed = false;
    outcome.report.failure_reason = outcome.failure->message;
  }
  return outcome;
}

}  // namespace saintdroid
