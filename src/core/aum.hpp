// AUM — API Usage Modeler (paper §III-A).
//
// Produces the usage model the detectors consume: every reachable API call
// site annotated with the guard interval it executes under (path-sensitive,
// context-aware), every override of a framework callback, and every use of
// a permission-requiring API. Exploration follows paper Algorithm 1:
// methods are pulled from a worklist, their classes loaded on demand
// through the ClassProvider (the CLVM), call targets resolved against the
// incrementally-built hierarchy, and late-bound classes discovered through
// load-class instructions are appended so that "every method in every such
// class is analyzed".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/guards.hpp"
#include "support/budget.hpp"
#include "core/arm.hpp"
#include "dex/apk.hpp"
#include "hierarchy/hierarchy.hpp"

namespace saintdroid {

/// One invocation of a framework API from app code.
struct ApiCallSite {
  MethodId caller;            ///< app method containing the call
  std::uint32_t insn_index = 0;
  MethodId declared_target;   ///< as written in the bytecode
  MethodId resolved_target;   ///< at the declaring framework class
  ApiInterval guard;          ///< levels the site may execute under
};

/// An app method overriding a framework-declared method.
struct CallbackOverride {
  MethodId app_method;
  MethodId framework_method;  ///< the overridden declaration
};

/// A call site whose resolved API (transitively) requires a permission.
struct PermissionUse {
  MethodId caller;
  std::uint32_t insn_index = 0;
  MethodId api;
  std::string permission;
  ApiInterval guard;
};

/// One recognized direct SDK_INT comparison in a reachable app method —
/// raw material for the vacuous-guard SDC lint (docs/DETECTORS.md §SDC).
struct GuardCheck {
  MethodId method;  ///< app method containing the comparison
  std::uint32_t insn_index = 0;
  CmpOp cmp = CmpOp::kEq;  ///< normalized: SDK_INT is the left operand
  std::int32_t literal = 0;
};

/// Everything the detectors need about one app.
struct UsageModel {
  std::vector<ApiCallSite> api_calls;
  std::vector<CallbackOverride> overrides;
  std::vector<PermissionUse> permission_uses;
  /// Every direct SDK_INT comparison the guard analysis recognized in a
  /// reachable method (deduplicated per site; empty when guard recognition
  /// is off).
  std::vector<GuardCheck> guard_checks;
  /// App methods the exploration visited (the call-graph node set of
  /// Algorithm 4 line 11).
  std::vector<MethodId> reachable_methods;
  /// True when any app class overrides onRequestPermissionsResult — the
  /// runtime-permission protocol check of Algorithm 4.
  bool handles_permission_results = false;
  /// True when any reachable method calls requestPermissions.
  bool requests_runtime_permissions = false;
  /// True when an analysis budget exhausted before exploration finished:
  /// the model is a valid under-approximation, not the full fixpoint.
  bool incomplete = false;
};

/// Feature switches; SAINTDroid runs with everything on, the ablation bench
/// and the baselines turn features off.
struct AumOptions {
  GuardOptions guards;
  /// Propagate the call site's guard interval into app-internal callees
  /// (context sensitivity). Off reproduces CID's intraprocedural analysis.
  bool interprocedural_guards = true;
  /// Explore classes discovered through load-class (late binding).
  bool follow_late_binding = true;
  /// Summarize trivial app helper methods that test SDK_INT and return a
  /// boolean ("isAtLeastN()"), so branches on their result refine the
  /// interval like an inline comparison — the AndroidCompass helper-method
  /// guard idiom.
  bool helper_predicates = true;
  /// Walk into resolved framework methods' bodies, loading the classes
  /// they touch (bounded); models the paper's "beyond the first level"
  /// framework analysis and gives the lazy loader its realistic footprint.
  int framework_walk_depth = 2;
  /// Upper bound on app-internal recursion depth per entry point.
  int max_call_depth = 48;
};

/// Runs the modeler over one app. The hierarchy (and the provider behind
/// it) must outlive the returned model.
class Aum {
 public:
  /// `budget`, when provided, is charged one step per worklist pop (and
  /// threaded into each guard fixpoint); on exhaustion model() stops
  /// exploring and flags the model incomplete instead of throwing.
  Aum(ClassHierarchy& hierarchy, const ApiDatabase& db, AumOptions options,
      BudgetTracker* budget = nullptr);

  UsageModel model(const Apk& apk);

 private:
  struct MethodWork {
    const LoadedClass* cls;
    const MethodDef* def;
    ApiInterval context;
    int depth;
  };

  void explore_method(const MethodWork& work, UsageModel& model);
  void walk_framework(const MethodId& api, int depth);
  /// Substrate fast path for the framework walk: recurses over the
  /// precomputed invoke edges by pointer, memoizing visited methods in a
  /// flat bitmap (walked_fast_, indexed by MethodEntry::slot). Same loads,
  /// same order, same truncation as walk_framework — no string building.
  void walk_root_fast(const MethodResolution& res);
  void walk_edges_fast(const FrameworkSubstrate::MethodEntry& me, int depth);
  const Cfg& cfg_for(const MethodDef& def);

  /// Cached identity + hierarchy resolution for a method-ref pool entry.
  /// Method refs are interned per container, so one entry serves every
  /// call site sharing the reference.
  struct RefResolution {
    MethodId declared;
    std::optional<MethodResolution> resolution;
    /// Helper-predicate summary: the levels over which the callee returns
    /// true, when it is a recognizable SDK-check helper (lazily computed —
    /// see predicate_for).
    bool predicate_computed = false;
    std::optional<ApiInterval> predicate;
  };
  const RefResolution& resolve_ref(const DexFile& dex, std::uint32_t ref_idx);

  /// Memoized helper-predicate summary for a method-ref pool entry:
  /// evaluates trivial SDK-test helper bodies concretely at every modelled
  /// level. nullopt when the callee is not such a helper.
  std::optional<ApiInterval> predicate_for(const DexFile& dex,
                                           std::uint32_t ref_idx);

  ClassHierarchy* hierarchy_;
  const ApiDatabase* db_;
  AumOptions options_;
  BudgetTracker* budget_ = nullptr;  // optional, not owned

  // Per-run state (reset by model()).
  std::unordered_map<const MethodDef*, std::unique_ptr<Cfg>> cfg_cache_;
  /// Widest context each method has been analyzed under, for memoization.
  std::unordered_map<const MethodDef*, ApiInterval> analyzed_;
  /// Dedupe/widen call-site records (hit only on context re-analysis):
  /// numeric site key (method identity + instruction index) -> index into
  /// the model's vectors; for permissions, small per-site lists.
  std::unordered_map<std::uint64_t, std::size_t> api_site_index_;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::string, std::size_t>>>
      perm_site_index_;
  /// Sites already recorded in UsageModel::guard_checks (re-analysis under
  /// a widened context replays the same branches).
  std::unordered_set<std::uint64_t> guard_check_sites_;
  std::unordered_map<MethodId, bool> framework_walked_;
  /// True when the hierarchy runs over an indexed substrate: walks take
  /// the pointer path, with framework_walked_ kept only for callees whose
  /// class the substrate does not own.
  bool use_fast_walk_ = false;
  std::vector<std::uint8_t> walked_fast_;  // by MethodEntry::slot
  std::unordered_map<const DexFile*,
                     std::vector<std::unique_ptr<RefResolution>>>
      ref_cache_;
  std::vector<MethodWork> worklist_;
};

}  // namespace saintdroid
