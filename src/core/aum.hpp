// AUM — API Usage Modeler (paper §III-A).
//
// Produces the usage model the detectors consume: every reachable API call
// site annotated with the guard interval it executes under (path-sensitive,
// context-aware), every override of a framework callback, and every use of
// a permission-requiring API. Exploration follows paper Algorithm 1:
// methods are pulled from a worklist, their classes loaded on demand
// through the ClassProvider (the CLVM), call targets resolved against the
// incrementally-built hierarchy, and late-bound classes discovered through
// load-class instructions are appended so that "every method in every such
// class is analyzed".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/guards.hpp"
#include "support/budget.hpp"
#include "core/arm.hpp"
#include "dex/apk.hpp"
#include "hierarchy/hierarchy.hpp"

namespace saintdroid {

/// One invocation of a framework API from app code.
struct ApiCallSite {
  MethodId caller;            ///< app method containing the call
  std::uint32_t insn_index = 0;
  MethodId declared_target;   ///< as written in the bytecode
  MethodId resolved_target;   ///< at the declaring framework class
  ApiInterval guard;          ///< levels the site may execute under
};

/// An app method overriding a framework-declared method.
struct CallbackOverride {
  MethodId app_method;
  MethodId framework_method;  ///< the overridden declaration
};

/// A call site whose resolved API (transitively) requires a permission.
struct PermissionUse {
  MethodId caller;
  std::uint32_t insn_index = 0;
  MethodId api;
  std::string permission;
  ApiInterval guard;
};

/// One recognized direct SDK_INT comparison in a reachable app method —
/// raw material for the vacuous-guard SDC lint (docs/DETECTORS.md §SDC).
struct GuardCheck {
  MethodId method;  ///< app method containing the comparison
  std::uint32_t insn_index = 0;
  CmpOp cmp = CmpOp::kEq;  ///< normalized: SDK_INT is the left operand
  std::int32_t literal = 0;
};

/// Everything the detectors need about one app.
struct UsageModel {
  std::vector<ApiCallSite> api_calls;
  std::vector<CallbackOverride> overrides;
  std::vector<PermissionUse> permission_uses;
  /// Every direct SDK_INT comparison the guard analysis recognized in a
  /// reachable method (deduplicated per site; empty when guard recognition
  /// is off).
  std::vector<GuardCheck> guard_checks;
  /// App methods the exploration visited (the call-graph node set of
  /// Algorithm 4 line 11).
  std::vector<MethodId> reachable_methods;
  /// True when any app class overrides onRequestPermissionsResult — the
  /// runtime-permission protocol check of Algorithm 4.
  bool handles_permission_results = false;
  /// True when any reachable method calls requestPermissions.
  bool requests_runtime_permissions = false;
  /// True when an analysis budget exhausted before exploration finished:
  /// the model is a valid under-approximation, not the full fixpoint.
  bool incomplete = false;
};

/// One app-internal call edge a class's methods pushed during exploration:
/// the callee as *declared* at the call site (re-resolved against the
/// hierarchy at replay time), the hull of every guard context it was pushed
/// under, and the minimum worklist depth. Enough to re-seed exploration of
/// the callee without re-analyzing the caller.
struct TraceEdge {
  MethodId callee;
  ApiInterval context;
  int depth = 0;
};

/// One late-binding load (kLoadClass / Class.forName) a class's methods
/// performed, with the minimum depth its target's methods were pushed at.
struct TraceLatebind {
  std::string type;  ///< slashed class name
  int depth = 0;
};

/// Everything one app class *did* to the rest of the analysis during a full
/// exploration, beyond the facts recorded in the UsageModel: which method
/// refs it resolved (resolution walks load classes), which framework walks
/// it rooted, which classes it late-bound, and which app-internal calls it
/// pushed. The incremental engine replays this record for classes whose dex
/// bytes did not change, reproducing the full run's loaded-class set (and
/// thus its memory/budget accounting — CLVM loads are memoized and never
/// released, so the accounting is a function of the loaded *set*) without
/// re-exploring the class.
struct ClassTrace {
  std::vector<MethodId> resolves;    ///< every resolve_ref target (deduped)
  std::vector<MethodId> walk_roots;  ///< declared ids whose resolution
                                     ///< rooted a framework walk
  std::vector<TraceLatebind> latebinds;
  std::vector<TraceEdge> edges;
  /// Whether this class's methods set requests_runtime_permissions.
  bool requests_runtime_permissions = false;

  void add_resolve(const MethodId& id);
  void add_walk_root(const MethodId& id);
  void add_latebind(const std::string& type, int depth);
  void add_edge(const MethodId& callee, ApiInterval context, int depth);

 private:
  // Dedup indexes, transient (rebuilt as a trace records; parsed traces are
  // replay-only and never record).
  std::unordered_set<MethodId> resolve_seen_;
  std::unordered_set<MethodId> walk_seen_;
  std::unordered_map<std::string, std::size_t> latebind_index_;
  std::unordered_map<MethodId, std::size_t> edge_index_;
};

/// Per-class exploration record of one full model() run, keyed by slashed
/// app class name (ordered for deterministic serialization).
struct ExplorationTrace {
  std::map<std::string, ClassTrace> classes;
};

/// Feature switches; SAINTDroid runs with everything on, the ablation bench
/// and the baselines turn features off.
struct AumOptions {
  GuardOptions guards;
  /// Propagate the call site's guard interval into app-internal callees
  /// (context sensitivity). Off reproduces CID's intraprocedural analysis.
  bool interprocedural_guards = true;
  /// Explore classes discovered through load-class (late binding).
  bool follow_late_binding = true;
  /// Summarize trivial app helper methods that test SDK_INT and return a
  /// boolean ("isAtLeastN()"), so branches on their result refine the
  /// interval like an inline comparison — the AndroidCompass helper-method
  /// guard idiom.
  bool helper_predicates = true;
  /// Walk into resolved framework methods' bodies, loading the classes
  /// they touch (bounded); models the paper's "beyond the first level"
  /// framework analysis and gives the lazy loader its realistic footprint.
  int framework_walk_depth = 2;
  /// Upper bound on app-internal recursion depth per entry point.
  int max_call_depth = 48;
};

/// Runs the modeler over one app. The hierarchy (and the provider behind
/// it) must outlive the returned model.
class Aum {
 public:
  /// `budget`, when provided, is charged one step per worklist pop (and
  /// threaded into each guard fixpoint); on exhaustion model() stops
  /// exploring and flags the model incomplete instead of throwing.
  Aum(ClassHierarchy& hierarchy, const ApiDatabase& db, AumOptions options,
      BudgetTracker* budget = nullptr);

  /// `record`, when provided, captures a per-class ExplorationTrace of the
  /// run (zero effect on the model itself).
  UsageModel model(const Apk& apk, ExplorationTrace* record = nullptr);

  /// One clean class's prior-run trace, by pointer into the caller's
  /// cached entry — the scope borrows, it never copies.
  struct CleanClass {
    const std::string* name = nullptr;
    const ClassTrace* trace = nullptr;
    /// False when none of the class's referenced app classes is a dirty
    /// target: no call edge can resolve into the dirty set and no
    /// late-binding target is dirty, so the seed pass skips the class
    /// outright. A clean class's symbolic references are unchanged from
    /// the cached run and every removed or added referent dirties its
    /// referrers, so the fresh fingerprint's ref list covers every trace
    /// callee and late-bound type.
    bool seed_candidate = true;
  };

  /// Scope of an incremental re-exploration: the dirty class set (slashed
  /// names) that must be re-analyzed, and the prior run's traces for the
  /// clean remainder.
  struct IncrementalScope {
    const std::unordered_set<std::string>* dirty = nullptr;
    /// Traces of every clean class (callers must exclude dirty names).
    std::span<const CleanClass> clean;
    /// Classes whose method resolution can land inside a dirty class —
    /// the class itself or an app-internal ancestor (super/interface
    /// chain) is dirty. A clean class's edge to any *other* callee
    /// resolves exactly as the prior run resolved it, so the seed pass
    /// skips those resolutions outright (the replay pass reproduces their
    /// load side effects from the recorded traces). When null, every edge
    /// is resolved.
    const std::unordered_set<std::string>* dirty_targets = nullptr;
  };

  /// Explores only the dirty region: the entry-point scan runs in full
  /// (overrides and the permission-protocol flag are recomputed, and every
  /// main-dex class is loaded exactly as model() loads it) but exploration
  /// roots are restricted to dirty classes, clean->dirty edges and
  /// late-bindings recorded in `scope.clean` are re-seeded, and after the
  /// fixpoint the clean classes' load side effects are replayed. The
  /// returned model carries facts for *dirty* classes only — the caller
  /// splices the cached clean-class facts in. `record` captures traces for
  /// the dirty classes. Check scope_violation() afterwards: when set, the
  /// dirty set failed to close over everything exploration reached and the
  /// result must be discarded in favor of a full run.
  UsageModel model_incremental(const Apk& apk, const IncrementalScope& scope,
                               ExplorationTrace* record = nullptr);

  /// True when the last model_incremental() run touched a class outside
  /// its dirty set (a closure bug or stale cache entry): its result is
  /// unusable and the caller must fall back to full analysis.
  bool scope_violation() const { return scope_violation_; }

 private:
  struct MethodWork {
    const LoadedClass* cls;
    const MethodDef* def;
    ApiInterval context;
    int depth;
  };

  /// Shared by model()/model_incremental(): resets per-run state, runs the
  /// eager entry-point scan (loads every main-dex class, records overrides
  /// and the permission-result flag), and pushes exploration roots — all of
  /// them, or only those of classes in `dirty` when given.
  void scan_entry_points(const Apk& apk, UsageModel& model,
                         const std::unordered_set<std::string>* dirty);
  void explore_method(const MethodWork& work, UsageModel& model);
  void walk_framework(const MethodId& api, int depth);
  /// Substrate fast path for the framework walk: recurses over the
  /// precomputed invoke edges by pointer, memoizing visited methods in a
  /// flat bitmap (walked_fast_, indexed by MethodEntry::slot). Same loads,
  /// same order, same truncation as walk_framework — no string building.
  void walk_root_fast(const MethodResolution& res);
  void walk_edges_fast(const FrameworkSubstrate::MethodEntry& me, int depth);
  const Cfg& cfg_for(const MethodDef& def);

  /// Cached identity + hierarchy resolution for a method-ref pool entry.
  /// Method refs are interned per container, so one entry serves every
  /// call site sharing the reference.
  struct RefResolution {
    MethodId declared;
    std::optional<MethodResolution> resolution;
    /// Helper-predicate summary: the levels over which the callee returns
    /// true, when it is a recognizable SDK-check helper (lazily computed —
    /// see predicate_for).
    bool predicate_computed = false;
    std::optional<ApiInterval> predicate;
  };
  const RefResolution& resolve_ref(const DexFile& dex, std::uint32_t ref_idx);

  /// Memoized helper-predicate summary for a method-ref pool entry:
  /// evaluates trivial SDK-test helper bodies concretely at every modelled
  /// level. nullopt when the callee is not such a helper.
  std::optional<ApiInterval> predicate_for(const DexFile& dex,
                                           std::uint32_t ref_idx);

  ClassHierarchy* hierarchy_;
  const ApiDatabase* db_;
  AumOptions options_;
  BudgetTracker* budget_ = nullptr;  // optional, not owned

  // Per-run state (reset by model()).
  std::unordered_map<const MethodDef*, std::unique_ptr<Cfg>> cfg_cache_;
  /// Widest context each method has been analyzed under, for memoization.
  std::unordered_map<const MethodDef*, ApiInterval> analyzed_;
  /// Dedupe/widen call-site records (hit only on context re-analysis):
  /// numeric site key (method identity + instruction index) -> index into
  /// the model's vectors; for permissions, small per-site lists.
  std::unordered_map<std::uint64_t, std::size_t> api_site_index_;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::string, std::size_t>>>
      perm_site_index_;
  /// Sites already recorded in UsageModel::guard_checks (re-analysis under
  /// a widened context replays the same branches).
  std::unordered_set<std::uint64_t> guard_check_sites_;
  std::unordered_map<MethodId, bool> framework_walked_;
  /// True when the hierarchy runs over an indexed substrate: walks take
  /// the pointer path, with framework_walked_ kept only for callees whose
  /// class the substrate does not own.
  bool use_fast_walk_ = false;
  std::vector<std::uint8_t> walked_fast_;  // by MethodEntry::slot
  std::unordered_map<const DexFile*,
                     std::vector<std::unique_ptr<RefResolution>>>
      ref_cache_;
  std::vector<MethodWork> worklist_;

  // Incremental-analysis state (reset per run). record_ receives the
  // per-class traces; trace_cls_ is the entry of the class currently being
  // explored (nullptr when not recording or during clean-class replay).
  ExplorationTrace* record_ = nullptr;
  ClassTrace* trace_cls_ = nullptr;
  /// Dirty-set restriction for model_incremental(); nullptr in full runs.
  const std::unordered_set<std::string>* scope_ = nullptr;
  bool scope_violation_ = false;
};

}  // namespace saintdroid
