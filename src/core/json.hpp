// Minimal JSON emission for analysis reports — machine-readable output for
// CI pipelines and the command-line tools. Emission only (the library
// never consumes JSON), with full string escaping.
#pragma once

#include <span>
#include <string>

#include "core/advisor.hpp"
#include "core/report.hpp"

namespace saintdroid {

/// Escapes a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view s);

/// One mismatch as a JSON object.
std::string to_json(const Mismatch& m);

/// A full analysis result as a JSON object:
/// {"app": ..., "completed": ..., "mismatches": [...], "usage": {...}}.
std::string to_json(const AnalysisResult& result, const std::string& app_name);

/// Repair suggestions as a JSON array.
std::string to_json(std::span<const RepairSuggestion> suggestions);

}  // namespace saintdroid
