// Minimal JSON for analysis reports and the suite journal —
// machine-readable output for CI pipelines and the command-line tools,
// plus the small reader the crash-safe journal's resume path needs
// (workload/journal.hpp). Full string escaping on both sides.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/advisor.hpp"
#include "core/report.hpp"

namespace saintdroid {

/// Escapes a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view s);

/// A parsed JSON document: null, bool, number, string, array or object.
/// Small by design — the library consumes only its own emitted JSON (the
/// suite journal), so numbers are doubles and object lookup is linear.
class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull = 0, kBool, kNumber, kString, kArray, kObject,
  };

  /// Parses one complete JSON document; throws ParseError on malformed
  /// input or trailing garbage.
  static JsonValue parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  /// Typed accessors; SD_EXPECTS the value holds the asked-for type.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// One mismatch as a JSON object.
std::string to_json(const Mismatch& m);

/// A full analysis result as a JSON object:
/// {"app": ..., "completed": ..., "mismatches": [...], "usage": {...}}.
std::string to_json(const AnalysisResult& result, const std::string& app_name);

/// Repair suggestions as a JSON array.
std::string to_json(std::span<const RepairSuggestion> suggestions);

}  // namespace saintdroid
