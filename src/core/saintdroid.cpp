#include "core/saintdroid.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "adf/spec.hpp"
#include "clvm/clvm.hpp"
#include "hierarchy/hierarchy.hpp"
#include "support/errors.hpp"
#include "support/meter.hpp"

namespace saintdroid {

SaintDroid::SaintDroid(const FrameworkRepository& repo,
                       SaintDroidOptions options)
    : repo_(&repo),
      options_(options),
      db_(std::make_shared<const ApiDatabase>(ApiDatabase::mine(repo))) {}

SaintDroid::SaintDroid(const FrameworkRepository& repo, ApiDatabase database,
                       SaintDroidOptions options)
    : repo_(&repo),
      options_(options),
      db_(std::make_shared<const ApiDatabase>(std::move(database))) {}

SaintDroid::SaintDroid(const FrameworkRepository& repo,
                       std::shared_ptr<const ApiDatabase> database,
                       SaintDroidOptions options)
    : repo_(&repo), options_(options), db_(std::move(database)) {}

AnalysisResult SaintDroid::analyze(const Apk& apk) {
  // Analyze against the framework the app was built for.
  return analyze_at_level(
      apk, FrameworkRepository::clamp_level(apk.manifest.target_sdk));
}

AnalysisResult SaintDroid::analyze_versions(const Apk& apk,
                                            std::span<const int> levels) {
  AnalysisResult merged;
  std::unordered_map<std::string, std::size_t> seen;
  for (const int level : levels) {
    AnalysisResult one =
        analyze_at_level(apk, FrameworkRepository::clamp_level(level));
    for (auto& m : one.mismatches) {
      const std::string key = m.key();
      if (const auto it = seen.find(key); it != seen.end()) {
        auto& existing = merged.mismatches[it->second];
        existing.problem_levels =
            existing.problem_levels.hull(m.problem_levels);
        continue;
      }
      seen.emplace(key, merged.mismatches.size());
      merged.mismatches.push_back(std::move(m));
    }
    if (one.incomplete && !merged.incomplete) {
      merged.incomplete = true;
      merged.incomplete_reason = std::move(one.incomplete_reason);
    }
    merged.usage.seconds += one.usage.seconds;
    merged.usage.peak_bytes =
        std::max(merged.usage.peak_bytes, one.usage.peak_bytes);
    merged.usage.loaded_classes =
        std::max(merged.usage.loaded_classes, one.usage.loaded_classes);
    merged.incremental += one.incremental;
  }
  return merged;
}

namespace {

/// Flat-scan-style fallback for budget-exhausted runs (the degradation
/// mode of baselines/flat_scan, reimplemented here over the database only
/// so core does not depend on the baselines layer): every main-dex method
/// is scanned independently under the manifest range with intraprocedural
/// guards, and call sites whose declared receiver is a framework class
/// known to the database become API call sites. No hierarchy resolution,
/// no class materialization — cost is linear in the main dex, regardless
/// of how deep the real exploration got before the budget tripped.
std::vector<Mismatch> flat_fallback(const Apk& apk, const ApiDatabase& db,
                                    const Amd& amd, ApiInterval app_range,
                                    const GuardOptions& guard_options) {
  UsageModel flat;
  // The flat model gathers no permission uses and no guard checks, so the
  // absence-based SDC lints must stay quiet on it.
  flat.incomplete = true;
  const DexFile& dex = apk.dexes.front();
  for (const auto& cls : dex.classes()) {
    for (const auto& m : cls.methods) {
      if (!m.code || m.code->insns.empty()) continue;
      const Cfg cfg = Cfg::build(*m.code);
      // Unbudgeted on purpose: the fixpoint's own iteration cap bounds it,
      // and dropping guards here would turn every guarded use into a
      // false alarm the unbudgeted run never produces.
      const GuardResult guards =
          analyze_guards(dex, *m.code, cfg, app_range, guard_options);
      const MethodId caller = dex.method_id(cls, m);
      for (std::uint32_t i = 0; i < m.code->insns.size(); ++i) {
        const Instruction& insn = m.code->insns[i];
        if (insn.op != Opcode::kInvoke) continue;
        const MethodId declared = dex.method_id_at(insn.index);
        if (!is_framework_class_name(declared.class_name)) continue;
        if (!db.defined_levels(declared)) continue;
        const ApiInterval guard = guards.at(cfg, i);
        if (guard.empty()) continue;
        flat.api_calls.push_back(ApiCallSite{caller, i, declared, declared,
                                             guard});
      }
    }
  }
  return amd.detect(apk.manifest, flat);
}

}  // namespace

AnalysisResult SaintDroid::analyze_at_level(const Apk& apk, int level) {
  AnalysisResult result;
  const Stopwatch watch;

  const DexFile* framework = nullptr;
  const FrameworkClassIndex* framework_index = nullptr;
  std::shared_ptr<const FrameworkSubstrate> substrate;
  {
    const PhaseScope phase{"framework"};
    framework = &repo_->image(level);
    if (options_.lazy_loading) {
      // The shared substrate subsumes the class-name index: a failure here
      // (first build of a poisoned level) fails this analysis in the
      // "framework" phase and the unsatisfied once-guard retries next time.
      if (options_.shared_substrate)
        substrate = repo_->substrate(level, options_.substrate);
      else
        framework_index = &repo_->class_index(level);
    }
  }

  // Every analysis attempt — the incremental one and the full one it may
  // fall back to — gets its own provider and budget, so a discarded scoped
  // run cannot leak loaded classes, memory accounting, or consumed budget
  // into the run whose results are reported.
  const auto make_provider = [&](BudgetTracker& budget) {
    const PhaseScope phase{"load"};
    std::unique_ptr<ClassProvider> provider;
    if (options_.lazy_loading)
      provider = std::make_unique<ClassLoaderVm>(apk, *framework,
                                                 /*include_secondary=*/true,
                                                 framework_index, &budget,
                                                 substrate);
    else
      provider = std::make_unique<EagerLoader>(apk, *framework,
                                               /*include_secondary=*/true,
                                               /*load_framework=*/true);
    return provider;
  };

  // AMD + the budget-degradation fallback + usage accounting, shared by
  // both paths.
  const auto detect_and_finish = [&](const UsageModel& model,
                                     const ClassProvider& provider,
                                     const BudgetTracker& budget) {
    const PhaseScope phase{"detect"};
    Amd amd{*db_, options_.amd};
    result.mismatches = amd.detect(apk.manifest, model);

    if (model.incomplete) {
      // Budget exhausted: keep everything the truncated exploration found
      // and fill coverage gaps with the flat scan, deduplicated by issue
      // identity so double-found mismatches appear once.
      result.incomplete = true;
      result.incomplete_reason = budget.reason() ? budget.reason() : "budget";
      const ApiInterval app_range =
          apk.manifest.supported_range().intersect(ApiInterval::full());
      std::unordered_set<std::string> seen;
      seen.reserve(result.mismatches.size());
      for (const auto& m : result.mismatches) seen.insert(m.key());
      for (auto& m : flat_fallback(apk, *db_, amd, app_range,
                                   options_.aum.guards)) {
        if (seen.insert(m.key()).second)
          result.mismatches.push_back(std::move(m));
      }
    }

    result.usage.seconds = watch.seconds();
    result.usage.peak_bytes = provider.memory().peak_bytes();
    result.usage.loaded_classes = provider.loaded_class_count();
  };

  // ---- Incremental attempt -------------------------------------------
  // Eligibility requires the lazy CLVM: the eager loader materializes the
  // whole world up front, so there is no dirty-region cost to save.
  const IncrCache* cache = options_.incr_cache.get();
  const bool incr_eligible = cache != nullptr && options_.lazy_loading;
  ApkFingerprints fingerprints;
  std::uint64_t manifest_fp = 0;
  std::uint64_t options_fp = 0;
  if (incr_eligible) {
    result.incremental.attempted = 1;
    fingerprints = fingerprint_apk(apk);
    manifest_fp = manifest_fingerprint(apk.manifest);
    options_fp = aum_options_fingerprint(options_.aum);
    std::optional<IncrEntry> cached = cache->try_load(*repo_, apk.name, level);
    if (cached &&
        (cached->manifest_fp != manifest_fp || cached->options_fp != options_fp))
      cached.reset();  // manifest or option drift: whole entry unusable

    if (cached) {
      const DirtyDelta delta = compute_dirty(*cached, fingerprints);
      if (delta.fraction() <= options_.max_dirty_fraction) {
        BudgetTracker budget{options_.budget};
        auto provider = make_provider(budget);
        ClassHierarchy hierarchy{*provider, substrate.get()};
        // Classes whose app-internal super/interface chain touches the
        // dirty set. Virtual resolution only walks that chain, so a clean
        // class's edge to any other callee resolves as it did last run —
        // the seed pass skips it. Monotone fixpoint, so declaration cycles
        // (invalid dex, but cheap to tolerate) cannot under-approximate.
        std::unordered_set<std::string> dirty_targets = delta.dirty;
        for (bool grew = true; grew;) {
          grew = false;
          for (const auto& [name, fp] : fingerprints) {
            if (dirty_targets.count(name) != 0) continue;
            bool hit = !fp.super_name.empty() &&
                       dirty_targets.count(fp.super_name) != 0;
            for (const auto& iface : fp.interfaces)
              if (hit) break;
              else
                hit = dirty_targets.count(iface) != 0;
            if (hit) {
              dirty_targets.insert(name);
              grew = true;
            }
          }
        }
        // Clean traces by pointer into the cached entry — building the
        // scope costs O(classes), not a deep copy of the trace maps. A
        // clean class is a seed candidate only when it references a dirty
        // target (its fresh ref list covers every trace callee and
        // late-bound type, because removed/added referents always dirty
        // their referrers).
        std::vector<Aum::CleanClass> clean;
        clean.reserve(cached->classes.size());
        for (const auto& [name, record] : cached->classes) {
          if (delta.dirty.count(name) != 0) continue;
          Aum::CleanClass cc;
          cc.name = &name;
          cc.trace = &record.trace;
          if (const auto it = fingerprints.find(name);
              it != fingerprints.end()) {
            cc.seed_candidate = false;
            for (const auto& ref : it->second.refs) {
              if (dirty_targets.count(ref) != 0) {
                cc.seed_candidate = true;
                break;
              }
            }
          }
          clean.push_back(cc);
        }
        UsageModel model;
        ExplorationTrace dirty_trace;
        bool usable = false;
        {
          const PhaseScope phase{"model"};
          Aum aum{hierarchy, *db_, options_.aum, &budget};
          Aum::IncrementalScope scope;
          scope.dirty = &delta.dirty;
          scope.clean = clean;
          scope.dirty_targets = &dirty_targets;
          model = aum.model_incremental(apk, scope, &dirty_trace);
          // A scope violation means a cached trace led outside the dirty
          // set (a soundness net that should not trip); a budget-truncated
          // scoped run cannot be spliced against complete cached facts.
          // Either way the attempt is discarded wholesale.
          usable = !aum.scope_violation() && !model.incomplete;
        }
        if (usable) {
          result.incremental.hits = 1;
          result.incremental.dirty_classes = delta.dirty.size();
          // Successor entry from the *pre-splice* scoped model, so dirty
          // classes' facts are not double-counted next round. Below the
          // refresh threshold the cached entry is carried forward instead:
          // later diffs run against the older fingerprints, yielding larger
          // but still-sound dirty sets, in exchange for skipping the
          // rebuild and the write.
          std::optional<IncrEntry> updated;
          if (delta.fraction() >= options_.refresh_dirty_fraction)
            updated = update_incr_entry(*cached, delta.dirty, fingerprints,
                                        dirty_trace, model);
          splice_clean_facts(*cached, delta.dirty, model);
          detect_and_finish(model, *provider, budget);
          if (updated) {
            try {
              cache->store(*repo_, level, *updated);
            } catch (const Error&) {
              // Best-effort: a failed store only costs the next run its
              // hit.
            }
          }
          return result;
        }
      }
    }
    // Missing/corrupt entry, drift, an over-budget dirty frontier, or a
    // discarded scoped attempt: count the fallback loudly and start over.
    result.incremental.fallbacks = 1;
  }

  // ---- Full analysis --------------------------------------------------
  BudgetTracker budget{options_.budget};
  auto provider = make_provider(budget);
  ClassHierarchy hierarchy{*provider, substrate.get()};
  UsageModel model;
  ExplorationTrace trace;
  {
    const PhaseScope phase{"model"};
    Aum aum{hierarchy, *db_, options_.aum, &budget};
    model = aum.model(apk, incr_eligible ? &trace : nullptr);
  }
  detect_and_finish(model, *provider, budget);
  if (incr_eligible && !result.incomplete) {
    // Record for next time — but never from a truncated exploration, whose
    // per-class facts under-approximate.
    try {
      cache->store(*repo_, level,
                   make_incr_entry(apk.name, manifest_fp, options_fp,
                                   fingerprints, trace, model));
    } catch (const Error&) {
      // Best-effort, as above.
    }
  }
  return result;
}

bool SaintDroid::detects(MismatchKind kind) const {
  switch (kind) {
    case MismatchKind::kApiInvocation: return options_.amd.detect_api;
    case MismatchKind::kApiCallback: return options_.amd.detect_callbacks;
    case MismatchKind::kPermissionRequest:
    case MismatchKind::kPermissionRevocation:
      return options_.amd.detect_permissions;
    case MismatchKind::kSemanticChange:
      return options_.amd.detect_semantics;
    case MismatchKind::kSdkDeclaration:
      return options_.amd.detect_declarations;
  }
  return false;
}

}  // namespace saintdroid
