#include "core/saintdroid.hpp"

#include <algorithm>
#include <unordered_map>

#include "clvm/clvm.hpp"
#include "hierarchy/hierarchy.hpp"
#include "support/meter.hpp"

namespace saintdroid {

SaintDroid::SaintDroid(const FrameworkRepository& repo,
                       SaintDroidOptions options)
    : repo_(&repo),
      options_(options),
      db_(std::make_shared<const ApiDatabase>(ApiDatabase::mine(repo))) {}

SaintDroid::SaintDroid(const FrameworkRepository& repo, ApiDatabase database,
                       SaintDroidOptions options)
    : repo_(&repo),
      options_(options),
      db_(std::make_shared<const ApiDatabase>(std::move(database))) {}

SaintDroid::SaintDroid(const FrameworkRepository& repo,
                       std::shared_ptr<const ApiDatabase> database,
                       SaintDroidOptions options)
    : repo_(&repo), options_(options), db_(std::move(database)) {}

AnalysisResult SaintDroid::analyze(const Apk& apk) {
  // Analyze against the framework the app was built for.
  return analyze_at_level(
      apk, FrameworkRepository::clamp_level(apk.manifest.target_sdk));
}

AnalysisResult SaintDroid::analyze_versions(const Apk& apk,
                                            std::span<const int> levels) {
  AnalysisResult merged;
  std::unordered_map<std::string, std::size_t> seen;
  for (const int level : levels) {
    AnalysisResult one =
        analyze_at_level(apk, FrameworkRepository::clamp_level(level));
    for (auto& m : one.mismatches) {
      const std::string key = m.key();
      if (const auto it = seen.find(key); it != seen.end()) {
        auto& existing = merged.mismatches[it->second];
        existing.problem_levels =
            existing.problem_levels.hull(m.problem_levels);
        continue;
      }
      seen.emplace(key, merged.mismatches.size());
      merged.mismatches.push_back(std::move(m));
    }
    merged.usage.seconds += one.usage.seconds;
    merged.usage.peak_bytes =
        std::max(merged.usage.peak_bytes, one.usage.peak_bytes);
    merged.usage.loaded_classes =
        std::max(merged.usage.loaded_classes, one.usage.loaded_classes);
  }
  return merged;
}

AnalysisResult SaintDroid::analyze_at_level(const Apk& apk, int level) {
  AnalysisResult result;
  const Stopwatch watch;

  const DexFile& framework = repo_->image(level);

  std::unique_ptr<ClassProvider> provider;
  if (options_.lazy_loading)
    provider = std::make_unique<ClassLoaderVm>(apk, framework,
                                               /*include_secondary=*/true,
                                               &repo_->class_index(level));
  else
    provider = std::make_unique<EagerLoader>(apk, framework,
                                             /*include_secondary=*/true,
                                             /*load_framework=*/true);

  ClassHierarchy hierarchy{*provider};
  Aum aum{hierarchy, *db_, options_.aum};
  const UsageModel model = aum.model(apk);

  Amd amd{*db_, options_.amd};
  result.mismatches = amd.detect(apk.manifest, model);

  result.usage.seconds = watch.seconds();
  result.usage.peak_bytes = provider->memory().peak_bytes();
  result.usage.loaded_classes = provider->loaded_class_count();
  return result;
}

bool SaintDroid::detects(MismatchKind kind) const {
  switch (kind) {
    case MismatchKind::kApiInvocation: return options_.amd.detect_api;
    case MismatchKind::kApiCallback: return options_.amd.detect_callbacks;
    case MismatchKind::kPermissionRequest:
    case MismatchKind::kPermissionRevocation:
      return options_.amd.detect_permissions;
  }
  return false;
}

}  // namespace saintdroid
