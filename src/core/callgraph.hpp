// Explicit method call graph over an app (plus the framework boundary).
//
// The AUM embeds its traversal for speed; this module materializes the
// same graph as a queryable artifact — nodes for every reachable method,
// edges per call site, framework methods as boundary nodes — for tooling
// (DOT dumps), for the paper's "method-call graph is generated as the
// analysis progresses" narrative, and for downstream consumers that want
// structure rather than detections.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dex/apk.hpp"
#include "dex/ids.hpp"
#include "hierarchy/hierarchy.hpp"

namespace saintdroid {

/// One node in the call graph.
struct CallGraphNode {
  MethodId id;
  bool is_framework = false;  ///< boundary node (body not traversed)
  bool is_entry = false;      ///< component/callback entry point
};

/// One edge (call site).
struct CallGraphEdge {
  std::uint32_t caller = 0;      ///< node index
  std::uint32_t callee = 0;      ///< node index
  std::uint32_t insn_index = 0;  ///< call site within the caller
  InvokeKind kind = InvokeKind::kVirtual;
};

class CallGraph {
 public:
  /// Builds the graph by worklist exploration from the app's entry points
  /// (components + overrides of framework methods), resolving targets
  /// through `hierarchy` — loading classes on demand exactly as the
  /// compatibility analysis does.
  static CallGraph build(const Apk& apk, ClassHierarchy& hierarchy);

  const std::vector<CallGraphNode>& nodes() const { return nodes_; }
  const std::vector<CallGraphEdge>& edges() const { return edges_; }

  /// Node index for a method id, or kNoIndex when absent.
  std::uint32_t find(const MethodId& id) const;

  /// Outgoing edges of one node.
  std::vector<const CallGraphEdge*> out_edges(std::uint32_t node) const;

  /// Number of app (non-boundary) methods reached.
  std::size_t reachable_app_methods() const;

  /// Graphviz rendering (framework boundary nodes drawn as ellipses).
  std::string to_dot(const std::string& graph_name) const;

 private:
  std::uint32_t intern_node(const MethodId& id, bool framework, bool entry);

  std::vector<CallGraphNode> nodes_;
  std::vector<CallGraphEdge> edges_;
  std::unordered_map<MethodId, std::uint32_t> index_;
};

}  // namespace saintdroid
