#include "core/json.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "support/errors.hpp"

namespace saintdroid {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string quoted(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

std::string method_json(const MethodId& id) {
  std::ostringstream out;
  out << "{\"class\":" << quoted(id.class_name) << ",\"name\":"
      << quoted(id.name) << ",\"descriptor\":" << quoted(id.descriptor)
      << "}";
  return out.str();
}

std::string interval_json(ApiInterval interval) {
  std::ostringstream out;
  if (interval.empty())
    out << "null";
  else
    out << "{\"min\":" << interval.lo() << ",\"max\":" << interval.hi()
        << "}";
  return out.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Parsing

bool JsonValue::as_bool() const {
  SD_EXPECTS(type_ == Type::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  SD_EXPECTS(type_ == Type::kNumber);
  return number_;
}

const std::string& JsonValue::as_string() const {
  SD_EXPECTS(type_ == Type::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  SD_EXPECTS(type_ == Type::kArray);
  return array_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_)
    if (name == key) return &value;
  return nullptr;
}

/// Recursive-descent parser over the grammar we emit. Depth-limited so a
/// hostile journal line cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size())
      throw ParseError("json: trailing characters after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) throw ParseError("json: nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) throw ParseError("json: unexpected end");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't': expect_word("true"); return make_bool(true);
      case 'f': expect_word("false"); return make_bool(false);
      case 'n': expect_word("null"); return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skip_ws();
      if (peek() != '"') throw ParseError("json: expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') throw ParseError("json: expected ':'");
      ++pos_;
      v.object_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') { ++pos_; continue; }
      if (next == '}') { ++pos_; return v; }
      throw ParseError("json: expected ',' or '}'");
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.array_.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') { ++pos_; continue; }
      if (next == ']') { ++pos_; return v; }
      throw ParseError("json: expected ',' or ']'");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size())
            throw ParseError("json: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              throw ParseError("json: bad \\u escape");
          }
          // UTF-8 encode (BMP only — all we ever emit).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: throw ParseError("json: bad escape");
      }
    }
    throw ParseError("json: unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || end != text_.data() + pos_ || pos_ == start)
      throw ParseError("json: bad number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = value;
    return v;
  }

  static JsonValue make_bool(bool value) {
    JsonValue v;
    v.type_ = JsonValue::Type::kBool;
    v.bool_ = value;
    return v;
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      throw ParseError("json: bad literal");
    pos_ += word.size();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser{text}.parse_document();
}

// ---------------------------------------------------------------------------
// Emission

std::string to_json(const Mismatch& m) {
  std::ostringstream out;
  out << "{\"kind\":" << quoted(mismatch_kind_name(m.kind))
      << ",\"abbr\":" << quoted(mismatch_kind_abbr(m.kind))
      << ",\"location\":" << method_json(m.location)
      << ",\"instruction\":" << m.insn_index
      << ",\"subject\":" << method_json(m.subject)
      << ",\"problem_levels\":" << interval_json(m.problem_levels);
  if (!m.permission.empty()) out << ",\"permission\":" << quoted(m.permission);
  if (!m.note.empty()) out << ",\"note\":" << quoted(m.note);
  out << "}";
  return out.str();
}

std::string to_json(const AnalysisResult& result,
                    const std::string& app_name) {
  std::ostringstream out;
  out << "{\"app\":" << quoted(app_name)
      << ",\"completed\":" << (result.completed ? "true" : "false");
  if (!result.completed)
    out << ",\"failure\":" << quoted(result.failure_reason);
  if (result.incomplete) {
    out << ",\"incomplete\":true,\"incomplete_reason\":"
        << quoted(result.incomplete_reason);
  }
  out << ",\"mismatches\":[";
  for (std::size_t i = 0; i < result.mismatches.size(); ++i) {
    if (i) out << ",";
    out << to_json(result.mismatches[i]);
  }
  out << "],\"usage\":{\"seconds\":" << result.usage.seconds
      << ",\"peak_bytes\":" << result.usage.peak_bytes
      << ",\"loaded_classes\":" << result.usage.loaded_classes << "}}";
  return out.str();
}

std::string to_json(std::span<const RepairSuggestion> suggestions) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < suggestions.size(); ++i) {
    if (i) out << ",";
    const auto& s = suggestions[i];
    out << "{\"repair\":" << quoted(repair_kind_name(s.kind))
        << ",\"level\":" << s.level << ",\"description\":"
        << quoted(s.description) << ",\"mismatch\":" << to_json(s.mismatch)
        << "}";
  }
  out << "]";
  return out.str();
}

}  // namespace saintdroid
