#include "core/json.hpp"

#include <sstream>

namespace saintdroid {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string quoted(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

std::string method_json(const MethodId& id) {
  std::ostringstream out;
  out << "{\"class\":" << quoted(id.class_name) << ",\"name\":"
      << quoted(id.name) << ",\"descriptor\":" << quoted(id.descriptor)
      << "}";
  return out.str();
}

std::string interval_json(ApiInterval interval) {
  std::ostringstream out;
  if (interval.empty())
    out << "null";
  else
    out << "{\"min\":" << interval.lo() << ",\"max\":" << interval.hi()
        << "}";
  return out.str();
}

}  // namespace

std::string to_json(const Mismatch& m) {
  std::ostringstream out;
  out << "{\"kind\":" << quoted(mismatch_kind_name(m.kind))
      << ",\"abbr\":" << quoted(mismatch_kind_abbr(m.kind))
      << ",\"location\":" << method_json(m.location)
      << ",\"instruction\":" << m.insn_index
      << ",\"subject\":" << method_json(m.subject)
      << ",\"problem_levels\":" << interval_json(m.problem_levels);
  if (!m.permission.empty()) out << ",\"permission\":" << quoted(m.permission);
  if (!m.note.empty()) out << ",\"note\":" << quoted(m.note);
  out << "}";
  return out.str();
}

std::string to_json(const AnalysisResult& result,
                    const std::string& app_name) {
  std::ostringstream out;
  out << "{\"app\":" << quoted(app_name)
      << ",\"completed\":" << (result.completed ? "true" : "false");
  if (!result.completed)
    out << ",\"failure\":" << quoted(result.failure_reason);
  out << ",\"mismatches\":[";
  for (std::size_t i = 0; i < result.mismatches.size(); ++i) {
    if (i) out << ",";
    out << to_json(result.mismatches[i]);
  }
  out << "],\"usage\":{\"seconds\":" << result.usage.seconds
      << ",\"peak_bytes\":" << result.usage.peak_bytes
      << ",\"loaded_classes\":" << result.usage.loaded_classes << "}}";
  return out.str();
}

std::string to_json(std::span<const RepairSuggestion> suggestions) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < suggestions.size(); ++i) {
    if (i) out << ",";
    const auto& s = suggestions[i];
    out << "{\"repair\":" << quoted(repair_kind_name(s.kind))
        << ",\"level\":" << s.level << ",\"description\":"
        << quoted(s.description) << ",\"mismatch\":" << to_json(s.mismatch)
        << "}";
  }
  out << "]";
  return out.str();
}

}  // namespace saintdroid
