// The SAINTDroid facade: wires CLVM -> hierarchy -> AUM -> AMD into the
// Analyzer interface. This is the library's primary public entry point:
//
//   const auto& repo = FrameworkRepository::standard();
//   SaintDroid tool{repo};
//   AnalysisResult result = tool.analyze(apk);
//   std::cout << result.to_text(apk.name);
//
// The ARM database is mined once per facade (per framework) and reused
// across every analyze() call, exactly as the paper describes (§III-B).
#pragma once

#include <memory>
#include <span>

#include "adf/repository.hpp"
#include "core/amd.hpp"
#include "core/analyzer.hpp"
#include "core/arm.hpp"
#include "core/aum.hpp"
#include "core/incr_cache.hpp"
#include "support/budget.hpp"

namespace saintdroid {

struct SaintDroidOptions {
  AumOptions aum;
  AmdOptions amd;
  /// Use the lazy CLVM (true) or eager whole-world loading (false — the
  /// ablation configuration; CID-style loading with SAINTDroid detection).
  bool lazy_loading = true;
  /// Point the CLVM and hierarchy at the repository's shared, immutable
  /// per-(level, options) FrameworkSubstrate instead of materializing
  /// framework classes privately per analysis (lazy_loading only).
  /// Results — including memory accounting — are identical either way;
  /// sharing only removes the per-app re-materialization cost. False is
  /// the ablation/measurement configuration (BENCH_substrate.json).
  bool shared_substrate = true;
  /// Keying knobs for the shared substrate (ignored when shared_substrate
  /// is false). Analyses agreeing on (level, substrate) share one build.
  SubstrateOptions substrate;
  /// Per-app resource limits (default: unlimited). Exhaustion degrades
  /// the run to a partial report flagged AnalysisResult::incomplete, with
  /// flat-scan-style API checks covering what exploration didn't reach —
  /// it never throws, so a pathological app cannot sink a batch.
  AnalysisBudget budget;
  /// Optional per-app incremental fact cache (core/incr_cache.hpp). When
  /// set (and lazy_loading is on), each analyze() consults the cache,
  /// re-explores only the dirty class set of a modified APK, and splices
  /// cached facts for the rest; full analyses record entries for next
  /// time. Results are byte-identical to from-scratch analysis under an
  /// unlimited budget (a *finite* budget can differ only in where the
  /// incomplete degradation lands; scoped runs that lose their budget are
  /// discarded and re-run in full). Shareable across worker facades.
  std::shared_ptr<const IncrCache> incr_cache;
  /// Incremental attempts whose dirty set exceeds this fraction of the
  /// app's classes fall back to full analysis — past that point scoped
  /// exploration plus splicing costs more than starting over.
  double max_dirty_fraction = 0.4;
  /// On a hit, the successor cache entry is rebuilt and stored only when
  /// the dirty fraction reaches this threshold; below it the cached entry
  /// is carried forward unchanged. Dirty sets are always computed against
  /// the stored entry, so a lagging entry can only *grow* later dirty
  /// sets (never corrupt results), and a drifted entry self-corrects
  /// through the max_dirty_fraction fallback, which stores fresh. The
  /// default refreshes on every hit; update-heavy fleets trade a little
  /// dirty-set growth for skipping most writes.
  double refresh_dirty_fraction = 0.0;
};

class SaintDroid final : public Analyzer {
 public:
  /// `repo` must outlive the analyzer. The API database is mined from it
  /// on construction (the one-time ARM cost).
  explicit SaintDroid(
      const FrameworkRepository& repo = FrameworkRepository::standard(),
      SaintDroidOptions options = {});

  /// Constructs with a previously mined database (e.g. loaded via
  /// ApiDatabase::parse), skipping the mining pass. The caller must ensure
  /// the database matches `repo`'s framework.
  SaintDroid(const FrameworkRepository& repo, ApiDatabase database,
             SaintDroidOptions options = {});

  /// Shares an already mined database without copying it — the form the
  /// parallel batch engine uses so one immutable ApiDatabase serves every
  /// worker's facade. `database` must be non-null.
  SaintDroid(const FrameworkRepository& repo,
             std::shared_ptr<const ApiDatabase> database,
             SaintDroidOptions options = {});

  std::string_view name() const override { return "SAINTDroid"; }

  /// Analyzes against the framework the app targets (the common case).
  AnalysisResult analyze(const Apk& apk) override;

  /// The paper's full input contract: "an app APK along with a set of
  /// Android framework versions". Runs the analysis against each level's
  /// image and merges the mismatch lists (deduplicated by issue identity,
  /// guard intervals hulled). Usage is summed over the runs.
  AnalysisResult analyze_versions(const Apk& apk, std::span<const int> levels);

  bool detects(MismatchKind kind) const override;

  /// Replaces the per-app resource limits for subsequent analyze() calls —
  /// the cancellable-analysis entry point the serve layer uses to apply a
  /// per-request budget (deadline + cancel flag) to a reused facade. Not
  /// thread-safe against a concurrent analyze(); callers own the facade
  /// exclusively (one per worker, as in the parallel harness).
  void set_budget(const AnalysisBudget& budget) { options_.budget = budget; }
  const AnalysisBudget& budget() const { return options_.budget; }

  const ApiDatabase& database() const { return *db_; }

  /// The shared handle, for spawning sibling analyzers against the same
  /// mined model.
  const std::shared_ptr<const ApiDatabase>& shared_database() const {
    return db_;
  }

 private:
  AnalysisResult analyze_at_level(const Apk& apk, int level);

  const FrameworkRepository* repo_;
  SaintDroidOptions options_;
  // Immutable after construction; shared (never copied) across the
  // per-worker facades of a parallel suite run.
  std::shared_ptr<const ApiDatabase> db_;
};

}  // namespace saintdroid
