#include "core/semantics.hpp"

#include <algorithm>
#include <tuple>

#include "support/bytes.hpp"
#include "support/errors.hpp"

namespace saintdroid {

namespace {

constexpr std::uint32_t kSemanticMagic = 0x42544D53;  // "SMTB"
constexpr std::uint32_t kSemanticVersion = 1;

// Same rule as DexFile::descriptor_of: primitives are single letters,
// arrays arrive in descriptor form, reference types get L...;
void append_type(std::string& out, const std::string& name) {
  if (name.size() == 1 || name.front() == '[')
    out += name;
  else
    out += "L" + name + ";";
}

auto row_order(const SemanticChange& c) {
  return std::tie(c.method.class_name, c.method.name, c.method.descriptor);
}

}  // namespace

SemanticTable::SemanticTable(std::vector<SemanticChange> rows)
    : rows_(std::move(rows)) {
  std::sort(rows_.begin(), rows_.end(),
            [](const SemanticChange& a, const SemanticChange& b) {
              if (row_order(a) != row_order(b))
                return row_order(a) < row_order(b);
              return std::make_pair(a.levels.lo(), a.levels.hi()) <
                     std::make_pair(b.levels.lo(), b.levels.hi());
            });
}

std::span<const SemanticChange> SemanticTable::changes_for(
    const MethodId& method) const {
  // Rows are sorted by method identity; the per-method run is contiguous.
  const auto begin = std::find_if(
      rows_.begin(), rows_.end(),
      [&method](const SemanticChange& c) { return c.method == method; });
  auto end = begin;
  while (end != rows_.end() && end->method == method) ++end;
  return {begin, end};
}

std::vector<std::uint8_t> SemanticTable::serialize() const {
  ByteWriter w;
  w.u32(kSemanticMagic);
  w.u32(kSemanticVersion);
  w.uleb(rows_.size());
  for (const auto& row : rows_) {
    w.str(row.method.class_name);
    w.str(row.method.name);
    w.str(row.method.descriptor);
    w.sleb(row.levels.lo());
    w.sleb(row.levels.hi());
    w.str(row.kind);
    w.str(row.note);
  }
  return w.take();
}

SemanticTable SemanticTable::parse(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  if (r.u32() != kSemanticMagic)
    throw ParseError("bad semantic table magic");
  if (r.u32() != kSemanticVersion)
    throw ParseError("unsupported semantic table version");
  const auto count = r.count();
  std::vector<SemanticChange> rows;
  rows.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SemanticChange row;
    row.method.class_name = r.str();
    row.method.name = r.str();
    row.method.descriptor = r.str();
    const auto lo = r.sleb();
    const auto hi = r.sleb();
    if (lo < kMinApiLevel || hi > kMaxApiLevel || lo > hi)
      throw ParseError("semantic table row has an invalid level range");
    row.levels = ApiInterval{static_cast<int>(lo), static_cast<int>(hi)};
    row.kind = r.str();
    row.note = r.str();
    rows.push_back(std::move(row));
  }
  if (!r.at_end()) throw ParseError("trailing bytes after semantic table");
  SemanticTable table{std::move(rows)};
  // Canonical-order enforcement: a spliced container whose rows are out of
  // order would otherwise violate serialize(parse(b)) == b.
  const auto canonical = table.serialize();
  if (!std::equal(canonical.begin(), canonical.end(), bytes.begin(),
                  bytes.end()))
    throw ParseError("semantic table rows not in canonical order");
  return table;
}

SemanticTable mine_semantic_table(const FrameworkSpec& spec) {
  std::vector<SemanticChange> rows;
  rows.reserve(spec.semantic_changes.size());
  for (const auto& change : spec.semantic_changes) {
    SemanticChange row;
    row.method.class_name = change.cls;
    row.method.name = change.name;
    std::string descriptor = "(";
    for (const auto& p : change.params) append_type(descriptor, p);
    descriptor += ")";
    append_type(descriptor, change.return_type);
    row.method.descriptor = std::move(descriptor);
    row.levels = change.levels().intersect(ApiInterval::full());
    row.kind = change.kind;
    row.note = change.note;
    if (!row.levels.empty()) rows.push_back(std::move(row));
  }
  return SemanticTable{std::move(rows)};
}

}  // namespace saintdroid
