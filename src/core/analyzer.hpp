// The common analyzer interface SAINTDroid and the baselines implement, so
// the accuracy/performance harnesses can run them head-to-head.
#pragma once

#include <string_view>

#include "core/report.hpp"
#include "dex/apk.hpp"

namespace saintdroid {

class Analyzer {
 public:
  virtual ~Analyzer() = default;

  /// Display name ("SAINTDroid", "CID", ...).
  virtual std::string_view name() const = 0;

  /// Analyzes one app. Never throws on a well-formed Apk; tool-level
  /// failure modes (unbuildable source, timeout) are reported through
  /// AnalysisResult::completed.
  virtual AnalysisResult analyze(const Apk& apk) = 0;

  /// Capability matrix entry (paper Table IV).
  virtual bool detects(MismatchKind kind) const = 0;
};

}  // namespace saintdroid
