// ModelCache — zero-cold-start persistence for the mined models.
//
// Mining the ApiDatabase and materializing each FrameworkSubstrate are
// pure functions of (framework, level, options), yet every process redid
// them at startup — a tax on every `--shard i/N` worker, every short CLI
// invocation, and fatally on a long-lived vetting daemon. The model cache
// is a directory of `.sdmc` entries (support/sdmc.hpp) keyed by
// (container version, framework fingerprint, level, option bits):
//
//   apidb-<fingerprint>.sdmc              ApiDatabase::serialize payload
//   semtab-<fingerprint>.sdmc             SemanticTable::serialize payload
//   substrate-<fingerprint>-L<l>-m<o>.sdmc  substrate structural tables
//
// Loads are validate-then-bulk-read; any mismatch or corruption falls
// back to mining (and the fresh result overwrites the bad entry), so the
// cache can never change an analysis result — only its startup cost.
// Writes are rename-atomic, so concurrent shard processes safely share
// one directory. The warm≡cold byte-identity contract is enforced by
// tests/test_model_cache.cpp; cold-vs-warm startup time by
// bench/bench_coldstart.cpp (BENCH_coldstart.json).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "adf/repository.hpp"
#include "core/arm.hpp"

namespace saintdroid {

class ModelCache {
 public:
  /// Opens `dir` as a cache directory, creating it if needed. Throws
  /// ConfigError when the directory cannot be created.
  explicit ModelCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Path of the ApiDatabase entry for `repo`'s framework.
  std::string api_database_path(const FrameworkRepository& repo) const;

  /// Path of the SemanticTable entry for `repo`'s framework.
  std::string semantic_table_path(const FrameworkRepository& repo) const;

  /// Loads the cached ApiDatabase for `repo`, or nullopt when the entry
  /// is missing, keyed to a different framework or format version, or
  /// corrupt — the caller re-mines. (Parse-level defects throw inside and
  /// are swallowed here; fuzzers exercise sdmc_open/ApiDatabase::parse
  /// directly to assert the ParseError.)
  std::optional<ApiDatabase> try_load_api_database(
      const FrameworkRepository& repo) const;

  /// Stores `db` under `repo`'s key, rename-atomically.
  void store_api_database(const FrameworkRepository& repo,
                          const ApiDatabase& db) const;

  /// The warm-start entry point: loads the cached database, or mines it
  /// (fanning out over `jobs` workers, see ApiDatabase::mine) and stores
  /// the result for the next process. Either way the returned database
  /// carries the semantic-change table for `repo`'s framework: loaded from
  /// its own semtab-<fp>.sdmc entry when valid, else re-derived from the
  /// spec (cheap — no mining pass) and re-stored. `served_from_cache`,
  /// when non-null, reports whether the mining pass was skipped.
  std::shared_ptr<const ApiDatabase> api_database(
      const FrameworkRepository& repo, int jobs = 0,
      bool* served_from_cache = nullptr) const;

  /// Points `repo`'s substrate materialization at this directory (see
  /// FrameworkRepository::set_model_cache_dir): warm substrate loads
  /// become bulk rebinds of the persisted structural tables.
  void attach_substrate_cache(const FrameworkRepository& repo) const {
    repo.set_model_cache_dir(dir_);
  }

 private:
  std::string dir_;
};

}  // namespace saintdroid
