// CIDER baseline (Huang et al., "Understanding and Detecting Callback
// Compatibility Issues for Android Applications"), reimplemented from the
// paper's description:
//
//   * detects API *callback* (APC) mismatches only (Table IV);
//   * relies on hand-built PI-graph models of exactly four framework
//     classes — Activity, Fragment, Service, WebView (plus their
//     documented client classes) — so overrides anywhere else in the API
//     are invisible (§V-A);
//   * its callback list is compiled from the Android documentation, which
//     is known to be incomplete (Wu et al.), so a handful of real
//     callbacks are missing from the model and one documented level is
//     wrong — reproducing its documented accuracy profile;
//   * backward incompatibility only.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/analyzer.hpp"

namespace saintdroid {

/// One modelled callback entry in a PI-graph.
struct PiGraphEntry {
  std::string name;
  std::string descriptor;
  int documented_introduced = 2;  ///< as the documentation states it
};

/// The hand-built models: modelled class -> callback entries.
using PiGraphModels =
    std::unordered_map<std::string, std::vector<PiGraphEntry>>;

/// The four-class model set described in the paper (with its documentation
/// gaps baked in).
PiGraphModels default_pi_graph_models();

class CiderAnalyzer final : public Analyzer {
 public:
  explicit CiderAnalyzer(PiGraphModels models = default_pi_graph_models());

  std::string_view name() const override { return "CIDER"; }
  AnalysisResult analyze(const Apk& apk) override;
  bool detects(MismatchKind kind) const override;

 private:
  PiGraphModels models_;
};

}  // namespace saintdroid
