#include "baselines/cider.hpp"

#include <unordered_map>

#include "support/interval.hpp"
#include "support/meter.hpp"

namespace saintdroid {

PiGraphModels default_pi_graph_models() {
  PiGraphModels models;
  // Compiled from the documentation, as CIDER's authors did — including
  // the documentation's gaps: onPictureInPictureModeChanged,
  // onTopResumedActivityChanged, Fragment.onCreateView,
  // Service.onTaskRemoved and WebViewClient.shouldOverrideUrlLoading are
  // absent, and Service.onTrimMemory carries the documentation's wrong
  // introduction level (13; the framework actually added it at 14).
  models["android/app/Activity"] = {
      {"onCreate", "(Landroid/os/Bundle;)V", 2},
      {"onStart", "()V", 2},
      {"onResume", "()V", 2},
      {"onPause", "()V", 2},
      {"onStop", "()V", 2},
      {"onDestroy", "()V", 2},
      {"onSaveInstanceState", "(Landroid/os/Bundle;)V", 2},
      {"onAttachedToWindow", "()V", 5},
      {"onBackPressed", "()V", 5},
      {"onMultiWindowModeChanged", "(Z)V", 24},
      {"onRequestPermissionsResult", "(I[Ljava/lang/String;[I)V", 23},
  };
  models["android/app/Fragment"] = {
      {"onAttach", "(Landroid/app/Activity;)V", 11},
      {"onAttach", "(Landroid/content/Context;)V", 23},
      {"onCreate", "(Landroid/os/Bundle;)V", 11},
      {"onDestroy", "()V", 11},
      {"onDetach", "()V", 11},
  };
  models["android/app/Service"] = {
      {"onCreate", "()V", 2},
      {"onStartCommand", "(Landroid/content/Intent;II)V", 5},
      {"onBind", "(Landroid/content/Intent;)V", 2},
      {"onTrimMemory", "(I)V", 13},  // documentation error
      {"onDestroy", "()V", 2},
  };
  models["android/webkit/WebViewClient"] = {
      {"onPageFinished", "(Landroid/webkit/WebView;Ljava/lang/String;)V", 2},
      {"onReceivedError", "(Landroid/webkit/WebView;ILjava/lang/String;)V",
       2},
      {"onPageCommitVisible",
       "(Landroid/webkit/WebView;Ljava/lang/String;)V", 23},
  };
  return models;
}

CiderAnalyzer::CiderAnalyzer(PiGraphModels models)
    : models_(std::move(models)) {}

AnalysisResult CiderAnalyzer::analyze(const Apk& apk) {
  AnalysisResult result;
  const Stopwatch watch;

  const ApiInterval app_range =
      apk.manifest.supported_range().intersect(ApiInterval::full());

  // Index the app's own classes so the ancestor walk can pass through
  // app-level intermediate classes before reaching a modelled one.
  const DexFile& dex = apk.dexes.front();
  std::unordered_map<std::string, const ClassDef*> app_classes;
  for (const auto& cls : dex.classes())
    app_classes.emplace(dex.type_name(cls.type), &cls);

  // Memory accounting: CIDER loads the whole app (no framework — the
  // PI-graph models replace it).
  MemoryMeter memory;
  memory.allocate(dex.footprint_bytes());

  for (const auto& cls : dex.classes()) {
    // Find the nearest modelled ancestor, walking through app classes.
    const std::vector<PiGraphEntry>* model = nullptr;
    std::string super;
    {
      const ClassDef* cd = &cls;
      for (int hops = 0; cd && hops < 64; ++hops) {
        super = cd->super_type == kNoIndex ? ""
                                           : dex.type_name(cd->super_type);
        if (super.empty()) break;
        if (const auto it = models_.find(super); it != models_.end()) {
          model = &it->second;
          break;
        }
        const auto app_it = app_classes.find(super);
        cd = app_it == app_classes.end() ? nullptr : app_it->second;
      }
    }
    if (!model) continue;

    for (const auto& m : cls.methods) {
      const std::string name = dex.string_at(m.name);
      const std::string descriptor = dex.descriptor_of(m.proto);
      for (const auto& entry : *model) {
        if (entry.name != name || entry.descriptor != descriptor) continue;
        if (app_range.lo() >= entry.documented_introduced) continue;
        Mismatch mm;
        mm.kind = MismatchKind::kApiCallback;
        mm.location = dex.method_id(cls, m);
        mm.subject = MethodId{super, entry.name, entry.descriptor};
        mm.problem_levels =
            ApiInterval{app_range.lo(),
                        std::min(app_range.hi(),
                                 entry.documented_introduced - 1)};
        mm.note = "PI-graph: documented introduction at API level " +
                  std::to_string(entry.documented_introduced);
        result.mismatches.push_back(std::move(mm));
      }
    }
  }

  result.usage.seconds = watch.seconds();
  result.usage.peak_bytes = memory.peak_bytes();
  result.usage.loaded_classes = dex.classes().size();
  return result;
}

bool CiderAnalyzer::detects(MismatchKind kind) const {
  return kind == MismatchKind::kApiCallback;
}

}  // namespace saintdroid
