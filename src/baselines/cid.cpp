#include "baselines/cid.hpp"

#include "adf/spec.hpp"
#include "analysis/cfg.hpp"
#include "baselines/flat_scan.hpp"
#include "clvm/clvm.hpp"
#include "core/amd.hpp"
#include "hierarchy/hierarchy.hpp"
#include "support/meter.hpp"

namespace saintdroid {

namespace {

/// CID's per-call-site guard detection: "from each API call, CID performs
/// backward data-flow analysis to identify the presence of an API level
/// check" — one dataflow pass per API call site, over the containing
/// method only. The per-site pass (rather than one pass per method) is
/// what makes CID's analysis cost scale with API-usage density.
std::vector<ApiCallSite> cid_scan(const Apk& apk, ClassHierarchy& hierarchy,
                                  const ApiDatabase& db) {
  std::vector<ApiCallSite> sites;
  const ApiInterval app_range =
      apk.manifest.supported_range().intersect(ApiInterval::full());
  GuardOptions guards{};  // register-aware, intraprocedural
  guards.track_fields = false;  // field-cached SDK_INT is beyond CID

  const DexFile& dex = apk.dexes.front();
  for (const auto& cls_def : dex.classes()) {
    for (const auto& m : cls_def.methods) {
      if (!m.code || m.code->insns.empty()) continue;
      const MethodId caller = dex.method_id(cls_def, m);
      const Cfg cfg = Cfg::build(*m.code);

      const auto& insns = m.code->insns;
      for (std::uint32_t i = 0; i < insns.size(); ++i) {
        const Instruction& insn = insns[i];
        if (insn.op != Opcode::kInvoke) continue;
        const MethodId declared = dex.method_id_at(insn.index);
        if (!is_framework_class_name(declared.class_name)) continue;

        MethodId resolved = declared;
        if (!db.defined_levels(declared)) {
          const auto res = hierarchy.resolve(
              declared.class_name, declared.name, declared.descriptor);
          if (res && res->declaring_class->from_framework) resolved = res->id;
        }
        if (!db.defined_levels(resolved)) continue;

        // The per-site backward pass (implemented as a dedicated dataflow
        // run whose result at this site is the backward-reachable guard
        // constraint).
        const GuardResult site_guards =
            analyze_guards(dex, *m.code, cfg, app_range, guards);
        const ApiInterval interval = site_guards.at(cfg, i);
        if (interval.empty()) continue;

        sites.push_back(ApiCallSite{caller, i, declared, resolved, interval});
      }
    }
  }
  return sites;
}

}  // namespace

CidAnalyzer::CidAnalyzer(const FrameworkRepository& repo, CidOptions options,
                         std::shared_ptr<const ApiDatabase> database)
    : repo_(&repo),
      options_(options),
      db_(database ? std::move(database) : shared_api_database(repo)) {}

AnalysisResult CidAnalyzer::analyze(const Apk& apk) {
  AnalysisResult result;
  const Stopwatch watch;

  if (apk.dex_loc() > options_.max_app_loc) {
    result.completed = false;
    result.failure_reason =
        "analysis did not finish within the 600s budget (app too large for "
        "whole-program loading)";
    result.usage.seconds = watch.seconds();
    return result;
  }

  const int level = FrameworkRepository::clamp_level(apk.manifest.target_sdk);
  // Eager, whole-world loading: every main-dex class plus the entire
  // framework model (secondary dexes are invisible to CID).
  EagerLoader loader{apk, repo_->image(level), /*include_secondary=*/false,
                     /*load_framework=*/true};
  ClassHierarchy hierarchy{loader};

  // "Creates a conditional call graph for each app to record method call
  // information": CID materializes control-flow structure for everything
  // it loaded — the whole app and the framework model.
  std::uint64_t graph_nodes = 0;
  const auto build_graphs = [&graph_nodes](const DexFile& dex) {
    for (const auto& cls : dex.classes())
      for (const auto& m : cls.methods)
        if (m.code && !m.code->insns.empty())
          graph_nodes += Cfg::build(*m.code).block_count();
  };
  build_graphs(apk.dexes.front());
  build_graphs(repo_->image(level));

  UsageModel model;
  model.api_calls = cid_scan(apk, hierarchy, *db_);

  AmdOptions amd_options;
  amd_options.detect_api = true;
  amd_options.detect_callbacks = false;
  amd_options.detect_permissions = false;
  amd_options.detect_forward = false;  // backward incompatibility only
  amd_options.detect_semantics = false;    // taxonomy predates SEM/SDC
  amd_options.detect_declarations = false;
  const Amd amd{*db_, amd_options};
  result.mismatches = amd.detect(apk.manifest, model);

  result.usage.seconds = watch.seconds();
  result.usage.peak_bytes = loader.memory().peak_bytes();
  result.usage.loaded_classes = loader.loaded_class_count();
  return result;
}

bool CidAnalyzer::detects(MismatchKind kind) const {
  return kind == MismatchKind::kApiInvocation;
}

}  // namespace saintdroid
