#include "baselines/lint.hpp"

#include "baselines/flat_scan.hpp"
#include "clvm/clvm.hpp"
#include "core/amd.hpp"
#include "hierarchy/hierarchy.hpp"
#include "support/meter.hpp"

namespace saintdroid {

LintAnalyzer::LintAnalyzer(const FrameworkRepository& repo,
                           LintOptions options,
                           std::shared_ptr<const ApiDatabase> database)
    : repo_(&repo),
      options_(options),
      db_(database ? std::move(database) : shared_api_database(repo)) {}

AnalysisResult LintAnalyzer::analyze(const Apk& apk) {
  AnalysisResult result;
  const Stopwatch watch;

  if (!apk.manifest.buildable) {
    result.completed = false;
    result.failure_reason =
        "Lint requires source; the app does not build with current "
        "toolchains";
    result.usage.seconds = watch.seconds();
    return result;
  }
  if (apk.dex_loc() > options_.max_app_loc) {
    result.completed = false;
    result.failure_reason = "Lint crashed during analysis (app too large)";
    result.usage.seconds = watch.seconds();
    return result;
  }

  // The build step: Lint analyzes source as part of compiling the app, so
  // it pays a full (de)serialization of the program per round.
  std::uint64_t build_checksum = 0;
  for (int round = 0; round < options_.build_rounds; ++round) {
    for (const auto& dex : apk.dexes) {
      const auto bytes = dex.serialize();
      const DexFile reparsed = DexFile::parse(bytes);
      build_checksum += reparsed.instruction_count();
    }
  }
  (void)build_checksum;

  const int level = FrameworkRepository::clamp_level(apk.manifest.target_sdk);
  // Lint sees the SDK the project compiles against; memory-wise it holds
  // the app plus the compile-time API stubs (we account the app only —
  // Lint is not part of the Fig. 4 comparison).
  ClassLoaderVm provider{apk, repo_->image(level), /*include_secondary=*/false,
                         &repo_->class_index(level)};
  ClassHierarchy hierarchy{provider};

  FlatScanOptions scan;
  scan.guards.track_registers = false;  // lexical SDK_INT recognition only
  scan.guards.track_fields = false;
  // Lint matches calls against its api-versions.xml by the declared
  // receiver; it does not resolve through the class hierarchy.
  scan.resolve_framework_receivers = false;
  UsageModel model;
  model.api_calls = flat_scan(apk, hierarchy, *db_, scan);
  if (options_.stale_database) {
    // Drop everything its stale database has no entry for.
    std::erase_if(model.api_calls, [](const ApiCallSite& site) {
      return site.resolved_target.class_name.rfind("android/synth/", 0) == 0;
    });
  }

  AmdOptions amd_options;
  amd_options.detect_api = true;
  amd_options.detect_callbacks = false;
  amd_options.detect_permissions = false;
  amd_options.detect_forward = false;
  amd_options.detect_semantics = false;    // taxonomy predates SEM/SDC
  amd_options.detect_declarations = false;
  const Amd amd{*db_, amd_options};
  result.mismatches = amd.detect(apk.manifest, model);

  result.usage.seconds = watch.seconds();
  result.usage.peak_bytes = provider.memory().peak_bytes();
  result.usage.loaded_classes = provider.loaded_class_count();
  return result;
}

bool LintAnalyzer::detects(MismatchKind kind) const {
  return kind == MismatchKind::kApiInvocation;
}

}  // namespace saintdroid
