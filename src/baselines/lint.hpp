// Lint baseline (the NewApi check shipped with the Android Development
// Tools), reimplemented from the paper's description:
//
//   * requires the app's source and a successful build — apps that do not
//     build are not analyzable at all (8 of the 27 benchmark apps, §IV-A);
//     we model the build as real serialize/parse work proportional to app
//     size, which is why Lint is competitive only on small apps
//     (Table III);
//   * examines direct calls to the API "without considering the context or
//     control flow" — its guard recognition is lexical: it sees an
//     SDK_INT comparison only when the comparison reads SDK_INT directly,
//     not through moves or helper registers, and never across methods;
//   * scans all code with no reachability analysis (false warnings in dead
//     code, §VII);
//   * backward incompatibility only; no APC, no PRM.
#pragma once

#include <memory>

#include "adf/repository.hpp"
#include "core/analyzer.hpp"
#include "core/arm.hpp"

namespace saintdroid {

struct LintOptions {
  /// Simulated build effort: the number of serialize+parse rounds over the
  /// app's dexes before the scan (stands in for the Gradle build the real
  /// Lint needs; see DESIGN.md substitutions).
  int build_rounds = 3;
  /// Lint's API data ships as a bundled api-versions.xml that lags the
  /// framework; extension/vendor packages (the android/synth/* surface in
  /// our substrate) are absent from it, which is the main driver of its
  /// ~19% recall in the paper's study.
  bool stale_database = true;
  /// Lint crashes on the very largest apps in the study (the NyaaPantsu
  /// dash in Table III).
  std::uint64_t max_app_loc = 120'000;
};

class LintAnalyzer final : public Analyzer {
 public:
  /// `database` must be mined from `repo` (or null). Null resolves via
  /// shared_api_database(repo): the standard repository borrows the
  /// process-wide database — a batch comparing all three analyzers no
  /// longer pays one private mining pass per baseline instance.
  explicit LintAnalyzer(
      const FrameworkRepository& repo = FrameworkRepository::standard(),
      LintOptions options = {},
      std::shared_ptr<const ApiDatabase> database = nullptr);

  std::string_view name() const override { return "Lint"; }
  AnalysisResult analyze(const Apk& apk) override;
  bool detects(MismatchKind kind) const override;

 private:
  const FrameworkRepository* repo_;
  LintOptions options_;
  std::shared_ptr<const ApiDatabase> db_;
};

}  // namespace saintdroid
