// Flat (whole-program, non-reachability) API usage scan shared by the CID
// and Lint baselines.
//
// Both tools load all app code and examine every method without an
// entry-point reachability analysis and without propagating guard context
// across calls (paper §II-D, §VII). The scan therefore analyzes each
// method independently under the full manifest range — which both finds
// mismatches in dead code (false alarms SAINTDroid avoids) and misses the
// protection of guards placed in callers.
#pragma once

#include <vector>

#include "analysis/guards.hpp"
#include "core/arm.hpp"
#include "core/aum.hpp"
#include "dex/apk.hpp"
#include "hierarchy/hierarchy.hpp"

namespace saintdroid {

struct FlatScanOptions {
  GuardOptions guards;
  /// Resolve calls whose declared receiver is a framework class through the
  /// framework hierarchy. Calls on *app* receiver classes are never
  /// resolved into the framework by these tools (SAINTDroid's hierarchy
  /// analysis is what catches inherited-API usage through app subclasses).
  bool resolve_framework_receivers = true;
};

/// Scans every method of the APK's main dex and returns the framework API
/// call sites found, each annotated with its intraprocedural guard
/// interval under the app's full manifest range.
std::vector<ApiCallSite> flat_scan(const Apk& apk, ClassHierarchy& hierarchy,
                                   const ApiDatabase& db,
                                   const FlatScanOptions& options);

}  // namespace saintdroid
