// CID baseline (Li et al., "CiD: Automating the Detection of API-related
// Compatibility Issues in Android Apps"), reimplemented from the paper's
// description of its algorithm and documented blind spots:
//
//   * loads the entire app code base and a precomputed model of the whole
//     framework up front (eager loading — the ~4x memory footprint of
//     Fig. 4, and the source of its failures on large apps);
//   * builds a conditional call graph and runs *intraprocedural* backward
//     data-flow to find API-level checks — guard context never crosses a
//     method boundary (§II-D);
//   * checks only the first-level framework call: calls through app
//     subclass receivers and code in late-bound secondary dexes are not
//     resolved (§III-A advantages 1 and 3);
//   * models backward incompatibility only, and neither callback (APC) nor
//     permission (PRM) mismatches (Table IV).
#pragma once

#include <cstdint>
#include <memory>

#include "adf/repository.hpp"
#include "core/analyzer.hpp"
#include "core/arm.hpp"

namespace saintdroid {

struct CidOptions {
  /// CID "fails to completely analyze" the largest apps in the study
  /// (Table III dashes: timeout after 600 s or crash). We model the same
  /// failure mode with a work budget on app size; apps above it fail.
  std::uint64_t max_app_loc = 60'000;
};

class CidAnalyzer final : public Analyzer {
 public:
  /// `database` must be mined from `repo` (or null). Null resolves via
  /// shared_api_database(repo): the standard repository borrows the
  /// process-wide database — a batch comparing all three analyzers no
  /// longer pays one private mining pass per baseline instance.
  explicit CidAnalyzer(
      const FrameworkRepository& repo = FrameworkRepository::standard(),
      CidOptions options = {},
      std::shared_ptr<const ApiDatabase> database = nullptr);

  std::string_view name() const override { return "CID"; }
  AnalysisResult analyze(const Apk& apk) override;
  bool detects(MismatchKind kind) const override;

 private:
  const FrameworkRepository* repo_;
  CidOptions options_;
  std::shared_ptr<const ApiDatabase> db_;
};

}  // namespace saintdroid
