#include "baselines/flat_scan.hpp"

#include "adf/spec.hpp"
#include "analysis/cfg.hpp"

namespace saintdroid {

std::vector<ApiCallSite> flat_scan(const Apk& apk, ClassHierarchy& hierarchy,
                                   const ApiDatabase& db,
                                   const FlatScanOptions& options) {
  std::vector<ApiCallSite> sites;
  const ApiInterval app_range =
      apk.manifest.supported_range().intersect(ApiInterval::full());

  const DexFile& dex = apk.dexes.front();
  for (const auto& cls_def : dex.classes()) {
    for (const auto& m : cls_def.methods) {
      if (!m.code || m.code->insns.empty()) continue;
      const MethodId caller = dex.method_id(cls_def, m);
      const Cfg cfg = Cfg::build(*m.code);
      const GuardResult guards =
          analyze_guards(dex, *m.code, cfg, app_range, options.guards);

      const auto& insns = m.code->insns;
      for (std::uint32_t i = 0; i < insns.size(); ++i) {
        const Instruction& insn = insns[i];
        if (insn.op != Opcode::kInvoke) continue;
        const ApiInterval interval = guards.at(cfg, i);
        if (interval.empty()) continue;

        const MethodId declared = dex.method_id_at(insn.index);
        if (!is_framework_class_name(declared.class_name))
          continue;  // app/library receiver: these tools do not resolve it

        MethodId resolved = declared;
        if (options.resolve_framework_receivers &&
            !db.defined_levels(declared)) {
          // The declared class is framework but doesn't itself declare the
          // method; resolve through the framework hierarchy (e.g. an
          // Activity receiver for a Context-declared method).
          const auto res = hierarchy.resolve(declared.class_name,
                                             declared.name,
                                             declared.descriptor);
          if (res && res->declaring_class->from_framework)
            resolved = res->id;
        }
        if (!db.defined_levels(resolved)) continue;  // unknown to the API DB

        sites.push_back(ApiCallSite{caller, i, declared, resolved, interval});
      }
    }
  }
  return sites;
}

}  // namespace saintdroid
