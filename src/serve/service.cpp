#include "serve/service.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "adf/repository.hpp"
#include "core/outcome.hpp"
#include "support/errors.hpp"
#include "support/faults.hpp"
#include "support/sdmc.hpp"
#include "workload/harness.hpp"

namespace saintdroid {

namespace {

ServeResponse rejected(std::string id, std::string reason) {
  ServeResponse response;
  response.id = std::move(id);
  response.status = ServeStatus::kRejected;
  response.reason = std::move(reason);
  return response;
}

ServeResponse answered(std::string id, std::string fingerprint,
                       SuiteAppRow row, bool cached) {
  ServeResponse response;
  response.id = std::move(id);
  response.status =
      row.completed ? ServeStatus::kDone : ServeStatus::kFailed;
  response.fingerprint = std::move(fingerprint);
  response.cached = cached;
  response.row = std::move(row);
  return response;
}

/// A structured failure row for a request that can no longer be analyzed
/// (replayed acceptance whose package vanished). Journaled like any other
/// result so the replay ledger converges instead of replaying forever.
SuiteAppRow unanalyzable_row(const std::string& app,
                             const std::string& message) {
  SuiteAppRow row;
  row.app = app;
  row.completed = false;
  row.failure_reason = message;
  row.failure = AnalysisFailure{FailureKind::kConfig, "serve", message};
  return row;
}

}  // namespace

VetService::VetService(const std::string& statedir, ServeOptions options)
    : paths_(statedir),
      options_(std::move(options)),
      jobs_(options_.jobs > 0
                ? options_.jobs
                : static_cast<int>(ThreadPool::default_workers())),
      queue_capacity_(options_.queue_capacity > 0
                          ? options_.queue_capacity
                          : static_cast<std::size_t>(4 * jobs_)),
      repo_(options_.repository != nullptr ? options_.repository
                                           : &FrameworkRepository::standard()),
      cache_(paths_.model_cache_dir()),
      results_(paths_.results_path()),
      requests_(paths_.requests_path()),
      queue_(queue_capacity_) {
  cache_.attach_substrate_cache(*repo_);
  db_ = options_.database != nullptr
            ? options_.database
            : cache_.api_database(*repo_, jobs_, &db_from_cache_);
  // One facade per worker, all sharing the immutable database, the
  // repository's substrate, and (when configured) the incremental fact
  // cache — the warm state the daemon exists to reuse.
  SaintDroidOptions tool_options;  // budget is applied per request
  if (!options_.incr_cache_dir.empty())
    tool_options.incr_cache =
        std::make_shared<const IncrCache>(options_.incr_cache_dir);
  analyzers_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i)
    analyzers_.push_back(std::make_unique<SaintDroid>(*repo_, db_, tool_options));
  replay_pending();
  pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    const auto index = static_cast<std::size_t>(i);
    pool_->submit([this, index] { worker_loop(index); });
  }
}

VetService::~VetService() { shutdown(); }

void VetService::replay_pending() {
  // Every journaled acceptance whose fingerprint has no journaled result
  // was accepted-but-unanswered when the previous process died. Re-enqueue
  // each distinct fingerprint once, bypassing the high-water mark: the
  // acceptance journal is a promise.
  std::unordered_set<std::string> queued;
  for (AcceptedRequest& accepted :
       RequestJournal::load(paths_.requests_path())) {
    if (results_.find(accepted.fingerprint).has_value()) continue;
    if (!queued.insert(accepted.fingerprint).second) continue;
    ServeJob job;
    const auto bytes = read_file_bytes(accepted.apk_path);
    if (!bytes.has_value()) {
      // The package is gone; journal a structured failure so the ledger
      // converges — replay must terminate, not retry forever.
      results_.put(accepted.fingerprint,
                   unanalyzable_row(accepted.app, "replay: cannot read " +
                                                      accepted.apk_path));
      continue;
    }
    try {
      job.apk = Apk::parse(*bytes);
    } catch (const std::exception& error) {
      results_.put(accepted.fingerprint,
                   unanalyzable_row(accepted.app,
                                    std::string{"replay: bad package: "} +
                                        error.what()));
      continue;
    }
    job.accepted = std::move(accepted);
    job.budget = options_.budget;
    // No responder: the client of the dead process is gone; the result
    // lands in the cache for its resubmission.
    {
      const std::lock_guard lock{drain_mutex_};
      ++outstanding_;
    }
    queue_.force_push(std::move(job));
    ++replayed_;
  }
}

void VetService::submit_line(std::string_view line, const Responder& respond) {
  ++received_;
  ServeRequest request;
  try {
    request = parse_serve_request(line);
  } catch (const ParseError& error) {
    ++malformed_;
    respond(rejected("?", std::string{"bad-request: "} + error.what()));
    return;
  }
  submit(request, respond);
}

void VetService::submit(const ServeRequest& request, const Responder& respond) {
  SD_FAULT_POINT("serve.accept");
  if (!accepting_.load(std::memory_order_relaxed)) {
    ++rejected_;
    respond(rejected(request.id, "shutting-down"));
    return;
  }
  const auto bytes = read_file_bytes(request.apk_path);
  if (!bytes.has_value()) {
    ++rejected_;
    respond(rejected(request.id, "bad-package: cannot read " +
                                     request.apk_path));
    return;
  }
  const std::string fingerprint = apk_fingerprint(*bytes);
  if (auto row = results_.find(fingerprint)) {
    ++cache_hits_;
    respond(answered(request.id, fingerprint, std::move(*row), true));
    return;
  }
  ServeJob job;
  try {
    job.apk = Apk::parse(*bytes);
  } catch (const std::exception& error) {
    ++rejected_;
    respond(rejected(request.id,
                     std::string{"bad-package: "} + error.what()));
    return;
  }
  job.accepted = AcceptedRequest{request.id, fingerprint, job.apk.name,
                                 request.apk_path};
  job.budget = options_.budget;
  // A request deadline tightens the server default; it never loosens it.
  if (request.deadline_seconds > 0.0 &&
      (job.budget.deadline_seconds <= 0.0 ||
       request.deadline_seconds < job.budget.deadline_seconds))
    job.budget.deadline_seconds = request.deadline_seconds;
  job.respond = respond;

  // Crash-safety ordering: the acceptance reaches disk before the job can
  // run, so there is no window where a computed result has no acceptance.
  requests_.append(job.accepted);
  SD_FAULT_POINT("serve.enqueue");
  {
    const std::lock_guard lock{drain_mutex_};
    ++outstanding_;
  }
  if (!queue_.try_push(std::move(job))) {
    // The acceptance line of a shed request stays in the journal; a
    // restart may replay it once into a cached result. That costs only
    // work — never a wrong or missing answer — and keeps the ordering
    // above airtight for requests that *are* admitted. Shed is counted by
    // the queue, not in rejected_ — the counters partition the requests.
    finish_one();
    respond(rejected(request.id, "overloaded"));
    return;
  }
  ++accepted_;
}

void VetService::worker_loop(std::size_t worker_index) {
  SaintDroid& tool = *analyzers_[worker_index];
  while (auto job = queue_.pop()) {
    try {
      process(tool, *job);
    } catch (const std::exception& error) {
      // A fault hook or journal write escaped; the request still gets its
      // one response. analyze_app_row itself never throws.
      if (job->respond) {
        try {
          job->respond(rejected(job->accepted.id,
                                std::string{"internal: "} + error.what()));
        } catch (...) {
        }
      }
    }
    finish_one();
  }
}

void VetService::process(SaintDroid& tool, ServeJob& job) {
  AnalysisBudget budget = job.budget;
  budget.cancel = &cancel_;
  tool.set_budget(budget);
  const BenchApp app{std::move(job.apk), GroundTruth{}};
  SuiteAppRow row = analyze_app_row(tool, app);
  // Result before response: a crash after this line is a replay the
  // restarted process answers from cache, never a lost request.
  results_.put(job.accepted.fingerprint, row);
  ++completed_;
  SD_FAULT_POINT("serve.respond");
  if (job.respond)
    job.respond(answered(job.accepted.id, job.accepted.fingerprint,
                         std::move(row), false));
}

void VetService::finish_one() {
  {
    const std::lock_guard lock{drain_mutex_};
    --outstanding_;
  }
  drained_.notify_all();
}

void VetService::drain() {
  std::unique_lock lock{drain_mutex_};
  drained_.wait(lock, [this] { return outstanding_ == 0; });
}

void VetService::shutdown() {
  const std::lock_guard lock{shutdown_mutex_};
  if (stopped_) return;
  accepting_.store(false, std::memory_order_relaxed);
  drain();
  queue_.close();
  pool_.reset();  // joins the workers
  stopped_ = true;
}

void VetService::cancel_in_flight() {
  cancel_.store(true, std::memory_order_relaxed);
}

ServeStats VetService::stats() const {
  ServeStats stats;
  stats.received = received_.load();
  stats.malformed = malformed_.load();
  stats.accepted = accepted_.load();
  stats.shed = queue_.shed_count();
  stats.rejected = rejected_.load();
  stats.cache_hits = cache_hits_.load();
  stats.completed = completed_.load();
  stats.replayed = replayed_.load();
  stats.database_from_cache = db_from_cache_;
  return stats;
}

}  // namespace saintdroid
