// VetService — the long-lived vetting engine behind `saintdroid serve`.
//
// One construction pays every startup cost exactly once — framework
// repository, shared substrate, the mined ApiDatabase (through the state
// directory's ModelCache, so a warm process skips mining entirely) — and
// then vets APKs on demand, one admission-controlled request at a time:
//
//   submit -> fingerprint -> result-cache hit?  -> answer, free
//                         -> journal acceptance -> bounded queue -> worker
//   worker -> per-request budget (deadline + cancel) -> analyze_app_row
//          -> journal result -> respond
//
// Robustness properties, each with a test in tests/test_serve.cpp:
//
//   * Admission control: the queue's high-water mark turns overload into a
//     structured `rejected: overloaded` response — the service keeps
//     answering at any offered load and can never wedge on its backlog.
//   * Crash safety: the acceptance journal flushes before enqueue, the
//     result journal flushes before respond; a kill -9 at any point leaves
//     every accepted-but-unanswered request replayable on restart.
//   * Degradation, not death: per-request deadlines and cancellation ride
//     the AnalysisBudget — an over-budget analysis degrades to a flagged
//     partial report (flat-scan fallback), never a hung worker.
//   * Determinism: responses carry the same schema-2 rows as a batch run —
//     canonical_row_bytes of a served row is byte-identical to batch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/model_cache.hpp"
#include "core/saintdroid.hpp"
#include "serve/codec.hpp"
#include "serve/queue.hpp"
#include "serve/state.hpp"
#include "support/budget.hpp"
#include "support/thread_pool.hpp"

namespace saintdroid {

struct ServeOptions {
  /// Analysis workers; <= 0 means ThreadPool::default_workers().
  int jobs = 0;
  /// Admission-queue high-water mark; 0 means 4 * jobs.
  std::size_t queue_capacity = 0;
  /// Server-default per-request budget. A request's own deadline tightens
  /// (never loosens) this budget's deadline.
  AnalysisBudget budget;
  /// Pre-mined database to share (tests, benches); null = load through the
  /// state directory's model cache, mining on a cold start.
  std::shared_ptr<const ApiDatabase> database;
  /// Framework to vet against; null = FrameworkRepository::standard().
  const FrameworkRepository* repository = nullptr;
  /// Per-app incremental fact cache directory (core/incr_cache.hpp) shared
  /// by every worker facade: resubmitting an updated package re-analyzes
  /// only its dirty classes. Empty = no incremental layer. Part of the
  /// daemon's warm state — it survives across requests and restarts.
  std::string incr_cache_dir;
};

/// Monotonic service counters (snapshot; see VetService::stats).
struct ServeStats {
  std::uint64_t received = 0;    ///< submit_line calls
  std::uint64_t malformed = 0;   ///< rejected: bad-request
  std::uint64_t accepted = 0;    ///< journaled and enqueued
  std::uint64_t shed = 0;        ///< rejected: overloaded
  std::uint64_t rejected = 0;    ///< other rejections (bad-package, ...)
  std::uint64_t cache_hits = 0;  ///< answered from the result cache
  std::uint64_t completed = 0;   ///< analyses finished (done or failed)
  std::uint64_t replayed = 0;    ///< jobs re-enqueued from the journal
  bool database_from_cache = false;
};

class VetService {
 public:
  /// The response sink for one request. Invoked exactly once per submit
  /// (synchronously for rejections and cache hits, from a worker thread
  /// otherwise); must be thread-safe against other requests' responders.
  using Responder = std::function<void(const ServeResponse&)>;

  /// Opens (creating if needed) `statedir`, loads the model through its
  /// cache, replays accepted-but-unanswered journal entries, and starts
  /// the worker pool. Throws ConfigError on an unusable state directory.
  VetService(const std::string& statedir, ServeOptions options = {});

  /// Drains and joins; equivalent to shutdown().
  ~VetService();

  VetService(const VetService&) = delete;
  VetService& operator=(const VetService&) = delete;

  /// Handles one raw request line: a parse defect is answered as
  /// `rejected: bad-request` (id "?" when none could be read), anything
  /// else goes through submit(). Never throws on malformed input.
  void submit_line(std::string_view line, const Responder& respond);

  /// Handles one parsed request. Responds synchronously for rejections
  /// (overloaded, shutting-down, unreadable/unparseable package) and
  /// cache hits; otherwise journals the acceptance, enqueues, and the
  /// worker responds later.
  void submit(const ServeRequest& request, const Responder& respond);

  /// Blocks until every accepted job has been answered.
  void drain();

  /// Stops accepting (submit answers `rejected: shutting-down`), drains
  /// the backlog, and joins the workers. Idempotent.
  void shutdown();

  /// Flips every in-flight analysis budget to cancelled: running analyses
  /// degrade to partial reports (reason "cancelled") at their next budget
  /// probe. The fast half of a hurried shutdown.
  void cancel_in_flight();

  ServeStats stats() const;
  const StatePaths& paths() const { return paths_; }
  int jobs() const { return jobs_; }
  std::size_t queue_capacity() const { return queue_capacity_; }

 private:
  void replay_pending();
  void worker_loop(std::size_t worker_index);
  void process(SaintDroid& tool, ServeJob& job);
  void finish_one();

  StatePaths paths_;
  ServeOptions options_;
  int jobs_ = 1;
  std::size_t queue_capacity_ = 4;
  const FrameworkRepository* repo_ = nullptr;
  ModelCache cache_;
  std::shared_ptr<const ApiDatabase> db_;
  std::vector<std::unique_ptr<SaintDroid>> analyzers_;
  ResultCache results_;
  RequestJournal requests_;
  AdmissionQueue queue_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> cancel_{false};
  bool stopped_ = false;
  std::mutex shutdown_mutex_;  ///< serializes shutdown() callers

  // Outstanding = accepted jobs not yet answered; drain() waits on it.
  std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::size_t outstanding_ = 0;

  // Counters behind stats().
  std::atomic<std::uint64_t> received_{0}, malformed_{0}, accepted_{0},
      rejected_{0}, cache_hits_{0}, completed_{0}, replayed_{0};
  bool db_from_cache_ = false;

  // Last member: workers must join before anything above is destroyed.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace saintdroid
