// The serve state directory — everything the daemon must not forget across
// a kill -9.
//
//   <statedir>/requests.jsonl   accepted-request journal (crash anchor)
//   <statedir>/results.jsonl    fingerprint-keyed result journal (cache)
//   <statedir>/serve.sock       Unix-domain socket while a daemon is live
//   <statedir>/model-cache/     .sdmc entries (shared ModelCache layout)
//
// The crash-safety contract is the suite journal's, applied to requests:
// an acceptance line is flushed *before* the job is enqueued, a result
// line is flushed *before* the response is written, and both journals seal
// a torn trailing line on open and skip corrupt lines on load. On restart,
// every journaled acceptance without a journaled result (by fingerprint)
// is replayed — so an accepted request is answered-or-replayed, never
// silently lost, and a corrupt line costs one request's replay, nothing
// more.
#pragma once

#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/codec.hpp"

namespace saintdroid {

/// Path layout of one state directory.
struct StatePaths {
  explicit StatePaths(std::string root);

  const std::string& root() const { return root_; }
  std::string requests_path() const { return root_ + "/requests.jsonl"; }
  std::string results_path() const { return root_ + "/results.jsonl"; }
  std::string socket_path() const { return root_ + "/serve.sock"; }
  std::string model_cache_dir() const { return root_ + "/model-cache"; }

 private:
  std::string root_;
};

/// Append-only journal of accepted requests. Thread-safe; flushes per line.
class RequestJournal {
 public:
  /// Opens `path` for appending, sealing a torn trailing line first.
  /// Throws ConfigError if the file cannot be opened.
  explicit RequestJournal(const std::string& path);

  void append(const AcceptedRequest& accepted);

  /// Every parseable acceptance in `path`, file order. Missing file: empty.
  /// Corrupt lines are skipped — journal semantics.
  static std::vector<AcceptedRequest> load(const std::string& path);

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

/// The fingerprint-keyed result cache, persisted as results.jsonl. A hit
/// makes a byte-identical resubmission free (no analysis, no queue slot);
/// the journal doubles as the replay ledger: an acceptance whose
/// fingerprint is present here was already answered-or-computed.
class ResultCache {
 public:
  /// Loads every parseable result from `path` (last writer wins per
  /// fingerprint), seals a torn tail, and opens the file for appending.
  explicit ResultCache(const std::string& path);

  /// The cached row for `fingerprint`, if any. Thread-safe.
  std::optional<SuiteAppRow> find(const std::string& fingerprint) const;

  /// Journals (flushing) then caches `row` under `fingerprint`.
  /// Thread-safe; the flush-before-respond ordering is the caller's.
  void put(const std::string& fingerprint, const SuiteAppRow& row);

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, SuiteAppRow> rows_;
  std::ofstream out_;
};

}  // namespace saintdroid
