// The bounded admission queue between the serve transports and the worker
// pool — where overload becomes an explicit, structured decision instead of
// an unbounded backlog.
//
// Admission control is a hard high-water mark: try_push refuses (and
// counts) a job once `capacity` jobs are already waiting, and the caller
// answers `rejected: overloaded` immediately. The daemon therefore keeps
// *accepting connections and answering* at any offered load — what it
// sheds is analysis work, never responsiveness, and it can never deadlock
// on its own backlog. Replayed requests bypass the mark (force_push): they
// were accepted by a previous process and the acceptance journal is a
// promise.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "dex/apk.hpp"
#include "serve/codec.hpp"
#include "support/budget.hpp"

namespace saintdroid {

/// One admitted vetting job, ready for a worker.
struct ServeJob {
  AcceptedRequest accepted;
  /// Parsed at admission time — a malformed package is rejected before it
  /// can occupy a worker.
  Apk apk;
  /// Per-request budget resolved at admission (server default + request
  /// deadline). The service adds its cancel flag before analysis.
  AnalysisBudget budget;
  /// Delivers the response; empty for replayed jobs whose client is gone
  /// (the result still lands in the cache for their resubmission).
  std::function<void(const ServeResponse&)> respond;
};

class AdmissionQueue {
 public:
  /// `capacity` is the high-water mark (>= 1).
  explicit AdmissionQueue(std::size_t capacity);

  /// Admits `job` unless the queue is at capacity or closed; a refused
  /// job is counted in shed_count(). Never blocks.
  bool try_push(ServeJob job);

  /// Admits `job` regardless of the high-water mark (replay path). Still
  /// refuses after close().
  bool force_push(ServeJob job);

  /// Blocks until a job is available or the queue is closed *and* empty
  /// (nullopt — the worker's exit signal). Closing never discards jobs:
  /// workers drain the backlog first.
  std::optional<ServeJob> pop();

  /// Stops all future pushes and wakes blocked poppers once the backlog
  /// drains. Idempotent.
  void close();

  std::size_t depth() const;
  std::uint64_t shed_count() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<ServeJob> jobs_;
  std::size_t capacity_;
  bool closed_ = false;
  std::uint64_t shed_ = 0;
};

}  // namespace saintdroid
