#include "serve/state.hpp"

#include <utility>

#include "support/errors.hpp"
#include "support/sdmc.hpp"

namespace saintdroid {

namespace {

// Seals a partial trailing line (the write in flight when a previous
// process died) with a newline, so the next append starts a fresh line —
// the same robustness rule as JournalWriter.
void seal_torn_tail(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return;  // nothing to seal
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size <= 0) return;
  in.seekg(-1, std::ios::end);
  char last = '\n';
  in.get(last);
  if (last == '\n') return;
  std::ofstream out{path, std::ios::app | std::ios::binary};
  out << '\n';
}

std::ofstream open_for_append(const std::string& path) {
  seal_torn_tail(path);
  std::ofstream out{path, std::ios::app | std::ios::binary};
  if (!out) throw ConfigError("cannot open journal for append: " + path);
  return out;
}

}  // namespace

StatePaths::StatePaths(std::string root) : root_(std::move(root)) {
  ensure_directory(root_);
}

RequestJournal::RequestJournal(const std::string& path)
    : out_(open_for_append(path)) {}

void RequestJournal::append(const AcceptedRequest& accepted) {
  const std::string line = accepted_request_line(accepted);
  const std::lock_guard lock{mutex_};
  out_ << line << '\n';
  out_.flush();
}

std::vector<AcceptedRequest> RequestJournal::load(const std::string& path) {
  std::vector<AcceptedRequest> accepted;
  std::ifstream in{path};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto parsed = parse_accepted_request(line))
      accepted.push_back(std::move(*parsed));
  }
  return accepted;
}

ResultCache::ResultCache(const std::string& path) {
  {
    std::ifstream in{path};
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (auto parsed = parse_result_line(line))
        rows_[parsed->fingerprint] = std::move(parsed->row);
    }
  }
  out_ = open_for_append(path);
}

std::optional<SuiteAppRow> ResultCache::find(
    const std::string& fingerprint) const {
  const std::lock_guard lock{mutex_};
  const auto it = rows_.find(fingerprint);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

void ResultCache::put(const std::string& fingerprint, const SuiteAppRow& row) {
  const std::string line = result_line(fingerprint, row);
  const std::lock_guard lock{mutex_};
  out_ << line << '\n';
  out_.flush();
  rows_[fingerprint] = row;
}

std::size_t ResultCache::size() const {
  const std::lock_guard lock{mutex_};
  return rows_.size();
}

}  // namespace saintdroid
