#include "serve/codec.hpp"

#include <sstream>

#include "core/json.hpp"
#include "support/errors.hpp"
#include "workload/journal.hpp"

namespace saintdroid {

namespace {

std::string quoted(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

std::string read_string(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.find(key);
  if (value == nullptr || value->type() != JsonValue::Type::kString) return {};
  return value->as_string();
}

}  // namespace

std::string serve_request_line(const ServeRequest& request) {
  std::ostringstream out;
  out << "{\"id\":" << quoted(request.id)
      << ",\"apk\":" << quoted(request.apk_path);
  if (request.deadline_seconds > 0.0)
    out << ",\"deadline\":" << request.deadline_seconds;
  out << "}";
  return out.str();
}

ServeRequest parse_serve_request(std::string_view line) {
  const JsonValue doc = JsonValue::parse(line);  // ParseError on bad JSON
  if (doc.type() != JsonValue::Type::kObject)
    throw ParseError("serve request is not a JSON object");
  ServeRequest request;
  request.id = read_string(doc, "id");
  request.apk_path = read_string(doc, "apk");
  if (request.id.empty())
    throw ParseError("serve request has no \"id\"");
  if (request.apk_path.empty())
    throw ParseError("serve request has no \"apk\"");
  if (const JsonValue* deadline = doc.find("deadline")) {
    if (deadline->type() != JsonValue::Type::kNumber)
      throw ParseError("serve request \"deadline\" is not a number");
    request.deadline_seconds = deadline->as_number();
    if (request.deadline_seconds < 0.0)
      throw ParseError("serve request \"deadline\" is negative");
  }
  return request;
}

const char* serve_status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::kDone: return "done";
    case ServeStatus::kFailed: return "failed";
    case ServeStatus::kRejected: return "rejected";
  }
  return "rejected";
}

std::string serve_response_line(const ServeResponse& response) {
  std::ostringstream out;
  out << "{\"id\":" << quoted(response.id) << ",\"status\":\""
      << serve_status_name(response.status) << "\"";
  if (response.status == ServeStatus::kRejected) {
    out << ",\"reason\":" << quoted(response.reason) << "}";
    return out.str();
  }
  out << ",\"fingerprint\":" << quoted(response.fingerprint)
      << ",\"cached\":" << (response.cached ? "true" : "false");
  // Merge the journal row's fields into the same flat object: strip the
  // row line's opening brace and splice the rest. parse_journal_line
  // ignores the envelope keys, so the row round-trips from this line.
  const std::string row =
      journal_line(response.row.value_or(SuiteAppRow{}));
  out << "," << std::string_view{row}.substr(1);
  return out.str();
}

std::optional<ServeResponse> parse_serve_response(std::string_view line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const ParseError&) {
    return std::nullopt;
  }
  if (doc.type() != JsonValue::Type::kObject) return std::nullopt;
  ServeResponse response;
  response.id = read_string(doc, "id");
  const std::string status = read_string(doc, "status");
  if (response.id.empty() || status.empty()) return std::nullopt;
  if (status == "done")
    response.status = ServeStatus::kDone;
  else if (status == "failed")
    response.status = ServeStatus::kFailed;
  else if (status == "rejected")
    response.status = ServeStatus::kRejected;
  else
    return std::nullopt;
  if (response.status == ServeStatus::kRejected) {
    response.reason = read_string(doc, "reason");
    return response;
  }
  response.fingerprint = read_string(doc, "fingerprint");
  if (const JsonValue* cached = doc.find("cached");
      cached != nullptr && cached->type() == JsonValue::Type::kBool)
    response.cached = cached->as_bool();
  auto row = parse_journal_line(line);
  if (!row.has_value()) return std::nullopt;
  response.row = std::move(*row);
  return response;
}

std::string accepted_request_line(const AcceptedRequest& accepted) {
  std::ostringstream out;
  out << "{\"request\":" << quoted(accepted.id)
      << ",\"fingerprint\":" << quoted(accepted.fingerprint)
      << ",\"app\":" << quoted(accepted.app)
      << ",\"apk\":" << quoted(accepted.apk_path) << "}";
  return out.str();
}

std::optional<AcceptedRequest> parse_accepted_request(std::string_view line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const ParseError&) {
    return std::nullopt;
  }
  if (doc.type() != JsonValue::Type::kObject) return std::nullopt;
  AcceptedRequest accepted;
  accepted.id = read_string(doc, "request");
  accepted.fingerprint = read_string(doc, "fingerprint");
  accepted.app = read_string(doc, "app");
  accepted.apk_path = read_string(doc, "apk");
  if (accepted.id.empty() || accepted.fingerprint.empty() ||
      accepted.apk_path.empty())
    return std::nullopt;
  return accepted;
}

std::string apk_fingerprint(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  static const char* digits = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return hex;
}

std::string result_line(const std::string& fingerprint,
                        const SuiteAppRow& row) {
  const std::string line = journal_line(row);
  return "{\"fingerprint\":" + quoted(fingerprint) + "," +
         std::string{std::string_view{line}.substr(1)};
}

std::optional<ResultRecord> parse_result_line(std::string_view line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const ParseError&) {
    return std::nullopt;
  }
  if (doc.type() != JsonValue::Type::kObject) return std::nullopt;
  ResultRecord record;
  record.fingerprint = read_string(doc, "fingerprint");
  if (record.fingerprint.empty()) return std::nullopt;
  auto row = parse_journal_line(line);
  if (!row.has_value()) return std::nullopt;
  record.row = std::move(*row);
  return record;
}

}  // namespace saintdroid
