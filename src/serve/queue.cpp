#include "serve/queue.hpp"

#include <algorithm>
#include <utility>

namespace saintdroid {

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool AdmissionQueue::try_push(ServeJob job) {
  {
    const std::lock_guard lock{mutex_};
    if (closed_) return false;
    if (jobs_.size() >= capacity_) {
      ++shed_;
      return false;
    }
    jobs_.push_back(std::move(job));
  }
  ready_.notify_one();
  return true;
}

bool AdmissionQueue::force_push(ServeJob job) {
  {
    const std::lock_guard lock{mutex_};
    if (closed_) return false;
    jobs_.push_back(std::move(job));
  }
  ready_.notify_one();
  return true;
}

std::optional<ServeJob> AdmissionQueue::pop() {
  std::unique_lock lock{mutex_};
  ready_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return std::nullopt;  // closed and drained
  ServeJob job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

void AdmissionQueue::close() {
  {
    const std::lock_guard lock{mutex_};
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  const std::lock_guard lock{mutex_};
  return jobs_.size();
}

std::uint64_t AdmissionQueue::shed_count() const {
  const std::lock_guard lock{mutex_};
  return shed_;
}

}  // namespace saintdroid
