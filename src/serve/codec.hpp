// Wire protocol of the online vetting service (`saintdroid serve`).
//
// Everything is line-delimited JSON, one object per line, over stdin/stdout
// or the state directory's Unix-domain socket — the same transport style as
// the suite journal, and deliberately the same *row schema*: a response for
// an analyzed app is a flat JSON object carrying the serve envelope keys
// (id, status, fingerprint, cached) merged with the schema-2 journal row
// fields of docs/FORMAT.md. Because parse_journal_line ignores unknown
// keys, a response line parses directly as a SuiteAppRow, and
// canonical_row_bytes of that row is byte-identical to what a `batch` run
// would journal for the same APK — the serve/batch equivalence currency the
// tests and bench_serve gate on.
//
//   request   {"id":"r1","apk":"/path/to/app.apk","deadline":5.0}
//   response  {"id":"r1","status":"done","fingerprint":"…","cached":false,
//              "app":…,"completed":…,…,"usage":{…}}        (row fields)
//             {"id":"r1","status":"rejected","reason":"overloaded"}
//
// Parsers here follow the journal's robustness rules: a malformed line is a
// structured error (ParseError or nullopt), never a crash — the ServeFuzz
// sweeps hold this over truncations and bit-flips.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "workload/harness.hpp"

namespace saintdroid {

/// One vetting request: analyze the APK at `apk_path`.
struct ServeRequest {
  /// Client-chosen correlation id, echoed verbatim in the response. Must be
  /// non-empty; the service answers out of order under load.
  std::string id;
  /// Path of the package to vet, resolved by the *server* process.
  std::string apk_path;
  /// Optional per-request wall-clock deadline (seconds) for the analysis
  /// itself (queue wait excluded). 0 = the server's default budget. A
  /// tighter deadline than the server default wins; a looser one is capped.
  double deadline_seconds = 0.0;
};

/// Serializes a request as a single JSON line (no trailing newline).
std::string serve_request_line(const ServeRequest& request);

/// Parses a request line. Throws ParseError on any defect — not JSON, a
/// missing/empty "id" or "apk", a non-numeric "deadline".
ServeRequest parse_serve_request(std::string_view line);

/// Response disposition. `done` and `failed` both carry a full journal row
/// (`failed` means the analysis itself failed and the row is a structured
/// failure row — still a result, cached and replayable); `rejected` means
/// the request was never accepted and carries a reason instead.
enum class ServeStatus : std::uint8_t { kDone = 0, kFailed, kRejected };

const char* serve_status_name(ServeStatus status);

struct ServeResponse {
  std::string id;
  ServeStatus status = ServeStatus::kRejected;
  /// Rejection reason ("overloaded", "shutting-down", "bad-request: …",
  /// "bad-package: …"); empty for done/failed.
  std::string reason;
  /// APK content fingerprint (apk_fingerprint); empty for rejected.
  std::string fingerprint;
  /// True when the row was served from the result cache without analysis.
  bool cached = false;
  /// The journal row; present iff status != kRejected.
  std::optional<SuiteAppRow> row;
};

/// Serializes a response as a single flat JSON line (no trailing newline):
/// envelope keys first, then — for done/failed — the journal row fields of
/// journal_line(*row) merged into the same object.
std::string serve_response_line(const ServeResponse& response);

/// Parses a response line; nullopt on any defect (clients treat that as a
/// protocol error, never a crash).
std::optional<ServeResponse> parse_serve_response(std::string_view line);

/// One accepted request, as journaled in <statedir>/requests.jsonl before
/// the job is enqueued. This is the crash-safety anchor: a request with a
/// journaled acceptance and no journaled result is replayed on restart.
struct AcceptedRequest {
  std::string id;
  std::string fingerprint;
  /// APK name, for operators reading the journal.
  std::string app;
  /// Where the server re-reads the package bytes on replay.
  std::string apk_path;
};

/// Serializes an accepted-request journal line (no trailing newline).
std::string accepted_request_line(const AcceptedRequest& accepted);

/// Parses an accepted-request line; nullopt on any defect (a corrupt line
/// costs that request's replay, nothing more — journal semantics).
std::optional<AcceptedRequest> parse_accepted_request(std::string_view line);

/// Content fingerprint of a package: FNV-1a 64 over the raw APK bytes,
/// rendered as 16 hex digits. The result-cache key — byte-identical
/// resubmissions are free, any byte change is a different key.
std::string apk_fingerprint(std::span<const std::uint8_t> bytes);

/// One line of <statedir>/results.jsonl: a journal row plus the
/// fingerprint it was computed from (flat object, same merged-key trick as
/// responses, so the row round-trips through parse_journal_line).
std::string result_line(const std::string& fingerprint,
                        const SuiteAppRow& row);

struct ResultRecord {
  std::string fingerprint;
  SuiteAppRow row;
};

/// Parses a result line; nullopt on any defect.
std::optional<ResultRecord> parse_result_line(std::string_view line);

}  // namespace saintdroid
