// The serve daemon's transports: line-delimited JSON over stdin/stdout and
// over the state directory's Unix-domain socket, multiplexed in one poll
// loop. The daemon owns no vetting logic — every line goes through
// VetService::submit_line, and every responder writes one line back to the
// transport the request arrived on (under a per-connection lock, since
// workers answer out of order). A client that disconnects early merely
// loses its response; the analysis still completes and lands in the result
// cache.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace saintdroid {

struct DaemonOptions {
  /// Serve requests from stdin, responses to stdout; EOF on stdin (with no
  /// socket clients left) drains and exits 0. The one-shot piping mode.
  bool stdio = true;
  /// Listen on <statedir>/serve.sock for concurrent clients.
  bool socket = true;
  /// Graceful-shutdown probe (typically shutdown_requested): when it turns
  /// true the daemon stops accepting, drains in-flight work, and returns
  /// kShutdownExitCode.
  std::function<bool()> interrupted;
};

/// Runs the transport loop over `service` until stdin EOF (0) or the
/// interrupt probe fires (kShutdownExitCode). The socket file is unlinked
/// on the way out. Returns the process exit code.
int run_serve_daemon(VetService& service, const DaemonOptions& options);

/// Client half: connects to `socket_path` (retrying until
/// `connect_timeout_seconds` — the daemon may still be warming up), writes
/// every request line, half-closes, and returns one raw response line per
/// request. Throws ConfigError when the daemon cannot be reached and
/// ParseError when it answers with fewer lines than requests.
std::vector<std::string> submit_over_socket(
    const std::string& socket_path,
    const std::vector<std::string>& request_lines,
    double connect_timeout_seconds = 10.0);

}  // namespace saintdroid
