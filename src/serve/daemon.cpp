#include "serve/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "support/errors.hpp"
#include "support/shutdown.hpp"

namespace saintdroid {

namespace {

// Writes all of `data` to `fd`, retrying short writes and EINTR. Returns
// false on any other error (a vanished client — the response is dropped,
// the analysis already landed in the result cache).
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK)
      n = ::write(fd, data.data(), data.size());
#else
    ssize_t n = ::write(fd, data.data(), data.size());
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

// One transport endpoint whose responses arrive from worker threads. The
// mutex serializes out-of-order responders; `fd` going to -1 (endpoint
// closed by the loop) turns writes into drops.
struct Connection {
  std::mutex mutex;
  int fd = -1;
  bool read_done = false;  ///< peer half-closed; no more requests
  int pending = 0;         ///< submitted lines not yet responded to

  void respond_line(const std::string& line) {
    const std::lock_guard lock{mutex};
    if (fd >= 0) write_all(fd, line + "\n");
    --pending;
  }

  bool closable() {
    const std::lock_guard lock{mutex};
    return read_done && pending == 0;
  }
};

using ConnectionPtr = std::shared_ptr<Connection>;

// Splits complete lines off `buffer`, submitting each to the service with
// a responder bound to `conn` (or to stdout when conn->fd is 1).
void submit_buffered_lines(VetService& service, const ConnectionPtr& conn,
                           std::string& buffer) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t newline = buffer.find('\n', start);
    if (newline == std::string::npos) break;
    const std::string_view line{buffer.data() + start, newline - start};
    if (!line.empty()) {
      {
        const std::lock_guard lock{conn->mutex};
        ++conn->pending;
      }
      service.submit_line(line, [conn](const ServeResponse& response) {
        conn->respond_line(serve_response_line(response));
      });
    }
    start = newline + 1;
  }
  buffer.erase(0, start);
}

int make_listen_socket(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    throw ConfigError("socket path too long: " + path);
  ::unlink(path.c_str());  // a stale socket from a dead daemon
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ConfigError("cannot create socket: " + path);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    throw ConfigError("cannot listen on socket: " + path);
  }
  return fd;
}

}  // namespace

int run_serve_daemon(VetService& service, const DaemonOptions& options) {
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon

  const std::string socket_path = service.paths().socket_path();
  int listen_fd = -1;
  if (options.socket) listen_fd = make_listen_socket(socket_path);

  ConnectionPtr stdio_conn;
  std::string stdin_buffer;
  bool stdin_open = options.stdio;
  if (options.stdio) {
    stdio_conn = std::make_shared<Connection>();
    stdio_conn->fd = STDOUT_FILENO;
  }

  struct Client {
    ConnectionPtr conn;
    std::string buffer;
  };
  std::vector<Client> clients;

  int exit_code = 0;
  for (;;) {
    if (options.interrupted && options.interrupted()) {
      exit_code = kShutdownExitCode;
      break;
    }
    // One-shot piping mode: stdin EOF (and no connected client left with
    // data in flight) means the request stream is over — drain and exit.
    if (options.stdio && !stdin_open && clients.empty()) {
      service.drain();
      exit_code = 0;
      break;
    }

    std::vector<pollfd> fds;
    if (stdin_open) fds.push_back({STDIN_FILENO, POLLIN, 0});
    const std::size_t listen_slot = fds.size();
    if (listen_fd >= 0) fds.push_back({listen_fd, POLLIN, 0});
    const std::size_t client_base = fds.size();
    for (const Client& client : clients)
      fds.push_back({client.conn->fd, POLLIN, 0});

    const int ready = ::poll(fds.data(), fds.size(), 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    std::size_t slot = 0;
    if (stdin_open) {
      if (fds[slot].revents & (POLLIN | POLLHUP | POLLERR)) {
        char chunk[4096];
        const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
        if (n > 0) {
          stdin_buffer.append(chunk, static_cast<std::size_t>(n));
          submit_buffered_lines(service, stdio_conn, stdin_buffer);
        } else if (n == 0 || (n < 0 && errno != EINTR)) {
          stdin_open = false;
        }
      }
      ++slot;
    }
    if (listen_fd >= 0) {
      if (fds[listen_slot].revents & POLLIN) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
          auto conn = std::make_shared<Connection>();
          conn->fd = fd;
          clients.push_back({std::move(conn), {}});
        }
      }
    }
    for (std::size_t i = 0; i < clients.size() && client_base + i < fds.size();
         ++i) {
      Client& client = clients[i];
      if (!(fds[client_base + i].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      char chunk[4096];
      const ssize_t n = ::read(client.conn->fd, chunk, sizeof(chunk));
      if (n > 0) {
        client.buffer.append(chunk, static_cast<std::size_t>(n));
        submit_buffered_lines(service, client.conn, client.buffer);
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        const std::lock_guard lock{client.conn->mutex};
        client.conn->read_done = true;
      }
    }
    // Retire connections whose peer half-closed and whose last response
    // has been written (the loop owns all closes — responders only write).
    for (std::size_t i = 0; i < clients.size();) {
      if (clients[i].conn->closable()) {
        {
          const std::lock_guard lock{clients[i].conn->mutex};
          ::close(clients[i].conn->fd);
          clients[i].conn->fd = -1;
        }
        clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  // Graceful exit either way: stop accepting, answer everything admitted,
  // join the workers — then retire the transports.
  service.shutdown();
  for (Client& client : clients) {
    const std::lock_guard lock{client.conn->mutex};
    if (client.conn->fd >= 0) ::close(client.conn->fd);
    client.conn->fd = -1;
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
  }
  return exit_code;
}

std::vector<std::string> submit_over_socket(
    const std::string& socket_path,
    const std::vector<std::string>& request_lines,
    double connect_timeout_seconds) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw ConfigError("socket path too long: " + socket_path);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  // The daemon may still be warming up (mining on a cold cache) — retry
  // the connect until the deadline instead of failing on the first try.
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(connect_timeout_seconds);
  int fd = -1;
  for (;;) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw ConfigError("cannot create client socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      break;
    ::close(fd);
    fd = -1;
    if (std::chrono::steady_clock::now() >= give_up)
      throw ConfigError("cannot connect to serve socket: " + socket_path);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::string out;
  for (const std::string& line : request_lines) out += line + "\n";
  const bool wrote = write_all(fd, out);
  ::shutdown(fd, SHUT_WR);
  std::string in;
  if (wrote) {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n > 0) {
        in.append(chunk, static_cast<std::size_t>(n));
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        break;
      }
    }
  }
  ::close(fd);

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < in.size()) {
    std::size_t newline = in.find('\n', start);
    if (newline == std::string::npos) newline = in.size();
    if (newline > start) lines.emplace_back(in.substr(start, newline - start));
    start = newline + 1;
  }
  if (lines.size() < request_lines.size())
    throw ParseError("serve daemon answered " + std::to_string(lines.size()) +
                     " of " + std::to_string(request_lines.size()) +
                     " requests");
  return lines;
}

}  // namespace saintdroid
