// FrameworkRepository: builds and caches the per-level framework images.
//
// This is the artifact the paper's ARM constructs "once for a given
// framework ... as a reusable model upon which the compatibility analysis
// of all apps relies" (§III-B). Images are built lazily per level and
// cached for the repository's lifetime; standard() provides a process-wide
// immutable default so tests and benches share one build.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "adf/image.hpp"
#include "adf/synthetic.hpp"

namespace saintdroid {

/// Name -> definition lookup over one framework image; built once per
/// level and shared by every analysis against that level.
using FrameworkClassIndex =
    std::unordered_map<std::string, const ClassDef*>;

class FrameworkRepository {
 public:
  explicit FrameworkRepository(FrameworkConfig cfg = {});

  const FrameworkSpec& spec() const { return spec_; }
  const FrameworkConfig& config() const { return cfg_; }

  /// The framework image at `level`, built on first request. Thread-safe:
  /// the first access at each level builds under a std::call_once guard,
  /// every later access reads the immutable cached image without locking —
  /// one repository safely serves N analysis workers.
  const DexFile& image(int level) const;

  /// Class-name index over image(level); built once and cached alongside
  /// the image, so per-app loaders need not rescan the framework's class
  /// table. Same concurrency contract as image().
  const FrameworkClassIndex& class_index(int level) const;

  /// Clamps an arbitrary requested level into the modelled range — apps may
  /// declare targets outside it.
  static int clamp_level(int level);

  /// Process-wide repository with the default configuration; built on first
  /// use and immutable afterwards.
  static const FrameworkRepository& standard();

 private:
  FrameworkConfig cfg_;
  FrameworkSpec spec_;
  // Lazily built per level. The once_flag arrays serialize only the first
  // build of each slot; after the call_once returns, the slot is immutable
  // and read lock-free on the analysis hot path.
  mutable std::array<std::optional<DexFile>, kMaxApiLevel + 1> images_;
  mutable std::array<std::once_flag, kMaxApiLevel + 1> image_once_;
  mutable std::array<std::optional<FrameworkClassIndex>, kMaxApiLevel + 1>
      indexes_;
  mutable std::array<std::once_flag, kMaxApiLevel + 1> index_once_;
};

}  // namespace saintdroid
