// FrameworkRepository: builds and caches the per-level framework images.
//
// This is the artifact the paper's ARM constructs "once for a given
// framework ... as a reusable model upon which the compatibility analysis
// of all apps relies" (§III-B). Images are built lazily per level and
// cached for the repository's lifetime; standard() provides a process-wide
// immutable default so tests and benches share one build.
//
// Besides the raw images and their class-name indexes, the repository
// caches one FrameworkSubstrate per (level, SubstrateOptions) key — the
// shared, immutable, eagerly-materialized framework layer of the class
// hierarchy that per-app analyses point into instead of re-materializing
// (see clvm/substrate.hpp and docs/ARCHITECTURE.md). Each key is built
// once under its own exception-safe once-guard and handed out as shared_ptr<const>.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "adf/image.hpp"
#include "adf/synthetic.hpp"
#include "clvm/substrate.hpp"
#include "support/once.hpp"

namespace saintdroid {

/// Name -> definition lookup over one framework image; built once per
/// level and shared by every analysis against that level.
using FrameworkClassIndex =
    std::unordered_map<std::string, const ClassDef*>;

class FrameworkRepository {
 public:
  explicit FrameworkRepository(FrameworkConfig cfg = {});

  const FrameworkSpec& spec() const { return spec_; }
  const FrameworkConfig& config() const { return cfg_; }

  /// The framework image at `level`, built on first request. Thread-safe:
  /// the first access at each level builds under an exception-safe once-guard,
  /// every later access reads the immutable cached image without locking —
  /// one repository safely serves N analysis workers.
  const DexFile& image(int level) const;

  /// Class-name index over image(level); built once and cached alongside
  /// the image, so per-app loaders need not rescan the framework's class
  /// table. Same concurrency contract as image().
  const FrameworkClassIndex& class_index(int level) const;

  /// The shared framework substrate for (level, options), built on first
  /// request under a per-key once-guard and immutable afterwards. The
  /// returned handle stays valid past the call (workers hold it across an
  /// analysis), but the repository must outlive every handle — substrate
  /// classes point into the repository's image. A build failure (e.g. an
  /// injected "adf.substrate" fault, fired under the level-scoped context
  /// "substrate:level<L>") propagates without satisfying the guard, so
  /// the next caller retries — one poisoned level never sinks the others.
  std::shared_ptr<const FrameworkSubstrate> substrate(
      int level, SubstrateOptions options = {}) const;

  /// Completed substrate builds over this repository's lifetime — lets the
  /// stampede test assert that N concurrent first requests build once.
  std::uint64_t substrate_build_count() const {
    return substrate_builds_.load(std::memory_order_relaxed);
  }

  /// Stable 16-hex-digit fingerprint of this repository's framework spec
  /// (framework_fingerprint), computed once at construction. The key
  /// component that binds on-disk model-cache entries to this framework.
  const std::string& fingerprint() const { return fingerprint_; }

  /// Points substrate materialization at an on-disk model cache: every
  /// substrate slot built after this call first tries to load its
  /// structural tables from `dir` (`substrate-<fingerprint>-L<level>-m<o>
  /// .sdmc`) and rebind instead of re-deriving them from instruction
  /// streams; a miss builds normally and publishes the tables
  /// rename-atomically, so concurrent shard processes can share one
  /// directory. A stale or corrupt entry falls back to a full build (and
  /// is overwritten); cache I/O failures never fail an analysis. Empty
  /// disables caching. Thread-safe; already-built slots are unaffected.
  void set_model_cache_dir(std::string dir) const;
  std::string model_cache_dir() const;

  /// Substrate slots served by rebinding cached tables / table files
  /// written, over this repository's lifetime. Operational telemetry for
  /// tests and the cold-start bench.
  std::uint64_t substrate_cache_hits() const {
    return substrate_cache_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t substrate_cache_stores() const {
    return substrate_cache_stores_.load(std::memory_order_relaxed);
  }

  /// Clamps an arbitrary requested level into the modelled range — apps may
  /// declare targets outside it.
  static int clamp_level(int level);

  /// Process-wide repository with the default configuration; built on first
  /// use and immutable afterwards.
  static const FrameworkRepository& standard();

 private:
  struct SubstrateSlot {
    RetryOnce once;
    std::atomic<std::uint32_t> attempts{0};
    std::shared_ptr<const FrameworkSubstrate> value;
  };
  // (clamped level, options) -> slot; the map only hands out stable slot
  // pointers, the build itself runs under the slot's once-guard outside the
  // map lock so one slow level never serializes the others.
  using SubstrateKey = std::pair<int, bool>;

  FrameworkConfig cfg_;
  FrameworkSpec spec_;
  std::string fingerprint_;
  // Model-cache wiring: the directory is snapshotted under its own mutex
  // at each substrate build; counters are telemetry only.
  mutable std::mutex cache_dir_mutex_;
  mutable std::string model_cache_dir_;
  mutable std::atomic<std::uint64_t> substrate_cache_hits_{0};
  mutable std::atomic<std::uint64_t> substrate_cache_stores_{0};
  // Lazily built per level. The RetryOnce arrays serialize only the first
  // build of each slot (and, unlike std::call_once, stay retryable under
  // sanitizers when a build throws — see support/once.hpp); after the
  // guarded build returns, the slot is immutable and read lock-free on
  // the analysis hot path.
  mutable std::array<std::optional<DexFile>, kMaxApiLevel + 1> images_;
  mutable std::array<RetryOnce, kMaxApiLevel + 1> image_once_;
  mutable std::array<std::atomic<std::uint32_t>, kMaxApiLevel + 1>
      image_attempts_{};
  mutable std::array<std::optional<FrameworkClassIndex>, kMaxApiLevel + 1>
      indexes_;
  mutable std::array<RetryOnce, kMaxApiLevel + 1> index_once_;
  mutable std::mutex substrate_mutex_;
  mutable std::map<SubstrateKey, std::unique_ptr<SubstrateSlot>> substrates_;
  mutable std::atomic<std::uint64_t> substrate_builds_{0};
};

/// Process-wide count of framework build *retries*: re-entries of a
/// per-level image or substrate once-guard after an earlier attempt threw
/// (transient-by-design failures; the build is simply re-run by the next
/// analysis that needs it). The suite harness snapshots this around a run
/// and surfaces the delta in SuiteResult::framework_retries so
/// flaky-framework hosts are visible in batch summaries.
std::uint64_t framework_build_retries();

}  // namespace saintdroid
