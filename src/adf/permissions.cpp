#include "adf/permissions.hpp"

#include <algorithm>
#include <array>

namespace saintdroid {

namespace {
// The 26 permissions in the dangerous protection level across the modelled
// API range, grouped as Android documents them (calendar, camera, contacts,
// location, microphone, phone, sensors, sms, storage).
constexpr std::array<std::string_view, 26> kDangerous = {
    "android.permission.READ_CALENDAR",
    "android.permission.WRITE_CALENDAR",
    "android.permission.CAMERA",
    "android.permission.READ_CONTACTS",
    "android.permission.WRITE_CONTACTS",
    "android.permission.GET_ACCOUNTS",
    "android.permission.ACCESS_FINE_LOCATION",
    "android.permission.ACCESS_COARSE_LOCATION",
    "android.permission.RECORD_AUDIO",
    "android.permission.READ_PHONE_STATE",
    "android.permission.READ_PHONE_NUMBERS",
    "android.permission.CALL_PHONE",
    "android.permission.ANSWER_PHONE_CALLS",
    "android.permission.READ_CALL_LOG",
    "android.permission.WRITE_CALL_LOG",
    "android.permission.ADD_VOICEMAIL",
    "android.permission.USE_SIP",
    "android.permission.PROCESS_OUTGOING_CALLS",
    "android.permission.BODY_SENSORS",
    "android.permission.SEND_SMS",
    "android.permission.RECEIVE_SMS",
    "android.permission.READ_SMS",
    "android.permission.RECEIVE_WAP_PUSH",
    "android.permission.RECEIVE_MMS",
    "android.permission.READ_EXTERNAL_STORAGE",
    "android.permission.WRITE_EXTERNAL_STORAGE",
};
}  // namespace

std::span<const std::string_view> dangerous_permissions() {
  return kDangerous;
}

bool is_dangerous_permission(std::string_view permission) {
  return std::find(kDangerous.begin(), kDangerous.end(), permission) !=
         kDangerous.end();
}

}  // namespace saintdroid
