// The Android dangerous-permission catalogue.
//
// As of the API levels modelled here, Android classifies 26 permissions as
// dangerous (paper §II-C); only these participate in the runtime permission
// system introduced at API level 23 and therefore in PRM mismatches.
#pragma once

#include <span>
#include <string_view>

namespace saintdroid {

/// All 26 dangerous permissions, in "android.permission.X" form.
std::span<const std::string_view> dangerous_permissions();

/// True when `permission` is in the dangerous catalogue.
bool is_dangerous_permission(std::string_view permission);

}  // namespace saintdroid
