#include "adf/repository.hpp"

#include <algorithm>

#include "support/errors.hpp"
#include "support/faults.hpp"
#include "support/sdmc.hpp"

namespace saintdroid {

namespace {

std::atomic<std::uint64_t> g_framework_retries{0};

/// First attempt is not a retry; every re-entry after a failed build is.
void count_attempt(std::atomic<std::uint32_t>& attempts) {
  if (attempts.fetch_add(1, std::memory_order_relaxed) > 0)
    g_framework_retries.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t framework_build_retries() {
  return g_framework_retries.load(std::memory_order_relaxed);
}

FrameworkRepository::FrameworkRepository(FrameworkConfig cfg)
    : cfg_(cfg),
      spec_(build_framework_spec(cfg_)),
      fingerprint_(framework_fingerprint(spec_)) {}

void FrameworkRepository::set_model_cache_dir(std::string dir) const {
  if (!dir.empty()) ensure_directory(dir);
  const std::lock_guard<std::mutex> lock{cache_dir_mutex_};
  model_cache_dir_ = std::move(dir);
}

std::string FrameworkRepository::model_cache_dir() const {
  const std::lock_guard<std::mutex> lock{cache_dir_mutex_};
  return model_cache_dir_;
}

const DexFile& FrameworkRepository::image(int level) const {
  const std::size_t slot_idx =
      static_cast<std::size_t>(clamp_level(level));
  auto& slot = images_[slot_idx];
  image_once_[slot_idx].call([&] {
    count_attempt(image_attempts_[slot_idx]);
    // A fault here propagates without satisfying the once-guard, so the
    // next caller retries the build — an injected repository failure
    // poisons one analysis, not the level, matching real transient I/O.
    SD_FAULT_POINT("adf.image");
    slot = emit_framework_image(spec_, static_cast<int>(slot_idx));
  });
  return *slot;
}

const FrameworkClassIndex& FrameworkRepository::class_index(int level) const {
  const std::size_t slot_idx =
      static_cast<std::size_t>(clamp_level(level));
  auto& slot = indexes_[slot_idx];
  index_once_[slot_idx].call([&] {
    const DexFile& dex = image(static_cast<int>(slot_idx));
    FrameworkClassIndex index;
    index.reserve(dex.classes().size());
    for (const auto& cls : dex.classes())
      index.emplace(dex.type_name(cls.type), &cls);
    slot = std::move(index);
  });
  return *slot;
}

std::shared_ptr<const FrameworkSubstrate> FrameworkRepository::substrate(
    int level, SubstrateOptions options) const {
  const int lvl = clamp_level(level);
  SubstrateSlot* slot = nullptr;
  {
    const std::lock_guard<std::mutex> lock{substrate_mutex_};
    auto& entry = substrates_[SubstrateKey{lvl, options.index_methods}];
    if (!entry) entry = std::make_unique<SubstrateSlot>();
    slot = entry.get();
  }
  // Build the image before entering the substrate's fault context so an
  // "adf.image" fault keeps its own (app-scoped) attribution.
  const DexFile& img = image(lvl);
  slot->once.call([&] {
    count_attempt(slot->attempts);
    // The substrate is a shared artifact with no single app owner, so its
    // fault point fires under a level-scoped context: a plan can poison
    // exactly one level's substrate and every analysis against that level
    // (and only that level) fails until the plan is disarmed — then the
    // unsatisfied once-guard simply rebuilds.
    const FaultContextScope scope{"substrate:level" + std::to_string(lvl)};
    SD_FAULT_POINT("adf.substrate");

    // Model cache: try rebinding persisted structural tables before paying
    // the full per-method instruction re-decode. A stale, foreign or
    // corrupt entry throws ParseError inside sdmc_open / the rebind
    // constructor and falls through to a full build, whose tables are then
    // published rename-atomically (overwriting the bad entry). Cache I/O
    // never fails the build itself.
    const std::string cache_dir = model_cache_dir();
    std::string cache_path;
    SdmcKey key;
    if (!cache_dir.empty()) {
      key.kind = SdmcKind::kSubstrateTables;
      key.fingerprint = fingerprint_;
      key.level = lvl;
      key.options = options.index_methods ? 1u : 0u;
      cache_path = cache_dir + "/substrate-" + fingerprint_ + "-L" +
                   std::to_string(lvl) + "-m" +
                   (options.index_methods ? "1" : "0") + ".sdmc";
      try {
        if (const auto blob = read_file_bytes(cache_path)) {
          const std::vector<std::uint8_t> tables = sdmc_open(*blob, key);
          slot->value = std::make_shared<const FrameworkSubstrate>(
              img, lvl, options, tables);
          substrate_cache_hits_.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const Error&) {
        slot->value = nullptr;  // stale/corrupt entry: fall back to mining
      }
    }
    if (!slot->value) {
      slot->value =
          std::make_shared<const FrameworkSubstrate>(img, lvl, options);
      if (!cache_path.empty()) {
        try {
          write_file_atomic(cache_path,
                            sdmc_seal(key, slot->value->serialize_tables()));
          substrate_cache_stores_.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error&) {
          // A read-only or full cache directory costs only the warm start.
        }
      }
    }
    substrate_builds_.fetch_add(1, std::memory_order_relaxed);
  });
  return slot->value;
}

int FrameworkRepository::clamp_level(int level) {
  return std::clamp(level, kMinApiLevel, kMaxApiLevel);
}

const FrameworkRepository& FrameworkRepository::standard() {
  static const FrameworkRepository repo{FrameworkConfig{}};
  return repo;
}

}  // namespace saintdroid
