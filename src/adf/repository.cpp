#include "adf/repository.hpp"

#include <algorithm>

#include "support/errors.hpp"

namespace saintdroid {

FrameworkRepository::FrameworkRepository(FrameworkConfig cfg)
    : cfg_(cfg), spec_(build_framework_spec(cfg_)) {}

const DexFile& FrameworkRepository::image(int level) const {
  const int clamped = clamp_level(level);
  auto& slot = images_[static_cast<std::size_t>(clamped)];
  if (!slot) slot = emit_framework_image(spec_, clamped);
  return *slot;
}

const FrameworkClassIndex& FrameworkRepository::class_index(int level) const {
  const int clamped = clamp_level(level);
  auto& slot = indexes_[static_cast<std::size_t>(clamped)];
  if (!slot) {
    const DexFile& dex = image(clamped);
    FrameworkClassIndex index;
    index.reserve(dex.classes().size());
    for (const auto& cls : dex.classes())
      index.emplace(dex.type_name(cls.type), &cls);
    slot = std::move(index);
  }
  return *slot;
}

int FrameworkRepository::clamp_level(int level) {
  return std::clamp(level, kMinApiLevel, kMaxApiLevel);
}

const FrameworkRepository& FrameworkRepository::standard() {
  static const FrameworkRepository repo{FrameworkConfig{}};
  return repo;
}

}  // namespace saintdroid
