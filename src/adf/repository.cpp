#include "adf/repository.hpp"

#include <algorithm>

#include "support/errors.hpp"
#include "support/faults.hpp"

namespace saintdroid {

FrameworkRepository::FrameworkRepository(FrameworkConfig cfg)
    : cfg_(cfg), spec_(build_framework_spec(cfg_)) {}

const DexFile& FrameworkRepository::image(int level) const {
  const std::size_t slot_idx =
      static_cast<std::size_t>(clamp_level(level));
  auto& slot = images_[slot_idx];
  std::call_once(image_once_[slot_idx], [&] {
    // A fault here propagates out of call_once without satisfying it, so
    // the next caller retries the build — an injected repository failure
    // poisons one analysis, not the level, matching real transient I/O.
    SD_FAULT_POINT("adf.image");
    slot = emit_framework_image(spec_, static_cast<int>(slot_idx));
  });
  return *slot;
}

const FrameworkClassIndex& FrameworkRepository::class_index(int level) const {
  const std::size_t slot_idx =
      static_cast<std::size_t>(clamp_level(level));
  auto& slot = indexes_[slot_idx];
  std::call_once(index_once_[slot_idx], [&] {
    const DexFile& dex = image(static_cast<int>(slot_idx));
    FrameworkClassIndex index;
    index.reserve(dex.classes().size());
    for (const auto& cls : dex.classes())
      index.emplace(dex.type_name(cls.type), &cls);
    slot = std::move(index);
  });
  return *slot;
}

int FrameworkRepository::clamp_level(int level) {
  return std::clamp(level, kMinApiLevel, kMaxApiLevel);
}

const FrameworkRepository& FrameworkRepository::standard() {
  static const FrameworkRepository repo{FrameworkConfig{}};
  return repo;
}

}  // namespace saintdroid
