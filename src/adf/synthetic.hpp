// Synthetic framework bulk.
//
// The curated spec covers the API surface the paper's examples touch; the
// bulk generator provides the *scale* of a real ADF — thousands of classes
// whose hierarchy, lifecycles, callbacks, permission enforcement and
// internal call chains are drawn deterministically from a seed. Bulk is
// what makes the eager-loading baselines pay realistic time/memory costs
// (RQ3) and gives the corpus generator a wide API surface to draw usages
// from.
#pragma once

#include <cstdint>

#include "adf/spec.hpp"

namespace saintdroid {

/// Knobs for framework generation. Defaults produce a framework of roughly
/// a thousand classes — large enough that eager loading visibly dominates
/// lazy loading, small enough to build 28 per-level images in seconds.
struct FrameworkConfig {
  std::uint64_t seed = 0xADFULL;
  int bulk_classes = 2200;
  int bulk_packages = 60;
  int max_methods_per_class = 10;
  /// Fraction of bulk methods that are framework-invoked callbacks.
  double callback_fraction = 0.12;
  /// Fraction of bulk methods that directly enforce a dangerous permission.
  double permission_fraction = 0.04;
  /// Fraction of bulk methods that are removed at some later level.
  double removal_fraction = 0.05;
  /// Average framework-internal calls per generated method body.
  double calls_per_method = 1.2;
};

/// Appends `cfg.bulk_classes` generated classes to `spec`. Deterministic in
/// `cfg.seed`. Generated names live under "android/synth/p<i>/C<j>".
void add_synthetic_bulk(FrameworkSpec& spec, const FrameworkConfig& cfg);

/// curated_framework_spec() plus synthetic bulk — the spec the repository
/// builds images from.
FrameworkSpec build_framework_spec(const FrameworkConfig& cfg);

}  // namespace saintdroid
