#include "adf/synthetic.hpp"

#include <cmath>
#include <string>

#include "adf/permissions.hpp"
#include "support/rng.hpp"

namespace saintdroid {

namespace {

/// Introduction levels skew early: most of the framework predates the
/// modelled window, and each release adds a thinner slice (the paper's
/// Fig. 1 intuition). u^2 over the range gives that skew.
int draw_intro_level(Rng& rng, int floor_level) {
  const double u = rng.uniform01();
  const int span = kMaxApiLevel - floor_level;
  return floor_level + static_cast<int>(u * u * static_cast<double>(span));
}

}  // namespace

void add_synthetic_bulk(FrameworkSpec& spec, const FrameworkConfig& cfg) {
  Rng rng{cfg.seed};
  const auto dangerous = dangerous_permissions();

  // Track the generated classes (name, introduced level, concrete method
  // names) so later classes can subclass and call into earlier ones.
  struct BulkClass {
    std::string name;
    int introduced;
    std::vector<CallSpec> callable;  // ready-made call specs into this class
  };
  std::vector<BulkClass> generated;
  generated.reserve(static_cast<std::size_t>(cfg.bulk_classes));

  for (int i = 0; i < cfg.bulk_classes; ++i) {
    const int pkg =
        static_cast<int>(rng.uniform(0, cfg.bulk_packages - 1));
    const std::string name = "android/synth/p" + std::to_string(pkg) + "/C" +
                             std::to_string(i);

    // Pick a superclass: mostly Object, sometimes an earlier bulk class or
    // View (deep hierarchies exercise virtual resolution).
    std::string super = "java/lang/Object";
    int floor_level = kMinApiLevel;
    const double super_draw = rng.uniform01();
    if (!generated.empty() && super_draw < 0.25) {
      const auto& base = rng.pick(generated);
      super = base.name;
      floor_level = base.introduced;
    } else if (super_draw < 0.32) {
      super = "android/view/View";
    }

    ClassSpec cls;
    cls.name = name;
    cls.super = super;
    cls.life.introduced = draw_intro_level(rng, floor_level);

    const int method_count =
        static_cast<int>(rng.uniform(2, cfg.max_methods_per_class));
    std::vector<CallSpec> callable;
    for (int j = 0; j < method_count; ++j) {
      MethodSpec m;
      const bool is_callback = rng.chance(cfg.callback_fraction);
      // Per-class unique names: a generated method must never shadow a
      // same-signature method of a generated ancestor, or virtual dispatch
      // would change which lifecycle applies at a given level.
      m.name = (is_callback ? "onEvent" : "op") + std::to_string(j) + "_" +
               std::to_string(i);
      m.callback = is_callback;
      // Callbacks are void, like the overwhelming majority of framework
      // event handlers (and the CallbackUse seeding surface assumes it).
      m.return_type = !is_callback && rng.chance(0.3) ? "I" : "V";
      if (rng.chance(0.4)) m.params.push_back("I");
      if (rng.chance(0.2)) m.params.push_back("java/lang/String");
      m.life.introduced = draw_intro_level(rng, cls.life.introduced);
      if (rng.chance(cfg.removal_fraction) &&
          m.life.introduced < kMaxApiLevel - 1) {
        m.life.removed = static_cast<int>(
            rng.uniform(m.life.introduced + 2, kMaxApiLevel));
      }
      if (!is_callback && rng.chance(cfg.permission_fraction))
        m.permission = std::string{dangerous[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(dangerous.size()) - 1))]};
      m.is_static = !is_callback && rng.chance(0.2);

      // Framework-internal call chain: call into earlier bulk classes.
      if (!generated.empty()) {
        int calls = 0;
        while (rng.chance(cfg.calls_per_method /
                          (1.0 + static_cast<double>(calls))) &&
               calls < 4) {
          const auto& target = rng.pick(generated);
          if (!target.callable.empty())
            m.calls.push_back(rng.pick(target.callable));
          ++calls;
        }
      }

      if (!is_callback) {
        CallSpec as_call;
        as_call.cls = name;
        as_call.name = m.name;
        as_call.return_type = m.return_type;
        as_call.params = m.params;
        as_call.is_static = m.is_static;
        callable.push_back(std::move(as_call));
      }
      cls.methods.push_back(std::move(m));
    }

    generated.push_back(BulkClass{name, cls.life.introduced,
                                  std::move(callable)});
    spec.classes.push_back(std::move(cls));
  }
}

FrameworkSpec build_framework_spec(const FrameworkConfig& cfg) {
  FrameworkSpec spec = curated_framework_spec();
  add_synthetic_bulk(spec, cfg);
  return spec;
}

}  // namespace saintdroid
