// Framework specification: the ground truth from which per-level framework
// images are emitted.
//
// The spec plays the role of the real Android source tree that the paper's
// ARM mines: every class and method carries a lifecycle (introduced /
// removed level), methods may require a permission (enforced in their
// emitted body, the way the real framework calls into enforcePermission),
// and method bodies may call other framework methods — which is what makes
// "deep in the ADF" analysis (transitive permissions, callback dispatch)
// meaningful. The curated portion encodes real Android facts used by the
// paper's examples; the synthetic portion (synthetic.hpp) provides bulk.
#pragma once

#include <string>
#include <vector>

#include "dex/ids.hpp"
#include "support/interval.hpp"

namespace saintdroid {

/// Lifetime of an API element. `removed` of 0 means never removed; the
/// element exists at level L iff introduced <= L && (removed == 0 ||
/// L < removed).
struct Lifecycle {
  int introduced = kMinApiLevel;
  int removed = 0;

  bool exists_at(int level) const {
    return introduced <= level && (removed == 0 || level < removed);
  }

  /// The closed interval of levels at which the element exists, clamped to
  /// the modelled range.
  ApiInterval existence() const {
    return ApiInterval{introduced, removed == 0 ? kMaxApiLevel : removed - 1};
  }
};

/// A call emitted in a framework method body (framework-internal edge).
struct CallSpec {
  std::string cls;
  std::string name;
  std::string return_type = "V";
  std::vector<std::string> params;
  bool is_static = false;
};

/// One framework method.
struct MethodSpec {
  std::string name;
  std::string return_type = "V";
  std::vector<std::string> params;
  Lifecycle life;
  /// True for methods the framework invokes on app subclasses (lifecycle
  /// and event handlers). Emitted with a framework-side dispatch call so
  /// ARM can mine the callback set automatically.
  bool callback = false;
  /// Permission enforced directly in this method's body ("" = none).
  std::string permission;
  /// Framework-internal calls in the body (source of transitive
  /// permission requirements and deep-ADF structure).
  std::vector<CallSpec> calls;
  bool is_static = false;
};

/// One framework class.
struct ClassSpec {
  std::string name;
  std::string super = "java/lang/Object";
  std::vector<std::string> interfaces;
  Lifecycle life;
  bool is_interface = false;
  std::vector<MethodSpec> methods;
};

/// One curated semantic-change row: a method whose *behavior* (not
/// signature) differs across the level range, per the AndroidCompass-style
/// semantic-change studies (PAPERS.md). The method itself exists at every
/// modelled level — signature detectors stay silent — but calling it
/// while the device level is inside `levels` without a guard is a SEM
/// mismatch.
struct SemanticChangeSpec {
  std::string cls;   ///< slashed internal name of the declaring class
  std::string name;
  std::string return_type = "V";
  std::vector<std::string> params;
  /// Closed level range over which the changed behavior is in effect.
  int from_level = kMinApiLevel;
  int to_level = kMaxApiLevel;
  /// Change taxonomy slug, e.g. "default-change", "exception-change",
  /// "precision-change", "threading-change".
  std::string kind;
  /// One-line description of what changed (report text).
  std::string note;

  ApiInterval levels() const { return ApiInterval{from_level, to_level}; }
};

/// The whole framework.
struct FrameworkSpec {
  std::vector<ClassSpec> classes;
  /// Curated semantic-change table (see SemanticChangeSpec). Mined into a
  /// SemanticTable alongside the ARM data and fingerprinted with the rest
  /// of the spec.
  std::vector<SemanticChangeSpec> semantic_changes;

  const ClassSpec* find_class(const std::string& name) const;
  const MethodSpec* find_method(const std::string& cls,
                                const std::string& method) const;
};

/// Order-sensitive FNV-1a fingerprint over the complete content of `spec`
/// — every class, lifecycle, method, permission and internal call edge,
/// plus the modelled level range — rendered as 16 hex digits. This is the
/// cache-key component binding a persisted model (mined ApiDatabase,
/// substrate tables) to the framework it was computed from: any spec
/// change, however small, changes the fingerprint and strands the old
/// cache entries.
std::string framework_fingerprint(const FrameworkSpec& spec);

/// The curated portion of the framework: ~40 classes mirroring real Android
/// with the exact lifecycle facts the paper's examples rely on
/// (getColorStateList@23, Fragment.onAttach(Context)@23,
/// getFragmentManager@11, View.drawableHotspotChanged@21,
/// AndroidHttpClient removed@23, ...).
FrameworkSpec curated_framework_spec();

/// Internal name of the framework class whose static method framework
/// bodies call to enforce a permission; ARM's permission-map mining scans
/// for calls to it (the same signal PScout mined from the real framework).
inline constexpr const char* kPermissionEnforcerClass =
    "android/content/pm/PermissionChecker";
inline constexpr const char* kPermissionEnforcerMethod = "enforcePermission";

/// Name of the synthesized per-class dispatcher whose body virtually
/// invokes every callback of the class; ARM mines the callback set from
/// these invocations.
inline constexpr const char* kCallbackDispatcherName = "__dispatchCallbacks";

/// True if `class_name` belongs to the framework namespace (android/*,
/// java/*, com/android/*). App code and bundled libraries live elsewhere.
bool is_framework_class_name(const std::string& class_name);

}  // namespace saintdroid
