// Per-level framework image emission.
//
// Given the framework spec and an API level, emits the framework as it
// exists at that level into a single SDEX container: only classes and
// methods alive at the level are present, permission enforcement appears as
// real bytecode (const-string + enforcePermission call), framework-internal
// calls appear as invoke instructions, and every class with callbacks gets
// a dispatcher method that virtually invokes them — the signal ARM mines
// for automatic callback discovery.
#pragma once

#include "adf/spec.hpp"
#include "dex/dexfile.hpp"

namespace saintdroid {

/// Emits the framework image for `level` (must be within the modelled
/// range). Deterministic: equal inputs produce identical containers.
DexFile emit_framework_image(const FrameworkSpec& spec, int level);

}  // namespace saintdroid
