#include "adf/image.hpp"

#include <unordered_map>

#include "dex/builder.hpp"
#include "support/errors.hpp"

namespace saintdroid {

DexFile emit_framework_image(const FrameworkSpec& spec, int level) {
  SD_EXPECTS(level >= kMinApiLevel && level <= kMaxApiLevel);

  // Index the spec so super/interface/call existence checks are O(1).
  std::unordered_map<std::string, const ClassSpec*> by_name;
  by_name.reserve(spec.classes.size());
  for (const auto& cls : spec.classes) by_name.emplace(cls.name, &cls);

  const auto class_alive = [&](const std::string& name) {
    const auto it = by_name.find(name);
    return it != by_name.end() && it->second->life.exists_at(level);
  };
  const auto method_alive = [&](const CallSpec& call) {
    const auto it = by_name.find(call.cls);
    if (it == by_name.end() || !it->second->life.exists_at(level))
      return false;
    for (const auto& m : it->second->methods)
      if (m.name == call.name && m.params == call.params &&
          m.life.exists_at(level))
        return true;
    return false;
  };

  DexBuilder builder;
  // Roughly one type per class and a handful of distinct strings (name,
  // super, method names, descriptors) each; pre-sizing the pools avoids
  // rehashes while authoring the thousands of classes of one level image.
  builder.reserve_pools(spec.classes.size() * 4, spec.classes.size() + 16);
  for (const auto& cls : spec.classes) {
    if (!cls.life.exists_at(level)) continue;

    // A class can outlive its declared superclass in a mis-specified spec;
    // degrade to Object rather than emitting a dangling reference.
    std::string super = cls.super;
    if (!super.empty() && !class_alive(super)) super = "java/lang/Object";
    if (cls.is_interface) super = "";

    std::vector<std::string> interfaces;
    for (const auto& iface : cls.interfaces)
      if (class_alive(iface)) interfaces.push_back(iface);

    auto& cb = builder.add_class(
        cls.name, super, interfaces,
        kAccPublic | (cls.is_interface ? kAccInterface | kAccAbstract : 0));

    std::vector<const MethodSpec*> live_callbacks;
    for (const auto& m : cls.methods) {
      if (!m.life.exists_at(level)) continue;
      if (m.callback) live_callbacks.push_back(&m);

      if (cls.is_interface) {
        cb.add_abstract_method(m.name, m.return_type, m.params);
        continue;
      }

      auto& mb = cb.add_method(m.name, m.return_type, m.params,
                               kAccPublic | (m.is_static ? kAccStatic : 0));
      mb.registers(4);
      if (!m.permission.empty()) {
        mb.const_string(0, m.permission);
        mb.invoke_static(kPermissionEnforcerClass, kPermissionEnforcerMethod,
                         "V", {"java/lang/String"}, {0});
      }
      for (const auto& call : m.calls) {
        if (!method_alive(call)) continue;  // framework evolved past it
        mb.invoke(call.is_static ? InvokeKind::kStatic : InvokeKind::kVirtual,
                  call.cls, call.name, call.return_type, call.params);
      }
      if (m.return_type == "V") {
        mb.return_void();
      } else {
        mb.const_int(1, 0);
        mb.return_reg(1);
      }
    }

    // Dispatcher: the framework-side invocations of this class's callbacks.
    // For interfaces the dispatch is an invoke-interface from a synthetic
    // static method (mirroring how e.g. View internals call
    // OnClickListener.onClick).
    if (!live_callbacks.empty()) {
      auto& mb = cb.add_method(
          kCallbackDispatcherName, "V", {},
          kAccPublic | kAccSynthetic | (cls.is_interface ? kAccStatic : 0));
      mb.registers(2);
      for (const auto* cb_method : live_callbacks)
        mb.invoke(cls.is_interface ? InvokeKind::kInterface
                                   : InvokeKind::kVirtual,
                  cls.name, cb_method->name, cb_method->return_type,
                  cb_method->params);
      mb.return_void();
    }
  }

  return builder.build();
}

}  // namespace saintdroid
