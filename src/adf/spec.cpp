#include "adf/spec.hpp"

#include <cstdint>

namespace saintdroid {

const ClassSpec* FrameworkSpec::find_class(const std::string& name) const {
  for (const auto& cls : classes)
    if (cls.name == name) return &cls;
  return nullptr;
}

const MethodSpec* FrameworkSpec::find_method(const std::string& cls,
                                             const std::string& method) const {
  const ClassSpec* spec = find_class(cls);
  if (!spec) return nullptr;
  for (const auto& m : spec->methods)
    if (m.name == method) return &m;
  return nullptr;
}

std::string framework_fingerprint(const FrameworkSpec& spec) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  const auto mix_byte = [&hash](unsigned char byte) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  };
  const auto mix_str = [&mix_byte](const std::string& s) {
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0);  // terminator: adjacent strings must not concatenate
  };
  const auto mix_int = [&mix_byte](std::int64_t v) {
    for (int i = 0; i < 8; ++i)
      mix_byte(static_cast<unsigned char>((static_cast<std::uint64_t>(v) >>
                                           (8 * i)) & 0xFF));
  };
  mix_int(kMinApiLevel);
  mix_int(kMaxApiLevel);
  mix_int(static_cast<std::int64_t>(spec.classes.size()));
  for (const auto& cls : spec.classes) {
    mix_str(cls.name);
    mix_str(cls.super);
    for (const auto& iface : cls.interfaces) mix_str(iface);
    mix_int(cls.life.introduced);
    mix_int(cls.life.removed);
    mix_int(cls.is_interface ? 1 : 0);
    mix_int(static_cast<std::int64_t>(cls.methods.size()));
    for (const auto& m : cls.methods) {
      mix_str(m.name);
      mix_str(m.return_type);
      for (const auto& p : m.params) mix_str(p);
      mix_int(m.life.introduced);
      mix_int(m.life.removed);
      mix_int((m.callback ? 1 : 0) | (m.is_static ? 2 : 0));
      mix_str(m.permission);
      mix_int(static_cast<std::int64_t>(m.calls.size()));
      for (const auto& call : m.calls) {
        mix_str(call.cls);
        mix_str(call.name);
        mix_str(call.return_type);
        for (const auto& p : call.params) mix_str(p);
        mix_int(call.is_static ? 1 : 0);
      }
    }
  }
  mix_int(static_cast<std::int64_t>(spec.semantic_changes.size()));
  for (const auto& change : spec.semantic_changes) {
    mix_str(change.cls);
    mix_str(change.name);
    mix_str(change.return_type);
    for (const auto& p : change.params) mix_str(p);
    mix_int(change.from_level);
    mix_int(change.to_level);
    mix_str(change.kind);
    mix_str(change.note);
  }
  static const char* digits = "0123456789abcdef";
  std::string hex(16, '0');
  for (int i = 15; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return hex;
}

bool is_framework_class_name(const std::string& class_name) {
  // android.support.* is the compat library: it ships *inside* APKs and is
  // analyzed as app code by every tool in the study.
  if (class_name.rfind("android/support/", 0) == 0) return false;
  return class_name.rfind("android/", 0) == 0 ||
         class_name.rfind("java/", 0) == 0 ||
         class_name.rfind("com/android/", 0) == 0;
}

namespace {

MethodSpec method(std::string name, std::string ret,
                  std::vector<std::string> params, int introduced,
                  int removed = 0) {
  MethodSpec m;
  m.name = std::move(name);
  m.return_type = std::move(ret);
  m.params = std::move(params);
  m.life = {introduced, removed};
  return m;
}

MethodSpec callback(std::string name, std::vector<std::string> params,
                    int introduced, int removed = 0) {
  MethodSpec m = method(std::move(name), "V", std::move(params), introduced,
                        removed);
  m.callback = true;
  return m;
}

MethodSpec guarded(MethodSpec m, std::string permission) {
  m.permission = std::move(permission);
  return m;
}

MethodSpec static_method(MethodSpec m) {
  m.is_static = true;
  return m;
}

MethodSpec with_calls(MethodSpec m, std::vector<CallSpec> calls) {
  m.calls = std::move(calls);
  return m;
}

ClassSpec cls(std::string name, std::string super, int introduced,
              int removed = 0) {
  ClassSpec c;
  c.name = std::move(name);
  c.super = std::move(super);
  c.life = {introduced, removed};
  return c;
}

}  // namespace

FrameworkSpec curated_framework_spec() {
  FrameworkSpec fw;

  // --- roots and placeholder value types -----------------------------------
  {
    ClassSpec object = cls("java/lang/Object", "", 2);
    object.methods = {
        method("<init>", "V", {}, 2),
        method("toString", "java/lang/String", {}, 2),
        method("hashCode", "I", {}, 2),
        method("equals", "Z", {"java/lang/Object"}, 2),
    };
    fw.classes.push_back(std::move(object));
  }
  {
    // Reflection surface: Class.forName is how apps late-bind by name.
    ClassSpec klass = cls("java/lang/Class", "java/lang/Object", 2);
    klass.methods = {
        static_method(method("forName", "java/lang/Class",
                             {"java/lang/String"}, 2)),
        method("newInstance", "java/lang/Object", {}, 2),
    };
    fw.classes.push_back(std::move(klass));
  }
  for (const char* name :
       {"java/lang/String", "java/io/File", "android/os/Bundle",
        "android/os/IBinder", "android/net/Uri", "android/database/Cursor",
        "android/graphics/Canvas", "android/graphics/drawable/Drawable",
        "android/content/res/ColorStateList", "android/content/ContentValues",
        "android/view/WindowInsets", "android/view/ViewStructure",
        "android/location/Location", "android/app/ActionBar",
        "android/app/Notification", "android/webkit/WebMessage",
        "android/webkit/WebResourceRequest", "android/webkit/ValueCallback",
        "android/app/job/JobInfo"}) {
    ClassSpec c = cls(name, "java/lang/Object", 2);
    c.methods = {method("<init>", "V", {}, 2)};
    fw.classes.push_back(std::move(c));
  }

  // Build.VERSION carries the SDK_INT field read by guards; it has no
  // interesting methods but must be loadable.
  fw.classes.push_back(cls("android/os/Build$VERSION", "java/lang/Object", 2));

  // Permission enforcement shim mined by the ARM for the permission map.
  {
    ClassSpec pc = cls(kPermissionEnforcerClass, "java/lang/Object", 2);
    pc.methods = {static_method(
        method(kPermissionEnforcerMethod, "V", {"java/lang/String"}, 2))};
    fw.classes.push_back(std::move(pc));
  }

  // --- context chain --------------------------------------------------------
  {
    ClassSpec context = cls("android/content/Context", "java/lang/Object", 2);
    context.methods = {
        method("<init>", "V", {}, 2),
        method("getSystemService", "java/lang/Object", {"java/lang/String"},
               2),
        method("getDrawable", "android/graphics/drawable/Drawable", {"I"},
               21),
        method("getColor", "I", {"I"}, 23),
        // Listing 1 of the paper: introduced at API level 23.
        method("getColorStateList", "android/content/res/ColorStateList",
               {"I"}, 23),
        method("checkSelfPermission", "I", {"java/lang/String"}, 23),
        method("getExternalFilesDir", "java/io/File", {"java/lang/String"},
               8),
        method("openFileOutput", "java/lang/Object", {"java/lang/String"}, 2),
        method("getSharedPreferences", "java/lang/Object",
               {"java/lang/String", "I"}, 2),
        method("startActivity", "V", {"android/content/Intent"}, 2),
        method("sendBroadcast", "V", {"android/content/Intent"}, 2),
        method("getContentResolver", "android/content/ContentResolver", {}, 2),
        method("registerReceiver", "android/content/Intent",
               {"android/content/BroadcastReceiver",
                "android/content/IntentFilter"},
               2),
    };
    fw.classes.push_back(std::move(context));

    ClassSpec wrapper =
        cls("android/content/ContextWrapper", "android/content/Context", 2);
    wrapper.methods = {method("<init>", "V", {}, 2),
                       method("getBaseContext", "android/content/Context", {},
                              2)};
    fw.classes.push_back(std::move(wrapper));

    ClassSpec theme_wrapper = cls("android/view/ContextThemeWrapper",
                                  "android/content/ContextWrapper", 2);
    theme_wrapper.methods = {method("<init>", "V", {}, 2),
                             method("setTheme", "V", {"I"}, 2)};
    fw.classes.push_back(std::move(theme_wrapper));
  }

  // --- Activity -------------------------------------------------------------
  {
    ClassSpec activity =
        cls("android/app/Activity", "android/view/ContextThemeWrapper", 2);
    activity.methods = {
        method("<init>", "V", {}, 2),
        callback("onCreate", {"android/os/Bundle"}, 2),
        callback("onStart", {}, 2),
        callback("onResume", {}, 2),
        callback("onPause", {}, 2),
        callback("onStop", {}, 2),
        callback("onDestroy", {}, 2),
        callback("onSaveInstanceState", {"android/os/Bundle"}, 2),
        callback("onAttachedToWindow", {}, 5),
        callback("onBackPressed", {}, 5),
        callback("onMultiWindowModeChanged", {"Z"}, 24),
        callback("onPictureInPictureModeChanged", {"Z"}, 24),
        callback("onTopResumedActivityChanged", {"Z"}, 29),
        // The runtime-permission result hook introduced with Android M.
        callback("onRequestPermissionsResult",
                 {"I", "[Ljava/lang/String;", "[I"}, 23),
        // Offline Calendar example in the paper: introduced at API 11.
        method("getFragmentManager", "android/app/FragmentManager", {}, 11),
        method("findViewById", "android/view/View", {"I"}, 2),
        method("requestPermissions", "V", {"[Ljava/lang/String;", "I"}, 23),
        method("isInMultiWindowMode", "Z", {}, 24),
        method("setContentView", "V", {"I"}, 2),
        method("getActionBar", "android/app/ActionBar", {}, 11),
        method("invalidateOptionsMenu", "V", {}, 11),
        method("recreate", "V", {}, 11),
        method("isDestroyed", "Z", {}, 17),
        method("requestWindowFeature", "Z", {"I"}, 2),
        method("finish", "V", {}, 2),
        method("getIntent", "android/content/Intent", {}, 2),
        method("runOnUiThread", "V", {"java/lang/Object"}, 2),
    };
    fw.classes.push_back(std::move(activity));
  }

  // --- Fragment (the Simple Solitaire example) -------------------------------
  {
    ClassSpec fragment = cls("android/app/Fragment", "java/lang/Object", 11);
    fragment.methods = {
        method("<init>", "V", {}, 11),
        // onAttach(Activity): present since fragments exist.
        callback("onAttach", {"android/app/Activity"}, 11),
        callback("onCreate", {"android/os/Bundle"}, 11),
        callback("onCreateView", {"android/os/Bundle"}, 11),
        callback("onDestroy", {}, 11),
        callback("onDetach", {}, 11),
        method("getActivity", "android/app/Activity", {}, 11),
        method("getContext", "android/content/Context", {}, 23),
        method("isAdded", "Z", {}, 11),
    };
    // onAttach(Context) was introduced at API level 23 (Listing 2).
    {
      MethodSpec on_attach_ctx =
          callback("onAttach", {"android/content/Context"}, 23);
      fragment.methods.push_back(std::move(on_attach_ctx));
    }
    fw.classes.push_back(std::move(fragment));

    ClassSpec fm = cls("android/app/FragmentManager", "java/lang/Object", 11);
    fm.methods = {
        method("beginTransaction", "java/lang/Object", {}, 11),
        method("executePendingTransactions", "Z", {}, 11),
        method("isStateSaved", "Z", {}, 26),
    };
    fw.classes.push_back(std::move(fm));
  }

  // --- Service ----------------------------------------------------------------
  {
    ClassSpec service =
        cls("android/app/Service", "android/content/ContextWrapper", 2);
    service.methods = {
        method("<init>", "V", {}, 2),
        callback("onCreate", {}, 2),
        callback("onStartCommand", {"android/content/Intent", "I", "I"}, 5),
        callback("onBind", {"android/content/Intent"}, 2),
        callback("onTrimMemory", {"I"}, 14),
        callback("onTaskRemoved", {"android/content/Intent"}, 14),
        callback("onDestroy", {}, 2),
        method("stopSelf", "V", {}, 2),
        method("startForeground", "V", {"I", "android/app/Notification"}, 5),
        method("stopForeground", "V", {"I"}, 24),
    };
    fw.classes.push_back(std::move(service));

    ClassSpec receiver =
        cls("android/content/BroadcastReceiver", "java/lang/Object", 2);
    receiver.methods = {
        method("<init>", "V", {}, 2),
        callback("onReceive",
                 {"android/content/Context", "android/content/Intent"}, 2),
        method("goAsync", "java/lang/Object", {}, 11),
    };
    fw.classes.push_back(std::move(receiver));

    ClassSpec filter =
        cls("android/content/IntentFilter", "java/lang/Object", 2);
    filter.methods = {method("<init>", "V", {}, 2),
                      method("addAction", "V", {"java/lang/String"}, 2)};
    fw.classes.push_back(std::move(filter));
  }

  // --- View / WebView (the FOSDEM example, CIDER's modelled classes) ---------
  {
    ClassSpec view = cls("android/view/View", "java/lang/Object", 2);
    view.methods = {
        method("<init>", "V", {"android/content/Context"}, 2),
        callback("onDraw", {"android/graphics/Canvas"}, 2),
        callback("onMeasure", {"I", "I"}, 2),
        callback("onLayout", {"Z", "I", "I", "I", "I"}, 2),
        // FOSDEM example: introduced at API level 21.
        callback("drawableHotspotChanged", {"F", "F"}, 21),
        callback("onApplyWindowInsets", {"android/view/WindowInsets"}, 20),
        callback("onProvideStructure", {"android/view/ViewStructure"}, 23),
        callback("onPointerCaptureChange", {"Z"}, 26),
        method("setBackground", "V",
               {"android/graphics/drawable/Drawable"}, 16),
        method("setBackgroundDrawable", "V",
               {"android/graphics/drawable/Drawable"}, 2),
        method("performClick", "Z", {}, 2),
        method("invalidate", "V", {}, 2),
        method("requestApplyInsets", "V", {}, 20),
        method("setElevation", "V", {"F"}, 21),
        method("getForeground", "android/graphics/drawable/Drawable", {}, 23),
        method("setOnClickListener", "V", {"android/view/View$OnClickListener"},
               2),
        method("getContext", "android/content/Context", {}, 2),
    };
    fw.classes.push_back(std::move(view));

    ClassSpec click_listener =
        cls("android/view/View$OnClickListener", "", 2);
    click_listener.is_interface = true;
    click_listener.methods = {callback("onClick", {"android/view/View"}, 2)};
    fw.classes.push_back(std::move(click_listener));

    ClassSpec linear_layout =
        cls("android/widget/LinearLayout", "android/view/View", 2);
    linear_layout.methods = {
        method("<init>", "V", {"android/content/Context"}, 2),
        method("setOrientation", "V", {"I"}, 2),
    };
    fw.classes.push_back(std::move(linear_layout));

    ClassSpec webview = cls("android/webkit/WebView", "android/view/View", 2);
    webview.methods = {
        method("<init>", "V", {"android/content/Context"}, 2),
        method("loadUrl", "V", {"java/lang/String"}, 2),
        method("evaluateJavascript", "V",
               {"java/lang/String", "android/webkit/ValueCallback"}, 19),
        method("createWebMessageChannel", "java/lang/Object", {}, 23),
        method("postWebMessage", "V",
               {"android/webkit/WebMessage", "android/net/Uri"}, 23),
        method("setWebViewClient", "V", {"android/webkit/WebViewClient"}, 2),
        method("getSettings", "java/lang/Object", {}, 2),
    };
    fw.classes.push_back(std::move(webview));

    ClassSpec webview_client =
        cls("android/webkit/WebViewClient", "java/lang/Object", 2);
    webview_client.methods = {
        method("<init>", "V", {}, 2),
        callback("onPageFinished",
                 {"android/webkit/WebView", "java/lang/String"}, 2),
        callback("onReceivedError",
                 {"android/webkit/WebView", "I", "java/lang/String"}, 2),
        callback("onPageCommitVisible",
                 {"android/webkit/WebView", "java/lang/String"}, 23),
        callback("shouldOverrideUrlLoading",
                 {"android/webkit/WebView",
                  "android/webkit/WebResourceRequest"},
                 24),
    };
    fw.classes.push_back(std::move(webview_client));
  }

  // --- Intent -----------------------------------------------------------------
  {
    ClassSpec intent = cls("android/content/Intent", "java/lang/Object", 2);
    intent.methods = {
        method("<init>", "V", {"java/lang/String"}, 2),
        method("setAction", "android/content/Intent", {"java/lang/String"}, 2),
        method("putExtra", "android/content/Intent",
               {"java/lang/String", "java/lang/String"}, 2),
        method("getStringExtra", "java/lang/String", {"java/lang/String"}, 2),
        method("addFlags", "android/content/Intent", {"I"}, 2),
    };
    fw.classes.push_back(std::move(intent));
  }

  // --- permission-requiring APIs ----------------------------------------------
  {
    ClassSpec resolver =
        cls("android/content/ContentResolver", "java/lang/Object", 2);
    resolver.methods = {
        guarded(method("query", "android/database/Cursor",
                       {"android/net/Uri", "java/lang/String"}, 2),
                "android.permission.READ_EXTERNAL_STORAGE"),
        guarded(method("insert", "android/net/Uri",
                       {"android/net/Uri", "android/content/ContentValues"},
                       2),
                "android.permission.WRITE_EXTERNAL_STORAGE"),
        guarded(method("delete", "I", {"android/net/Uri"}, 2),
                "android.permission.WRITE_EXTERNAL_STORAGE"),
        guarded(method("openInputStream", "java/lang/Object",
                       {"android/net/Uri"}, 2),
                "android.permission.READ_EXTERNAL_STORAGE"),
    };
    fw.classes.push_back(std::move(resolver));

    // MediaStore.Images.Media.insertImage calls ContentResolver.insert
    // internally — a *transitive* WRITE_EXTERNAL_STORAGE requirement that
    // first-level analyses miss (paper §III-A advantage 3).
    ClassSpec media =
        cls("android/provider/MediaStore$Images$Media", "java/lang/Object", 2);
    media.methods = {
        static_method(with_calls(
            method("insertImage", "java/lang/String",
                   {"android/content/ContentResolver", "java/lang/String"},
                   2),
            {CallSpec{"android/content/ContentResolver", "insert",
                      "android/net/Uri",
                      {"android/net/Uri", "android/content/ContentValues"},
                      false}})),
        static_method(with_calls(
            method("getBitmap", "java/lang/Object",
                   {"android/content/ContentResolver", "android/net/Uri"}, 2),
            {CallSpec{"android/content/ContentResolver", "openInputStream",
                      "java/lang/Object",
                      {"android/net/Uri"},
                      false}})),
    };
    fw.classes.push_back(std::move(media));

    ClassSpec location =
        cls("android/location/LocationManager", "java/lang/Object", 2);
    location.methods = {
        guarded(method("getLastKnownLocation", "android/location/Location",
                       {"java/lang/String"}, 2),
                "android.permission.ACCESS_FINE_LOCATION"),
        guarded(method("requestLocationUpdates", "V",
                       {"java/lang/String", "J", "F", "java/lang/Object"}, 2),
                "android.permission.ACCESS_FINE_LOCATION"),
        method("isProviderEnabled", "Z", {"java/lang/String"}, 2),
    };
    fw.classes.push_back(std::move(location));

    ClassSpec camera = cls("android/hardware/Camera", "java/lang/Object", 2);
    camera.methods = {
        static_method(guarded(
            method("open", "android/hardware/Camera", {}, 2),
            "android.permission.CAMERA")),
        method("release", "V", {}, 2),
        method("startPreview", "V", {}, 2),
    };
    fw.classes.push_back(std::move(camera));

    ClassSpec recorder =
        cls("android/media/MediaRecorder", "java/lang/Object", 2);
    recorder.methods = {
        method("<init>", "V", {}, 2),
        guarded(method("setAudioSource", "V", {"I"}, 2),
                "android.permission.RECORD_AUDIO"),
        method("prepare", "V", {}, 2),
        method("start", "V", {}, 2),
    };
    fw.classes.push_back(std::move(recorder));

    ClassSpec telephony =
        cls("android/telephony/TelephonyManager", "java/lang/Object", 2);
    telephony.methods = {
        guarded(method("getDeviceId", "java/lang/String", {}, 2),
                "android.permission.READ_PHONE_STATE"),
        guarded(method("getLine1Number", "java/lang/String", {}, 2),
                "android.permission.READ_PHONE_STATE"),
        method("getNetworkType", "I", {}, 2),
    };
    fw.classes.push_back(std::move(telephony));

    ClassSpec sms = cls("android/telephony/SmsManager", "java/lang/Object", 4);
    sms.methods = {
        static_method(
            method("getDefault", "android/telephony/SmsManager", {}, 4)),
        guarded(method("sendTextMessage", "V",
                       {"java/lang/String", "java/lang/String",
                        "java/lang/String"},
                       4),
                "android.permission.SEND_SMS"),
    };
    fw.classes.push_back(std::move(sms));

    ClassSpec contacts =
        cls("android/provider/ContactsContract", "java/lang/Object", 5);
    contacts.methods = {
        static_method(guarded(
            method("queryContacts", "android/database/Cursor",
                   {"android/content/ContentResolver"}, 5),
            "android.permission.READ_CONTACTS")),
    };
    fw.classes.push_back(std::move(contacts));
  }

  // --- forward-compatibility material: a removed class ------------------------
  {
    // Apache HTTP client: bundled since API 8, removed from the platform at
    // API 23 — the real-world source of forward-compatibility crashes.
    ClassSpec http =
        cls("android/net/http/AndroidHttpClient", "java/lang/Object", 8, 23);
    http.methods = {
        static_method(method("newInstance", "android/net/http/AndroidHttpClient",
                             {"java/lang/String"}, 8, 23)),
        method("execute", "java/lang/Object", {"java/lang/String"}, 8, 23),
        method("close", "V", {}, 8, 23),
    };
    fw.classes.push_back(std::move(http));
  }

  // --- misc newer surface -------------------------------------------------------
  {
    ClassSpec notif_builder =
        cls("android/app/Notification$Builder", "java/lang/Object", 11);
    notif_builder.methods = {
        method("<init>", "V", {"android/content/Context"}, 11),
        method("setChannelId", "android/app/Notification$Builder",
               {"java/lang/String"}, 26),
        method("build", "android/app/Notification", {}, 16),
        method("getNotification", "android/app/Notification", {}, 11),
        method("setContentTitle", "android/app/Notification$Builder",
               {"java/lang/String"}, 11),
    };
    fw.classes.push_back(std::move(notif_builder));

    ClassSpec channel =
        cls("android/app/NotificationChannel", "java/lang/Object", 26);
    channel.methods = {
        method("<init>", "V", {"java/lang/String", "java/lang/String", "I"},
               26),
        method("setDescription", "V", {"java/lang/String"}, 26),
    };
    fw.classes.push_back(std::move(channel));

    ClassSpec bluetooth =
        cls("android/bluetooth/BluetoothAdapter", "java/lang/Object", 5);
    bluetooth.methods = {
        static_method(method("getDefaultAdapter",
                             "android/bluetooth/BluetoothAdapter", {}, 5)),
        method("enable", "Z", {}, 5),
        method("startLeScan", "Z", {"java/lang/Object"}, 18),
        method("getBluetoothLeScanner", "java/lang/Object", {}, 21),
    };
    fw.classes.push_back(std::move(bluetooth));

    ClassSpec job_scheduler =
        cls("android/app/job/JobScheduler", "java/lang/Object", 21);
    job_scheduler.methods = {
        method("schedule", "I", {"android/app/job/JobInfo"}, 21),
        method("cancelAll", "V", {}, 21),
    };
    fw.classes.push_back(std::move(job_scheduler));

    ClassSpec strict_mode = cls("android/os/StrictMode", "java/lang/Object", 9);
    strict_mode.methods = {
        static_method(method("enableDefaults", "V", {}, 9)),
    };
    fw.classes.push_back(std::move(strict_mode));

    ClassSpec preference_activity =
        cls("android/preference/PreferenceActivity", "android/app/Activity",
            2);
    preference_activity.methods = {
        method("<init>", "V", {}, 2),
        method("addPreferencesFromResource", "V", {"I"}, 2),
    };
    fw.classes.push_back(std::move(preference_activity));
  }

  // --- widgets ----------------------------------------------------------------
  {
    ClassSpec text_view = cls("android/widget/TextView", "android/view/View", 2);
    text_view.methods = {
        method("<init>", "V", {"android/content/Context"}, 2),
        method("setText", "V", {"java/lang/String"}, 2),
        // The Context-less overload arrived with API 23.
        method("setTextAppearance", "V", {"I"}, 23),
        method("setLetterSpacing", "V", {"F"}, 21),
        method("setAutoSizeTextTypeWithDefaults", "V", {"I"}, 26),
        method("getText", "java/lang/String", {}, 2),
    };
    fw.classes.push_back(std::move(text_view));

    ClassSpec image_view =
        cls("android/widget/ImageView", "android/view/View", 2);
    image_view.methods = {
        method("<init>", "V", {"android/content/Context"}, 2),
        method("setImageDrawable", "V",
               {"android/graphics/drawable/Drawable"}, 2),
        method("setImageTintList", "V",
               {"android/content/res/ColorStateList"}, 21),
    };
    fw.classes.push_back(std::move(image_view));

    ClassSpec toast = cls("android/widget/Toast", "java/lang/Object", 2);
    toast.methods = {
        static_method(method("makeText", "android/widget/Toast",
                             {"android/content/Context", "java/lang/String",
                              "I"},
                             2)),
        method("show", "V", {}, 2),
        method("addCallback", "V", {"java/lang/Object"}, 29),
    };
    fw.classes.push_back(std::move(toast));
  }

  // --- system services ----------------------------------------------------------
  {
    ClassSpec alarms = cls("android/app/AlarmManager", "java/lang/Object", 2);
    alarms.methods = {
        method("set", "V", {"I", "J", "java/lang/Object"}, 2),
        method("setExact", "V", {"I", "J", "java/lang/Object"}, 19),
        method("setExactAndAllowWhileIdle", "V",
               {"I", "J", "java/lang/Object"}, 23),
        method("cancel", "V", {"java/lang/Object"}, 2),
    };
    fw.classes.push_back(std::move(alarms));

    ClassSpec notif_mgr =
        cls("android/app/NotificationManager", "java/lang/Object", 2);
    notif_mgr.methods = {
        method("notify", "V", {"I", "android/app/Notification"}, 2),
        method("cancel", "V", {"I"}, 2),
        method("createNotificationChannel", "V",
               {"android/app/NotificationChannel"}, 26),
        method("getActiveNotifications", "java/lang/Object", {}, 23),
        method("areNotificationsEnabled", "Z", {}, 24),
    };
    fw.classes.push_back(std::move(notif_mgr));

    ClassSpec connectivity =
        cls("android/net/ConnectivityManager", "java/lang/Object", 2);
    connectivity.methods = {
        method("getActiveNetworkInfo", "java/lang/Object", {}, 2),
        method("getActiveNetwork", "java/lang/Object", {}, 23),
        method("registerDefaultNetworkCallback", "V", {"java/lang/Object"},
               24),
    };
    fw.classes.push_back(std::move(connectivity));

    ClassSpec audio = cls("android/media/AudioManager", "java/lang/Object", 2);
    audio.methods = {
        method("requestAudioFocus", "I", {"java/lang/Object"}, 8),
        method("abandonAudioFocusRequest", "I", {"java/lang/Object"}, 26),
        method("setStreamVolume", "V", {"I", "I", "I"}, 2),
    };
    fw.classes.push_back(std::move(audio));

    // BLE scanning requires fine location — a real dangerous-permission
    // fact behind a newer API surface.
    ClassSpec le_scanner = cls("android/bluetooth/le/BluetoothLeScanner",
                               "java/lang/Object", 21);
    le_scanner.methods = {
        guarded(method("startScan", "V", {"java/lang/Object"}, 21),
                "android.permission.ACCESS_FINE_LOCATION"),
        method("stopScan", "V", {"java/lang/Object"}, 21),
    };
    fw.classes.push_back(std::move(le_scanner));

    ClassSpec print_mgr =
        cls("android/print/PrintManager", "java/lang/Object", 19);
    print_mgr.methods = {
        method("print", "java/lang/Object",
               {"java/lang/String", "java/lang/Object"}, 19),
    };
    fw.classes.push_back(std::move(print_mgr));
  }

  // --- plumbing -------------------------------------------------------------------
  {
    ClassSpec handler = cls("android/os/Handler", "java/lang/Object", 2);
    handler.methods = {
        method("<init>", "V", {}, 2),
        method("post", "Z", {"java/lang/Object"}, 2),
        method("postDelayed", "Z", {"java/lang/Object", "J"}, 2),
    };
    fw.classes.push_back(std::move(handler));

    ClassSpec prefs =
        cls("android/content/SharedPreferences", "java/lang/Object", 2);
    prefs.methods = {
        method("getString", "java/lang/String",
               {"java/lang/String", "java/lang/String"}, 2),
        method("edit", "android/content/SharedPreferences$Editor", {}, 2),
    };
    fw.classes.push_back(std::move(prefs));

    ClassSpec editor = cls("android/content/SharedPreferences$Editor",
                           "java/lang/Object", 2);
    editor.methods = {
        method("putString", "android/content/SharedPreferences$Editor",
               {"java/lang/String", "java/lang/String"}, 2),
        method("commit", "Z", {}, 2),
        method("apply", "V", {}, 9),
    };
    fw.classes.push_back(std::move(editor));

    ClassSpec window = cls("android/view/Window", "java/lang/Object", 2);
    window.methods = {
        method("setStatusBarColor", "V", {"I"}, 21),
        method("setNavigationBarColor", "V", {"I"}, 21),
        method("addFlags", "V", {"I"}, 2),
    };
    fw.classes.push_back(std::move(window));

    ClassSpec cookies =
        cls("android/webkit/CookieManager", "java/lang/Object", 2);
    cookies.methods = {
        static_method(method("getInstance", "android/webkit/CookieManager",
                             {}, 2)),
        method("removeAllCookies", "V", {"java/lang/Object"}, 21),
        method("removeAllCookie", "V", {}, 2),
        method("setAcceptThirdPartyCookies", "V",
               {"android/webkit/WebView", "Z"}, 21),
    };
    fw.classes.push_back(std::move(cookies));

    ClassSpec display = cls("android/view/Display", "java/lang/Object", 2);
    display.methods = {
        method("getRealSize", "V", {"java/lang/Object"}, 17),
        method("getWidth", "I", {}, 2),
    };
    fw.classes.push_back(std::move(display));
  }

  // --- more system services (camera2, power, vibration, packages) -------------
  {
    // The camera2 stack arrived at API 21; openCamera needs CAMERA.
    ClassSpec camera2 = cls("android/hardware/camera2/CameraManager",
                            "java/lang/Object", 21);
    camera2.methods = {
        guarded(method("openCamera", "V",
                       {"java/lang/String", "java/lang/Object"}, 21),
                "android.permission.CAMERA"),
        method("getCameraIdList", "java/lang/Object", {}, 21),
        method("getCameraCharacteristics", "java/lang/Object",
               {"java/lang/String"}, 21),
    };
    fw.classes.push_back(std::move(camera2));

    ClassSpec power = cls("android/os/PowerManager", "java/lang/Object", 2);
    power.methods = {
        method("newWakeLock", "java/lang/Object", {"I", "java/lang/String"},
               2),
        method("isInteractive", "Z", {}, 20),
        method("isIgnoringBatteryOptimizations", "Z", {"java/lang/String"},
               23),
    };
    fw.classes.push_back(std::move(power));

    ClassSpec keyguard =
        cls("android/app/KeyguardManager", "java/lang/Object", 2);
    keyguard.methods = {
        method("isKeyguardLocked", "Z", {}, 16),
        method("isDeviceSecure", "Z", {}, 23),
    };
    fw.classes.push_back(std::move(keyguard));

    ClassSpec vibrator = cls("android/os/Vibrator", "java/lang/Object", 2);
    vibrator.methods = {
        method("vibrate", "V", {"J"}, 2),
        // VibrationEffect-based API arrived at 26.
        method("vibrate", "V", {"android/os/VibrationEffect"}, 26),
        method("hasAmplitudeControl", "Z", {}, 26),
        method("cancel", "V", {}, 2),
    };
    fw.classes.push_back(std::move(vibrator));
    fw.classes.push_back(cls("android/os/VibrationEffect",
                             "java/lang/Object", 26));

    ClassSpec activity_mgr =
        cls("android/app/ActivityManager", "java/lang/Object", 2);
    activity_mgr.methods = {
        method("getRunningAppProcesses", "java/lang/Object", {}, 3),
        method("getAppTasks", "java/lang/Object", {}, 21),
        method("isInLockTaskMode", "Z", {}, 21, 23),  // replaced at 23
        method("getLockTaskModeState", "I", {}, 23),
        method("clearApplicationUserData", "Z", {}, 19),
    };
    fw.classes.push_back(std::move(activity_mgr));

    ClassSpec package_mgr =
        cls("android/content/pm/PackageManager", "java/lang/Object", 2);
    package_mgr.methods = {
        method("getPackageInfo", "java/lang/Object",
               {"java/lang/String", "I"}, 2),
        method("hasSystemFeature", "Z", {"java/lang/String"}, 5),
        method("getApplicationInfo", "java/lang/Object",
               {"java/lang/String", "I"}, 2),
    };
    fw.classes.push_back(std::move(package_mgr));

    ClassSpec clipboard =
        cls("android/content/ClipboardManager", "java/lang/Object", 11);
    clipboard.methods = {
        method("setPrimaryClip", "V", {"java/lang/Object"}, 11),
        method("hasPrimaryClip", "Z", {}, 11),
        callback("onPrimaryClipChanged", {}, 11),
    };
    fw.classes.push_back(std::move(clipboard));

    ClassSpec web_settings =
        cls("android/webkit/WebSettings", "java/lang/Object", 2);
    web_settings.methods = {
        method("setJavaScriptEnabled", "V", {"Z"}, 2),
        method("setMixedContentMode", "V", {"I"}, 21),
        method("setSafeBrowsingEnabled", "V", {"Z"}, 26),
    };
    fw.classes.push_back(std::move(web_settings));

    ClassSpec popup = cls("android/widget/PopupMenu", "java/lang/Object", 11);
    popup.methods = {
        method("<init>", "V",
               {"android/content/Context", "android/view/View"}, 11),
        method("show", "V", {}, 11),
        method("setGravity", "V", {"I"}, 19),
        callback("onDismiss", {"android/widget/PopupMenu"}, 14),
    };
    fw.classes.push_back(std::move(popup));

    ClassSpec job_info_builder =
        cls("android/app/job/JobInfo$Builder", "java/lang/Object", 21);
    job_info_builder.methods = {
        method("<init>", "V", {"I", "java/lang/Object"}, 21),
        method("setRequiredNetworkType", "android/app/job/JobInfo$Builder",
               {"I"}, 21),
        method("setRequiresBatteryNotLow", "android/app/job/JobInfo$Builder",
               {"Z"}, 26),
        method("build", "android/app/job/JobInfo", {}, 21),
    };
    fw.classes.push_back(std::move(job_info_builder));

    ClassSpec nfc = cls("android/nfc/NfcAdapter", "java/lang/Object", 9);
    nfc.methods = {
        static_method(method("getDefaultAdapter", "android/nfc/NfcAdapter",
                             {"android/content/Context"}, 10)),
        method("isEnabled", "Z", {}, 9),
        method("enableReaderMode", "V",
               {"android/app/Activity", "java/lang/Object", "I"}, 19),
    };
    fw.classes.push_back(std::move(nfc));

    // Shared-element transitions: callback-bearing surface introduced 21.
    ClassSpec shared_element =
        cls("android/app/SharedElementCallback", "java/lang/Object", 21);
    shared_element.methods = {
        method("<init>", "V", {}, 21),
        callback("onSharedElementStart", {"java/lang/Object"}, 21),
        callback("onSharedElementEnd", {"java/lang/Object"}, 21),
        callback("onMapSharedElements", {"java/lang/Object"}, 21),
    };
    fw.classes.push_back(std::move(shared_element));
  }

  // --- Application-level callbacks ---------------------------------------------
  {
    ClassSpec application =
        cls("android/app/Application", "android/content/ContextWrapper", 2);
    application.methods = {
        method("<init>", "V", {}, 2),
        callback("onCreate", {}, 2),
        callback("onTrimMemory", {"I"}, 14),
        callback("onConfigurationChanged", {"java/lang/Object"}, 2),
        method("registerActivityLifecycleCallbacks", "V",
               {"java/lang/Object"}, 14),
    };
    fw.classes.push_back(std::move(application));
  }
  {
    // Extra Activity callbacks that real apps commonly override.
    ClassSpec* activity = nullptr;
    for (auto& existing : fw.classes)
      if (existing.name == "android/app/Activity") activity = &existing;
    if (activity) {
      activity->methods.push_back(callback("onWindowFocusChanged", {"Z"}, 2));
      activity->methods.push_back(
          callback("onActivityResult",
                   {"I", "I", "android/content/Intent"}, 2));
      activity->methods.push_back(
          callback("onNewIntent", {"android/content/Intent"}, 2));
      activity->methods.push_back(
          callback("onConfigurationChanged", {"java/lang/Object"}, 2));
    }
  }

  // --- semantic-change surface ---------------------------------------------
  // Methods whose *behavior* (not signature) changed across levels; they
  // exist at every modelled level, so the signature detectors stay silent
  // and only the SEM detector (docs/DETECTORS.md) speaks. The rows below
  // mirror real Android facts from the semantic-incompatibility studies in
  // PAPERS.md. These classes carry ONLY semantic-changed methods so the
  // workload catalogs can exclude them wholesale and keep the safe/breadth
  // API pools identical to what they were before the table existed.
  {
    ClassSpec async_task = cls("android/os/AsyncTask", "java/lang/Object", 2);
    async_task.methods = {
        method("<init>", "V", {}, 2),
        method("execute", "android/os/AsyncTask", {"java/lang/Object"}, 2),
    };
    fw.classes.push_back(std::move(async_task));

    ClassSpec wallpaper =
        cls("android/app/WallpaperManager", "java/lang/Object", 2);
    wallpaper.methods = {
        method("getDrawable", "android/graphics/drawable/Drawable", {}, 2),
    };
    fw.classes.push_back(std::move(wallpaper));

    ClassSpec sqlite =
        cls("android/database/sqlite/SQLiteDatabase", "java/lang/Object", 2);
    sqlite.methods = {
        method("query", "android/database/Cursor", {"java/lang/String"}, 2),
    };
    fw.classes.push_back(std::move(sqlite));

    ClassSpec environment =
        cls("android/os/Environment", "java/lang/Object", 2);
    environment.methods = {
        static_method(
            method("getExternalStorageDirectory", "java/io/File", {}, 2)),
    };
    fw.classes.push_back(std::move(environment));

    fw.semantic_changes.push_back(
        {"android/os/AsyncTask", "execute", "android/os/AsyncTask",
         {"java/lang/Object"}, 13, kMaxApiLevel, "threading-change",
         "execute() runs tasks serially on a single background thread since "
         "API 13; parallel-execution assumptions deadlock"});
    fw.semantic_changes.push_back(
        {"android/app/WallpaperManager", "getDrawable",
         "android/graphics/drawable/Drawable", {}, 27, kMaxApiLevel,
         "exception-change",
         "getDrawable() throws SecurityException without "
         "READ_EXTERNAL_STORAGE since API 27"});
    fw.semantic_changes.push_back(
        {"android/database/sqlite/SQLiteDatabase", "query",
         "android/database/Cursor", {"java/lang/String"}, 28, kMaxApiLevel,
         "default-change",
         "write-ahead logging becomes the default journal mode at API 28; "
         "cross-connection read-your-writes assumptions break"});
    fw.semantic_changes.push_back(
        {"android/os/Environment", "getExternalStorageDirectory",
         "java/io/File", {}, 29, 29, "default-change",
         "scoped storage at API 29 makes the returned path unreadable "
         "without legacy-storage opt-out"});
  }

  return fw;
}

}  // namespace saintdroid
