#include "dist/coordinator.hpp"

#include <chrono>
#include <map>
#include <thread>
#include <unordered_map>

#include "support/errors.hpp"
#include "support/meter.hpp"

namespace saintdroid {

WorkQueue plan_work_queue(std::span<const BenchApp> apps,
                          std::span<const std::string> paths,
                          const CoordinatorOptions& options) {
  if (apps.empty())
    throw ConfigError("plan_work_queue: cannot plan an empty corpus");
  if (!paths.empty() && paths.size() != apps.size())
    throw ConfigError("plan_work_queue: " + std::to_string(paths.size()) +
                      " paths for " + std::to_string(apps.size()) + " apps");
  WorkQueue queue;
  queue.corpus = corpus_fingerprint(apps);
  queue.tool = options.tool;
  queue.items.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    WorkItem item;
    item.name = apps[i].apk.name;
    if (!paths.empty()) item.path = paths[i];
    item.cost = estimate_app_cost(apps[i].apk);
    queue.items.push_back(std::move(item));
  }
  const int lease_size = options.lease_size > 0
                             ? options.lease_size
                             : default_lease_size(apps.size());
  queue.leases = plan_leases(queue.items, lease_size);
  return queue;
}

SuperviseOutcome supervise(const WorkDir& dir,
                           const SuperviseOptions& options) {
  SuperviseOutcome outcome;
  const Stopwatch watch;
  const auto poll = std::chrono::milliseconds(std::max<long long>(
      1, static_cast<long long>(options.poll_seconds * 1000.0)));
  // Staleness is observed, not computed from stamps: the monitor reclaims
  // a claim only after its bytes sat unchanged for the TTL on *this*
  // process's steady clock, so wall-clock skew between the coordinator and
  // its workers cannot spuriously reclaim a live lease.
  LeaseMonitor monitor{dir};
  for (;;) {
    outcome.reclaimed += monitor.reclaim_stale(options.ttl_seconds);
    const WorkDirStatus status = dir.status();
    if (status.finished()) {
      outcome.finished = true;
      return outcome;
    }
    if (options.timeout_seconds > 0 &&
        watch.seconds() >= options.timeout_seconds)
      return outcome;
    std::this_thread::sleep_for(poll);
  }
}

CollectResult collect(const WorkDir& dir) {
  const std::optional<WorkQueue> queue = dir.load_queue();
  if (!queue.has_value())
    throw ConfigError("collect: no work queue in " + dir.root());
  const std::vector<std::string> journals = dir.worker_journals();
  if (journals.empty())
    throw ConfigError("collect: no worker journals in " + dir.root());

  CollectResult result;
  result.merge = merge_journals(journals);
  write_journal(dir.merged_journal_path(), result.merge.header,
                result.merge.rows);

  std::unordered_map<std::string, const SuiteAppRow*> by_app;
  by_app.reserve(result.merge.rows.size());
  for (const auto& row : result.merge.rows) by_app.emplace(row.app, &row);

  std::vector<SuiteAppRow> ordered;
  ordered.reserve(queue->items.size());
  for (const auto& item : queue->items) {
    const auto it = by_app.find(item.name);
    if (it == by_app.end())
      throw Error("collect: no journal row for app " + item.name +
                  " — is the work directory finished?");
    ordered.push_back(*it->second);
  }
  result.suite = suite_from_rows(queue->tool, std::move(ordered));

  result.suite.leases_issued = queue->leases.size();
  // std::map, not unordered: worker_lease_counts comes out name-sorted, so
  // reports and bench JSON are deterministic across runs.
  std::map<std::string, int> per_worker;
  for (const LeaseState& state : dir.done_states()) {
    result.suite.leases_reclaimed +=
        static_cast<std::size_t>(state.generation);
    ++per_worker[state.worker.empty() ? std::string{"(unknown)"}
                                      : state.worker];
  }
  result.suite.worker_lease_counts.reserve(per_worker.size());
  for (const auto& [worker, leases] : per_worker)
    result.suite.worker_lease_counts.push_back({worker, leases});
  return result;
}

}  // namespace saintdroid
