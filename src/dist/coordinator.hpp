// The coordinator side of the work-stealing scheduler: plan the queue,
// publish it, supervise the lease lifecycle, collect the merged result.
//
// The coordinator owns no socket and holds no lock while agents run — its
// entire authority is the published queue.sdwq plus the TTL reclaim pass
// it shares with every agent. After publish it is even optional: agents
// reclaim expired leases themselves, so a coordinator that dies mid-run
// costs nothing but the final collect, which any process can redo later
// against the same work directory.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "dist/workdir.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace saintdroid {

struct CoordinatorOptions {
  /// Apps per lease; <= 0 picks default_lease_size(apps.size()).
  int lease_size = 0;
  /// Recorded in the queue and the collected SuiteResult.
  std::string tool = "saintdroid";
};

/// Builds the work queue for `apps`: per-app cost estimates (class count),
/// the largest-cost-first lease plan, and the corpus fingerprint over the
/// *full* list — the same fingerprint a `batch --shard` run of this list
/// would stamp, so work-stealing journals and static-shard journals are
/// mutually merge-checkable. `paths`, when non-empty, must parallel `apps`
/// (paths[i] is where an out-of-process agent loads apps[i]); empty paths
/// leave items resolvable by name only. Throws ConfigError on an empty app
/// list or a paths/apps length mismatch.
WorkQueue plan_work_queue(std::span<const BenchApp> apps,
                          std::span<const std::string> paths,
                          const CoordinatorOptions& options = {});

struct SuperviseOptions {
  /// Claims whose heartbeat is older than this are reclaimed and reissued.
  std::uint64_t ttl_seconds = 60;
  double poll_seconds = 0.1;
  /// Give up after this long; 0 = supervise until finished.
  double timeout_seconds = 0;
};

struct SuperviseOutcome {
  /// Every lease reached done (false only on timeout).
  bool finished = false;
  /// Expired leases this supervisor reissued.
  int reclaimed = 0;
};

/// Coordinator main loop after publish: poll the lease census, reclaim
/// expired claims, return once every lease is done (or timeout elapses).
SuperviseOutcome supervise(const WorkDir& dir,
                           const SuperviseOptions& options = {});

/// collect()'s output: the rebuilt suite plus the journal merge that
/// produced it (duplicates = rows re-executed by reclaims or races;
/// conflicts = determinism violations, never acceptable).
struct CollectResult {
  SuiteResult suite;
  JournalMerge merge;
};

/// Merges every worker journal into merged.jsonl and rebuilds the
/// SuiteResult in queue-item (input) order — the same row order a
/// single-process `run_suite_parallel` over the full list produces, so the
/// differential tests can compare them directly. Lease accounting
/// (leases_issued / leases_reclaimed / per-worker lease counts) is read
/// from the .done files. Throws ConfigError when the directory has no
/// queue or no worker journals, and Error when a queue item has no merged
/// row (the work directory is not finished).
CollectResult collect(const WorkDir& dir);

}  // namespace saintdroid
