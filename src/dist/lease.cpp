#include "dist/lease.hpp"

#include <algorithm>
#include <numeric>

#include "support/bytes.hpp"
#include "support/errors.hpp"
#include "support/sdmc.hpp"

namespace saintdroid {

namespace {

/// Shared container framing: magic + version + checksummed payload, the
/// same defect surface the .sdmc container exposes (and the same fuzz
/// contract: every truncation, flip or splice throws).
std::vector<std::uint8_t> seal_container(std::uint32_t magic,
                                         const ByteWriter& payload) {
  ByteWriter w;
  w.u32(magic);
  w.u32(kDistFormatVersion);
  w.u64(sdmc_checksum(payload.data()));
  w.uleb(payload.size());
  w.bytes(payload.data());
  return w.take();
}

std::vector<std::uint8_t> open_container(std::uint32_t magic,
                                         const char* what,
                                         std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  if (r.u32() != magic) throw ParseError(std::string{what} + ": bad magic");
  if (r.u32() != kDistFormatVersion)
    throw ParseError(std::string{what} + ": unsupported format version");
  const std::uint64_t checksum = r.u64();
  const std::uint64_t size = r.uleb();
  if (size > r.remaining())
    throw ParseError(std::string{what} + ": truncated payload");
  std::vector<std::uint8_t> payload(
      bytes.begin() + static_cast<std::ptrdiff_t>(r.offset()),
      bytes.begin() + static_cast<std::ptrdiff_t>(r.offset() + size));
  if (r.remaining() != size)
    throw ParseError(std::string{what} + ": trailing bytes");
  if (sdmc_checksum(payload) != checksum)
    throw ParseError(std::string{what} + ": payload checksum mismatch");
  return payload;
}

}  // namespace

std::vector<std::uint8_t> WorkQueue::serialize() const {
  ByteWriter p;
  p.str(corpus);
  p.str(tool);
  p.uleb(items.size());
  for (const auto& item : items) {
    p.str(item.name);
    p.str(item.path);
    p.uleb(item.cost);
  }
  p.uleb(leases.size());
  for (const auto& lease : leases) {
    p.uleb(static_cast<std::uint64_t>(lease.id));
    p.uleb(lease.items.size());
    for (const int index : lease.items)
      p.uleb(static_cast<std::uint64_t>(index));
  }
  return seal_container(kWorkQueueMagic, p);
}

WorkQueue WorkQueue::parse(std::span<const std::uint8_t> bytes) {
  const auto payload = open_container(kWorkQueueMagic, "work queue", bytes);
  ByteReader r{payload};
  WorkQueue queue;
  queue.corpus = r.str();
  queue.tool = r.str();
  const std::uint64_t item_count = r.uleb();
  if (item_count > r.remaining())
    throw ParseError("work queue: item count exceeds payload");
  queue.items.reserve(item_count);
  for (std::uint64_t i = 0; i < item_count; ++i) {
    WorkItem item;
    item.name = r.str();
    item.path = r.str();
    item.cost = r.uleb();
    queue.items.push_back(std::move(item));
  }
  const std::uint64_t lease_count = r.uleb();
  if (lease_count > r.remaining())
    throw ParseError("work queue: lease count exceeds payload");
  queue.leases.reserve(lease_count);
  std::vector<char> seen(queue.items.size(), 0);
  for (std::uint64_t l = 0; l < lease_count; ++l) {
    Lease lease;
    lease.id = static_cast<int>(r.uleb());
    const std::uint64_t member_count = r.uleb();
    if (member_count > r.remaining())
      throw ParseError("work queue: lease member count exceeds payload");
    lease.items.reserve(member_count);
    for (std::uint64_t m = 0; m < member_count; ++m) {
      const std::uint64_t index = r.uleb();
      if (index >= queue.items.size())
        throw ParseError("work queue: lease item index out of range");
      if (seen[index])
        throw ParseError("work queue: item leased twice");
      seen[index] = 1;
      lease.items.push_back(static_cast<int>(index));
    }
    queue.leases.push_back(std::move(lease));
  }
  if (r.remaining() != 0)
    throw ParseError("work queue: trailing payload bytes");
  // Every item must be covered by exactly one lease — a queue that leaks
  // apps would silently drop rows from the merged result.
  for (std::size_t i = 0; i < seen.size(); ++i)
    if (!seen[i]) throw ParseError("work queue: item not covered by a lease");
  return queue;
}

std::vector<std::uint8_t> LeaseState::serialize() const {
  ByteWriter p;
  p.uleb(static_cast<std::uint64_t>(lease_id));
  p.uleb(static_cast<std::uint64_t>(generation));
  p.str(worker);
  p.u64(heartbeat);
  return seal_container(kLeaseStateMagic, p);
}

LeaseState LeaseState::parse(std::span<const std::uint8_t> bytes) {
  const auto payload = open_container(kLeaseStateMagic, "lease", bytes);
  ByteReader r{payload};
  LeaseState state;
  state.lease_id = static_cast<int>(r.uleb());
  state.generation = static_cast<int>(r.uleb());
  state.worker = r.str();
  state.heartbeat = r.u64();
  if (r.remaining() != 0) throw ParseError("lease: trailing payload bytes");
  return state;
}

std::uint64_t estimate_app_cost(const Apk& apk) {
  std::uint64_t classes = 0;
  for (const auto& dex : apk.dexes) classes += dex.classes().size();
  return classes == 0 ? 1 : classes;
}

std::vector<Lease> plan_leases(std::span<const WorkItem> items,
                               int lease_size) {
  if (lease_size < 1)
    throw ConfigError("plan_leases: lease size must be >= 1, got " +
                      std::to_string(lease_size));
  std::vector<int> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&items](int a, int b) {
    const auto ca = items[static_cast<std::size_t>(a)].cost;
    const auto cb = items[static_cast<std::size_t>(b)].cost;
    return ca != cb ? ca > cb : a < b;
  });
  std::vector<Lease> leases;
  for (std::size_t begin = 0; begin < order.size();
       begin += static_cast<std::size_t>(lease_size)) {
    Lease lease;
    lease.id = static_cast<int>(leases.size());
    const std::size_t end =
        std::min(order.size(), begin + static_cast<std::size_t>(lease_size));
    lease.items.assign(order.begin() + static_cast<std::ptrdiff_t>(begin),
                       order.begin() + static_cast<std::ptrdiff_t>(end));
    leases.push_back(std::move(lease));
  }
  return leases;
}

int default_lease_size(std::size_t count) {
  // ~32 leases across the corpus keeps the steal granularity fine (the
  // last lease is at most ~3% of the work) without claim-per-app churn.
  const std::size_t size = (count + 31) / 32;
  return static_cast<int>(std::clamp<std::size_t>(size, 1, 64));
}

}  // namespace saintdroid
