// Lease and work-queue formats for the dynamic work-stealing scheduler.
//
// Static `--shard i/N` pins corpus wall-clock to the slowest shard: the
// partition is fixed before anyone knows how long each slice takes, so a
// few library-heavy apps (the Fig. 3 outliers) turn one shard into the
// critical path while the others idle. The dist/ subsystem replaces the
// static partition with *leases*: a coordinator publishes a work queue —
// the full app list plus a largest-cost-first chunking into app-range
// leases — into a shared work directory, and worker agents repeatedly
// claim one lease, analyze its slice, stream the rows into their journal,
// and come back for more. A fast worker simply claims more leases; the
// tail is bounded by one lease, not one shard.
//
// This header defines the two on-disk artifacts (see docs/FORMAT.md):
//
//   * the work queue (`queue.sdwq`) — written once by the coordinator,
//     read by every agent: corpus fingerprint, tool, the per-app work
//     items (name, path, cost estimate) and the lease plan;
//   * the lease state file (`lease-NNNNNN.{open,claim,done}`) — the unit
//     of mutual exclusion. The *name* carries the lease's lifecycle state
//     (claiming is one atomic std::rename), the *bytes* carry telemetry:
//     owning worker, reclaim generation, last heartbeat.
//
// Both are checksummed containers in the sdmc mold: the parse functions
// throw ParseError on every defect — bad magic, version skew, truncation,
// checksum mismatch, trailing bytes — and never load a damaged file
// silently. A corrupt lease file is *reclaimed* (the queue, not the lease
// file, is the source of truth for which apps a lease covers); a corrupt
// queue is fatal for the whole work directory.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "workload/benchmarks.hpp"

namespace saintdroid {

inline constexpr std::uint32_t kWorkQueueMagic = 0x51574453;   // "SDWQ"
inline constexpr std::uint32_t kLeaseStateMagic = 0x534C4453;  // "SDLS"

/// Format version shared by both containers. Bumped on any incompatible
/// change; a mismatched file fails to parse and the run fails loudly
/// (agents and coordinators of different builds must not share a workdir).
inline constexpr std::uint32_t kDistFormatVersion = 1;

/// One app of the work queue, in full-list input order.
struct WorkItem {
  /// Unique app name — the journal row / merge key.
  std::string name;
  /// Where an out-of-process agent finds the package (as given to the
  /// coordinator; empty for in-process runs that resolve by name).
  std::string path;
  /// Scheduling cost estimate (estimate_app_cost). Never affects results,
  /// only lease sizing and issue order.
  std::uint64_t cost = 1;
};

/// One lease: a set of work-item indices analyzed as a unit.
struct Lease {
  int id = 0;
  std::vector<int> items;  ///< indices into WorkQueue::items
};

/// The published work queue: everything an agent needs to turn a claimed
/// lease id into analyzable apps and mergeable journal rows.
struct WorkQueue {
  /// corpus_fingerprint over the *full* app list, in items order — every
  /// journal written against this queue carries it, so merge-journals
  /// refuses rows from a different corpus exactly as it does for shards.
  std::string corpus;
  std::string tool;
  std::vector<WorkItem> items;
  /// Largest-cost-first: leases[0] holds the most expensive apps, the last
  /// lease the cheapest — so the final lease to finish is never a monster.
  std::vector<Lease> leases;

  std::vector<std::uint8_t> serialize() const;
  /// Throws ParseError on any defect; never partially loads.
  static WorkQueue parse(std::span<const std::uint8_t> bytes);
};

/// Contents of one lease state file. The lifecycle state (open / claimed /
/// done) lives in the file *name*; these bytes identify the lease and
/// carry ownership telemetry.
struct LeaseState {
  int lease_id = 0;
  /// How many times this lease has been reclaimed from an expired or
  /// crashed claimant and reissued. Summed into
  /// SuiteResult::leases_reclaimed by the coordinator's collect().
  int generation = 0;
  /// Claiming worker; empty while open.
  std::string worker;
  /// Unix seconds of the last heartbeat (issue time while open). An agent
  /// refreshes it while analyzing; reclaim fires when now exceeds it by
  /// the lease TTL.
  std::uint64_t heartbeat = 0;

  std::vector<std::uint8_t> serialize() const;
  /// Throws ParseError on any defect (reclaim treats that as "expired").
  static LeaseState parse(std::span<const std::uint8_t> bytes);
};

/// Scheduling cost estimate for one app: its class count (the quantity
/// analysis work scales with — every analyzed class is materialized,
/// hierarchy-linked and walked), floored at 1 so empty apps still
/// schedule. Deliberately cheap and deterministic; it orders leases, it
/// never changes any analysis result.
std::uint64_t estimate_app_cost(const Apk& apk);

/// Chunks item indices {0..items.size()-1} into leases of at most
/// `lease_size` apps, ordered largest-cost-first: indices are sorted by
/// descending cost (ties by ascending index, so the plan is deterministic)
/// and cut into consecutive chunks. Claiming in lease-id order therefore
/// issues the most expensive work first — the classic LPT heuristic that
/// keeps the makespan tail short. Throws ConfigError when lease_size < 1.
std::vector<Lease> plan_leases(std::span<const WorkItem> items,
                               int lease_size);

/// Default lease size for `count` apps: small enough that the last lease
/// cannot dominate the makespan (many steal opportunities), large enough
/// to amortize per-lease claim/journal overhead.
int default_lease_size(std::size_t count);

}  // namespace saintdroid
