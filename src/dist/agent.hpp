// The worker side of the work-stealing scheduler: claim a lease, analyze
// its apps through the ordinary journaled suite harness, mark it done, ask
// for more. An agent is just a loop around primitives that already exist —
// WorkDir::claim_next for mutual exclusion, run_suite_parallel for the
// analysis (warm FrameworkSubstrate + ModelCache, per-app fault isolation,
// crash-safe journal), WorkDir::complete for the done marker. One agent
// with jobs=N uses the same in-process fan-out as `batch --jobs N`; many
// agents on one work directory — threads, processes, hosts on a shared
// filesystem — steal from the same queue without coordinating with each
// other at all.
//
// Crash story: an agent that dies mid-lease leaves a claim file whose
// heartbeat goes stale; any surviving agent (or the coordinator) reclaims
// it after the TTL and the lease is re-analyzed. Rows the dead agent
// already journaled are not lost — they dedup byte-identically against the
// re-run's rows at merge time. An agent that *stalls* (not dies) keeps
// journaling too; same dedup argument. Nothing is ever lost, at worst work
// is repeated — at-least-once delivery on top of a deterministic analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "dist/workdir.hpp"
#include "workload/harness.hpp"

namespace saintdroid {

/// Turns one queue item into an analyzable app. In-process agents (tests,
/// benches) resolve item.name against an already-loaded corpus; the CLI
/// `work` command parses item.path from disk. Must be pure: every
/// execution of a lease must see the same app bytes.
using AppResolver = std::function<BenchApp(const WorkItem&)>;

struct AgentOptions {
  /// Unique agent identity: names the claim owner and the agent's journal
  /// (journal-<worker>.jsonl). Two live agents must never share a name —
  /// they would interleave one journal. A *restarted* agent reusing its
  /// predecessor's name is fine (the journal resumes).
  std::string worker;
  /// In-process analysis fan-out per lease; <= 0 resolves to
  /// hardware concurrency, exactly like `batch --jobs 0`.
  int jobs = 1;
  /// Claims whose heartbeat is older than this are reclaimed.
  std::uint64_t ttl_seconds = 60;
  /// Idle wait between claim attempts when other agents hold every lease,
  /// and between queue-existence polls before the coordinator publishes.
  double poll_seconds = 0.05;
  /// How long to wait for queue.sdwq to appear before giving up (an agent
  /// may legitimately start before its coordinator).
  double queue_wait_seconds = 10.0;
  /// Stop after completing (or losing) this many leases; 0 = run until the
  /// work directory is finished. The kill-a-worker tests use 1.
  int max_leases = 0;
  AppResolver resolve;
  AnalyzerFactory factory;
  /// Forwarded into SuiteRunOptions: on-disk model cache binding.
  std::string model_cache_dir;
  const FrameworkRepository* repository = nullptr;
  /// Per-lease warmup, called with the lease's slice before its fan-out.
  std::function<void(std::span<const BenchApp>)> warmup;
  /// Graceful-shutdown probe (e.g. shutdown_requested), polled before each
  /// claim and between the apps of the running lease. Once true, the agent
  /// finishes its in-flight app, seals its journal, leaves the current
  /// claim unmarked (the heartbeat stops, so survivors reclaim it after
  /// the TTL — or a restarted agent of the same name resumes it), and
  /// returns with AgentResult::interrupted set. Must be thread-safe.
  std::function<bool()> interrupted;
};

struct AgentResult {
  /// Effective in-process jobs after resolving jobs <= 0.
  int jobs = 1;
  int leases_completed = 0;
  /// Leases fully analyzed whose claim had been reclaimed before
  /// complete() — the rows still count, they dedup at merge.
  int leases_lost = 0;
  /// Expired claims this agent reissued for others (or itself) to re-claim.
  int leases_reclaimed = 0;
  std::size_t apps_analyzed = 0;
  /// Rows merged back from this agent's own journal instead of re-analyzed
  /// (only re-executions of a reclaimed lease have any).
  std::size_t rows_resumed = 0;
  std::uint64_t framework_retries = 0;
  /// The loop stopped because AgentOptions::interrupted fired. The journal
  /// is sealed; rows already analyzed are on disk.
  bool interrupted = false;
};

/// Runs the agent loop until the work directory is finished (every lease
/// done), max_leases is reached, or no queue appears within
/// queue_wait_seconds (ConfigError). Throws ConfigError on missing
/// worker/resolve/factory.
AgentResult run_agent(const WorkDir& dir, const AgentOptions& options);

}  // namespace saintdroid
