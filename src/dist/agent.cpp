#include "dist/agent.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "support/errors.hpp"
#include "support/thread_pool.hpp"

namespace saintdroid {

namespace {

std::chrono::milliseconds to_ms(double seconds) {
  return std::chrono::milliseconds(
      std::max<long long>(1, static_cast<long long>(seconds * 1000.0)));
}

/// Background heartbeat for one held claim: refreshes the claim file every
/// ttl/3 seconds (floored at 1s) so a healthy-but-slow lease — one monster
/// app — is not reclaimed out from under its owner. Stamps come from the
/// writer's *steady* clock: observers judge liveness by the bytes changing
/// (LeaseMonitor), not by comparing the stamp against their own clock, so
/// an NTP step on either host can neither expire nor immortalize a claim.
/// RAII: the destructor stops the thread even when the analysis throws, so
/// a dying agent stops heartbeating and its claim expires on schedule.
class HeartbeatLoop {
 public:
  HeartbeatLoop(const WorkDir& dir, const ClaimedLease& claim,
                std::uint64_t ttl_seconds)
      : thread_([this, &dir, claim, ttl_seconds] {
          const auto interval =
              std::chrono::seconds(std::max<std::uint64_t>(
                  1, ttl_seconds / 3));
          std::unique_lock lock{mutex_};
          while (!cv_.wait_for(lock, interval, [this] { return stop_; }))
            dir.heartbeat(claim, WorkDir::steady_seconds());
        }) {}

  ~HeartbeatLoop() { stop(); }

  void stop() {
    {
      std::lock_guard lock{mutex_};
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;  // last member: starts only after the state exists
};

}  // namespace

AgentResult run_agent(const WorkDir& dir, const AgentOptions& options) {
  if (options.worker.empty())
    throw ConfigError("run_agent: worker name must not be empty");
  if (!options.resolve)
    throw ConfigError("run_agent: an app resolver is required");
  if (!options.factory)
    throw ConfigError("run_agent: an analyzer factory is required");

  const auto poll = to_ms(options.poll_seconds);

  // The queue may not be published yet — agents are allowed to start
  // before their coordinator. Poll briefly, then fail loudly.
  std::optional<WorkQueue> queue = dir.load_queue();
  const auto queue_deadline =
      std::chrono::steady_clock::now() + to_ms(options.queue_wait_seconds);
  while (!queue.has_value()) {
    if (std::chrono::steady_clock::now() >= queue_deadline)
      throw ConfigError("run_agent: no work queue published in " +
                        dir.root());
    std::this_thread::sleep_for(poll);
    queue = dir.load_queue();
  }

  AgentResult result;
  result.jobs = options.jobs <= 0
                    ? static_cast<int>(ThreadPool::default_workers())
                    : options.jobs;

  // One staleness observer for the whole agent loop: ttl windows are
  // measured on this agent's steady clock across its idle passes.
  LeaseMonitor monitor{dir};

  for (;;) {
    if (options.max_leases > 0 &&
        result.leases_completed + result.leases_lost >= options.max_leases)
      break;
    if (options.interrupted && options.interrupted()) {
      result.interrupted = true;
      break;
    }

    const std::optional<ClaimedLease> claim =
        dir.claim_next(options.worker, WorkDir::steady_seconds());
    if (!claim.has_value()) {
      // Nothing open. Reclaim what went stale (this is what makes the
      // scheduler survive the coordinator itself dying after publish),
      // then either finish or wait for the agents holding claims.
      result.leases_reclaimed +=
          monitor.reclaim_stale(options.ttl_seconds);
      const WorkDirStatus status = dir.status();
      if (status.finished() || status.total() == 0) break;
      if (status.open == 0) std::this_thread::sleep_for(poll);
      continue;
    }

    const Lease* lease = nullptr;
    for (const auto& candidate : queue->leases)
      if (candidate.id == claim->lease_id) {
        lease = &candidate;
        break;
      }
    if (lease == nullptr) {
      // A lease file with no queue entry cannot assign work; retire it so
      // it stops circulating through claim/reclaim forever.
      dir.complete(*claim);
      continue;
    }

    std::vector<BenchApp> slice;
    slice.reserve(lease->items.size());
    for (const int index : lease->items)
      slice.push_back(
          options.resolve(queue->items[static_cast<std::size_t>(index)]));

    SuiteRunOptions run;
    run.jobs = result.jobs;
    run.journal_path = dir.worker_journal_path(options.worker);
    // Always resume against our own journal: leases append to one file,
    // and a re-claimed lease skips the apps its first execution already
    // journaled instead of re-analyzing them.
    run.resume = true;
    run.corpus_id = queue->corpus;
    run.model_cache_dir = options.model_cache_dir;
    run.repository = options.repository;
    run.stop = options.interrupted;
    if (options.warmup) {
      const auto& warmup = options.warmup;
      run.warmup = [&warmup, &slice] {
        warmup(std::span<const BenchApp>{slice});
      };
    }

    HeartbeatLoop heartbeat{dir, *claim, options.ttl_seconds};
    const SuiteResult suite =
        run_suite_parallel(options.factory, slice, run);
    heartbeat.stop();

    result.apps_analyzed += suite.rows.size() - suite.resumed_rows;
    result.rows_resumed += suite.resumed_rows;
    result.framework_retries += suite.framework_retries;
    if (suite.skipped_rows > 0) {
      // Interrupted mid-lease: everything analyzed is journaled and the
      // journal is sealed, but the lease is not done. Leave the claim for
      // the TTL reclaim (or our own restart) and stop cleanly.
      result.interrupted = true;
      break;
    }
    // complete() only after run_suite_parallel returned — every row of the
    // lease is journaled (flushed per row) before the done marker exists.
    if (dir.complete(*claim))
      ++result.leases_completed;
    else
      ++result.leases_lost;
  }

  return result;
}

}  // namespace saintdroid
