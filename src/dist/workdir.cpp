#include "dist/workdir.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>

#include "support/errors.hpp"
#include "support/sdmc.hpp"

namespace saintdroid {

namespace fs = std::filesystem;

namespace {

constexpr const char* kQueueFile = "queue.sdwq";
constexpr const char* kLeaseDir = "leases";

/// lease-NNNNNN — zero-padded so directory iteration order is id order.
std::string lease_stem(int lease_id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "lease-%06d", lease_id);
  return buf;
}

/// Parses "lease-NNNNNN.<state>" back to an id; nullopt for foreign files.
std::optional<int> lease_id_of(const fs::path& path, const char* state) {
  if (path.extension() != state) return std::nullopt;
  const std::string stem = path.stem().string();
  if (stem.rfind("lease-", 0) != 0) return std::nullopt;
  const std::string digits = stem.substr(6);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  return std::stoi(digits);
}

/// Sorted ids of every lease file currently in `state` (".open", ...).
std::vector<int> ids_in_state(const std::string& lease_dir,
                              const char* state) {
  std::vector<int> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator{lease_dir, ec}) {
    if (const auto id = lease_id_of(entry.path(), state)) ids.push_back(*id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

WorkDir::WorkDir(std::string root) : root_(std::move(root)) {}

std::string WorkDir::queue_path() const { return root_ + "/" + kQueueFile; }

std::string WorkDir::merged_journal_path() const {
  return root_ + "/merged.jsonl";
}

std::string WorkDir::worker_journal_path(const std::string& worker) const {
  return root_ + "/journal-" + worker + ".jsonl";
}

std::string WorkDir::lease_path(int lease_id, const char* state) const {
  return root_ + "/" + kLeaseDir + "/" + lease_stem(lease_id) + state;
}

void WorkDir::publish(const WorkQueue& queue, std::uint64_t now) const {
  ensure_directory(root_);
  ensure_directory(root_ + "/" + kLeaseDir);
  if (const auto existing = load_queue()) {
    if (existing->corpus != queue.corpus)
      throw ConfigError("workdir " + root_ + " already holds corpus \"" +
                        existing->corpus + "\", refusing to publish corpus \"" +
                        queue.corpus + "\" into it");
    // Same corpus: a coordinator re-run. Keep the existing queue (lease
    // ids must stay stable against claim/done files already on disk) and
    // only fill in lease files that are missing in every state.
  } else {
    write_file_atomic(queue_path(), queue.serialize());
  }
  for (const auto& lease : queue.leases) {
    std::error_code ec;
    if (fs::exists(lease_path(lease.id, ".open"), ec) ||
        fs::exists(lease_path(lease.id, ".claim"), ec) ||
        fs::exists(lease_path(lease.id, ".done"), ec))
      continue;
    LeaseState state;
    state.lease_id = lease.id;
    state.heartbeat = now;
    write_file_atomic(lease_path(lease.id, ".open"), state.serialize());
  }
}

std::optional<WorkQueue> WorkDir::load_queue() const {
  const auto bytes = read_file_bytes(queue_path());
  if (!bytes.has_value()) return std::nullopt;
  return WorkQueue::parse(*bytes);
}

std::optional<ClaimedLease> WorkDir::claim_next(const std::string& worker,
                                                std::uint64_t now) const {
  for (const int id : ids_in_state(root_ + "/" + kLeaseDir, ".open")) {
    const std::string open = lease_path(id, ".open");
    const std::string claim = lease_path(id, ".claim");
    // One atomic rename decides ownership: the loser's rename fails (the
    // source is gone) and it simply tries the next open lease.
    if (std::rename(open.c_str(), claim.c_str()) != 0) continue;
    // Stamp the claim with the owner and claim time. The rename already
    // made us the sole owner, so the window where the file still carries
    // the issue-time bytes only matters to an aggressive reclaimer with a
    // TTL shorter than this write — which re-issues, never corrupts.
    LeaseState state;
    state.lease_id = id;
    state.worker = worker;
    state.heartbeat = now;
    if (const auto bytes = read_file_bytes(claim)) {
      try {
        const LeaseState previous = LeaseState::parse(*bytes);
        // A freshly published lease carries an empty worker; a non-empty
        // one means reclaim_expired renamed a stale claim back to open,
        // and this claim is its reissue — count the generation here, where
        // the bump is raced by nobody (we own the file).
        state.generation = previous.generation +
                           (previous.worker.empty() ? 0 : 1);
      } catch (const ParseError&) {
        // Corrupt lease bytes are claimable anyway — the queue, not the
        // lease file, defines which apps the lease covers. It was on disk
        // before us, so conservatively count one reclaim.
        state.generation = 1;
      }
    }
    write_file_atomic(claim, state.serialize());
    return ClaimedLease{id, state.generation, worker};
  }
  return std::nullopt;
}

bool WorkDir::heartbeat(const ClaimedLease& claim, std::uint64_t now) const {
  const std::string path = lease_path(claim.lease_id, ".claim");
  std::error_code ec;
  if (!fs::exists(path, ec)) return false;
  LeaseState state;
  state.lease_id = claim.lease_id;
  state.generation = claim.generation;
  state.worker = claim.worker;
  state.heartbeat = now;
  write_file_atomic(path, state.serialize());
  return true;
}

bool WorkDir::complete(const ClaimedLease& claim) const {
  const std::string from = lease_path(claim.lease_id, ".claim");
  const std::string to = lease_path(claim.lease_id, ".done");
  return std::rename(from.c_str(), to.c_str()) == 0;
}

int WorkDir::reclaim_expired(std::uint64_t ttl_seconds,
                             std::uint64_t now) const {
  int reclaimed = 0;
  for (const int id : ids_in_state(root_ + "/" + kLeaseDir, ".claim")) {
    const std::string claim = lease_path(id, ".claim");
    std::error_code ec;
    if (fs::exists(lease_path(id, ".done"), ec)) {
      // A duplicate execution already finished this lease; the stale
      // claim is garbage, not work.
      std::remove(claim.c_str());
      continue;
    }
    bool expired = false;
    if (const auto bytes = read_file_bytes(claim)) {
      try {
        const LeaseState state = LeaseState::parse(*bytes);
        expired = now >= state.heartbeat &&
                  now - state.heartbeat >= ttl_seconds;
      } catch (const ParseError&) {
        // Corrupt claim: its owner and heartbeat are unknowable, so it is
        // reclaimed immediately — never trusted, never crashed on.
        expired = true;
      }
    } else {
      continue;  // vanished under us (completed or already reclaimed)
    }
    if (!expired) continue;
    // One atomic rename both retires the stale claim and reissues the
    // lease — there is no window where a fresh claimant's file can be
    // deleted by this reclaim. The stale bytes ride along; the next
    // claimant reads the non-empty worker field as "this was reclaimed"
    // and bumps the generation. If the original owner raced us to
    // complete(), our rename finds no source and reclaims nothing.
    if (std::rename(claim.c_str(), lease_path(id, ".open").c_str()) == 0)
      ++reclaimed;
  }
  return reclaimed;
}

WorkDirStatus WorkDir::status() const {
  const std::string dir = root_ + "/" + kLeaseDir;
  WorkDirStatus status;
  std::vector<char> seen_done;
  for (const int id : ids_in_state(dir, ".done")) {
    if (static_cast<std::size_t>(id) >= seen_done.size())
      seen_done.resize(static_cast<std::size_t>(id) + 1, 0);
    seen_done[static_cast<std::size_t>(id)] = 1;
    ++status.done;
  }
  const auto undone = [&seen_done](int id) {
    return static_cast<std::size_t>(id) >= seen_done.size() ||
           !seen_done[static_cast<std::size_t>(id)];
  };
  // A lease with a done marker is done, whatever stale open/claim files a
  // crashed reclaimer or zombie heartbeat left behind.
  for (const int id : ids_in_state(dir, ".open"))
    if (undone(id)) ++status.open;
  for (const int id : ids_in_state(dir, ".claim"))
    if (undone(id)) ++status.claimed;
  return status;
}

std::vector<LeaseState> WorkDir::done_states() const {
  std::vector<LeaseState> states;
  for (const int id : ids_in_state(root_ + "/" + kLeaseDir, ".done")) {
    const auto bytes = read_file_bytes(lease_path(id, ".done"));
    if (!bytes.has_value()) continue;
    try {
      states.push_back(LeaseState::parse(*bytes));
    } catch (const ParseError&) {
      // Telemetry only — the rows live in the journals; a corrupt done
      // marker costs per-worker accounting for this lease, nothing more.
      LeaseState unknown;
      unknown.lease_id = id;
      states.push_back(unknown);
    }
  }
  return states;
}

std::vector<std::string> WorkDir::worker_journals() const {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator{root_, ec}) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("journal-", 0) == 0 &&
        entry.path().extension() == ".jsonl")
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::uint64_t WorkDir::now_seconds() {
  return static_cast<std::uint64_t>(std::time(nullptr));
}

std::uint64_t WorkDir::steady_seconds() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int LeaseMonitor::reclaim_stale(std::uint64_t ttl_seconds) {
  int reclaimed = 0;
  const std::uint64_t now = WorkDir::steady_seconds();
  for (const int id :
       ids_in_state(dir_->root_ + "/" + kLeaseDir, ".claim")) {
    const std::string claim = dir_->lease_path(id, ".claim");
    std::error_code ec;
    if (fs::exists(dir_->lease_path(id, ".done"), ec)) {
      // A duplicate execution already finished this lease; the stale claim
      // is garbage, not work.
      std::remove(claim.c_str());
      seen_.erase(id);
      continue;
    }
    const auto bytes = read_file_bytes(claim);
    if (!bytes.has_value()) {
      // Vanished under us (completed or reclaimed by another observer).
      seen_.erase(id);
      continue;
    }
    bool expired = false;
    try {
      (void)LeaseState::parse(*bytes);
      std::string current(bytes->begin(), bytes->end());
      Observation& obs = seen_[id];
      if (obs.bytes != current) {
        // New or changed bytes: the owner is (or was recently) alive.
        // Restart this claim's ttl window on *our* clock.
        obs.bytes = std::move(current);
        obs.first_seen = now;
      }
      expired = now - obs.first_seen >= ttl_seconds;
    } catch (const ParseError&) {
      // Corrupt claim: its owner and heartbeat are unknowable, so it is
      // reclaimed immediately — never trusted, never crashed on.
      expired = true;
    }
    if (!expired) continue;
    // Same atomic retire-and-reissue as reclaim_expired: one rename, no
    // window where a fresh claimant's file can be deleted by this reclaim.
    if (std::rename(claim.c_str(),
                    dir_->lease_path(id, ".open").c_str()) == 0) {
      ++reclaimed;
      seen_.erase(id);
    }
  }
  return reclaimed;
}

}  // namespace saintdroid
