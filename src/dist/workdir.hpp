// The shared work directory: the wire protocol of the work-stealing
// scheduler, with the filesystem as the only transport.
//
// Layout under one root (local disk, NFS, a container volume — anything
// whose rename is atomic):
//
//   queue.sdwq                   the published WorkQueue (write-once)
//   leases/lease-NNNNNN.open     unclaimed lease NNNNNN
//   leases/lease-NNNNNN.claim    claimed, owner + heartbeat inside
//   leases/lease-NNNNNN.done     completed (every row journaled first)
//   journal-<worker>.jsonl       one schema-2 suite journal per worker
//   merged.jsonl                 the coordinator's collected output
//
// The protocol rides entirely on rename atomicity (the same primitive the
// .sdmc cache uses for concurrent shard writers):
//
//   claim     rename(open -> claim): exactly one claimant wins; the loser's
//             rename fails and it moves on to the next lease.
//   complete  rename(claim -> done), only *after* the worker's journal has
//             flushed every row of the lease — so a done marker always has
//             its rows on disk.
//   reclaim   a claim whose heartbeat is older than the TTL (or whose
//             bytes no longer parse) is reissued by rename(claim -> open):
//             one atomic op retires the stale claim and republishes the
//             lease. The stale bytes ride along; the next claimant sees
//             the non-empty worker field and bumps the generation.
//
// Reclaim is deliberately at-least-once: a stalled-but-alive worker whose
// lease was reclaimed keeps analyzing and journaling. That is safe because
// analysis is deterministic — both executions journal byte-identical
// canonical rows, which merge-journals deduplicates silently; any
// divergence would surface as a loud MergeConflict. What can never happen
// is two workers *claiming* one lease file (rename picks one winner) or a
// corrupt lease silently assigning work (parse failures throw, and the
// reclaim path treats them as expired).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dist/lease.hpp"

namespace saintdroid {

/// A successfully claimed lease, held by an agent while it analyzes.
struct ClaimedLease {
  int lease_id = 0;
  int generation = 0;
  std::string worker;
};

/// Lease lifecycle census across the directory.
struct WorkDirStatus {
  int open = 0;
  int claimed = 0;
  int done = 0;

  int total() const { return open + claimed + done; }
  bool finished() const { return open == 0 && claimed == 0 && done > 0; }
};

class WorkDir {
 public:
  explicit WorkDir(std::string root);

  const std::string& root() const { return root_; }
  std::string queue_path() const;
  std::string merged_journal_path() const;
  std::string worker_journal_path(const std::string& worker) const;

  /// Publishes `queue` and one .open file per lease. Idempotent and
  /// crash-safe: an existing queue with the same corpus fingerprint is
  /// kept as-is (a re-run coordinator resumes supervision; claim/done
  /// state survives), a different corpus throws ConfigError — two corpora
  /// must never share a work directory. Lease files that already exist in
  /// any state are left untouched.
  void publish(const WorkQueue& queue, std::uint64_t now) const;

  /// Loads the published queue; nullopt while the coordinator has not
  /// published yet. A corrupt queue throws ParseError — the queue is the
  /// source of truth and cannot be reclaimed, only republished.
  std::optional<WorkQueue> load_queue() const;

  /// Claims the lowest-id open lease (largest remaining cost, since the
  /// plan is largest-cost-first) via one atomic rename, stamps it with
  /// `worker` and `now`, and returns it. nullopt when nothing is open.
  /// Racing claimants are safe: rename picks exactly one winner per file.
  std::optional<ClaimedLease> claim_next(const std::string& worker,
                                         std::uint64_t now) const;

  /// Refreshes the claim's heartbeat. Returns false when the claim file is
  /// gone (completed by a racing duplicate, or reclaimed and reissued) —
  /// the caller keeps analyzing regardless; its rows dedup at merge.
  bool heartbeat(const ClaimedLease& claim, std::uint64_t now) const;

  /// Marks the lease done (rename claim -> done). Returns false when the
  /// claim file vanished — the lease was reclaimed; the caller's journal
  /// rows still count, they just dedup against the reissued run's.
  bool complete(const ClaimedLease& claim) const;

  /// Reissues every claimed lease whose heartbeat is older than
  /// `ttl_seconds` (or whose claim bytes are corrupt) via one atomic
  /// rename(claim -> open); the next claimant bumps the generation.
  /// Returns the number of leases reclaimed. Any process may call this —
  /// agents do, when they find nothing open, which is what makes the
  /// scheduler coordinator-optional after publish.
  int reclaim_expired(std::uint64_t ttl_seconds, std::uint64_t now) const;

  WorkDirStatus status() const;

  /// Final per-lease states, read from the .done files (id-ordered):
  /// which worker completed each lease and how many reclaims it survived.
  std::vector<LeaseState> done_states() const;

  /// Every journal-<worker>.jsonl in the directory, sorted by path.
  std::vector<std::string> worker_journals() const;

  /// Unix-epoch seconds — the shared clock of the heartbeat/TTL protocol
  /// (workers may live on different hosts, so steady_clock cannot serve).
  static std::uint64_t now_seconds();

 private:
  std::string lease_path(int lease_id, const char* state) const;

  std::string root_;
};

}  // namespace saintdroid
