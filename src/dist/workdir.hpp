// The shared work directory: the wire protocol of the work-stealing
// scheduler, with the filesystem as the only transport.
//
// Layout under one root (local disk, NFS, a container volume — anything
// whose rename is atomic):
//
//   queue.sdwq                   the published WorkQueue (write-once)
//   leases/lease-NNNNNN.open     unclaimed lease NNNNNN
//   leases/lease-NNNNNN.claim    claimed, owner + heartbeat inside
//   leases/lease-NNNNNN.done     completed (every row journaled first)
//   journal-<worker>.jsonl       one schema-2 suite journal per worker
//   merged.jsonl                 the coordinator's collected output
//
// The protocol rides entirely on rename atomicity (the same primitive the
// .sdmc cache uses for concurrent shard writers):
//
//   claim     rename(open -> claim): exactly one claimant wins; the loser's
//             rename fails and it moves on to the next lease.
//   complete  rename(claim -> done), only *after* the worker's journal has
//             flushed every row of the lease — so a done marker always has
//             its rows on disk.
//   reclaim   a claim whose heartbeat is older than the TTL (or whose
//             bytes no longer parse) is reissued by rename(claim -> open):
//             one atomic op retires the stale claim and republishes the
//             lease. The stale bytes ride along; the next claimant sees
//             the non-empty worker field and bumps the generation.
//
// Reclaim is deliberately at-least-once: a stalled-but-alive worker whose
// lease was reclaimed keeps analyzing and journaling. That is safe because
// analysis is deterministic — both executions journal byte-identical
// canonical rows, which merge-journals deduplicates silently; any
// divergence would surface as a loud MergeConflict. What can never happen
// is two workers *claiming* one lease file (rename picks one winner) or a
// corrupt lease silently assigning work (parse failures throw, and the
// reclaim path treats them as expired).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dist/lease.hpp"

namespace saintdroid {

/// A successfully claimed lease, held by an agent while it analyzes.
struct ClaimedLease {
  int lease_id = 0;
  int generation = 0;
  std::string worker;
};

/// Lease lifecycle census across the directory.
struct WorkDirStatus {
  int open = 0;
  int claimed = 0;
  int done = 0;

  int total() const { return open + claimed + done; }
  bool finished() const { return open == 0 && claimed == 0 && done > 0; }
};

class WorkDir {
 public:
  explicit WorkDir(std::string root);

  const std::string& root() const { return root_; }
  std::string queue_path() const;
  std::string merged_journal_path() const;
  std::string worker_journal_path(const std::string& worker) const;

  /// Publishes `queue` and one .open file per lease. Idempotent and
  /// crash-safe: an existing queue with the same corpus fingerprint is
  /// kept as-is (a re-run coordinator resumes supervision; claim/done
  /// state survives), a different corpus throws ConfigError — two corpora
  /// must never share a work directory. Lease files that already exist in
  /// any state are left untouched.
  void publish(const WorkQueue& queue, std::uint64_t now) const;

  /// Loads the published queue; nullopt while the coordinator has not
  /// published yet. A corrupt queue throws ParseError — the queue is the
  /// source of truth and cannot be reclaimed, only republished.
  std::optional<WorkQueue> load_queue() const;

  /// Claims the lowest-id open lease (largest remaining cost, since the
  /// plan is largest-cost-first) via one atomic rename, stamps it with
  /// `worker` and `now`, and returns it. nullopt when nothing is open.
  /// Racing claimants are safe: rename picks exactly one winner per file.
  std::optional<ClaimedLease> claim_next(const std::string& worker,
                                         std::uint64_t now) const;

  /// Refreshes the claim's heartbeat. Returns false when the claim file is
  /// gone (completed by a racing duplicate, or reclaimed and reissued) —
  /// the caller keeps analyzing regardless; its rows dedup at merge.
  bool heartbeat(const ClaimedLease& claim, std::uint64_t now) const;

  /// Marks the lease done (rename claim -> done). Returns false when the
  /// claim file vanished — the lease was reclaimed; the caller's journal
  /// rows still count, they just dedup against the reissued run's.
  bool complete(const ClaimedLease& claim) const;

  /// Reissues every claimed lease whose heartbeat stamp is older than
  /// `ttl_seconds` relative to `now` (or whose claim bytes are corrupt)
  /// via one atomic rename(claim -> open); the next claimant bumps the
  /// generation. Returns the number of leases reclaimed. Stamp-based: only
  /// valid when `now` and the stamps come from one clock domain (a single
  /// process, or a test passing simulated values). The live agent and
  /// supervisor loops use LeaseMonitor instead, which never compares
  /// stamps across processes.
  int reclaim_expired(std::uint64_t ttl_seconds, std::uint64_t now) const;

  WorkDirStatus status() const;

  /// Final per-lease states, read from the .done files (id-ordered):
  /// which worker completed each lease and how many reclaims it survived.
  std::vector<LeaseState> done_states() const;

  /// Every journal-<worker>.jsonl in the directory, sorted by path.
  std::vector<std::string> worker_journals() const;

  /// Unix-epoch seconds (wall clock). Human-facing stamps only — never
  /// liveness decisions, since an NTP step would spuriously expire (or
  /// immortalize) live claims. See steady_seconds / LeaseMonitor.
  static std::uint64_t now_seconds();

  /// Monotone seconds from std::chrono::steady_clock (arbitrary epoch,
  /// process-local). Heartbeat stamps in claim files are written from this
  /// clock: their absolute value means nothing across hosts, but every
  /// refresh *changes the bytes*, and liveness is judged by observing that
  /// change on the observer's own steady clock (LeaseMonitor) — immune to
  /// wall-clock skew and NTP steps on either side.
  static std::uint64_t steady_seconds();

 private:
  friend class LeaseMonitor;
  std::string lease_path(int lease_id, const char* state) const;

  std::string root_;
};

/// Stateful staleness observer — the steady-clock replacement for the
/// stamp-comparison reclaim. A monitor watches the directory's claim files
/// across repeated reclaim_stale() calls and reclaims a claim only after
/// its bytes (owner, generation, heartbeat stamp) have been observed
/// *unchanged* for `ttl_seconds` on the monitor's own steady clock. A live
/// worker's heartbeat rewrites the stamp every ttl/3 seconds, so its bytes
/// always change inside the window; a dead worker's file never changes
/// again. No cross-host clock agreement is required — each side only ever
/// reads its own monotonic clock. Corrupt claim bytes are reclaimed
/// immediately, exactly as in WorkDir::reclaim_expired.
///
/// One monitor per observing loop (an agent's idle path, the coordinator's
/// supervise loop). Not thread-safe; state is observation history only, so
/// losing it (a restarted observer) merely restarts the ttl window.
class LeaseMonitor {
 public:
  explicit LeaseMonitor(const WorkDir& dir) : dir_(&dir) {}

  /// One observation pass over every .claim file: records first-seen times
  /// for new or changed bytes, reclaims (rename claim -> open) claims
  /// unchanged for >= ttl_seconds, and drops stale-claim garbage next to
  /// .done markers. Returns the number of leases reclaimed.
  int reclaim_stale(std::uint64_t ttl_seconds);

 private:
  struct Observation {
    std::string bytes;
    std::uint64_t first_seen = 0;
  };

  const WorkDir* dir_;
  std::map<int, Observation> seen_;
};

}  // namespace saintdroid
