#include "dex/instruction.hpp"

#include "support/errors.hpp"

namespace saintdroid {

Instruction Instruction::nop() { return {}; }

Instruction Instruction::const_int(std::uint16_t reg, std::int32_t value) {
  Instruction i;
  i.op = Opcode::kConst;
  i.reg_a = reg;
  i.literal = value;
  return i;
}

Instruction Instruction::const_string(std::uint16_t reg,
                                      std::uint32_t string_idx) {
  Instruction i;
  i.op = Opcode::kConstString;
  i.reg_a = reg;
  i.index = string_idx;
  return i;
}

Instruction Instruction::move(std::uint16_t dst, std::uint16_t src) {
  Instruction i;
  i.op = Opcode::kMove;
  i.reg_a = dst;
  i.reg_b = src;
  return i;
}

Instruction Instruction::sget(std::uint16_t reg, std::uint32_t field_idx) {
  Instruction i;
  i.op = Opcode::kSget;
  i.reg_a = reg;
  i.index = field_idx;
  return i;
}

Instruction Instruction::sput(std::uint16_t reg, std::uint32_t field_idx) {
  Instruction i;
  i.op = Opcode::kSput;
  i.reg_a = reg;
  i.index = field_idx;
  return i;
}

Instruction Instruction::iget(std::uint16_t reg, std::uint16_t object_reg,
                              std::uint32_t field_idx) {
  Instruction i;
  i.op = Opcode::kIget;
  i.reg_a = reg;
  i.reg_b = object_reg;
  i.index = field_idx;
  return i;
}

Instruction Instruction::iput(std::uint16_t reg, std::uint16_t object_reg,
                              std::uint32_t field_idx) {
  Instruction i;
  i.op = Opcode::kIput;
  i.reg_a = reg;
  i.reg_b = object_reg;
  i.index = field_idx;
  return i;
}

Instruction Instruction::if_cmp_lit(CmpOp cmp, std::uint16_t reg,
                                    std::int32_t literal,
                                    std::uint32_t target) {
  Instruction i;
  i.op = Opcode::kIfCmp;
  i.cmp = cmp;
  i.cmp_with_literal = true;
  i.reg_a = reg;
  i.literal = literal;
  i.target = target;
  return i;
}

Instruction Instruction::if_cmp_reg(CmpOp cmp, std::uint16_t reg_a,
                                    std::uint16_t reg_b,
                                    std::uint32_t target) {
  Instruction i;
  i.op = Opcode::kIfCmp;
  i.cmp = cmp;
  i.cmp_with_literal = false;
  i.reg_a = reg_a;
  i.reg_b = reg_b;
  i.target = target;
  return i;
}

Instruction Instruction::goto_(std::uint32_t target) {
  Instruction i;
  i.op = Opcode::kGoto;
  i.target = target;
  return i;
}

Instruction Instruction::invoke(InvokeKind kind, std::uint32_t method_idx,
                                std::vector<std::uint16_t> args) {
  Instruction i;
  i.op = Opcode::kInvoke;
  i.invoke_kind = kind;
  i.index = method_idx;
  i.args = std::move(args);
  return i;
}

Instruction Instruction::move_result(std::uint16_t reg) {
  Instruction i;
  i.op = Opcode::kMoveResult;
  i.reg_a = reg;
  return i;
}

Instruction Instruction::new_instance(std::uint16_t reg,
                                      std::uint32_t type_idx) {
  Instruction i;
  i.op = Opcode::kNewInstance;
  i.reg_a = reg;
  i.index = type_idx;
  return i;
}

Instruction Instruction::load_class(std::uint16_t reg,
                                    std::uint32_t type_idx) {
  Instruction i;
  i.op = Opcode::kLoadClass;
  i.reg_a = reg;
  i.index = type_idx;
  return i;
}

Instruction Instruction::throw_(std::uint16_t reg) {
  Instruction i;
  i.op = Opcode::kThrow;
  i.reg_a = reg;
  return i;
}

Instruction Instruction::return_void() {
  Instruction i;
  i.op = Opcode::kReturnVoid;
  return i;
}

Instruction Instruction::return_reg(std::uint16_t reg) {
  Instruction i;
  i.op = Opcode::kReturn;
  i.reg_a = reg;
  return i;
}

bool eval_cmp(CmpOp cmp, std::int64_t lhs, std::int64_t rhs) {
  switch (cmp) {
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return lhs <= rhs;
    case CmpOp::kGt: return lhs > rhs;
    case CmpOp::kGe: return lhs >= rhs;
  }
  SD_EXPECTS(false);
  return false;
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kConst: return "const";
    case Opcode::kConstString: return "const-string";
    case Opcode::kMove: return "move";
    case Opcode::kSget: return "sget";
    case Opcode::kSput: return "sput";
    case Opcode::kIget: return "iget";
    case Opcode::kIput: return "iput";
    case Opcode::kIfCmp: return "if-cmp";
    case Opcode::kGoto: return "goto";
    case Opcode::kInvoke: return "invoke";
    case Opcode::kMoveResult: return "move-result";
    case Opcode::kNewInstance: return "new-instance";
    case Opcode::kLoadClass: return "load-class";
    case Opcode::kThrow: return "throw";
    case Opcode::kReturnVoid: return "return-void";
    case Opcode::kReturn: return "return";
  }
  return "?";
}

const char* cmp_name(CmpOp cmp) {
  switch (cmp) {
    case CmpOp::kEq: return "eq";
    case CmpOp::kNe: return "ne";
    case CmpOp::kLt: return "lt";
    case CmpOp::kLe: return "le";
    case CmpOp::kGt: return "gt";
    case CmpOp::kGe: return "ge";
  }
  return "?";
}

const char* invoke_kind_name(InvokeKind kind) {
  switch (kind) {
    case InvokeKind::kVirtual: return "virtual";
    case InvokeKind::kStatic: return "static";
    case InvokeKind::kDirect: return "direct";
    case InvokeKind::kSuper: return "super";
    case InvokeKind::kInterface: return "interface";
  }
  return "?";
}

}  // namespace saintdroid
