// Fluent authoring API for SDEX containers.
//
// The framework generator (src/adf) and the app synthesizer (src/workload)
// construct bytecode through this builder: pool entries are interned on
// demand, forward branches use Label handles that are resolved when the
// container is finalized, and build() returns a fully validated DexFile.
//
//   DexBuilder b;
//   auto& cls = b.add_class("com/example/Main", "android/app/Activity");
//   auto& m = cls.add_method("onCreate", "V", {"android/os/Bundle"});
//   m.sget_sdk_int(0);
//   Label skip = m.new_label();
//   m.if_lit(CmpOp::kLt, 0, 23, skip);              // if (SDK_INT < 23) skip
//   m.invoke_virtual("android/content/Context", "getColorStateList", "...");
//   m.bind(skip);
//   m.return_void();
//   DexFile dex = b.build();
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "dex/dexfile.hpp"
#include "support/interner.hpp"

namespace saintdroid {

class DexBuilder;
class ClassBuilder;

/// Handle for a not-yet-bound branch target inside one method body.
struct Label {
  std::uint32_t id = 0;
};

/// Emits the body of one method. Obtained from ClassBuilder::add_method.
class MethodBuilder {
 public:
  /// Number of instructions emitted so far (== index of the next one).
  std::uint32_t next_index() const {
    return static_cast<std::uint32_t>(insns_.size());
  }

  /// Creates a fresh unbound label.
  Label new_label();

  /// Binds `label` to the next emitted instruction.
  MethodBuilder& bind(Label label);

  MethodBuilder& registers(std::uint16_t count);

  // -- raw emission ----------------------------------------------------------
  MethodBuilder& emit(Instruction insn);

  // -- conveniences ----------------------------------------------------------
  MethodBuilder& const_int(std::uint16_t reg, std::int32_t value);
  MethodBuilder& const_string(std::uint16_t reg, std::string_view value);
  MethodBuilder& move(std::uint16_t dst, std::uint16_t src);
  /// sget of an arbitrary static field.
  MethodBuilder& sget(std::uint16_t reg, std::string_view cls,
                      std::string_view field, std::string_view type);
  /// sget of android/os/Build$VERSION.SDK_INT — the guard source.
  MethodBuilder& sget_sdk_int(std::uint16_t reg);
  /// iget of an instance field of `cls`.
  MethodBuilder& iget(std::uint16_t reg, std::uint16_t object_reg,
                      std::string_view cls, std::string_view field,
                      std::string_view type);
  /// iput into an instance field of `cls`.
  MethodBuilder& iput(std::uint16_t reg, std::uint16_t object_reg,
                      std::string_view cls, std::string_view field,
                      std::string_view type);
  /// Conditional branch comparing a register against a literal.
  MethodBuilder& if_lit(CmpOp cmp, std::uint16_t reg, std::int32_t literal,
                        Label target);
  /// Conditional branch comparing two registers.
  MethodBuilder& if_reg(CmpOp cmp, std::uint16_t reg_a, std::uint16_t reg_b,
                        Label target);
  MethodBuilder& goto_(Label target);
  MethodBuilder& invoke(InvokeKind kind, std::string_view cls,
                        std::string_view name, std::string_view return_type,
                        std::vector<std::string> param_types = {},
                        std::vector<std::uint16_t> arg_regs = {});
  MethodBuilder& invoke_virtual(std::string_view cls, std::string_view name,
                                std::string_view return_type = "V",
                                std::vector<std::string> param_types = {},
                                std::vector<std::uint16_t> arg_regs = {});
  MethodBuilder& invoke_static(std::string_view cls, std::string_view name,
                               std::string_view return_type = "V",
                               std::vector<std::string> param_types = {},
                               std::vector<std::uint16_t> arg_regs = {});
  MethodBuilder& invoke_super(std::string_view cls, std::string_view name,
                              std::string_view return_type = "V",
                              std::vector<std::string> param_types = {});
  MethodBuilder& move_result(std::uint16_t reg);
  MethodBuilder& new_instance(std::uint16_t reg, std::string_view type);
  /// Models dynamic loading of a statically-known class name (late binding).
  MethodBuilder& load_class(std::uint16_t reg, std::string_view type);
  MethodBuilder& throw_(std::uint16_t reg);
  MethodBuilder& return_void();
  MethodBuilder& return_reg(std::uint16_t reg);

 private:
  friend class ClassBuilder;
  friend class DexBuilder;

  MethodBuilder(DexBuilder& dex, std::uint32_t name, std::uint32_t proto,
                std::uint32_t access_flags)
      : dex_(&dex), name_(name), proto_(proto), access_flags_(access_flags) {}

  DexBuilder* dex_;
  std::uint32_t name_;
  std::uint32_t proto_;
  std::uint32_t access_flags_;
  std::uint16_t register_count_ = 8;
  std::vector<Instruction> insns_;
  // label id -> bound instruction index (kNoIndex while unbound)
  std::vector<std::uint32_t> label_targets_;
  // instruction index -> label id, for branches awaiting resolution
  std::vector<std::pair<std::uint32_t, std::uint32_t>> fixups_;
};

/// Accumulates the methods of one class definition.
class ClassBuilder {
 public:
  /// Adds a concrete method and returns its body builder (stable reference).
  MethodBuilder& add_method(std::string_view name,
                            std::string_view return_type = "V",
                            std::vector<std::string> param_types = {},
                            std::uint32_t access_flags = kAccPublic);

  /// Adds a bodyless (abstract or native) method.
  ClassBuilder& add_abstract_method(std::string_view name,
                                    std::string_view return_type = "V",
                                    std::vector<std::string> param_types = {},
                                    std::uint32_t access_flags = kAccPublic |
                                                                 kAccAbstract);

  /// Internal slashed name of the class being built.
  const std::string& name() const { return name_; }

 private:
  friend class DexBuilder;

  ClassBuilder(DexBuilder& dex, std::string name, std::uint32_t type,
               std::uint32_t super_type, std::vector<std::uint32_t> interfaces,
               std::uint32_t access_flags)
      : dex_(&dex),
        name_(std::move(name)),
        type_(type),
        super_type_(super_type),
        interfaces_(std::move(interfaces)),
        access_flags_(access_flags) {}

  DexBuilder* dex_;
  std::string name_;
  std::uint32_t type_;
  std::uint32_t super_type_;
  std::vector<std::uint32_t> interfaces_;
  std::uint32_t access_flags_;
  std::deque<MethodBuilder> methods_;
  std::vector<MethodDef> abstract_methods_;
};

/// Authors one SDEX container.
class DexBuilder {
 public:
  /// Pre-sizes the string/type pools and their interning tables; emitters
  /// that know their class count up front (the ADF image loader) use this
  /// to avoid rehashing while authoring thousands of classes.
  void reserve_pools(std::size_t expected_strings, std::size_t expected_types);

  // -- pool interning --------------------------------------------------------
  std::uint32_t intern_string(std::string_view s);
  std::uint32_t intern_type(std::string_view internal_name);
  std::uint32_t intern_proto(std::string_view return_type,
                             const std::vector<std::string>& param_types);
  std::uint32_t intern_method(std::string_view cls, std::string_view name,
                              std::string_view return_type,
                              const std::vector<std::string>& param_types);
  std::uint32_t intern_field(std::string_view cls, std::string_view name,
                             std::string_view type);

  /// Pool index of android/os/Build$VERSION.SDK_INT.
  std::uint32_t sdk_int_field();

  /// Starts a class definition; the returned reference stays valid for the
  /// builder's lifetime. `super` of "" means a root class (no superclass).
  ClassBuilder& add_class(std::string_view name,
                          std::string_view super = "java/lang/Object",
                          std::vector<std::string> interfaces = {},
                          std::uint32_t access_flags = kAccPublic);

  /// Resolves labels, assembles all classes, validates and returns the
  /// immutable container. The builder may not be reused afterwards.
  DexFile build();

 private:
  friend class ClassBuilder;
  friend class MethodBuilder;

  DexFile dex_;
  std::deque<ClassBuilder> classes_;
  // Interning tables. Strings and types use StringInterner — its dense
  // insertion-order ids are exactly the pool indices, and lookup is
  // allocation-free — while the composite-key pools keep plain maps.
  StringInterner string_ids_;
  StringInterner type_ids_;
  std::unordered_map<std::string, std::uint32_t> proto_ids_;
  std::unordered_map<std::string, std::uint32_t> method_ids_;
  std::unordered_map<std::string, std::uint32_t> field_ids_;
  bool built_ = false;
};

}  // namespace saintdroid
