// The Android manifest subset that the compatibility analyses consume:
// SDK range declarations, requested permissions, and component entry
// points. Serialized as one section of the APK container.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/interval.hpp"

namespace saintdroid {

/// Kinds of app components; each registered component method is an analysis
/// entry point (the paper's ICFG treats every message handler as a separate
/// invocation root).
enum class ComponentKind : std::uint8_t {
  kActivity = 0,
  kService,
  kReceiver,
  kProvider,
};

const char* component_kind_name(ComponentKind kind);

/// One <activity>/<service>/... entry: the implementing class.
struct Component {
  ComponentKind kind = ComponentKind::kActivity;
  std::string class_name;  ///< slashed internal name

  friend bool operator==(const Component&, const Component&) = default;
};

/// Parsed manifest.
struct Manifest {
  std::string package;      ///< e.g. "com.example.app"
  int min_sdk = kMinApiLevel;
  int target_sdk = kMaxApiLevel;
  /// 0 means "unset" (the common case); effective max is then kMaxApiLevel.
  int max_sdk = 0;
  std::vector<std::string> permissions;  ///< requested permission names
  std::vector<Component> components;
  /// Whether source is available and the app builds with current toolchains;
  /// Lint requires this (paper §IV-A: 8 of 27 benchmark apps did not build).
  bool buildable = true;

  /// The device API range the app declares support for: [min_sdk,
  /// effective max_sdk]. This is the range the detectors scan.
  ApiInterval supported_range() const;

  /// True when `permission` appears in the requested permission list.
  bool requests_permission(const std::string& permission) const;

  void serialize(class ByteWriter& w) const;
  static Manifest parse(class ByteReader& r);

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

}  // namespace saintdroid
