#include "dex/disasm.hpp"

#include <sstream>

namespace saintdroid {

std::string disassemble(const DexFile& dex, const Instruction& insn) {
  std::ostringstream out;
  out << opcode_name(insn.op);
  switch (insn.op) {
    case Opcode::kNop:
    case Opcode::kReturnVoid:
      break;
    case Opcode::kConst:
      out << " v" << insn.reg_a << ", #" << insn.literal;
      break;
    case Opcode::kConstString:
      out << " v" << insn.reg_a << ", \"" << dex.string_at(insn.index) << "\"";
      break;
    case Opcode::kMove:
      out << " v" << insn.reg_a << ", v" << insn.reg_b;
      break;
    case Opcode::kSget:
    case Opcode::kSput:
      out << " v" << insn.reg_a << ", "
          << dex.field_id_at(insn.index).to_string();
      break;
    case Opcode::kIget:
    case Opcode::kIput:
      out << " v" << insn.reg_a << ", v" << insn.reg_b << ", "
          << dex.field_id_at(insn.index).to_string();
      break;
    case Opcode::kIfCmp:
      out << "-" << cmp_name(insn.cmp) << " v" << insn.reg_a << ", ";
      if (insn.cmp_with_literal)
        out << "#" << insn.literal;
      else
        out << "v" << insn.reg_b;
      out << " -> @" << insn.target;
      break;
    case Opcode::kGoto:
      out << " @" << insn.target;
      break;
    case Opcode::kInvoke: {
      out << "-" << invoke_kind_name(insn.invoke_kind) << " "
          << dex.method_id_at(insn.index).to_string() << " (";
      for (std::size_t i = 0; i < insn.args.size(); ++i) {
        if (i) out << ", ";
        out << "v" << insn.args[i];
      }
      out << ")";
      break;
    }
    case Opcode::kMoveResult:
    case Opcode::kThrow:
    case Opcode::kReturn:
      out << " v" << insn.reg_a;
      break;
    case Opcode::kNewInstance:
    case Opcode::kLoadClass:
      out << " v" << insn.reg_a << ", " << dex.type_name(insn.index);
      break;
  }
  return out.str();
}

std::string disassemble(const DexFile& dex, const ClassDef& cls) {
  std::ostringstream out;
  out << "class " << dex.type_name(cls.type);
  if (cls.super_type != kNoIndex)
    out << " extends " << dex.type_name(cls.super_type);
  if (!cls.interfaces.empty()) {
    out << " implements";
    for (std::size_t i = 0; i < cls.interfaces.size(); ++i)
      out << (i ? ", " : " ") << dex.type_name(cls.interfaces[i]);
  }
  out << " {\n";
  for (const auto& m : cls.methods) {
    out << "  " << dex.string_at(m.name) << dex.descriptor_of(m.proto);
    if (!m.code) {
      out << ";  // abstract/native\n";
      continue;
    }
    out << " (" << m.code->register_count << " regs) {\n";
    for (std::size_t i = 0; i < m.code->insns.size(); ++i)
      out << "    @" << i << ": " << disassemble(dex, m.code->insns[i])
          << "\n";
    out << "  }\n";
  }
  out << "}\n";
  return out.str();
}

std::string disassemble(const DexFile& dex) {
  std::string out;
  for (const auto& cls : dex.classes()) out += disassemble(dex, cls);
  return out;
}

}  // namespace saintdroid
