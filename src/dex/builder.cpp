#include "dex/builder.hpp"

#include <unordered_map>

#include "support/errors.hpp"

namespace saintdroid {

// ---------------------------------------------------------------------------
// MethodBuilder

Label MethodBuilder::new_label() {
  const Label label{static_cast<std::uint32_t>(label_targets_.size())};
  label_targets_.push_back(kNoIndex);
  return label;
}

MethodBuilder& MethodBuilder::bind(Label label) {
  SD_EXPECTS(label.id < label_targets_.size());
  SD_EXPECTS(label_targets_[label.id] == kNoIndex);  // bind once
  label_targets_[label.id] = next_index();
  return *this;
}

MethodBuilder& MethodBuilder::registers(std::uint16_t count) {
  register_count_ = count;
  return *this;
}

MethodBuilder& MethodBuilder::emit(Instruction insn) {
  insns_.push_back(std::move(insn));
  return *this;
}

MethodBuilder& MethodBuilder::const_int(std::uint16_t reg,
                                        std::int32_t value) {
  return emit(Instruction::const_int(reg, value));
}

MethodBuilder& MethodBuilder::const_string(std::uint16_t reg,
                                           std::string_view value) {
  return emit(Instruction::const_string(reg, dex_->intern_string(value)));
}

MethodBuilder& MethodBuilder::move(std::uint16_t dst, std::uint16_t src) {
  return emit(Instruction::move(dst, src));
}

MethodBuilder& MethodBuilder::sget(std::uint16_t reg, std::string_view cls,
                                   std::string_view field,
                                   std::string_view type) {
  return emit(Instruction::sget(reg, dex_->intern_field(cls, field, type)));
}

MethodBuilder& MethodBuilder::sget_sdk_int(std::uint16_t reg) {
  return emit(Instruction::sget(reg, dex_->sdk_int_field()));
}

MethodBuilder& MethodBuilder::iget(std::uint16_t reg,
                                   std::uint16_t object_reg,
                                   std::string_view cls,
                                   std::string_view field,
                                   std::string_view type) {
  return emit(Instruction::iget(reg, object_reg,
                                dex_->intern_field(cls, field, type)));
}

MethodBuilder& MethodBuilder::iput(std::uint16_t reg,
                                   std::uint16_t object_reg,
                                   std::string_view cls,
                                   std::string_view field,
                                   std::string_view type) {
  return emit(Instruction::iput(reg, object_reg,
                                dex_->intern_field(cls, field, type)));
}

MethodBuilder& MethodBuilder::if_lit(CmpOp cmp, std::uint16_t reg,
                                     std::int32_t literal, Label target) {
  fixups_.emplace_back(next_index(), target.id);
  return emit(Instruction::if_cmp_lit(cmp, reg, literal, 0));
}

MethodBuilder& MethodBuilder::if_reg(CmpOp cmp, std::uint16_t reg_a,
                                     std::uint16_t reg_b, Label target) {
  fixups_.emplace_back(next_index(), target.id);
  return emit(Instruction::if_cmp_reg(cmp, reg_a, reg_b, 0));
}

MethodBuilder& MethodBuilder::goto_(Label target) {
  fixups_.emplace_back(next_index(), target.id);
  return emit(Instruction::goto_(0));
}

MethodBuilder& MethodBuilder::invoke(InvokeKind kind, std::string_view cls,
                                     std::string_view name,
                                     std::string_view return_type,
                                     std::vector<std::string> param_types,
                                     std::vector<std::uint16_t> arg_regs) {
  const auto idx = dex_->intern_method(cls, name, return_type, param_types);
  return emit(Instruction::invoke(kind, idx, std::move(arg_regs)));
}

MethodBuilder& MethodBuilder::invoke_virtual(
    std::string_view cls, std::string_view name, std::string_view return_type,
    std::vector<std::string> param_types, std::vector<std::uint16_t> arg_regs) {
  return invoke(InvokeKind::kVirtual, cls, name, return_type,
                std::move(param_types), std::move(arg_regs));
}

MethodBuilder& MethodBuilder::invoke_static(
    std::string_view cls, std::string_view name, std::string_view return_type,
    std::vector<std::string> param_types, std::vector<std::uint16_t> arg_regs) {
  return invoke(InvokeKind::kStatic, cls, name, return_type,
                std::move(param_types), std::move(arg_regs));
}

MethodBuilder& MethodBuilder::invoke_super(std::string_view cls,
                                           std::string_view name,
                                           std::string_view return_type,
                                           std::vector<std::string> param_types) {
  return invoke(InvokeKind::kSuper, cls, name, return_type,
                std::move(param_types), {});
}

MethodBuilder& MethodBuilder::move_result(std::uint16_t reg) {
  return emit(Instruction::move_result(reg));
}

MethodBuilder& MethodBuilder::new_instance(std::uint16_t reg,
                                           std::string_view type) {
  return emit(Instruction::new_instance(reg, dex_->intern_type(type)));
}

MethodBuilder& MethodBuilder::load_class(std::uint16_t reg,
                                         std::string_view type) {
  return emit(Instruction::load_class(reg, dex_->intern_type(type)));
}

MethodBuilder& MethodBuilder::throw_(std::uint16_t reg) {
  return emit(Instruction::throw_(reg));
}

MethodBuilder& MethodBuilder::return_void() {
  return emit(Instruction::return_void());
}

MethodBuilder& MethodBuilder::return_reg(std::uint16_t reg) {
  return emit(Instruction::return_reg(reg));
}

// ---------------------------------------------------------------------------
// ClassBuilder

MethodBuilder& ClassBuilder::add_method(std::string_view name,
                                        std::string_view return_type,
                                        std::vector<std::string> param_types,
                                        std::uint32_t access_flags) {
  const auto name_idx = dex_->intern_string(name);
  const auto proto_idx = dex_->intern_proto(return_type, param_types);
  methods_.push_back(MethodBuilder{*dex_, name_idx, proto_idx, access_flags});
  return methods_.back();
}

ClassBuilder& ClassBuilder::add_abstract_method(
    std::string_view name, std::string_view return_type,
    std::vector<std::string> param_types, std::uint32_t access_flags) {
  MethodDef def;
  def.name = dex_->intern_string(name);
  def.proto = dex_->intern_proto(return_type, param_types);
  def.access_flags = access_flags;
  abstract_methods_.push_back(def);
  return *this;
}

// ---------------------------------------------------------------------------
// DexBuilder

void DexBuilder::reserve_pools(std::size_t expected_strings,
                               std::size_t expected_types) {
  string_ids_.reserve(expected_strings);
  dex_.strings_.reserve(expected_strings);
  type_ids_.reserve(expected_types);
  dex_.types_.reserve(expected_types);
}

std::uint32_t DexBuilder::intern_string(std::string_view s) {
  // The interner assigns dense insertion-order ids, so its id *is* the
  // string-pool index; probing never allocates.
  const Symbol id = string_ids_.intern(s);
  if (id == dex_.strings_.size()) dex_.strings_.emplace_back(s);
  return id;
}

std::uint32_t DexBuilder::intern_type(std::string_view internal_name) {
  const Symbol id = type_ids_.intern(internal_name);
  if (id == dex_.types_.size()) dex_.types_.push_back(intern_string(internal_name));
  return id;
}

std::uint32_t DexBuilder::intern_proto(
    std::string_view return_type, const std::vector<std::string>& param_types) {
  std::string key{return_type};
  for (const auto& p : param_types) key += "|" + p;
  if (const auto it = proto_ids_.find(key); it != proto_ids_.end())
    return it->second;
  Proto proto;
  proto.return_type = intern_type(return_type);
  proto.param_types.reserve(param_types.size());
  for (const auto& p : param_types)
    proto.param_types.push_back(intern_type(p));
  const auto idx = static_cast<std::uint32_t>(dex_.protos_.size());
  dex_.protos_.push_back(std::move(proto));
  proto_ids_.emplace(std::move(key), idx);
  return idx;
}

std::uint32_t DexBuilder::intern_method(
    std::string_view cls, std::string_view name, std::string_view return_type,
    const std::vector<std::string>& param_types) {
  std::string key = std::string{cls} + "." + std::string{name} + ":" +
                    std::string{return_type};
  for (const auto& p : param_types) key += "|" + p;
  if (const auto it = method_ids_.find(key); it != method_ids_.end())
    return it->second;
  MethodRef ref;
  ref.class_type = intern_type(cls);
  ref.name = intern_string(name);
  ref.proto = intern_proto(return_type, param_types);
  const auto idx = static_cast<std::uint32_t>(dex_.method_refs_.size());
  dex_.method_refs_.push_back(ref);
  method_ids_.emplace(std::move(key), idx);
  return idx;
}

std::uint32_t DexBuilder::intern_field(std::string_view cls,
                                       std::string_view name,
                                       std::string_view type) {
  std::string key =
      std::string{cls} + "." + std::string{name} + ":" + std::string{type};
  if (const auto it = field_ids_.find(key); it != field_ids_.end())
    return it->second;
  FieldRef ref;
  ref.class_type = intern_type(cls);
  ref.name = intern_string(name);
  ref.type = intern_type(type);
  const auto idx = static_cast<std::uint32_t>(dex_.field_refs_.size());
  dex_.field_refs_.push_back(ref);
  field_ids_.emplace(std::move(key), idx);
  return idx;
}

std::uint32_t DexBuilder::sdk_int_field() {
  return intern_field(kSdkIntField.class_name, kSdkIntField.name,
                      kSdkIntField.type);
}

ClassBuilder& DexBuilder::add_class(std::string_view name,
                                    std::string_view super,
                                    std::vector<std::string> interfaces,
                                    std::uint32_t access_flags) {
  SD_EXPECTS(!built_);
  const auto type_idx = intern_type(name);
  const auto super_idx = super.empty() ? kNoIndex : intern_type(super);
  std::vector<std::uint32_t> iface_idxs;
  iface_idxs.reserve(interfaces.size());
  for (const auto& iface : interfaces)
    iface_idxs.push_back(intern_type(iface));
  classes_.push_back(ClassBuilder{*this, std::string{name}, type_idx,
                                  super_idx, std::move(iface_idxs),
                                  access_flags});
  return classes_.back();
}

DexFile DexBuilder::build() {
  SD_EXPECTS(!built_);
  built_ = true;

  for (auto& cls : classes_) {
    ClassDef def;
    def.type = cls.type_;
    def.super_type = cls.super_type_;
    def.interfaces = std::move(cls.interfaces_);
    def.access_flags = cls.access_flags_;

    for (auto& mb : cls.methods_) {
      // Resolve label fixups into concrete instruction indices.
      for (const auto& [insn_idx, label_id] : mb.fixups_) {
        SD_EXPECTS(label_id < mb.label_targets_.size());
        const auto bound = mb.label_targets_[label_id];
        SD_EXPECTS(bound != kNoIndex);  // every used label must be bound
        mb.insns_[insn_idx].target = bound;
      }
      MethodDef def_m;
      def_m.name = mb.name_;
      def_m.proto = mb.proto_;
      def_m.access_flags = mb.access_flags_;
      MethodCode code;
      code.register_count = mb.register_count_;
      code.insns = std::move(mb.insns_);
      def_m.code = std::move(code);
      def.methods.push_back(std::move(def_m));
    }
    for (auto& abs : cls.abstract_methods_)
      def.methods.push_back(std::move(abs));

    dex_.class_defs_.push_back(std::move(def));
  }

  dex_.validate();
  return std::move(dex_);
}

}  // namespace saintdroid
