// The SDEX register-based instruction set, modelled on Dalvik bytecode.
//
// The set is deliberately small — it covers exactly the constructs the
// compatibility analyses reason about: constants and moves (to track
// SDK_INT through registers), static field reads (the SDK_INT source),
// conditional branches (API-level guards), the five Dalvik invoke kinds
// (call-graph edges and virtual resolution), object creation, explicit
// class loading (late binding / multi-dex), and returns. Branch targets are
// instruction indices within the owning method, validated at parse time.
#pragma once

#include <cstdint>
#include <vector>

namespace saintdroid {

enum class Opcode : std::uint8_t {
  kNop = 0,
  kConst,        ///< reg_a <- literal
  kConstString,  ///< reg_a <- string pool [index]
  kMove,         ///< reg_a <- reg_b
  kSget,         ///< reg_a <- static field [index]
  kSput,         ///< static field [index] <- reg_a
  kIget,         ///< reg_a <- field [index] of object reg_b
  kIput,         ///< field [index] of object reg_b <- reg_a
  kIfCmp,        ///< branch to `target` if reg_a <cmp> (reg_b | literal)
  kGoto,         ///< unconditional branch to `target`
  kInvoke,       ///< call method ref [index] with `args` registers
  kMoveResult,   ///< reg_a <- result of the preceding invoke
  kNewInstance,  ///< reg_a <- new object of type [index]
  kLoadClass,    ///< reg_a <- class object for type [index] (late binding)
  kThrow,        ///< throw the exception object in reg_a
  kReturnVoid,
  kReturn,  ///< return reg_a
};

enum class CmpOp : std::uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// The Dalvik invocation kinds; virtual and interface calls require
/// hierarchy-based resolution, the others bind statically.
enum class InvokeKind : std::uint8_t {
  kVirtual = 0,
  kStatic,
  kDirect,
  kSuper,
  kInterface,
};

/// One decoded instruction. A single concrete struct (rather than a
/// variant hierarchy) keeps methods contiguous in memory; unused fields are
/// zero. Use the factory functions to construct well-formed instances.
struct Instruction {
  Opcode op = Opcode::kNop;
  CmpOp cmp = CmpOp::kEq;                    // kIfCmp
  InvokeKind invoke_kind = InvokeKind::kVirtual;  // kInvoke
  bool cmp_with_literal = false;             // kIfCmp: reg_a vs literal
  std::uint16_t reg_a = 0;
  std::uint16_t reg_b = 0;
  std::int32_t literal = 0;    // kConst value / kIfCmp literal operand
  std::uint32_t index = 0;     // pool index (meaning depends on op)
  std::uint32_t target = 0;    // branch target (instruction index)
  std::vector<std::uint16_t> args;  // kInvoke argument registers

  bool is_branch() const {
    return op == Opcode::kIfCmp || op == Opcode::kGoto;
  }

  bool is_terminator() const {
    return op == Opcode::kGoto || op == Opcode::kReturnVoid ||
           op == Opcode::kReturn || op == Opcode::kThrow;
  }

  // -- factories -----------------------------------------------------------
  static Instruction nop();
  static Instruction const_int(std::uint16_t reg, std::int32_t value);
  static Instruction const_string(std::uint16_t reg, std::uint32_t string_idx);
  static Instruction move(std::uint16_t dst, std::uint16_t src);
  static Instruction sget(std::uint16_t reg, std::uint32_t field_idx);
  static Instruction sput(std::uint16_t reg, std::uint32_t field_idx);
  static Instruction iget(std::uint16_t reg, std::uint16_t object_reg,
                          std::uint32_t field_idx);
  static Instruction iput(std::uint16_t reg, std::uint16_t object_reg,
                          std::uint32_t field_idx);
  static Instruction if_cmp_lit(CmpOp cmp, std::uint16_t reg,
                                std::int32_t literal, std::uint32_t target);
  static Instruction if_cmp_reg(CmpOp cmp, std::uint16_t reg_a,
                                std::uint16_t reg_b, std::uint32_t target);
  static Instruction goto_(std::uint32_t target);
  static Instruction invoke(InvokeKind kind, std::uint32_t method_idx,
                            std::vector<std::uint16_t> args = {});
  static Instruction move_result(std::uint16_t reg);
  static Instruction new_instance(std::uint16_t reg, std::uint32_t type_idx);
  static Instruction load_class(std::uint16_t reg, std::uint32_t type_idx);
  static Instruction throw_(std::uint16_t reg);
  static Instruction return_void();
  static Instruction return_reg(std::uint16_t reg);
};

/// Evaluates `lhs <cmp> rhs` on concrete integers; shared by the guard
/// analysis and the disassembler tests.
bool eval_cmp(CmpOp cmp, std::int64_t lhs, std::int64_t rhs);

/// Short mnemonic for an opcode ("invoke", "if-cmp", ...).
const char* opcode_name(Opcode op);
const char* cmp_name(CmpOp cmp);
const char* invoke_kind_name(InvokeKind kind);

}  // namespace saintdroid
