#include "dex/manifest.hpp"

#include <algorithm>

#include "support/bytes.hpp"
#include "support/errors.hpp"

namespace saintdroid {

const char* component_kind_name(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kActivity: return "activity";
    case ComponentKind::kService: return "service";
    case ComponentKind::kReceiver: return "receiver";
    case ComponentKind::kProvider: return "provider";
  }
  return "?";
}

ApiInterval Manifest::supported_range() const {
  const int hi = max_sdk == 0 ? kMaxApiLevel : max_sdk;
  return ApiInterval{min_sdk, hi};
}

bool Manifest::requests_permission(const std::string& permission) const {
  return std::find(permissions.begin(), permissions.end(), permission) !=
         permissions.end();
}

void Manifest::serialize(ByteWriter& w) const {
  w.str(package);
  w.sleb(min_sdk);
  w.sleb(target_sdk);
  w.sleb(max_sdk);
  w.uleb(permissions.size());
  for (const auto& p : permissions) w.str(p);
  w.uleb(components.size());
  for (const auto& c : components) {
    w.u8(static_cast<std::uint8_t>(c.kind));
    w.str(c.class_name);
  }
  w.u8(buildable ? 1 : 0);
}

Manifest Manifest::parse(ByteReader& r) {
  Manifest m;
  m.package = r.str();
  m.min_sdk = static_cast<int>(r.sleb());
  m.target_sdk = static_cast<int>(r.sleb());
  m.max_sdk = static_cast<int>(r.sleb());
  if (m.min_sdk < 1 || m.min_sdk > kMaxApiLevel)
    throw ParseError("manifest minSdkVersion out of range");
  if (m.max_sdk != 0 && m.max_sdk < m.min_sdk)
    throw ParseError("manifest maxSdkVersion below minSdkVersion");
  const auto perm_count = r.count();
  m.permissions.reserve(perm_count);
  for (std::uint64_t i = 0; i < perm_count; ++i)
    m.permissions.push_back(r.str());
  const auto comp_count = r.count();
  m.components.reserve(comp_count);
  for (std::uint64_t i = 0; i < comp_count; ++i) {
    Component c;
    const auto raw_kind = r.u8();
    if (raw_kind > static_cast<std::uint8_t>(ComponentKind::kProvider))
      throw ParseError("unknown component kind");
    c.kind = static_cast<ComponentKind>(raw_kind);
    c.class_name = r.str();
    m.components.push_back(std::move(c));
  }
  m.buildable = r.u8() != 0;
  return m;
}

}  // namespace saintdroid
