#include "dex/apk.hpp"

#include "support/bytes.hpp"
#include "support/errors.hpp"

namespace saintdroid {

namespace {
constexpr std::uint32_t kApkMagic = 0x4b504153;  // "SAPK"
}  // namespace

std::uint64_t Apk::dex_loc() const {
  std::uint64_t n = 0;
  for (const auto& dex : dexes) n += dex.instruction_count();
  return n;
}

Apk::ClassLocation Apk::find_class(std::string_view internal_name) const {
  for (std::uint32_t i = 0; i < dexes.size(); ++i)
    if (const ClassDef* cls = dexes[i].find_class(internal_name))
      return {i, cls};
  return {};
}

std::vector<std::uint8_t> Apk::serialize() const {
  ByteWriter w;
  w.u32(kApkMagic);
  w.str(name);
  manifest.serialize(w);
  w.uleb(dexes.size());
  for (const auto& dex : dexes) {
    const auto bytes = dex.serialize();
    w.uleb(bytes.size());
    w.bytes(bytes);
  }
  return w.take();
}

Apk Apk::parse(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  if (r.u32() != kApkMagic) throw ParseError("bad APK magic");
  Apk apk;
  apk.name = r.str();
  apk.manifest = Manifest::parse(r);
  const auto dex_count = r.count();
  if (dex_count == 0) throw ParseError("APK contains no dex files");
  apk.dexes.reserve(dex_count);
  for (std::uint64_t i = 0; i < dex_count; ++i) {
    const auto size = r.uleb();
    if (size > r.remaining()) throw ParseError("dex section truncated");
    // Parse each dex from its delimited window.
    std::vector<std::uint8_t> window(size);
    for (auto& b : window) b = r.u8();
    apk.dexes.push_back(DexFile::parse(window));
  }
  if (!r.at_end()) throw ParseError("trailing bytes after dex sections");
  return apk;
}

}  // namespace saintdroid
