#include "dex/dexfile.hpp"

#include <unordered_map>

#include "support/bytes.hpp"
#include "support/errors.hpp"
#include "support/faults.hpp"

namespace saintdroid {

namespace {

constexpr std::uint32_t kMagic = 0x58454453;  // "SDEX" little-endian
constexpr std::uint32_t kVersion = 1;

// Encoded opcode layouts. Each instruction starts with one opcode byte;
// operands follow in a fixed per-opcode order using ULEB128 for indices and
// SLEB128 for literals.
void encode_insn(ByteWriter& w, const Instruction& insn) {
  w.u8(static_cast<std::uint8_t>(insn.op));
  switch (insn.op) {
    case Opcode::kNop:
    case Opcode::kReturnVoid:
      break;
    case Opcode::kConst:
      w.uleb(insn.reg_a);
      w.sleb(insn.literal);
      break;
    case Opcode::kConstString:
    case Opcode::kSget:
    case Opcode::kSput:
    case Opcode::kNewInstance:
    case Opcode::kLoadClass:
      w.uleb(insn.reg_a);
      w.uleb(insn.index);
      break;
    case Opcode::kMove:
      w.uleb(insn.reg_a);
      w.uleb(insn.reg_b);
      break;
    case Opcode::kIget:
    case Opcode::kIput:
      w.uleb(insn.reg_a);
      w.uleb(insn.reg_b);
      w.uleb(insn.index);
      break;
    case Opcode::kIfCmp:
      w.u8(static_cast<std::uint8_t>(insn.cmp));
      w.u8(insn.cmp_with_literal ? 1 : 0);
      w.uleb(insn.reg_a);
      if (insn.cmp_with_literal)
        w.sleb(insn.literal);
      else
        w.uleb(insn.reg_b);
      w.uleb(insn.target);
      break;
    case Opcode::kGoto:
      w.uleb(insn.target);
      break;
    case Opcode::kInvoke:
      w.u8(static_cast<std::uint8_t>(insn.invoke_kind));
      w.uleb(insn.index);
      w.uleb(insn.args.size());
      for (const auto reg : insn.args) w.uleb(reg);
      break;
    case Opcode::kMoveResult:
    case Opcode::kThrow:
    case Opcode::kReturn:
      w.uleb(insn.reg_a);
      break;
  }
}

Instruction decode_insn(ByteReader& r) {
  const auto raw_op = r.u8();
  if (raw_op > static_cast<std::uint8_t>(Opcode::kReturn))
    throw ParseError("unknown opcode " + std::to_string(raw_op));
  Instruction insn;
  insn.op = static_cast<Opcode>(raw_op);
  switch (insn.op) {
    case Opcode::kNop:
    case Opcode::kReturnVoid:
      break;
    case Opcode::kConst:
      insn.reg_a = static_cast<std::uint16_t>(r.uleb());
      insn.literal = static_cast<std::int32_t>(r.sleb());
      break;
    case Opcode::kConstString:
    case Opcode::kSget:
    case Opcode::kSput:
    case Opcode::kNewInstance:
    case Opcode::kLoadClass:
      insn.reg_a = static_cast<std::uint16_t>(r.uleb());
      insn.index = static_cast<std::uint32_t>(r.uleb());
      break;
    case Opcode::kMove:
      insn.reg_a = static_cast<std::uint16_t>(r.uleb());
      insn.reg_b = static_cast<std::uint16_t>(r.uleb());
      break;
    case Opcode::kIget:
    case Opcode::kIput:
      insn.reg_a = static_cast<std::uint16_t>(r.uleb());
      insn.reg_b = static_cast<std::uint16_t>(r.uleb());
      insn.index = static_cast<std::uint32_t>(r.uleb());
      break;
    case Opcode::kIfCmp: {
      const auto raw_cmp = r.u8();
      if (raw_cmp > static_cast<std::uint8_t>(CmpOp::kGe))
        throw ParseError("unknown comparison op");
      insn.cmp = static_cast<CmpOp>(raw_cmp);
      insn.cmp_with_literal = r.u8() != 0;
      insn.reg_a = static_cast<std::uint16_t>(r.uleb());
      if (insn.cmp_with_literal)
        insn.literal = static_cast<std::int32_t>(r.sleb());
      else
        insn.reg_b = static_cast<std::uint16_t>(r.uleb());
      insn.target = static_cast<std::uint32_t>(r.uleb());
      break;
    }
    case Opcode::kGoto:
      insn.target = static_cast<std::uint32_t>(r.uleb());
      break;
    case Opcode::kInvoke: {
      const auto raw_kind = r.u8();
      if (raw_kind > static_cast<std::uint8_t>(InvokeKind::kInterface))
        throw ParseError("unknown invoke kind");
      insn.invoke_kind = static_cast<InvokeKind>(raw_kind);
      insn.index = static_cast<std::uint32_t>(r.uleb());
      const auto argc = r.uleb();
      if (argc > 255) throw ParseError("invoke with too many arguments");
      insn.args.reserve(argc);
      for (std::uint64_t i = 0; i < argc; ++i)
        insn.args.push_back(static_cast<std::uint16_t>(r.uleb()));
      break;
    }
    case Opcode::kMoveResult:
    case Opcode::kThrow:
    case Opcode::kReturn:
      insn.reg_a = static_cast<std::uint16_t>(r.uleb());
      break;
  }
  return insn;
}

}  // namespace

const std::string& DexFile::string_at(std::uint32_t idx) const {
  SD_EXPECTS(idx < strings_.size());
  return strings_[idx];
}

const std::string& DexFile::type_name(std::uint32_t idx) const {
  SD_EXPECTS(idx < types_.size());
  return strings_[types_[idx]];
}

const Proto& DexFile::proto_at(std::uint32_t idx) const {
  SD_EXPECTS(idx < protos_.size());
  return protos_[idx];
}

const MethodRef& DexFile::method_ref_at(std::uint32_t idx) const {
  SD_EXPECTS(idx < method_refs_.size());
  return method_refs_[idx];
}

const FieldRef& DexFile::field_ref_at(std::uint32_t idx) const {
  SD_EXPECTS(idx < field_refs_.size());
  return field_refs_[idx];
}

std::string DexFile::descriptor_of(std::uint32_t proto_idx) const {
  const Proto& proto = proto_at(proto_idx);
  // Primitive type names are single letters, array types arrive already in
  // descriptor form ("[Ljava/lang/String;"), and reference types get L...;
  const auto append_type = [this](std::string& out, std::uint32_t idx) {
    const std::string& name = type_name(idx);
    if (name.size() == 1 || name.front() == '[')
      out += name;
    else
      out += "L" + name + ";";
  };
  std::string out = "(";
  for (const auto param : proto.param_types) append_type(out, param);
  out += ")";
  append_type(out, proto.return_type);
  return out;
}

MethodId DexFile::method_id(const MethodRef& ref) const {
  MethodId id;
  id.class_name = type_name(ref.class_type);
  id.name = string_at(ref.name);
  // Locate the proto index to build the descriptor. MethodRef stores the
  // proto pool index directly.
  id.descriptor = descriptor_of(ref.proto);
  return id;
}

MethodId DexFile::method_id_at(std::uint32_t method_ref_idx) const {
  return method_id(method_ref_at(method_ref_idx));
}

FieldId DexFile::field_id(const FieldRef& ref) const {
  FieldId id;
  id.class_name = type_name(ref.class_type);
  id.name = string_at(ref.name);
  id.type = type_name(ref.type);
  return id;
}

FieldId DexFile::field_id_at(std::uint32_t field_ref_idx) const {
  return field_id(field_ref_at(field_ref_idx));
}

MethodId DexFile::method_id(const ClassDef& cls, const MethodDef& method) const {
  MethodId id;
  id.class_name = type_name(cls.type);
  id.name = string_at(method.name);
  id.descriptor = descriptor_of(method.proto);
  return id;
}

const ClassDef* DexFile::find_class(std::string_view internal_name) const {
  for (const auto& cls : class_defs_)
    if (type_name(cls.type) == internal_name) return &cls;
  return nullptr;
}

std::uint64_t DexFile::instruction_count() const {
  std::uint64_t n = 0;
  for (const auto& cls : class_defs_)
    for (const auto& m : cls.methods)
      if (m.code) n += m.code->insns.size();
  return n;
}

std::uint64_t DexFile::footprint_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& s : strings_) bytes += s.size() + sizeof(std::string);
  bytes += types_.size() * sizeof(std::uint32_t);
  for (const auto& p : protos_)
    bytes += sizeof(Proto) + p.param_types.size() * sizeof(std::uint32_t);
  bytes += method_refs_.size() * sizeof(MethodRef);
  bytes += field_refs_.size() * sizeof(FieldRef);
  for (const auto& cls : class_defs_) {
    bytes += sizeof(ClassDef) + cls.interfaces.size() * sizeof(std::uint32_t);
    for (const auto& m : cls.methods) {
      bytes += sizeof(MethodDef);
      if (m.code) {
        bytes += sizeof(MethodCode);
        for (const auto& insn : m.code->insns)
          bytes += sizeof(Instruction) + insn.args.size() * sizeof(std::uint16_t);
      }
    }
  }
  return bytes;
}

std::vector<std::uint8_t> DexFile::serialize() const {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);

  w.uleb(strings_.size());
  for (const auto& s : strings_) w.str(s);

  w.uleb(types_.size());
  for (const auto t : types_) w.uleb(t);

  w.uleb(protos_.size());
  for (const auto& p : protos_) {
    w.uleb(p.return_type);
    w.uleb(p.param_types.size());
    for (const auto t : p.param_types) w.uleb(t);
  }

  w.uleb(method_refs_.size());
  for (const auto& m : method_refs_) {
    w.uleb(m.class_type);
    w.uleb(m.name);
    w.uleb(m.proto);
  }

  w.uleb(field_refs_.size());
  for (const auto& f : field_refs_) {
    w.uleb(f.class_type);
    w.uleb(f.name);
    w.uleb(f.type);
  }

  w.uleb(class_defs_.size());
  for (const auto& cls : class_defs_) {
    w.uleb(cls.type);
    w.uleb(cls.super_type == kNoIndex ? 0 : cls.super_type + 1);
    w.uleb(cls.interfaces.size());
    for (const auto i : cls.interfaces) w.uleb(i);
    w.uleb(cls.access_flags);
    w.uleb(cls.methods.size());
    for (const auto& m : cls.methods) {
      w.uleb(m.name);
      w.uleb(m.proto);
      w.uleb(m.access_flags);
      w.u8(m.code ? 1 : 0);
      if (m.code) {
        w.uleb(m.code->register_count);
        w.uleb(m.code->insns.size());
        for (const auto& insn : m.code->insns) encode_insn(w, insn);
      }
    }
  }
  return w.take();
}

DexFile DexFile::parse(std::span<const std::uint8_t> bytes) {
  SD_FAULT_POINT("dex.parse");
  ByteReader r{bytes};
  if (r.u32() != kMagic) throw ParseError("bad SDEX magic");
  if (r.u32() != kVersion) throw ParseError("unsupported SDEX version");

  DexFile dex;

  const auto string_count = r.count();
  dex.strings_.reserve(string_count);
  for (std::uint64_t i = 0; i < string_count; ++i)
    dex.strings_.push_back(r.str());

  const auto type_count = r.count();
  dex.types_.reserve(type_count);
  for (std::uint64_t i = 0; i < type_count; ++i)
    dex.types_.push_back(static_cast<std::uint32_t>(r.uleb()));

  const auto proto_count = r.count();
  dex.protos_.reserve(proto_count);
  for (std::uint64_t i = 0; i < proto_count; ++i) {
    Proto p;
    p.return_type = static_cast<std::uint32_t>(r.uleb());
    const auto params = r.count();
    p.param_types.reserve(params);
    for (std::uint64_t j = 0; j < params; ++j)
      p.param_types.push_back(static_cast<std::uint32_t>(r.uleb()));
    dex.protos_.push_back(std::move(p));
  }

  const auto method_count = r.count();
  dex.method_refs_.reserve(method_count);
  for (std::uint64_t i = 0; i < method_count; ++i) {
    MethodRef m;
    m.class_type = static_cast<std::uint32_t>(r.uleb());
    m.name = static_cast<std::uint32_t>(r.uleb());
    m.proto = static_cast<std::uint32_t>(r.uleb());
    dex.method_refs_.push_back(m);
  }

  const auto field_count = r.count();
  dex.field_refs_.reserve(field_count);
  for (std::uint64_t i = 0; i < field_count; ++i) {
    FieldRef f;
    f.class_type = static_cast<std::uint32_t>(r.uleb());
    f.name = static_cast<std::uint32_t>(r.uleb());
    f.type = static_cast<std::uint32_t>(r.uleb());
    dex.field_refs_.push_back(f);
  }

  const auto class_count = r.count();
  dex.class_defs_.reserve(class_count);
  for (std::uint64_t i = 0; i < class_count; ++i) {
    ClassDef cls;
    cls.type = static_cast<std::uint32_t>(r.uleb());
    const auto super_plus_one = r.uleb();
    cls.super_type = super_plus_one == 0
                         ? kNoIndex
                         : static_cast<std::uint32_t>(super_plus_one - 1);
    const auto iface_count = r.count();
    cls.interfaces.reserve(iface_count);
    for (std::uint64_t j = 0; j < iface_count; ++j)
      cls.interfaces.push_back(static_cast<std::uint32_t>(r.uleb()));
    cls.access_flags = static_cast<std::uint32_t>(r.uleb());
    const auto method_defs = r.count();
    cls.methods.reserve(method_defs);
    for (std::uint64_t j = 0; j < method_defs; ++j) {
      MethodDef m;
      m.name = static_cast<std::uint32_t>(r.uleb());
      m.proto = static_cast<std::uint32_t>(r.uleb());
      m.access_flags = static_cast<std::uint32_t>(r.uleb());
      if (r.u8() != 0) {
        MethodCode code;
        code.register_count = static_cast<std::uint16_t>(r.uleb());
        const auto insns = r.count();
        code.insns.reserve(insns);
        for (std::uint64_t k = 0; k < insns; ++k)
          code.insns.push_back(decode_insn(r));
        m.code = std::move(code);
      }
      cls.methods.push_back(std::move(m));
    }
    dex.class_defs_.push_back(std::move(cls));
  }

  if (!r.at_end()) throw ParseError("trailing bytes after class defs");
  dex.validate();
  return dex;
}

void DexFile::validate() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) throw ParseError(what);
  };

  for (const auto t : types_)
    check(t < strings_.size(), "type name index out of range");
  for (const auto& p : protos_) {
    check(p.return_type < types_.size(), "proto return type out of range");
    for (const auto t : p.param_types)
      check(t < types_.size(), "proto param type out of range");
  }
  for (const auto& m : method_refs_) {
    check(m.class_type < types_.size(), "method ref class out of range");
    check(m.name < strings_.size(), "method ref name out of range");
    check(m.proto < protos_.size(), "method ref proto out of range");
  }
  for (const auto& f : field_refs_) {
    check(f.class_type < types_.size(), "field ref class out of range");
    check(f.name < strings_.size(), "field ref name out of range");
    check(f.type < types_.size(), "field ref type out of range");
  }
  for (const auto& cls : class_defs_) {
    check(cls.type < types_.size(), "class type out of range");
    check(cls.super_type == kNoIndex || cls.super_type < types_.size(),
          "superclass type out of range");
    for (const auto i : cls.interfaces)
      check(i < types_.size(), "interface type out of range");
    for (const auto& m : cls.methods) {
      check(m.name < strings_.size(), "method name out of range");
      check(m.proto < protos_.size(), "method proto out of range");
      if (!m.code) continue;
      const auto insn_count = m.code->insns.size();
      for (const auto& insn : m.code->insns) {
        switch (insn.op) {
          case Opcode::kConstString:
            check(insn.index < strings_.size(), "string index out of range");
            break;
          case Opcode::kSget:
          case Opcode::kSput:
          case Opcode::kIget:
          case Opcode::kIput:
            check(insn.index < field_refs_.size(),
                  "field ref index out of range");
            break;
          case Opcode::kInvoke:
            check(insn.index < method_refs_.size(),
                  "method ref index out of range");
            break;
          case Opcode::kNewInstance:
          case Opcode::kLoadClass:
            check(insn.index < types_.size(), "type index out of range");
            break;
          case Opcode::kIfCmp:
          case Opcode::kGoto:
            check(insn.target < insn_count, "branch target out of range");
            break;
          default:
            break;
        }
      }
    }
  }
}

}  // namespace saintdroid
