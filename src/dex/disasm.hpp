// Text disassembler for SDEX containers — debugging aid and golden-output
// test surface.
#pragma once

#include <string>

#include "dex/dexfile.hpp"

namespace saintdroid {

/// Renders one instruction with pool references resolved to names.
std::string disassemble(const DexFile& dex, const Instruction& insn);

/// Renders a whole class (signature + every method body).
std::string disassemble(const DexFile& dex, const ClassDef& cls);

/// Renders the entire container.
std::string disassemble(const DexFile& dex);

}  // namespace saintdroid
