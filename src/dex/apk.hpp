// The APK container: a manifest plus one main dex and any number of
// secondary dexes (multi-dex / dynamic features loaded via kLoadClass).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dex/dexfile.hpp"
#include "dex/manifest.hpp"

namespace saintdroid {

/// An installable application package.
struct Apk {
  std::string name;  ///< display name for reports ("AFWall+", ...)
  Manifest manifest;
  /// dexes[0] is the main classes.dex loaded at install time; the rest are
  /// secondary dexes only reachable through kLoadClass (late binding).
  std::vector<DexFile> dexes;

  /// Total instruction count across all dexes — the app-size metric the
  /// paper plots as "KLOC of Dex code" (Fig. 3) when divided by 1000.
  std::uint64_t dex_loc() const;
  double kloc() const { return static_cast<double>(dex_loc()) / 1000.0; }

  /// Finds a class def across all dexes; returns {dex index, class def} or
  /// {kNoIndex, nullptr}.
  struct ClassLocation {
    std::uint32_t dex_index = kNoIndex;
    const ClassDef* class_def = nullptr;
  };
  ClassLocation find_class(std::string_view internal_name) const;

  std::vector<std::uint8_t> serialize() const;
  static Apk parse(std::span<const std::uint8_t> bytes);
};

}  // namespace saintdroid
