#include "dex/ids.hpp"

namespace saintdroid {

std::string MethodId::to_string() const {
  return class_name + "." + name + ":" + descriptor;
}

std::string FieldId::to_string() const {
  return class_name + "." + name + ":" + type;
}

}  // namespace saintdroid
