// The SDEX container: pools, class definitions, and (de)serialization.
//
// An SDEX file mirrors the structure of a Dalvik DEX file at the level the
// compatibility analyses care about: a string pool, a type pool (indices
// into strings), a prototype pool (return + parameter types), method and
// field reference pools, and a list of class definitions whose methods
// carry register-based code. All cross-references are pool indices and are
// range-validated during parse, so a DexFile that exists is well-formed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dex/ids.hpp"
#include "dex/instruction.hpp"

namespace saintdroid {

/// Sentinel "no index" value for optional pool references (e.g. the
/// superclass of java/lang/Object).
inline constexpr std::uint32_t kNoIndex = 0xffffffffu;

// Method/class access flags (subset of the Dalvik set that the analyses
// consult).
inline constexpr std::uint32_t kAccPublic = 0x0001;
inline constexpr std::uint32_t kAccPrivate = 0x0002;
inline constexpr std::uint32_t kAccProtected = 0x0004;
inline constexpr std::uint32_t kAccStatic = 0x0008;
inline constexpr std::uint32_t kAccInterface = 0x0200;
inline constexpr std::uint32_t kAccAbstract = 0x0400;
inline constexpr std::uint32_t kAccNative = 0x0100;
inline constexpr std::uint32_t kAccSynthetic = 0x1000;

/// Method prototype: return type + parameter types, as type-pool indices.
struct Proto {
  std::uint32_t return_type = kNoIndex;
  std::vector<std::uint32_t> param_types;
};

/// Symbolic reference to a method of some class (possibly external).
struct MethodRef {
  std::uint32_t class_type = kNoIndex;  ///< type pool index
  std::uint32_t name = kNoIndex;        ///< string pool index
  std::uint32_t proto = kNoIndex;       ///< proto pool index
};

/// Symbolic reference to a field of some class.
struct FieldRef {
  std::uint32_t class_type = kNoIndex;
  std::uint32_t name = kNoIndex;
  std::uint32_t type = kNoIndex;  ///< type pool index of the field type
};

/// Executable body of a method.
struct MethodCode {
  std::uint16_t register_count = 0;
  std::vector<Instruction> insns;
};

/// A method definition inside a class def.
struct MethodDef {
  std::uint32_t name = kNoIndex;   ///< string pool index
  std::uint32_t proto = kNoIndex;  ///< proto pool index
  std::uint32_t access_flags = kAccPublic;
  std::optional<MethodCode> code;  ///< absent for abstract/native methods
};

/// A class definition.
struct ClassDef {
  std::uint32_t type = kNoIndex;        ///< type pool index of this class
  std::uint32_t super_type = kNoIndex;  ///< kNoIndex for root classes
  std::vector<std::uint32_t> interfaces;
  std::uint32_t access_flags = kAccPublic;
  std::vector<MethodDef> methods;
};

/// An immutable, validated SDEX container.
///
/// Construct through DexBuilder (authoring) or parse() (decoding bytes);
/// both paths produce the same in-memory form, and serialize() ∘ parse()
/// round-trips exactly.
class DexFile {
 public:
  // -- pool access ---------------------------------------------------------
  const std::string& string_at(std::uint32_t idx) const;
  /// Slashed internal name of the type at `idx`.
  const std::string& type_name(std::uint32_t idx) const;
  const Proto& proto_at(std::uint32_t idx) const;
  const MethodRef& method_ref_at(std::uint32_t idx) const;
  const FieldRef& field_ref_at(std::uint32_t idx) const;

  std::span<const ClassDef> classes() const { return class_defs_; }

  std::size_t string_count() const { return strings_.size(); }
  std::size_t type_count() const { return types_.size(); }
  std::size_t proto_count() const { return protos_.size(); }
  std::size_t method_ref_count() const { return method_refs_.size(); }
  std::size_t field_ref_count() const { return field_refs_.size(); }

  // -- symbolic resolution helpers ------------------------------------------
  /// Builds the JVM descriptor string "(..)ret" for a proto pool entry.
  std::string descriptor_of(std::uint32_t proto_idx) const;

  /// Full identity of a method reference.
  MethodId method_id(const MethodRef& ref) const;
  MethodId method_id_at(std::uint32_t method_ref_idx) const;

  /// Full identity of a field reference.
  FieldId field_id(const FieldRef& ref) const;
  FieldId field_id_at(std::uint32_t field_ref_idx) const;

  /// Identity of a method *definition* inside a given class def.
  MethodId method_id(const ClassDef& cls, const MethodDef& method) const;

  /// Finds a class def by internal name; nullptr when absent.
  const ClassDef* find_class(std::string_view internal_name) const;

  // -- size metrics ----------------------------------------------------------
  /// Total instruction count across all method bodies; our stand-in for
  /// "lines of Dex code" when sizing apps (paper §IV-A).
  std::uint64_t instruction_count() const;

  /// Approximate in-memory footprint in bytes (used by the memory meter).
  std::uint64_t footprint_bytes() const;

  // -- (de)serialization -----------------------------------------------------
  std::vector<std::uint8_t> serialize() const;

  /// Decodes and fully validates a container; throws ParseError on any
  /// structural defect.
  static DexFile parse(std::span<const std::uint8_t> bytes);

 private:
  friend class DexBuilder;
  friend class DexParser;

  void validate() const;

  std::vector<std::string> strings_;
  std::vector<std::uint32_t> types_;  // indices into strings_
  std::vector<Proto> protos_;
  std::vector<MethodRef> method_refs_;
  std::vector<FieldRef> field_refs_;
  std::vector<ClassDef> class_defs_;
};

}  // namespace saintdroid
