// Symbolic identities shared by every layer above the container format.
//
// Classes are named with JVM-internal-style slashed names
// ("android/app/Activity"); methods are identified by (class, name,
// descriptor) where the descriptor uses JVM syntax — "(ILandroid/os/Bundle;)V".
// Override matching and API-database queries key on name+descriptor, which
// mirrors how the Dalvik resolver identifies methods.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace saintdroid {

/// Fully-qualified method identity.
struct MethodId {
  std::string class_name;  ///< slashed internal name, e.g. "android/view/View"
  std::string name;        ///< simple name, e.g. "drawableHotspotChanged"
  std::string descriptor;  ///< JVM descriptor, e.g. "(FF)V"

  friend bool operator==(const MethodId&, const MethodId&) = default;

  /// "class.name:descriptor", the form used in reports and test fixtures.
  std::string to_string() const;
};

/// Fully-qualified field identity.
struct FieldId {
  std::string class_name;
  std::string name;
  std::string type;  ///< field type descriptor

  friend bool operator==(const FieldId&, const FieldId&) = default;

  std::string to_string() const;
};

/// The field whose reads anchor every API-level guard in Android code.
inline const FieldId kSdkIntField{"android/os/Build$VERSION", "SDK_INT", "I"};

}  // namespace saintdroid

template <>
struct std::hash<saintdroid::MethodId> {
  std::size_t operator()(const saintdroid::MethodId& m) const noexcept {
    const std::size_t h1 = std::hash<std::string>{}(m.class_name);
    const std::size_t h2 = std::hash<std::string>{}(m.name);
    const std::size_t h3 = std::hash<std::string>{}(m.descriptor);
    return h1 ^ (h2 * 0x9e3779b97f4a7c15ULL) ^ (h3 << 1);
  }
};

template <>
struct std::hash<saintdroid::FieldId> {
  std::size_t operator()(const saintdroid::FieldId& f) const noexcept {
    const std::size_t h1 = std::hash<std::string>{}(f.class_name);
    const std::size_t h2 = std::hash<std::string>{}(f.name);
    return h1 ^ (h2 * 0x9e3779b97f4a7c15ULL);
  }
};
