// SDMC — the on-disk model-cache container.
//
// A `.sdmc` file wraps one serialized model artifact (a mined ApiDatabase,
// a substrate's structural tables) behind a versioned, keyed, checksummed
// header so a persistent cache directory can be shared by many processes:
//
//   * the key (kind, framework fingerprint, level, option bits) binds the
//     payload to exactly the (framework, level, options) it was computed
//     from — a stale or foreign entry is refused at open time and the
//     caller falls back to mining;
//   * the FNV-1a payload checksum turns any accidental corruption — a
//     torn write, a flipped bit — into a loud ParseError instead of a
//     silently wrong model (the inner payload decoders bound-check their
//     own indices, but some mutations parse cleanly; the checksum closes
//     that hole);
//   * writes are rename-atomic (temp file + std::rename), so concurrent
//     shard processes racing on one cache directory either see a complete
//     entry or none — never a half-written one.
//
// sdmc_open throws ParseError on *every* defect — wrong magic, wrong
// container version, mismatched key, bad checksum, truncation, trailing
// bytes. Cache layers catch ParseError and re-mine; fuzzers call it
// directly and assert the throw.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace saintdroid {

inline constexpr std::uint32_t kSdmcMagic = 0x434D4453;  // "SDMC"

/// Container format version. Bumped on any incompatible change to the
/// header or to a payload encoding; an old entry then fails to open and is
/// simply re-mined and overwritten (stale-version eviction). Version 2
/// added the semantic-table kind (docs/FORMAT.md).
inline constexpr std::uint32_t kSdmcFormatVersion = 2;

/// What a cache entry holds.
enum class SdmcKind : std::uint8_t {
  kApiDatabase = 1,       ///< ApiDatabase::serialize payload
  kSubstrateTables = 2,   ///< FrameworkSubstrate::serialize_tables payload
  kSemanticTable = 3,     ///< SemanticTable::serialize payload
  kIncrementalFacts = 4,  ///< per-app incremental analysis facts
                          ///< (core/incr_cache.hpp)
};

/// Full cache key of one entry. Payloads are pure functions of their key:
/// two processes agreeing on a key may share the entry byte-for-byte.
struct SdmcKey {
  SdmcKind kind = SdmcKind::kApiDatabase;
  /// framework_fingerprint() of the spec the model was computed from.
  std::string fingerprint;
  /// API level for level-keyed artifacts (substrate tables); 0 otherwise.
  int level = 0;
  /// Encoded option bits (substrate: bit 0 = index_methods); 0 otherwise.
  std::uint32_t options = 0;
};

/// FNV-1a 64 over `bytes` — the container's corruption detector (also
/// reusable as a generic content hash).
std::uint64_t sdmc_checksum(std::span<const std::uint8_t> bytes);

/// Wraps `payload` in a container carrying `key` and the payload checksum.
std::vector<std::uint8_t> sdmc_seal(const SdmcKey& key,
                                    std::span<const std::uint8_t> payload);

/// Unwraps a container and returns the payload. Throws ParseError when the
/// blob is not a current-version SDMC container, its key differs from
/// `expected` in any field, the checksum does not match, or any byte is
/// missing or left over. Never loads silently: every defect is a throw.
std::vector<std::uint8_t> sdmc_open(std::span<const std::uint8_t> blob,
                                    const SdmcKey& expected);

/// Creates `dir` (and parents) if missing. Throws ConfigError on failure.
void ensure_directory(const std::string& dir);

/// Writes `bytes` to `path` rename-atomically: the data lands in a
/// process-unique temp file in the same directory, then one std::rename
/// publishes it. Concurrent writers race benignly (last rename wins; with
/// identical content the race is invisible). Throws ConfigError on I/O
/// failure.
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Reads a whole file; nullopt when it does not exist. Throws ConfigError
/// on a file that exists but cannot be read.
std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path);

}  // namespace saintdroid
