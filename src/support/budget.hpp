// Cooperative analysis budgets.
//
// A corpus-scale batch run (paper §IV: 18,000 apps) cannot let one
// pathological app — a degenerate class hierarchy, an adversarially deep
// call structure — consume unbounded time or memory. Budgets bound the
// three quantities that actually blow up in practice: classes
// materialized through the CLVM, analysis worklist/fixpoint steps, and
// wall-clock time. Exhaustion is *cooperative and graceful*: the checks
// return false and the analysis degrades to a partial result flagged
// `incomplete` (plus a flat-scan fallback for API checks) — it never
// throws, so a budgeted app still produces a usable report row.
//
// Class and step budgets are deterministic (same inputs, same cutoff, at
// any worker count); the wall-clock deadline necessarily is not, and is
// meant for operational hard caps rather than reproducible experiments.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/meter.hpp"

namespace saintdroid {

/// Per-analysis resource limits. Zero means unlimited.
struct AnalysisBudget {
  /// Classes the provider may materialize before loads start failing soft
  /// (ClassLoaderVm::load returns nullptr, as for an unknown class).
  std::uint64_t max_loaded_classes = 0;
  /// Combined cap on AUM worklist pops and guard-fixpoint iterations.
  std::uint64_t max_worklist_steps = 0;
  /// Wall-clock deadline for one app's analysis, in seconds.
  double deadline_seconds = 0.0;
  /// External cancellation, for a server revoking an in-flight analysis:
  /// when non-null and set, the next budget check trips with reason
  /// "cancelled" and the analysis degrades exactly like any other
  /// exhaustion — partial report flagged incomplete plus the flat-scan
  /// fallback, never a wedged worker. The pointee must outlive the
  /// analysis; nullptr (the default) means not cancellable.
  const std::atomic<bool>* cancel = nullptr;

  bool unlimited() const {
    return max_loaded_classes == 0 && max_worklist_steps == 0 &&
           deadline_seconds <= 0.0 && cancel == nullptr;
  }
};

/// Run-time enforcement of one analysis' budget. Exhaustion is sticky:
/// once any limit trips, every later check fails and reason() names the
/// first limit hit. Not thread-safe — one tracker per analysis, which is
/// single-threaded by construction.
class BudgetTracker {
 public:
  /// Unlimited tracker (never exhausts).
  BudgetTracker() = default;
  explicit BudgetTracker(AnalysisBudget budget) : budget_(budget) {}

  /// Accounts one worklist/fixpoint step; false when the analysis must
  /// stop (step cap or deadline exceeded).
  bool allow_step();

  /// May another class be materialized, given `loaded_so_far` already are?
  bool allow_class(std::uint64_t loaded_so_far);

  bool exhausted() const { return reason_ != nullptr; }
  /// "classes", "steps", "deadline" or "cancelled"; nullptr while within
  /// budget.
  const char* reason() const { return reason_; }

 private:
  AnalysisBudget budget_{};
  Stopwatch watch_;
  std::uint64_t steps_ = 0;
  const char* reason_ = nullptr;
};

}  // namespace saintdroid
