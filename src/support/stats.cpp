#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/errors.hpp"

namespace saintdroid {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  SD_EXPECTS(p >= 0.0 && p <= 100.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

}  // namespace saintdroid
