#include "support/log.hpp"

#include <cstdio>

namespace saintdroid {

namespace {
LogLevel g_level = LogLevel::kOff;
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[saintdroid] %.*s\n",
               static_cast<int>(message.size()), message.data());
}

}  // namespace saintdroid
