// Resource accounting for the RQ3 performance experiments.
//
// The paper reports wall-clock analysis time (Table III, Fig. 3) and memory
// footprint during analysis (Fig. 4). Wall-clock we measure directly;
// "memory" we account as bytes *materialized* by an analyzer — every class
// body parsed, every CFG built — which is exactly the quantity SAINTDroid's
// lazy CLVM minimizes relative to CID's eager loading. Accounting bytes
// (instead of sampling RSS) keeps the experiment deterministic and isolates
// the algorithmic difference the paper attributes the gap to.
#pragma once

#include <chrono>
#include <cstdint>

namespace saintdroid {

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Tracks bytes materialized by one analysis run: current footprint and the
/// peak, which is the number Fig. 4 compares across tools.
class MemoryMeter {
 public:
  void allocate(std::uint64_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
    total_ += bytes;
  }

  void release(std::uint64_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  std::uint64_t current_bytes() const { return current_; }
  std::uint64_t peak_bytes() const { return peak_; }
  /// Cumulative bytes ever materialized (never decreases).
  std::uint64_t total_bytes() const { return total_; }

  void reset() { current_ = peak_ = total_ = 0; }

 private:
  std::uint64_t current_ = 0;
  std::uint64_t peak_ = 0;
  std::uint64_t total_ = 0;
};

/// Combined cost of one analyzer run, returned by every Analyzer.
struct ResourceUsage {
  double seconds = 0.0;             ///< wall-clock analysis time
  std::uint64_t peak_bytes = 0;     ///< peak materialized footprint
  std::uint64_t loaded_classes = 0; ///< classes parsed during analysis
};

}  // namespace saintdroid
