#include "support/faults.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

namespace saintdroid {

namespace {

// The armed flag is the only state touched when injection is off; the
// plan itself lives behind a mutex-guarded shared_ptr so hit() can read
// it while arm()/disarm() swap it without lifetime races.
std::atomic<bool> g_armed{false};
std::mutex g_plan_mutex;
std::shared_ptr<const FaultPlan> g_plan;  // guarded by g_plan_mutex

thread_local std::string t_context;

std::shared_ptr<const FaultPlan> current_plan() {
  const std::lock_guard lock{g_plan_mutex};
  return g_plan;
}

}  // namespace

const FaultSpec* FaultPlan::match(std::string_view point,
                                  std::string_view context) const {
  for (const auto& spec : faults)
    if (spec.point == point && (spec.context.empty() || spec.context == context))
      return &spec;
  return nullptr;
}

namespace faults {

bool armed() { return g_armed.load(std::memory_order_relaxed); }

void arm(FaultPlan plan) {
  {
    const std::lock_guard lock{g_plan_mutex};
    g_plan = std::make_shared<const FaultPlan>(std::move(plan));
  }
  g_armed.store(true, std::memory_order_release);
}

void disarm() {
  g_armed.store(false, std::memory_order_relaxed);
  const std::lock_guard lock{g_plan_mutex};
  g_plan.reset();
}

void hit(const char* point) {
  const std::shared_ptr<const FaultPlan> plan = current_plan();
  if (!plan) return;
  const FaultSpec* spec = plan->match(point, t_context);
  if (!spec) return;
  switch (spec->kind) {
    case FaultSpec::Kind::kParse:
      throw ParseError("injected fault at " + std::string{point});
    case FaultSpec::Kind::kResolve:
      throw ResolveError("injected fault at " + std::string{point});
    case FaultSpec::Kind::kInjected:
      break;
  }
  throw InjectedFault(point, t_context);
}

const std::string& context() { return t_context; }

}  // namespace faults

FaultContextScope::FaultContextScope(std::string context)
    : previous_(std::exchange(t_context, std::move(context))) {}

FaultContextScope::~FaultContextScope() {
  t_context = std::move(previous_);
}

}  // namespace saintdroid
