// RetryOnce: call_once semantics with a well-defined exceptional path.
//
// std::call_once promises that a throwing callable leaves the flag
// unsatisfied so a later caller retries — exactly the contract the
// framework caches want (a transient build failure poisons one analysis,
// not the slot). In practice that exceptional path is a portability trap:
// ThreadSanitizer's pthread_once interceptor (and glibc builds where
// call_once lowers to pthread_once) never resets the in-progress state
// when the callable unwinds, so the *next* caller deadlocks on a futex
// nobody will ever wake. Our sanitizer CI runs the fault-injection tests,
// which throw from inside once-guarded builds on purpose, so the trap is
// load-bearing here.
//
// RetryOnce is the boring, correct alternative: double-checked locking
// over a plain mutex. Success publishes with a release store matched by
// the fast-path acquire load; an exception unlocks the mutex and leaves
// `done_` false, so the next caller simply rebuilds. Concurrent first
// callers serialize on the mutex like call_once's passive waiters, and
// after the first success the cost is one uncontended atomic load.
#pragma once

#include <atomic>
#include <mutex>
#include <utility>

namespace saintdroid {

class RetryOnce {
 public:
  /// Runs `fn` if no prior call succeeded; returns once some call has.
  /// If `fn` throws, the exception propagates and the flag stays
  /// unsatisfied — the next call() retries.
  template <typename Fn>
  void call(Fn&& fn) {
    if (done_.load(std::memory_order_acquire)) return;
    const std::lock_guard<std::mutex> lock{mutex_};
    if (done_.load(std::memory_order_relaxed)) return;
    std::forward<Fn>(fn)();
    done_.store(true, std::memory_order_release);
  }

  /// True once a call() has completed successfully (acquire-ordered, so a
  /// true result also publishes everything the callable wrote).
  bool satisfied() const { return done_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> done_{false};
  std::mutex mutex_;
};

}  // namespace saintdroid
