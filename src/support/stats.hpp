// Small statistics helpers for the benchmark harnesses: Welford online
// moments plus percentile extraction over collected samples.
#pragma once

#include <cstddef>
#include <vector>

namespace saintdroid {

/// Online mean/variance/min/max accumulator (Welford's algorithm); O(1)
/// space regardless of sample count.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (p in [0,100]) of `samples` using linear
/// interpolation between closest ranks. Copies and sorts; intended for
/// end-of-run reporting, not hot paths. Returns 0 for an empty input.
double percentile(std::vector<double> samples, double p);

}  // namespace saintdroid
