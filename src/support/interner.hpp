// String interner: maps strings to dense 32-bit ids and back.
//
// The SDEX pools, the class hierarchy and the API database all key on type
// and method names; interning turns those comparisons into integer
// comparisons and deduplicates storage across thousands of analyzed apps.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace saintdroid {

/// Dense id assigned by a StringInterner. 0 is a valid id.
using Symbol = std::uint32_t;

class StringInterner {
 public:
  /// Returns the id for `s`, inserting it on first sight. Heterogeneous
  /// lookup: probing never materializes a temporary std::string; one
  /// allocation happens only on genuine first sight.
  Symbol intern(std::string_view s);

  /// Returns the string for an id previously returned by intern().
  const std::string& lookup(Symbol id) const;

  /// Returns the id for `s` if already interned, or npos. Allocation-free.
  Symbol find(std::string_view s) const;

  /// Pre-sizes both tables for `expected` distinct strings (the SDEX pool
  /// loaders know their pool sizes up front).
  void reserve(std::size_t expected);

  std::size_t size() const { return strings_.size(); }

  static constexpr Symbol npos = ~Symbol{0};

 private:
  // Transparent hash/equality so string_view probes hit std::string keys
  // directly (P0919 heterogeneous unordered lookup).
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::unordered_map<std::string, Symbol, Hash, Eq> ids_;
  std::vector<std::string> strings_;
};

}  // namespace saintdroid
