// Minimal leveled logging to stderr. Off by default; benchmarks and the
// examples raise the level for progress reporting. Not thread-safe by
// design — all analyses in this repository are single-threaded per app.
#pragma once

#include <string_view>

namespace saintdroid {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2 };

/// Sets the global log threshold. Messages at levels above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one line to stderr if `level` is at or below the threshold.
void log(LogLevel level, std::string_view message);

inline void log_info(std::string_view message) {
  log(LogLevel::kInfo, message);
}
inline void log_debug(std::string_view message) {
  log(LogLevel::kDebug, message);
}

}  // namespace saintdroid
