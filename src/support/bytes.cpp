#include "support/bytes.hpp"

namespace saintdroid {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::uleb(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::sleb(std::int64_t v) {
  // Zig-zag: interleaves negative and non-negative values.
  const auto u = static_cast<std::uint64_t>(v);
  uleb((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::str(std::string_view s) {
  uleb(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  const std::uint16_t lo = u8();
  const std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  require(4);
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  require(8);
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::uint64_t ByteReader::uleb() {
  std::uint64_t result = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t byte = u8();
    if (shift >= 64) throw ParseError("overlong ULEB128");
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
}

std::int64_t ByteReader::sleb() {
  const std::uint64_t u = uleb();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::uint64_t ByteReader::count(std::uint64_t min_element_bytes) {
  const std::uint64_t n = uleb();
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (n > remaining() / min_element_bytes)
    throw ParseError("element count exceeds remaining input");
  return n;
}

std::string ByteReader::str() {
  const std::uint64_t n = uleb();
  require(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace saintdroid
