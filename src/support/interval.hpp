// Closed intervals of Android API levels.
//
// The guard analysis (src/analysis/guards.hpp) and all three mismatch
// detectors reason about which device API levels a statement can execute
// under; that set is always a contiguous closed interval [lo, hi] — guards
// in real apps compare Build.VERSION.SDK_INT against constants, which can
// only split the level axis into contiguous pieces.
#pragma once

#include <algorithm>
#include <compare>
#include <string>

namespace saintdroid {

/// API levels modelled by the framework substrate. The paper's ARM mines
/// levels 2..28 and the tool supports up to 29; we model the full 2..29.
inline constexpr int kMinApiLevel = 2;
inline constexpr int kMaxApiLevel = 29;

/// The level that introduced the runtime (dangerous) permission system.
inline constexpr int kRuntimePermissionLevel = 23;

/// A closed, possibly-empty interval of API levels.
class ApiInterval {
 public:
  /// The canonical empty interval.
  constexpr ApiInterval() : lo_(1), hi_(0) {}

  /// [lo, hi]; an inverted pair denotes the empty interval.
  constexpr ApiInterval(int lo, int hi) : lo_(lo), hi_(hi) {}

  /// The full modelled range [kMinApiLevel, kMaxApiLevel].
  static constexpr ApiInterval full() {
    return ApiInterval{kMinApiLevel, kMaxApiLevel};
  }

  /// The empty interval.
  static constexpr ApiInterval empty_interval() { return ApiInterval{}; }

  constexpr int lo() const { return lo_; }
  constexpr int hi() const { return hi_; }
  constexpr bool empty() const { return lo_ > hi_; }
  constexpr bool contains(int level) const {
    return lo_ <= level && level <= hi_;
  }

  /// Set intersection (always exact for intervals).
  constexpr ApiInterval intersect(ApiInterval other) const {
    return ApiInterval{std::max(lo_, other.lo_), std::min(hi_, other.hi_)};
  }

  /// Convex hull of the union; over-approximates the true union when the
  /// operands are disjoint, which is the sound direction for a
  /// may-execute-under analysis.
  constexpr ApiInterval hull(ApiInterval other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return ApiInterval{std::min(lo_, other.lo_), std::max(hi_, other.hi_)};
  }

  /// Number of levels in the interval.
  constexpr int size() const { return empty() ? 0 : hi_ - lo_ + 1; }

  friend constexpr bool operator==(ApiInterval a, ApiInterval b) {
    if (a.empty() && b.empty()) return true;
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  /// "[lo,hi]" or "[]" for debugging and reports.
  std::string to_string() const;

 private:
  int lo_;
  int hi_;
};

}  // namespace saintdroid
