#include "support/budget.hpp"

namespace saintdroid {

bool BudgetTracker::allow_step() {
  if (reason_) return false;
  ++steps_;
  if (budget_.max_worklist_steps != 0 && steps_ > budget_.max_worklist_steps) {
    reason_ = "steps";
    return false;
  }
  if (budget_.cancel != nullptr &&
      budget_.cancel->load(std::memory_order_relaxed)) {
    reason_ = "cancelled";
    return false;
  }
  if (budget_.deadline_seconds > 0.0 &&
      watch_.seconds() > budget_.deadline_seconds) {
    reason_ = "deadline";
    return false;
  }
  return true;
}

bool BudgetTracker::allow_class(std::uint64_t loaded_so_far) {
  if (reason_) return false;
  if (budget_.cancel != nullptr &&
      budget_.cancel->load(std::memory_order_relaxed)) {
    reason_ = "cancelled";
    return false;
  }
  if (budget_.max_loaded_classes != 0 &&
      loaded_so_far >= budget_.max_loaded_classes) {
    reason_ = "classes";
    return false;
  }
  return true;
}

}  // namespace saintdroid
