// Cooperative process shutdown on SIGINT/SIGTERM.
//
// Long-running commands (`batch`, `work`, `serve`) must not die mid-row: a
// kill that lands between two journal appends is recoverable, but dying
// *inside* an append leaves a torn line, and dying inside an analysis
// wastes the in-flight app. The handler installed here only sets a flag;
// the run loops poll it at row/lease/request boundaries, finish the work
// in flight, seal their journals, and exit with kShutdownExitCode so
// callers can tell "interrupted cleanly" from "failed".
//
// The flag is process-global on purpose — a signal is process-global — and
// monotonic: once requested, shutdown stays requested (a second signal
// while draining changes nothing; the default disposition was replaced, so
// repeated signals never kill the process mid-seal).
#pragma once

#include <atomic>

namespace saintdroid {

/// Exit code of a run that was interrupted by SIGINT/SIGTERM and shut down
/// cleanly (journal sealed, in-flight work finished). Distinct from the
/// commands' 0/1/2/3 codes.
inline constexpr int kShutdownExitCode = 4;

/// Installs SIGINT/SIGTERM handlers that set the shutdown flag. Idempotent;
/// async-signal-safe handler (a lock-free atomic store, nothing else).
void install_shutdown_handlers();

/// True once any shutdown signal arrived.
bool shutdown_requested();

/// The signal that triggered shutdown (SIGINT/SIGTERM), 0 while none has.
int shutdown_signal();

/// The flag itself, for wiring into cooperative-cancellation points
/// (AnalysisBudget::cancel, SuiteRunOptions::stop). Stable address for the
/// process lifetime.
const std::atomic<bool>& shutdown_flag();

/// Clears the flag — tests only (signals are process-global, tests reuse
/// the process).
void reset_shutdown_for_tests();

}  // namespace saintdroid
