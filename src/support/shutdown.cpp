#include "support/shutdown.hpp"

#include <csignal>

namespace saintdroid {

namespace {

std::atomic<bool> g_requested{false};
std::atomic<int> g_signal{0};

extern "C" void shutdown_handler(int sig) {
  // Async-signal-safe: lock-free atomic stores only.
  g_signal.store(sig, std::memory_order_relaxed);
  g_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handlers() {
  struct sigaction action {};
  action.sa_handler = shutdown_handler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: blocking accept/read loops must wake up to notice the
  // flag instead of sleeping through the shutdown request.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool shutdown_requested() {
  return g_requested.load(std::memory_order_relaxed);
}

int shutdown_signal() { return g_signal.load(std::memory_order_relaxed); }

const std::atomic<bool>& shutdown_flag() { return g_requested; }

void reset_shutdown_for_tests() {
  g_requested.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
}

}  // namespace saintdroid
