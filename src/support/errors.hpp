// Error taxonomy and contract-checking macros shared by every saintdroid
// module.
//
// Malformed *input* (a truncated dex file, an out-of-range pool index in
// bytes we parsed) raises an exception derived from saintdroid::Error.
// Violated *contracts* (programmer errors: a caller passing an empty
// interval where a non-empty one is required) abort via SD_EXPECTS, which is
// active in all build types — analyses are cheap enough that we never need
// to compile the checks out.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace saintdroid {

/// Base class for all errors raised by the saintdroid libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when serialized input (an SDEX container, a framework image) is
/// structurally invalid: bad magic, truncated section, index out of range.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Raised when a symbolic reference cannot be resolved against the loaded
/// class universe and the caller asked for strict resolution.
class ResolveError : public Error {
 public:
  explicit ResolveError(const std::string& what)
      : Error("resolve error: " + what) {}
};

/// Raised when an analysis is configured inconsistently (e.g. an app whose
/// manifest declares minSdk > maxSdk).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error("config error: " + what) {}
};

/// Structured failure classification for batch fault isolation: when a
/// per-app analysis dies, the suite records *what class of thing* went
/// wrong so operators can triage a corpus run without reading messages.
enum class FailureKind : std::uint8_t {
  kParse = 0,   ///< malformed input (ParseError)
  kResolve,     ///< unresolvable symbolic reference (ResolveError)
  kConfig,      ///< inconsistent analysis configuration (ConfigError)
  kInjected,    ///< deliberately injected fault (support/faults.hpp)
  kInternal,    ///< anything else that escaped the analyzer
};

const char* failure_kind_name(FailureKind kind);
/// Inverse of failure_kind_name; kInternal for unknown names.
FailureKind failure_kind_from_name(std::string_view name);
/// Maps a caught exception to its taxonomy bucket (by dynamic type).
FailureKind classify_failure(const std::exception& error);

/// Names the analysis phase active on this thread, so a failure can be
/// attributed to the stage it escaped from ("load", "model", "detect",
/// ...). When an exception unwinds through a PhaseScope, the innermost
/// scope's name is captured; take_failure_phase() retrieves and clears it.
/// Scopes nest; purely thread-local, so concurrent workers never interact.
class PhaseScope {
 public:
  explicit PhaseScope(const char* phase);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const char* previous_;
  int uncaught_;
};

/// The phase captured by the most recent exceptional unwind on this
/// thread, or "" when none was recorded. Clears the captured value.
std::string take_failure_phase();
/// Drops any stale captured phase (call before starting a fresh analysis).
void clear_failure_phase();

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line);
}  // namespace detail

}  // namespace saintdroid

/// Precondition check; aborts with a diagnostic when violated.
#define SD_EXPECTS(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::saintdroid::detail::contract_failure("precondition", #expr,      \
                                             __FILE__, __LINE__);        \
  } while (false)

/// Postcondition check; aborts with a diagnostic when violated.
#define SD_ENSURES(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::saintdroid::detail::contract_failure("postcondition", #expr,     \
                                             __FILE__, __LINE__);        \
  } while (false)
