// Error taxonomy and contract-checking macros shared by every saintdroid
// module.
//
// Malformed *input* (a truncated dex file, an out-of-range pool index in
// bytes we parsed) raises an exception derived from saintdroid::Error.
// Violated *contracts* (programmer errors: a caller passing an empty
// interval where a non-empty one is required) abort via SD_EXPECTS, which is
// active in all build types — analyses are cheap enough that we never need
// to compile the checks out.
#pragma once

#include <stdexcept>
#include <string>

namespace saintdroid {

/// Base class for all errors raised by the saintdroid libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when serialized input (an SDEX container, a framework image) is
/// structurally invalid: bad magic, truncated section, index out of range.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Raised when a symbolic reference cannot be resolved against the loaded
/// class universe and the caller asked for strict resolution.
class ResolveError : public Error {
 public:
  explicit ResolveError(const std::string& what)
      : Error("resolve error: " + what) {}
};

/// Raised when an analysis is configured inconsistently (e.g. an app whose
/// manifest declares minSdk > maxSdk).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error("config error: " + what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line);
}  // namespace detail

}  // namespace saintdroid

/// Precondition check; aborts with a diagnostic when violated.
#define SD_EXPECTS(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::saintdroid::detail::contract_failure("precondition", #expr,      \
                                             __FILE__, __LINE__);        \
  } while (false)

/// Postcondition check; aborts with a diagnostic when violated.
#define SD_ENSURES(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::saintdroid::detail::contract_failure("postcondition", #expr,     \
                                             __FILE__, __LINE__);        \
  } while (false)
