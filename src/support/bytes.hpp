// Bounds-checked binary serialization used by the SDEX container format.
//
// ByteWriter appends little-endian fixed-width integers, ULEB128 varints and
// length-prefixed strings to an owned buffer; ByteReader consumes the same
// encodings from a non-owning span and throws ParseError on any truncation
// or overlong varint, so a corrupted container can never read out of bounds.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/errors.hpp"

namespace saintdroid {

/// Append-only binary encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// Unsigned LEB128 varint (1-10 bytes).
  void uleb(std::uint64_t v);

  /// Signed value encoded via zig-zag + ULEB128.
  void sleb(std::int64_t v);

  /// ULEB128 length prefix followed by raw bytes.
  void str(std::string_view s);

  /// Raw byte copy with no framing.
  void bytes(std::span<const std::uint8_t> data);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked binary decoder over a non-owning view; the viewed bytes
/// must outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t uleb();
  std::int64_t sleb();
  std::string str();

  /// Reads a ULEB element count and validates it against the bytes left:
  /// every element encodes to at least `min_element_bytes`, so any larger
  /// claim is a corrupt container (and would otherwise drive unbounded
  /// allocation). Throws ParseError on implausible counts.
  std::uint64_t count(std::uint64_t min_element_bytes = 1);

  /// Bytes consumed so far.
  std::size_t offset() const { return pos_; }

  /// Bytes still unread.
  std::size_t remaining() const { return data_.size() - pos_; }

  bool at_end() const { return pos_ == data_.size(); }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw ParseError("truncated input");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace saintdroid
