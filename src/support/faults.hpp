// Deterministic fault injection for robustness testing.
//
// Production code is instrumented with named SD_FAULT_POINT(...) hooks at
// the places a large corpus run can realistically die: container parsing,
// framework (ADF) image construction, and CLVM class materialization.
// When no plan is armed a hook is a single relaxed atomic load — cheap
// enough to stay compiled into release builds, so the tested binary is
// the shipped binary.
//
// Faults fire from an explicit *injection plan*, never from wall-clock or
// default-seeded randomness: a plan lists (point, context) pairs, where
// the context is the app identity the batch harness sets around each
// per-app analysis (FaultContextScope). The same plan therefore kills
// exactly the same apps on every run and at every worker count — the
// property the fault-isolation suite (tests/test_faults.cpp) asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/errors.hpp"

namespace saintdroid {

/// Raised by a firing fault point (FaultSpec::Kind::kInjected).
class InjectedFault : public Error {
 public:
  InjectedFault(const std::string& point, const std::string& context)
      : Error("injected fault at " + point +
              (context.empty() ? "" : " analyzing " + context)) {}
};

/// One planned fault.
struct FaultSpec {
  /// Which exception type the point raises — kParse/kResolve model real
  /// failure classes surfacing at that point; kInjected is unmistakably
  /// synthetic (classified as FailureKind::kInjected in suite rows).
  enum class Kind : std::uint8_t { kInjected = 0, kParse, kResolve };

  std::string point;    ///< fault-point name ("clvm.materialize", ...)
  std::string context;  ///< victim context; "" matches any context
  Kind kind = Kind::kInjected;
};

/// A set of planned faults. Immutable while armed.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  /// The spec matching (point, context), or nullptr.
  const FaultSpec* match(std::string_view point,
                         std::string_view context) const;
};

namespace faults {

/// True when a plan is armed. The fast path of every fault point.
bool armed();

/// Arms `plan` process-wide, replacing any armed plan. Test-only by
/// design; arming while analyses run is safe (hooks copy a shared handle)
/// but makes *which* apps were hit depend on timing.
void arm(FaultPlan plan);

/// Disarms fault injection.
void disarm();

/// Called by SD_FAULT_POINT when armed: throws the planned exception if
/// the plan matches (point, current context); otherwise returns.
void hit(const char* point);

/// The calling thread's current fault context ("" outside any scope).
const std::string& context();

}  // namespace faults

/// Arms a plan for the current scope (test fixture helper).
class FaultScope {
 public:
  explicit FaultScope(FaultPlan plan) { faults::arm(std::move(plan)); }
  ~FaultScope() { faults::disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

/// Establishes the per-thread fault context (the app under analysis).
/// Nests; restores the previous context on destruction.
class FaultContextScope {
 public:
  explicit FaultContextScope(std::string context);
  ~FaultContextScope();
  FaultContextScope(const FaultContextScope&) = delete;
  FaultContextScope& operator=(const FaultContextScope&) = delete;

 private:
  std::string previous_;
};

}  // namespace saintdroid

/// Names a place where a planned fault may fire. No-op (one relaxed
/// atomic load) unless a plan is armed.
#define SD_FAULT_POINT(name)                                              \
  do {                                                                    \
    if (::saintdroid::faults::armed()) ::saintdroid::faults::hit(name);   \
  } while (false)
