#include "support/interner.hpp"

#include "support/errors.hpp"

namespace saintdroid {

Symbol StringInterner::intern(std::string_view s) {
  if (const auto it = ids_.find(s); it != ids_.end()) return it->second;
  const auto id = static_cast<Symbol>(strings_.size());
  SD_EXPECTS(id != npos);
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

const std::string& StringInterner::lookup(Symbol id) const {
  SD_EXPECTS(id < strings_.size());
  return strings_[id];
}

Symbol StringInterner::find(std::string_view s) const {
  const auto it = ids_.find(s);
  return it == ids_.end() ? npos : it->second;
}

void StringInterner::reserve(std::size_t expected) {
  ids_.reserve(expected);
  strings_.reserve(expected);
}

}  // namespace saintdroid
