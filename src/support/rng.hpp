// Deterministic pseudo-random generation for workload synthesis.
//
// Every generator in the repository is seeded explicitly so that two runs of
// any benchmark construct byte-identical workloads (DESIGN.md §5.5). We use
// SplitMix64 for seeding and xoshiro256** as the workhorse engine; both are
// tiny, fast and have well-understood statistical behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "support/errors.hpp"

namespace saintdroid {

/// SplitMix64 step: turns an arbitrary 64-bit state into a well-mixed
/// output while advancing the state. Used to derive independent seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5a17d401dULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    SD_EXPECTS(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Debiased modulo (Lemire-style rejection is overkill for workload gen).
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p) { return uniform01() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    SD_EXPECTS(!items.empty());
    return items[static_cast<std::size_t>(
        uniform(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Derives an independent child generator; useful for giving each
  /// generated artifact its own stream so insertions stay stable.
  Rng fork() { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace saintdroid
