#include "support/meter.hpp"

// Header-only types; this translation unit exists so the library has an
// archive member for the target and a home for future out-of-line helpers.
