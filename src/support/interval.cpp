#include "support/interval.hpp"

namespace saintdroid {

std::string ApiInterval::to_string() const {
  if (empty()) return "[]";
  return "[" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
}

}  // namespace saintdroid
