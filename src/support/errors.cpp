#include "support/errors.hpp"

#include <cstdio>
#include <cstdlib>

namespace saintdroid::detail {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line) {
  std::fprintf(stderr, "saintdroid: %s violated: %s (%s:%d)\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace saintdroid::detail
