#include "support/errors.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "support/faults.hpp"

namespace saintdroid {

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kParse: return "parse";
    case FailureKind::kResolve: return "resolve";
    case FailureKind::kConfig: return "config";
    case FailureKind::kInjected: return "injected";
    case FailureKind::kInternal: return "internal";
  }
  return "internal";
}

FailureKind failure_kind_from_name(std::string_view name) {
  if (name == "parse") return FailureKind::kParse;
  if (name == "resolve") return FailureKind::kResolve;
  if (name == "config") return FailureKind::kConfig;
  if (name == "injected") return FailureKind::kInjected;
  return FailureKind::kInternal;
}

FailureKind classify_failure(const std::exception& error) {
  // Most-derived types first: InjectedFault is an Error, so it must be
  // checked before the broad buckets.
  if (dynamic_cast<const InjectedFault*>(&error))
    return FailureKind::kInjected;
  if (dynamic_cast<const ParseError*>(&error)) return FailureKind::kParse;
  if (dynamic_cast<const ResolveError*>(&error)) return FailureKind::kResolve;
  if (dynamic_cast<const ConfigError*>(&error)) return FailureKind::kConfig;
  return FailureKind::kInternal;
}

namespace {

thread_local const char* t_phase = nullptr;
thread_local const char* t_failure_phase = nullptr;

}  // namespace

PhaseScope::PhaseScope(const char* phase)
    : previous_(t_phase), uncaught_(std::uncaught_exceptions()) {
  t_phase = phase;
}

PhaseScope::~PhaseScope() {
  // An exception is unwinding through this scope: the innermost scope
  // (destroyed first) records its phase; enclosing scopes leave it alone.
  if (std::uncaught_exceptions() > uncaught_ && t_failure_phase == nullptr)
    t_failure_phase = t_phase;
  t_phase = previous_;
}

std::string take_failure_phase() {
  const char* phase = t_failure_phase;
  t_failure_phase = nullptr;
  return phase ? std::string{phase} : std::string{};
}

void clear_failure_phase() { t_failure_phase = nullptr; }

namespace detail {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line) {
  std::fprintf(stderr, "saintdroid: %s violated: %s (%s:%d)\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace detail

}  // namespace saintdroid
