#include "support/sdmc.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/bytes.hpp"
#include "support/errors.hpp"

namespace saintdroid {

std::uint64_t sdmc_checksum(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::vector<std::uint8_t> sdmc_seal(const SdmcKey& key,
                                    std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u32(kSdmcMagic);
  w.u32(kSdmcFormatVersion);
  w.u8(static_cast<std::uint8_t>(key.kind));
  w.str(key.fingerprint);
  w.sleb(key.level);
  w.uleb(key.options);
  w.u64(sdmc_checksum(payload));
  w.uleb(payload.size());
  w.bytes(payload);
  return w.take();
}

std::vector<std::uint8_t> sdmc_open(std::span<const std::uint8_t> blob,
                                    const SdmcKey& expected) {
  ByteReader r{blob};
  if (r.u32() != kSdmcMagic) throw ParseError("bad model-cache magic");
  if (r.u32() != kSdmcFormatVersion)
    throw ParseError("unsupported model-cache format version");
  if (r.u8() != static_cast<std::uint8_t>(expected.kind))
    throw ParseError("model-cache entry kind mismatch");
  if (r.str() != expected.fingerprint)
    throw ParseError("model-cache framework fingerprint mismatch");
  if (r.sleb() != expected.level)
    throw ParseError("model-cache level mismatch");
  if (r.uleb() != expected.options)
    throw ParseError("model-cache options mismatch");
  const std::uint64_t checksum = r.u64();
  const std::uint64_t size = r.uleb();
  if (size > r.remaining()) throw ParseError("truncated model-cache payload");
  std::vector<std::uint8_t> payload(
      blob.begin() + static_cast<std::ptrdiff_t>(r.offset()),
      blob.begin() + static_cast<std::ptrdiff_t>(r.offset() + size));
  if (r.remaining() != size)
    throw ParseError("trailing bytes after model-cache payload");
  if (sdmc_checksum(payload) != checksum)
    throw ParseError("model-cache payload checksum mismatch");
  return payload;
}

void ensure_directory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec && !std::filesystem::is_directory(dir))
    throw ConfigError("cannot create cache directory " + dir + ": " +
                      ec.message());
}

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  // Process-unique temp name in the same directory, so the rename stays on
  // one filesystem and concurrent processes never share a temp file.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(
                              counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw ConfigError("cannot write cache file " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw ConfigError("short write to cache file " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ConfigError("cannot publish cache file " + path);
  }
}

std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return std::nullopt;
    throw ConfigError("cannot read cache file " + path);
  }
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
}

}  // namespace saintdroid
