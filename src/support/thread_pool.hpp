// Fixed-size thread pool for corpus-level batch analysis.
//
// The paper's scalability claim (§IV) rests on analyzing thousands of apps
// against one reusable framework model; each app's analysis is independent
// once the ARM database exists, so throughput is a sharding problem. This
// pool is deliberately minimal — a bounded worker set, a FIFO task queue,
// futures for exception propagation, join-on-destruct — because the batch
// engine built on top of it (workload/harness.hpp) owns the sharding
// policy and determinism guarantees.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace saintdroid {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least one; 0 is clamped to 1).
  explicit ThreadPool(std::size_t workers);

  /// Drains the queue, then joins every worker. Tasks already submitted
  /// run to completion; their futures stay valid.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. The returned future yields the task's result or
  /// rethrows the exception it exited with. submit() is safe from any
  /// thread, including from inside a running task (reentrant submit).
  /// Once destruction has begun, submit() runs the task inline on the
  /// calling thread (caller-runs) — the future still completes, so a
  /// racing submit can never strand a waiter.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& task) {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return result;
  }

  std::size_t worker_count() const { return workers_.size(); }

  /// A sensible default worker count for this host (>= 1 even when the
  /// runtime cannot report concurrency).
  static std::size_t default_workers();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace saintdroid
