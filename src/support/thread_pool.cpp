#include "support/thread_pool.hpp"

namespace saintdroid {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::unique_lock lock{mutex_};
    if (!stopping_) {
      queue_.push_back(std::move(job));
      lock.unlock();
      wake_.notify_one();
      return;
    }
  }
  // Destruction has begun: workers may already have drained the queue and
  // exited, so a queued task could be orphaned — and its future would
  // never become ready, deadlocking any get(). Caller-runs instead: the
  // packaged_task wrapper captures exceptions into the future, so even a
  // throwing task completes it.
  job();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock{mutex_};
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // Run outside the lock so tasks may submit() reentrantly. A
    // packaged_task never lets the exception escape here — it is captured
    // into the task's future.
    job();
  }
}

std::size_t ThreadPool::default_workers() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace saintdroid
