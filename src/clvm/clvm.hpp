// ClassLoaderVm — the paper's core scalability mechanism (§III-A).
//
// Mimics the Android runtime's lazy class loading during *static* analysis:
// a class is materialized only when the exploration first needs it, looked
// up first in the app package (all dexes, including late-bound secondary
// ones) and then in the framework image for the analysis level. Memory is
// charged per materialized class, so the footprint of an analysis is
// proportional to what it actually reached — the property that makes
// SAINTDroid ~4x leaner than eager-loading tools (Fig. 4).
//
// EagerLoader is the contrasting strategy used by the CID baseline: it
// materializes every app class and the entire framework image up front
// ("existing analysis techniques first load all code in the project",
// §II-D).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "clvm/class_provider.hpp"
#include "support/budget.hpp"

namespace saintdroid {

/// Name -> definition index over one container (see
/// FrameworkRepository::class_index for the shared framework instance).
using ClassNameIndex = std::unordered_map<std::string, const ClassDef*>;

/// Lazy, demand-driven class loader.
class ClassLoaderVm : public ClassProvider {
 public:
  /// `apk` and `framework` must outlive the VM. `include_secondary_dexes`
  /// controls whether late-bound code is visible (SAINTDroid: yes).
  /// `framework_index`, when provided, is a prebuilt name index over
  /// `framework` (built once per framework level and shared across app
  /// analyses); without it the VM indexes the framework itself.
  /// `budget`, when provided, caps materialization: once the tracker's
  /// class budget is exhausted, load() of a not-yet-cached class returns
  /// nullptr (degrading exactly like an unknown class) instead of
  /// materializing — the cooperative backstop that keeps a pathological
  /// hierarchy from sinking a batch run.
  ClassLoaderVm(const Apk& apk, const DexFile& framework,
                bool include_secondary_dexes = true,
                const ClassNameIndex* framework_index = nullptr,
                BudgetTracker* budget = nullptr);

  const LoadedClass* load(const std::string& name) override;
  std::uint64_t loaded_class_count() const override;
  const MemoryMeter& memory() const override;

 private:
  struct Source {
    const DexFile* dex = nullptr;
    const ClassDef* def = nullptr;
    bool framework = false;
  };

  const Apk* apk_;
  const DexFile* framework_;
  // Name -> definition index over the app's containers; building the
  // index reads only class headers and is not charged as materialization.
  // Framework lookups go through the (possibly shared) framework index.
  std::unordered_map<std::string, Source> index_;
  const ClassNameIndex* framework_index_ = nullptr;  // shared, not owned
  ClassNameIndex owned_framework_index_;             // fallback
  BudgetTracker* budget_ = nullptr;                  // optional, not owned
  // Materialized classes; unique_ptr keeps pointers stable across rehash.
  std::unordered_map<std::string, std::unique_ptr<LoadedClass>> cache_;
  MemoryMeter memory_;
};

/// Whole-world loader: materializes everything visible at construction.
class EagerLoader : public ClassProvider {
 public:
  /// Loads every class of the APK (main dex only when
  /// `include_secondary_dexes` is false, matching CID's behaviour) plus,
  /// when `load_framework` is set, the entire framework image.
  EagerLoader(const Apk& apk, const DexFile& framework,
              bool include_secondary_dexes = false,
              bool load_framework = true);

  const LoadedClass* load(const std::string& name) override;
  std::uint64_t loaded_class_count() const override;
  const MemoryMeter& memory() const override;

 private:
  void materialize(const DexFile& dex, bool from_framework);

  std::unordered_map<std::string, std::unique_ptr<LoadedClass>> cache_;
  MemoryMeter memory_;
};

}  // namespace saintdroid
