// ClassLoaderVm — the paper's core scalability mechanism (§III-A).
//
// Mimics the Android runtime's lazy class loading during *static* analysis:
// a class is materialized only when the exploration first needs it, looked
// up first in the app package (all dexes, including late-bound secondary
// ones) and then in the framework image for the analysis level. Memory is
// charged per materialized class, so the footprint of an analysis is
// proportional to what it actually reached — the property that makes
// SAINTDroid ~4x leaner than eager-loading tools (Fig. 4).
//
// Framework classes may come from a shared FrameworkSubstrate (see
// clvm/substrate.hpp): the VM then hands out pointers into the immutable
// shared layer instead of materializing private copies, while charging the
// same footprint and counting the class in loaded_class_count() exactly as
// a private copy would — accounting (and therefore every reported number)
// is byte-identical with or without sharing; only the work moves.
//
// EagerLoader is the contrasting strategy used by the CID baseline: it
// materializes every app class and the entire framework image up front
// ("existing analysis techniques first load all code in the project",
// §II-D).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "clvm/class_provider.hpp"
#include "clvm/substrate.hpp"
#include "support/budget.hpp"

namespace saintdroid {

/// Name -> definition index over one container (see
/// FrameworkRepository::class_index for the shared framework instance).
using ClassNameIndex = std::unordered_map<std::string, const ClassDef*>;

/// Lazy, demand-driven class loader.
class ClassLoaderVm : public ClassProvider {
 public:
  /// `apk` and `framework` must outlive the VM. `include_secondary_dexes`
  /// controls whether late-bound code is visible (SAINTDroid: yes).
  /// `framework_index`, when provided, is a prebuilt name index over
  /// `framework` (built once per framework level and shared across app
  /// analyses); without it the VM indexes the framework itself.
  /// `budget`, when provided, caps materialization: once the tracker's
  /// class budget is exhausted, load() of a not-yet-cached class returns
  /// nullptr (degrading exactly like an unknown class) instead of
  /// materializing — the cooperative backstop that keeps a pathological
  /// hierarchy from sinking a batch run.
  /// `substrate`, when provided, is the shared immutable framework layer
  /// for `framework`'s level: framework loads resolve to substrate
  /// pointers (no private copy, no index needed) with identical shadowing,
  /// budget, fault, and accounting semantics.
  ClassLoaderVm(const Apk& apk, const DexFile& framework,
                bool include_secondary_dexes = true,
                const ClassNameIndex* framework_index = nullptr,
                BudgetTracker* budget = nullptr,
                std::shared_ptr<const FrameworkSubstrate> substrate = nullptr);

  const LoadedClass* load(const std::string& name) override;
  const LoadedClass* load_framework(const LoadedClass* cls,
                                    std::uint32_t slot) override;
  std::uint64_t loaded_class_count() const override;
  const MemoryMeter& memory() const override;

 private:
  struct Source {
    const DexFile* dex = nullptr;
    const ClassDef* def = nullptr;
    bool framework = false;
  };

  const LoadedClass* insert_owned(const std::string& name, const DexFile& dex,
                                  const ClassDef& def, bool from_framework);

  const Apk* apk_;
  const DexFile* framework_;
  // Name -> definition index over the app's containers; building the
  // index reads only class headers and is not charged as materialization.
  // Framework lookups go through the substrate when one is attached, else
  // through the (possibly shared) framework index.
  std::unordered_map<std::string, Source> index_;
  const ClassNameIndex* framework_index_ = nullptr;  // shared, not owned
  ClassNameIndex owned_framework_index_;             // fallback
  BudgetTracker* budget_ = nullptr;                  // optional, not owned
  std::shared_ptr<const FrameworkSubstrate> substrate_;  // optional
  // Classes this analysis touched: app classes (and unshared framework
  // classes) are owned here; shared framework classes point into the
  // substrate. unique_ptr keeps owned pointers stable across rehash.
  std::unordered_map<std::string, const LoadedClass*> cache_;
  std::vector<std::unique_ptr<LoadedClass>> owned_;
  // Per-slot "this substrate class is loaded (and unshadowed)" flags: the
  // load_framework repeat path checks one byte instead of hashing the
  // class name. Sized lazily on first use.
  std::vector<std::uint8_t> substrate_loaded_;
  MemoryMeter memory_;
};

/// Whole-world loader: materializes everything visible at construction.
class EagerLoader : public ClassProvider {
 public:
  /// Loads every class of the APK (main dex only when
  /// `include_secondary_dexes` is false, matching CID's behaviour) plus,
  /// when `load_framework` is set, the entire framework image.
  EagerLoader(const Apk& apk, const DexFile& framework,
              bool include_secondary_dexes = false,
              bool load_framework = true);

  const LoadedClass* load(const std::string& name) override;
  std::uint64_t loaded_class_count() const override;
  const MemoryMeter& memory() const override;

 private:
  void materialize(const DexFile& dex, bool from_framework);

  std::unordered_map<std::string, std::unique_ptr<LoadedClass>> cache_;
  MemoryMeter memory_;
};

}  // namespace saintdroid
