#include "clvm/clvm.hpp"

#include "support/faults.hpp"

namespace saintdroid {

std::uint64_t class_footprint_bytes(const DexFile& dex, const ClassDef& cls) {
  std::uint64_t bytes =
      sizeof(ClassDef) + cls.interfaces.size() * sizeof(std::uint32_t);
  bytes += dex.type_name(cls.type).size();
  for (const auto& m : cls.methods) {
    bytes += sizeof(MethodDef) + dex.string_at(m.name).size();
    if (m.code) {
      bytes += sizeof(MethodCode);
      for (const auto& insn : m.code->insns)
        bytes += sizeof(Instruction) + insn.args.size() * sizeof(std::uint16_t);
    }
  }
  return bytes;
}

namespace {

LoadedClass make_loaded(const DexFile& dex, const ClassDef& def,
                        bool from_framework) {
  LoadedClass lc;
  lc.name = dex.type_name(def.type);
  lc.super_name =
      def.super_type == kNoIndex ? "" : dex.type_name(def.super_type);
  lc.interface_names.reserve(def.interfaces.size());
  for (const auto iface : def.interfaces)
    lc.interface_names.push_back(dex.type_name(iface));
  lc.dex = &dex;
  lc.def = &def;
  lc.from_framework = from_framework;
  lc.footprint = class_footprint_bytes(dex, def);
  return lc;
}

}  // namespace

// ---------------------------------------------------------------------------
// ClassLoaderVm

ClassLoaderVm::ClassLoaderVm(const Apk& apk, const DexFile& framework,
                             bool include_secondary_dexes,
                             const ClassNameIndex* framework_index,
                             BudgetTracker* budget)
    : apk_(&apk), framework_(&framework), budget_(budget) {
  const std::size_t dex_limit =
      include_secondary_dexes ? apk.dexes.size() : std::size_t{1};
  for (std::size_t d = 0; d < dex_limit; ++d)
    for (const auto& cls : apk.dexes[d].classes())
      index_.emplace(apk.dexes[d].type_name(cls.type),
                     Source{&apk.dexes[d], &cls, false});
  if (framework_index) {
    framework_index_ = framework_index;
  } else {
    owned_framework_index_.reserve(framework.classes().size());
    for (const auto& cls : framework.classes())
      owned_framework_index_.emplace(framework.type_name(cls.type), &cls);
    framework_index_ = &owned_framework_index_;
  }
}

const LoadedClass* ClassLoaderVm::load(const std::string& name) {
  if (const auto it = cache_.find(name); it != cache_.end())
    return it->second.get();
  // Budget guard: past the class cap a fresh load degrades to "unknown
  // class" — callers already handle nullptr conservatively — and the
  // tracker records the exhaustion for the incomplete-report flag.
  if (budget_ && !budget_->allow_class(cache_.size())) return nullptr;
  SD_FAULT_POINT("clvm.materialize");
  // App classes shadow framework classes of the same name (same as the
  // runtime's delegation order for the packaged classloader path we model).
  Source src;
  if (const auto it = index_.find(name); it != index_.end()) {
    src = it->second;
  } else if (const auto fit = framework_index_->find(name);
             fit != framework_index_->end()) {
    src = Source{framework_, fit->second, true};
  } else {
    return nullptr;
  }
  auto loaded =
      std::make_unique<LoadedClass>(make_loaded(*src.dex, *src.def,
                                                src.framework));
  memory_.allocate(loaded->footprint);
  const auto [it, inserted] = cache_.emplace(name, std::move(loaded));
  return it->second.get();
}

std::uint64_t ClassLoaderVm::loaded_class_count() const {
  return cache_.size();
}

const MemoryMeter& ClassLoaderVm::memory() const { return memory_; }

// ---------------------------------------------------------------------------
// EagerLoader

EagerLoader::EagerLoader(const Apk& apk, const DexFile& framework,
                         bool include_secondary_dexes, bool load_framework) {
  const std::size_t dex_limit =
      include_secondary_dexes ? apk.dexes.size() : std::size_t{1};
  for (std::size_t d = 0; d < dex_limit; ++d)
    materialize(apk.dexes[d], false);
  if (load_framework) materialize(framework, true);
}

void EagerLoader::materialize(const DexFile& dex, bool from_framework) {
  for (const auto& cls : dex.classes()) {
    auto loaded =
        std::make_unique<LoadedClass>(make_loaded(dex, cls, from_framework));
    const auto& name = loaded->name;
    if (cache_.contains(name)) continue;  // first definition wins
    memory_.allocate(loaded->footprint);
    cache_.emplace(name, std::move(loaded));
  }
}

const LoadedClass* EagerLoader::load(const std::string& name) {
  const auto it = cache_.find(name);
  return it == cache_.end() ? nullptr : it->second.get();
}

std::uint64_t EagerLoader::loaded_class_count() const {
  return cache_.size();
}

const MemoryMeter& EagerLoader::memory() const { return memory_; }

}  // namespace saintdroid
