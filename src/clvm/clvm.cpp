#include "clvm/clvm.hpp"

#include "support/faults.hpp"

namespace saintdroid {

std::uint64_t class_footprint_bytes(const DexFile& dex, const ClassDef& cls) {
  std::uint64_t bytes =
      sizeof(ClassDef) + cls.interfaces.size() * sizeof(std::uint32_t);
  bytes += dex.type_name(cls.type).size();
  for (const auto& m : cls.methods) {
    bytes += sizeof(MethodDef) + dex.string_at(m.name).size();
    if (m.code) {
      bytes += sizeof(MethodCode);
      for (const auto& insn : m.code->insns)
        bytes += sizeof(Instruction) + insn.args.size() * sizeof(std::uint16_t);
    }
  }
  return bytes;
}

LoadedClass materialize_loaded_class(const DexFile& dex, const ClassDef& def,
                                     bool from_framework) {
  LoadedClass lc;
  lc.name = dex.type_name(def.type);
  lc.super_name =
      def.super_type == kNoIndex ? "" : dex.type_name(def.super_type);
  lc.interface_names.reserve(def.interfaces.size());
  for (const auto iface : def.interfaces)
    lc.interface_names.push_back(dex.type_name(iface));
  lc.dex = &dex;
  lc.def = &def;
  lc.from_framework = from_framework;
  lc.footprint = class_footprint_bytes(dex, def);
  return lc;
}

// ---------------------------------------------------------------------------
// ClassLoaderVm

ClassLoaderVm::ClassLoaderVm(const Apk& apk, const DexFile& framework,
                             bool include_secondary_dexes,
                             const ClassNameIndex* framework_index,
                             BudgetTracker* budget,
                             std::shared_ptr<const FrameworkSubstrate> substrate)
    : apk_(&apk),
      framework_(&framework),
      budget_(budget),
      substrate_(std::move(substrate)) {
  const std::size_t dex_limit =
      include_secondary_dexes ? apk.dexes.size() : std::size_t{1};
  for (std::size_t d = 0; d < dex_limit; ++d)
    for (const auto& cls : apk.dexes[d].classes())
      index_.emplace(apk.dexes[d].type_name(cls.type),
                     Source{&apk.dexes[d], &cls, false});
  // With a substrate attached, framework lookups never touch an index.
  if (substrate_) return;
  if (framework_index) {
    framework_index_ = framework_index;
  } else {
    owned_framework_index_.reserve(framework.classes().size());
    for (const auto& cls : framework.classes())
      owned_framework_index_.emplace(framework.type_name(cls.type), &cls);
    framework_index_ = &owned_framework_index_;
  }
}

const LoadedClass* ClassLoaderVm::insert_owned(const std::string& name,
                                               const DexFile& dex,
                                               const ClassDef& def,
                                               bool from_framework) {
  owned_.push_back(std::make_unique<LoadedClass>(
      materialize_loaded_class(dex, def, from_framework)));
  const LoadedClass* loaded = owned_.back().get();
  memory_.allocate(loaded->footprint);
  cache_.emplace(name, loaded);
  return loaded;
}

const LoadedClass* ClassLoaderVm::load(const std::string& name) {
  if (const auto it = cache_.find(name); it != cache_.end())
    return it->second;
  // Budget guard: past the class cap a fresh load degrades to "unknown
  // class" — callers already handle nullptr conservatively — and the
  // tracker records the exhaustion for the incomplete-report flag.
  if (budget_ && !budget_->allow_class(cache_.size())) return nullptr;
  SD_FAULT_POINT("clvm.materialize");
  // App classes shadow framework classes of the same name (same as the
  // runtime's delegation order for the packaged classloader path we model).
  if (const auto it = index_.find(name); it != index_.end())
    return insert_owned(name, *it->second.dex, *it->second.def, false);
  if (substrate_) {
    // Shared framework layer: hand out the substrate's pointer, charging
    // its precomputed footprint — the same bytes a private copy costs, so
    // peak_bytes/loaded_classes match the unshared run exactly.
    const LoadedClass* loaded = substrate_->find_class(name);
    if (loaded == nullptr) return nullptr;
    memory_.allocate(loaded->footprint);
    cache_.emplace(name, loaded);
    return loaded;
  }
  if (const auto fit = framework_index_->find(name);
      fit != framework_index_->end())
    return insert_owned(name, *framework_, *fit->second, true);
  return nullptr;
}

const LoadedClass* ClassLoaderVm::load_framework(const LoadedClass* cls,
                                                std::uint32_t slot) {
  // Repeat loads of an already-loaded class are observable no-ops in the
  // name path (pure cache hit: no budget check, no fault point, no
  // accounting), so once the first load has gone through load() — which
  // also settles app-class shadowing — a flag check answers all later
  // calls. The flag is only set when the name path actually resolved to
  // the substrate's object; a shadowed name keeps delegating.
  if (slot < substrate_loaded_.size() && substrate_loaded_[slot]) return cls;
  const LoadedClass* loaded = load(cls->name);
  if (loaded == cls) {
    if (substrate_loaded_.empty() && substrate_)
      substrate_loaded_.resize(substrate_->class_count(), 0);
    if (slot < substrate_loaded_.size()) substrate_loaded_[slot] = 1;
  }
  return loaded;
}

std::uint64_t ClassLoaderVm::loaded_class_count() const {
  return cache_.size();
}

const MemoryMeter& ClassLoaderVm::memory() const { return memory_; }

// ---------------------------------------------------------------------------
// EagerLoader

EagerLoader::EagerLoader(const Apk& apk, const DexFile& framework,
                         bool include_secondary_dexes, bool load_framework) {
  const std::size_t dex_limit =
      include_secondary_dexes ? apk.dexes.size() : std::size_t{1};
  for (std::size_t d = 0; d < dex_limit; ++d)
    materialize(apk.dexes[d], false);
  if (load_framework) materialize(framework, true);
}

void EagerLoader::materialize(const DexFile& dex, bool from_framework) {
  for (const auto& cls : dex.classes()) {
    auto loaded = std::make_unique<LoadedClass>(
        materialize_loaded_class(dex, cls, from_framework));
    const auto& name = loaded->name;
    if (cache_.contains(name)) continue;  // first definition wins
    memory_.allocate(loaded->footprint);
    cache_.emplace(name, std::move(loaded));
  }
}

const LoadedClass* EagerLoader::load(const std::string& name) {
  const auto it = cache_.find(name);
  return it == cache_.end() ? nullptr : it->second.get();
}

std::uint64_t EagerLoader::loaded_class_count() const {
  return cache_.size();
}

const MemoryMeter& EagerLoader::memory() const { return memory_; }

}  // namespace saintdroid
