// FrameworkSubstrate: the shared, immutable framework layer of the class
// hierarchy.
//
// Every analysis at level L sees the same framework classes — the same
// names, the same superclass edges, the same method tables — yet the
// per-analysis ClassLoaderVm used to re-materialize each framework class it
// touched (string building plus a full instruction walk for the footprint)
// for every app in a batch. The substrate hoists that work out of the
// per-app loop: it eagerly materializes every framework class of one
// (level, options) image into stable LoadedClass objects exactly once, and
// per-app loaders hand out pointers into it, charging the precomputed
// footprint so memory accounting stays byte-identical to private
// materialization. FrameworkRepository caches one substrate per
// (level, options) key under an exception-safe once-guard and shares it as
// shared_ptr<const> across workers.
//
// Beyond the classes themselves, the substrate precomputes everything the
// hot hierarchy queries would otherwise redo per app:
//   - per-class method tables in declaration order, with the method name
//     (a view into the image string pool) and the descriptor already built,
//     so find_method_in degrades to a short scan with no string building;
//   - the superclass edge as a direct pointer (plus slot index), so chain
//     walks over framework ancestors skip the name lookup;
//   - per-method invoke edges: the callee MethodId (built once) and, when
//     the callee class lives in the substrate, a direct pointer to it —
//     the framework walk replays these instead of re-decoding instructions
//     and rebuilding MethodId strings for every app.
// Lookups key on the LoadedClass address (pointer hash), which is exact:
// a privately materialized copy of the same framework class never matches.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "clvm/class_provider.hpp"

namespace saintdroid {

/// Keying knobs for a substrate. Part of the repository cache key: two
/// analyses share a substrate iff they agree on (level, options).
struct SubstrateOptions {
  /// Build the per-class method tables and invoke edges (the resolution
  /// and framework-walk fast paths). Off trades memory for the same
  /// linear scans an unshared analysis performs.
  bool index_methods = true;

  friend bool operator==(const SubstrateOptions&,
                         const SubstrateOptions&) = default;
};

class FrameworkSubstrate {
 public:
  struct MethodEntry;

  /// One precomputed invoke edge of a framework method body.
  struct CalleeEdge {
    /// The callee identity the instruction resolves to; stable for the
    /// substrate's lifetime (equal in value to dex.method_id_at on the
    /// same instruction).
    const MethodId* id = nullptr;
    /// The substrate class named id->class_name, when it exists — lets a
    /// loader take the pointer fast path instead of a name lookup. The
    /// slot is the target's index (see ClassEntry::slot).
    const LoadedClass* target = nullptr;
    std::uint32_t target_slot = 0;
    /// The entry of `target`'s own method table matching id->name plus
    /// id->descriptor (what find_method_in would return for the callee),
    /// or nullptr — absent target, or the named class does not declare
    /// the method. Lets the framework walk recurse by pointer.
    const MethodEntry* resolved = nullptr;
  };

  /// One method of a framework class, in declaration order.
  struct MethodEntry {
    const MethodDef* def = nullptr;
    std::string_view name;   ///< view into the image string pool
    std::string descriptor;  ///< prebuilt, so lookups never call descriptor_of
    /// Dense index in [0, method_count()), unique across the whole
    /// substrate — a per-analysis walk can memoize visited methods in a
    /// flat bitmap instead of a hash map keyed by MethodId strings.
    std::uint32_t slot = 0;
    std::vector<CalleeEdge> callees;  ///< kInvoke edges in instruction order
  };

  /// One framework class plus its precomputed lookup structure.
  struct ClassEntry {
    LoadedClass cls;
    /// Dense index in [0, class_count()): per-analysis loaders use it to
    /// flag "already loaded" without hashing the class name again.
    std::uint32_t slot = 0;
    /// The substrate class cls.super_name resolves to, or nullptr (root
    /// class, or super not in the image).
    const ClassEntry* super = nullptr;
    /// Declaration-order method table; empty when index_methods is off.
    std::vector<MethodEntry> methods;
  };

  /// Materializes every class of `image`. `image` must outlive the
  /// substrate (the repository owns both and keeps them together).
  FrameworkSubstrate(const DexFile& image, int level,
                     SubstrateOptions options);

  /// Rebinds a substrate from previously serialized structural tables
  /// instead of re-deriving them from the image's instruction streams: the
  /// class pass still materializes LoadedClass objects (they carry strings
  /// and footprints the tables do not duplicate), but the expensive second
  /// and third passes — per-method instruction decoding, callee MethodId
  /// string building, descriptor construction and declaration-order
  /// resolution scans — become a bounds-checked bulk read of `tables`,
  /// with every stored slot and index rebound to a pointer into this
  /// substrate. `tables` must be the serialize_tables() output of a
  /// substrate built from an identical (image, options) pair — the model
  /// cache guarantees this via its (fingerprint, level, options) key —
  /// and the resulting substrate is structurally identical to a full
  /// build (serialize_tables round-trips byte-for-byte). Throws ParseError
  /// on any truncation, count mismatch against the image, or out-of-range
  /// slot.
  FrameworkSubstrate(const DexFile& image, int level,
                     SubstrateOptions options,
                     std::span<const std::uint8_t> tables);

  /// Serializes the structural tables — per-entry method-table layouts
  /// (prebuilt descriptors), the deduplicated callee-edge pool with dense
  /// target slots and resolved method indices, and per-method edge lists —
  /// as the payload the rebinding constructor consumes. Pointer-free:
  /// every cross-reference is a dense slot or pool index, so the payload
  /// is position-independent and two substrates with equal structure
  /// serialize byte-identically.
  std::vector<std::uint8_t> serialize_tables() const;

  FrameworkSubstrate(const FrameworkSubstrate&) = delete;
  FrameworkSubstrate& operator=(const FrameworkSubstrate&) = delete;

  int level() const { return level_; }
  const SubstrateOptions& options() const { return options_; }
  std::size_t class_count() const { return entries_.size(); }
  /// Methods indexed across all classes (0 when index_methods is off).
  std::size_t method_count() const { return method_count_; }
  std::uint64_t total_footprint() const { return total_footprint_; }

  /// The framework class named `name`, or nullptr. The pointer is stable
  /// for the substrate's lifetime and shared by every analysis.
  const LoadedClass* find_class(const std::string& name) const;

  /// The entry `cls` is embedded in when `cls` is a substrate-owned
  /// LoadedClass (pointer identity — a privately materialized copy of the
  /// same framework class does not match), else nullptr. Constant time:
  /// the class carries its entry back-pointer, verified by address.
  static const ClassEntry* entry_of(const LoadedClass& cls) {
    const auto* entry =
        static_cast<const ClassEntry*>(cls.substrate_entry);
    return (entry != nullptr && &entry->cls == &cls) ? entry : nullptr;
  }

  /// True when `cls` is a substrate-owned LoadedClass object.
  static bool owns(const LoadedClass& cls) { return entry_of(cls) != nullptr; }

 private:
  /// Pass 1 shared by both constructors: materialize every image class
  /// (first definition of a name wins), assign dense slots, and bind the
  /// superclass edges. No instruction stream is touched.
  void materialize_classes(const DexFile& image);

  int level_;
  SubstrateOptions options_;
  std::uint64_t total_footprint_ = 0;
  std::size_t method_count_ = 0;
  std::deque<ClassEntry> entries_;  // deque: stable addresses, no realloc
  // Keys view into each entry's cls.name (stable once inserted).
  std::unordered_map<std::string_view, const ClassEntry*> by_name_;
  // Deduplicated callee identities referenced by CalleeEdge::id.
  std::deque<MethodId> callee_pool_;
};

}  // namespace saintdroid
