#include "clvm/substrate.hpp"

namespace saintdroid {

FrameworkSubstrate::FrameworkSubstrate(const DexFile& image, int level,
                                       SubstrateOptions options)
    : level_(level), options_(options) {
  by_name_.reserve(image.classes().size());
  for (const auto& def : image.classes()) {
    ClassEntry& entry = entries_.emplace_back();
    entry.cls = materialize_loaded_class(image, def, /*from_framework=*/true);
    // First definition wins, matching the name-index semantics of the
    // per-analysis loaders.
    const auto [it, inserted] = by_name_.emplace(entry.cls.name, &entry);
    if (!inserted) {
      entries_.pop_back();
      continue;
    }
    entry.slot = static_cast<std::uint32_t>(entries_.size() - 1);
    entry.cls.substrate_entry = &entry;  // identity-checked in entry_of
    total_footprint_ += entry.cls.footprint;
  }

  // Second pass, once the surviving entries are fixed: super edges and
  // (when indexing) method tables plus invoke edges.
  // Same method ref -> same callee identity; build each MethodId once.
  std::unordered_map<std::uint32_t, CalleeEdge> edges_by_ref;
  for (ClassEntry& entry : entries_) {
    if (!entry.cls.super_name.empty()) {
      const auto sit = by_name_.find(std::string_view{entry.cls.super_name});
      if (sit != by_name_.end()) entry.super = sit->second;
    }
    if (!options_.index_methods) continue;
    const auto& methods = entry.cls.def->methods;
    entry.methods.reserve(methods.size());
    for (const auto& m : methods) {
      MethodEntry& me = entry.methods.emplace_back();
      me.def = &m;
      me.name = image.string_at(m.name);
      me.descriptor = image.descriptor_of(m.proto);
      me.slot = static_cast<std::uint32_t>(method_count_++);
      if (!m.code) continue;
      for (const auto& insn : m.code->insns) {
        if (insn.op != Opcode::kInvoke) continue;
        auto& edge = edges_by_ref[insn.index];
        if (edge.id == nullptr) {
          callee_pool_.push_back(image.method_id_at(insn.index));
          edge.id = &callee_pool_.back();
          const auto tit =
              by_name_.find(std::string_view{edge.id->class_name});
          if (tit != by_name_.end()) {
            edge.target = &tit->second->cls;
            edge.target_slot = tit->second->slot;
          }
        }
        me.callees.push_back(edge);
      }
    }
  }

  // Third pass, once every method table is fixed: resolve each edge to the
  // target's own MethodEntry (first declaration-order match, exactly what
  // find_method_in returns), so the walk can recurse without comparing
  // strings.
  for (ClassEntry& entry : entries_) {
    for (MethodEntry& me : entry.methods) {
      for (CalleeEdge& edge : me.callees) {
        if (edge.target == nullptr) continue;
        for (const MethodEntry& cand : entries_[edge.target_slot].methods) {
          if (cand.name == edge.id->name &&
              cand.descriptor == edge.id->descriptor) {
            edge.resolved = &cand;
            break;
          }
        }
      }
    }
  }
}

const LoadedClass* FrameworkSubstrate::find_class(
    const std::string& name) const {
  const auto it = by_name_.find(std::string_view{name});
  return it == by_name_.end() ? nullptr : &it->second->cls;
}

}  // namespace saintdroid
