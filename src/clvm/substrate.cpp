#include "clvm/substrate.hpp"

#include "support/bytes.hpp"
#include "support/errors.hpp"

namespace saintdroid {

void FrameworkSubstrate::materialize_classes(const DexFile& image) {
  by_name_.reserve(image.classes().size());
  for (const auto& def : image.classes()) {
    ClassEntry& entry = entries_.emplace_back();
    entry.cls = materialize_loaded_class(image, def, /*from_framework=*/true);
    // First definition wins, matching the name-index semantics of the
    // per-analysis loaders.
    const auto [it, inserted] = by_name_.emplace(entry.cls.name, &entry);
    if (!inserted) {
      entries_.pop_back();
      continue;
    }
    entry.slot = static_cast<std::uint32_t>(entries_.size() - 1);
    entry.cls.substrate_entry = &entry;  // identity-checked in entry_of
    total_footprint_ += entry.cls.footprint;
  }
  for (ClassEntry& entry : entries_) {
    if (entry.cls.super_name.empty()) continue;
    const auto sit = by_name_.find(std::string_view{entry.cls.super_name});
    if (sit != by_name_.end()) entry.super = sit->second;
  }
}

FrameworkSubstrate::FrameworkSubstrate(const DexFile& image, int level,
                                       SubstrateOptions options)
    : level_(level), options_(options) {
  materialize_classes(image);

  // Second pass, once the surviving entries are fixed: method tables plus
  // invoke edges (when indexing).
  // Same method ref -> same callee identity; build each MethodId once.
  std::unordered_map<std::uint32_t, CalleeEdge> edges_by_ref;
  for (ClassEntry& entry : entries_) {
    if (!options_.index_methods) continue;
    const auto& methods = entry.cls.def->methods;
    entry.methods.reserve(methods.size());
    for (const auto& m : methods) {
      MethodEntry& me = entry.methods.emplace_back();
      me.def = &m;
      me.name = image.string_at(m.name);
      me.descriptor = image.descriptor_of(m.proto);
      me.slot = static_cast<std::uint32_t>(method_count_++);
      if (!m.code) continue;
      for (const auto& insn : m.code->insns) {
        if (insn.op != Opcode::kInvoke) continue;
        auto& edge = edges_by_ref[insn.index];
        if (edge.id == nullptr) {
          callee_pool_.push_back(image.method_id_at(insn.index));
          edge.id = &callee_pool_.back();
          const auto tit =
              by_name_.find(std::string_view{edge.id->class_name});
          if (tit != by_name_.end()) {
            edge.target = &tit->second->cls;
            edge.target_slot = tit->second->slot;
          }
        }
        me.callees.push_back(edge);
      }
    }
  }

  // Third pass, once every method table is fixed: resolve each edge to the
  // target's own MethodEntry (first declaration-order match, exactly what
  // find_method_in returns), so the walk can recurse without comparing
  // strings.
  for (ClassEntry& entry : entries_) {
    for (MethodEntry& me : entry.methods) {
      for (CalleeEdge& edge : me.callees) {
        if (edge.target == nullptr) continue;
        for (const MethodEntry& cand : entries_[edge.target_slot].methods) {
          if (cand.name == edge.id->name &&
              cand.descriptor == edge.id->descriptor) {
            edge.resolved = &cand;
            break;
          }
        }
      }
    }
  }
}

FrameworkSubstrate::FrameworkSubstrate(const DexFile& image, int level,
                                       SubstrateOptions options,
                                       std::span<const std::uint8_t> tables)
    : level_(level), options_(options) {
  materialize_classes(image);

  ByteReader r{tables};
  if (r.uleb() != entries_.size())
    throw ParseError("substrate tables: class count mismatch");
  const std::uint64_t stored_method_total = r.uleb();
  const bool indexed = r.u8() != 0;
  if (indexed != options_.index_methods)
    throw ParseError("substrate tables: indexing mode mismatch");

  if (indexed) {
    // The deduplicated callee pool: identity strings plus the dense slot
    // and resolved-method index computed by a full build's passes 2 and 3.
    // Resolved pointers are bound after the method tables exist.
    struct PoolEntry {
      std::uint64_t target_slot_plus1 = 0;
      std::uint64_t resolved_plus1 = 0;
    };
    const std::uint64_t pool_count = r.count(/*min_element_bytes=*/5);
    std::vector<PoolEntry> pool_meta;
    pool_meta.reserve(pool_count);
    for (std::uint64_t i = 0; i < pool_count; ++i) {
      MethodId id;
      id.class_name = r.str();
      id.name = r.str();
      id.descriptor = r.str();
      callee_pool_.push_back(std::move(id));
      PoolEntry meta;
      meta.target_slot_plus1 = r.uleb();
      if (meta.target_slot_plus1 > entries_.size())
        throw ParseError("substrate tables: callee target slot out of range");
      meta.resolved_plus1 = r.uleb();
      pool_meta.push_back(meta);
    }

    // Method tables: descriptors come from the payload (skipping
    // descriptor_of), names and definitions rebind into the image.
    // Per-method edge lists are kept as pool indices until the pool's
    // CalleeEdge values can be completed below.
    std::vector<std::uint32_t> edge_indices;
    std::vector<std::pair<std::size_t, std::size_t>> edge_ranges;
    for (ClassEntry& entry : entries_) {
      const auto& methods = entry.cls.def->methods;
      if (r.count(/*min_element_bytes=*/2) != methods.size())
        throw ParseError("substrate tables: method count mismatch");
      entry.methods.reserve(methods.size());
      for (const auto& m : methods) {
        MethodEntry& me = entry.methods.emplace_back();
        me.def = &m;
        me.name = image.string_at(m.name);
        me.descriptor = r.str();
        me.slot = static_cast<std::uint32_t>(method_count_++);
        const std::uint64_t edge_count = r.count(/*min_element_bytes=*/1);
        edge_ranges.emplace_back(edge_indices.size(),
                                 static_cast<std::size_t>(edge_count));
        for (std::uint64_t e = 0; e < edge_count; ++e) {
          const std::uint64_t idx = r.uleb();
          if (idx >= pool_count)
            throw ParseError("substrate tables: edge pool index out of range");
          edge_indices.push_back(static_cast<std::uint32_t>(idx));
        }
      }
    }

    // Complete the pool edges now that every method table is fixed, then
    // fan them out into the per-method callee lists — the bulk-rebind
    // equivalent of passes 2 and 3.
    std::vector<CalleeEdge> pool_edges(callee_pool_.size());
    std::size_t pool_index = 0;
    for (const MethodId& id : callee_pool_) {
      CalleeEdge& edge = pool_edges[pool_index];
      edge.id = &id;
      const PoolEntry& meta = pool_meta[pool_index];
      if (meta.target_slot_plus1 != 0) {
        const auto slot =
            static_cast<std::uint32_t>(meta.target_slot_plus1 - 1);
        edge.target = &entries_[slot].cls;
        edge.target_slot = slot;
        if (meta.resolved_plus1 != 0) {
          if (meta.resolved_plus1 > entries_[slot].methods.size())
            throw ParseError(
                "substrate tables: resolved method index out of range");
          edge.resolved = &entries_[slot]
                               .methods[static_cast<std::size_t>(
                                   meta.resolved_plus1 - 1)];
        }
      } else if (meta.resolved_plus1 != 0) {
        throw ParseError("substrate tables: resolved edge without target");
      }
      ++pool_index;
    }
    std::size_t range_index = 0;
    for (ClassEntry& entry : entries_) {
      for (MethodEntry& me : entry.methods) {
        const auto [offset, count] = edge_ranges[range_index++];
        me.callees.reserve(count);
        for (std::size_t e = 0; e < count; ++e)
          me.callees.push_back(pool_edges[edge_indices[offset + e]]);
      }
    }
  }

  if (stored_method_total != method_count_)
    throw ParseError("substrate tables: method total mismatch");
  if (!r.at_end())
    throw ParseError("trailing bytes after substrate tables");
}

std::vector<std::uint8_t> FrameworkSubstrate::serialize_tables() const {
  ByteWriter w;
  w.uleb(entries_.size());
  w.uleb(method_count_);
  w.u8(options_.index_methods ? 1 : 0);
  if (!options_.index_methods) return w.take();

  // Pool indices keyed by the shared MethodId addresses (pool order is
  // first-encounter order of the build, itself deterministic).
  std::unordered_map<const MethodId*, std::uint32_t> pool_index;
  pool_index.reserve(callee_pool_.size());
  for (const MethodId& id : callee_pool_)
    pool_index.emplace(&id, static_cast<std::uint32_t>(pool_index.size()));

  // Per-pool-entry metadata comes from any edge copy referencing it; all
  // copies of one pool id carry identical target/resolved bindings.
  struct PoolMeta {
    std::uint64_t target_slot_plus1 = 0;
    std::uint64_t resolved_plus1 = 0;
  };
  std::vector<PoolMeta> metas(callee_pool_.size());
  for (const ClassEntry& entry : entries_) {
    for (const MethodEntry& me : entry.methods) {
      for (const CalleeEdge& edge : me.callees) {
        PoolMeta& meta = metas[pool_index.at(edge.id)];
        if (edge.target == nullptr) continue;
        meta.target_slot_plus1 = edge.target_slot + 1;
        if (edge.resolved != nullptr) {
          const auto& methods = entries_[edge.target_slot].methods;
          meta.resolved_plus1 =
              static_cast<std::uint64_t>(edge.resolved - methods.data()) + 1;
        }
      }
    }
  }

  w.uleb(callee_pool_.size());
  std::size_t index = 0;
  for (const MethodId& id : callee_pool_) {
    w.str(id.class_name);
    w.str(id.name);
    w.str(id.descriptor);
    w.uleb(metas[index].target_slot_plus1);
    w.uleb(metas[index].resolved_plus1);
    ++index;
  }

  for (const ClassEntry& entry : entries_) {
    w.uleb(entry.methods.size());
    for (const MethodEntry& me : entry.methods) {
      w.str(me.descriptor);
      w.uleb(me.callees.size());
      for (const CalleeEdge& edge : me.callees)
        w.uleb(pool_index.at(edge.id));
    }
  }
  return w.take();
}

const LoadedClass* FrameworkSubstrate::find_class(
    const std::string& name) const {
  const auto it = by_name_.find(std::string_view{name});
  return it == by_name_.end() ? nullptr : &it->second->cls;
}

}  // namespace saintdroid
