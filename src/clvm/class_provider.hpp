// ClassProvider: the loading boundary between analyses and bytecode.
//
// Every analyzer obtains classes exclusively through this interface, which
// is what lets the Fig. 4 memory experiment emerge from the code instead of
// being hard-coded: SAINTDroid plugs in the lazy ClassLoaderVm, CID plugs
// in the EagerLoader, and both account the bytes they materialize through
// the same MemoryMeter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dex/apk.hpp"
#include "dex/dexfile.hpp"
#include "support/meter.hpp"

namespace saintdroid {

/// A class materialized for analysis. Non-owning views into the container
/// that defines it; valid for the provider's lifetime.
struct LoadedClass {
  std::string name;        ///< slashed internal name
  std::string super_name;  ///< "" for root classes
  std::vector<std::string> interface_names;
  const DexFile* dex = nullptr;     ///< container the class lives in
  const ClassDef* def = nullptr;    ///< definition within `dex`
  bool from_framework = false;      ///< true when loaded from the ADF image
  std::uint64_t footprint = 0;      ///< bytes accounted when loaded
};

/// Abstract class source. Implementations: ClassLoaderVm (lazy, clvm/),
/// EagerLoader (whole-world, clvm/).
class ClassProvider {
 public:
  virtual ~ClassProvider() = default;

  /// Returns the class named `name`, materializing it if necessary, or
  /// nullptr when it cannot be found in the app package or the framework
  /// image (e.g. truly dynamic code generated only at runtime). The
  /// returned pointer is stable for the provider's lifetime.
  virtual const LoadedClass* load(const std::string& name) = 0;

  /// Classes materialized so far.
  virtual std::uint64_t loaded_class_count() const = 0;

  /// Memory accounting for everything materialized through this provider.
  virtual const MemoryMeter& memory() const = 0;
};

/// Approximate in-memory footprint of one class definition (the unit the
/// providers charge to their MemoryMeter).
std::uint64_t class_footprint_bytes(const DexFile& dex, const ClassDef& cls);

}  // namespace saintdroid
