// ClassProvider: the loading boundary between analyses and bytecode.
//
// Every analyzer obtains classes exclusively through this interface, which
// is what lets the Fig. 4 memory experiment emerge from the code instead of
// being hard-coded: SAINTDroid plugs in the lazy ClassLoaderVm, CID plugs
// in the EagerLoader, and both account the bytes they materialize through
// the same MemoryMeter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dex/apk.hpp"
#include "dex/dexfile.hpp"
#include "support/meter.hpp"

namespace saintdroid {

/// A class materialized for analysis. Non-owning views into the container
/// that defines it; valid for the provider's lifetime.
struct LoadedClass {
  std::string name;        ///< slashed internal name
  std::string super_name;  ///< "" for root classes
  std::vector<std::string> interface_names;
  const DexFile* dex = nullptr;     ///< container the class lives in
  const ClassDef* def = nullptr;    ///< definition within `dex`
  bool from_framework = false;      ///< true when loaded from the ADF image
  std::uint64_t footprint = 0;      ///< bytes accounted when loaded
  /// Back-pointer to the FrameworkSubstrate::ClassEntry this object is
  /// embedded in, or nullptr for privately materialized classes. Lookups
  /// verify identity (the entry's class address must be this object), so
  /// a copied LoadedClass — which drags the pointer along — never passes
  /// for a substrate-owned one. Opaque here to keep the dex/clvm layering.
  const void* substrate_entry = nullptr;
};

/// Abstract class source. Implementations: ClassLoaderVm (lazy, clvm/),
/// EagerLoader (whole-world, clvm/).
class ClassProvider {
 public:
  virtual ~ClassProvider() = default;

  /// Returns the class named `name`, materializing it if necessary, or
  /// nullptr when it cannot be found in the app package or the framework
  /// image (e.g. truly dynamic code generated only at runtime). The
  /// returned pointer is stable for the provider's lifetime.
  virtual const LoadedClass* load(const std::string& name) = 0;

  /// Fast path for re-loading a framework class out of a shared substrate:
  /// `cls` is the substrate's object and `slot` its dense substrate index
  /// (FrameworkSubstrate::ClassEntry::slot). Semantically identical to
  /// load(cls->name) — same shadowing, budget, fault and accounting
  /// behaviour — but implementations may answer repeat loads with a flag
  /// check instead of a name lookup. The default just delegates.
  virtual const LoadedClass* load_framework(const LoadedClass* cls,
                                            std::uint32_t slot) {
    (void)slot;
    return load(cls->name);
  }

  /// Classes materialized so far.
  virtual std::uint64_t loaded_class_count() const = 0;

  /// Memory accounting for everything materialized through this provider.
  virtual const MemoryMeter& memory() const = 0;
};

/// Approximate in-memory footprint of one class definition (the unit the
/// providers charge to their MemoryMeter).
std::uint64_t class_footprint_bytes(const DexFile& dex, const ClassDef& cls);

/// Builds the LoadedClass for `def` — names, footprint, provenance. The
/// single materialization routine shared by the per-analysis loaders and
/// the cross-app FrameworkSubstrate, so a shared framework class carries
/// exactly the fields (and exactly the footprint) a private copy would.
LoadedClass materialize_loaded_class(const DexFile& dex, const ClassDef& def,
                                     bool from_framework);

}  // namespace saintdroid
