#include "analysis/dominators.hpp"

#include <algorithm>

#include "support/errors.hpp"

namespace saintdroid {

namespace {

/// Reverse postorder over the CFG from the entry; unreached blocks keep
/// order kNoBlock.
std::vector<std::uint32_t> reverse_postorder(const Cfg& cfg,
                                             std::vector<std::uint32_t>& rpo) {
  const auto n = static_cast<std::uint32_t>(cfg.block_count());
  rpo.assign(n, kNoBlock);
  std::vector<std::uint32_t> postorder;
  postorder.reserve(n);
  std::vector<std::uint8_t> state(n, 0);  // 0 unseen, 1 open, 2 done
  std::vector<std::pair<std::uint32_t, int>> stack{{Cfg::entry(), 0}};
  state[Cfg::entry()] = 1;
  while (!stack.empty()) {
    auto& [block, phase] = stack.back();
    const BasicBlock& bb = cfg.block(block);
    const std::uint32_t succs[2] = {bb.fallthrough, bb.taken};
    bool descended = false;
    while (phase < 2) {
      const std::uint32_t next = succs[phase++];
      if (next == kNoBlock || state[next] != 0) continue;
      state[next] = 1;
      stack.emplace_back(next, 0);
      descended = true;
      break;
    }
    if (descended) continue;
    if (phase >= 2) {
      state[block] = 2;
      postorder.push_back(block);
      stack.pop_back();
    }
  }
  // Assign reverse-postorder numbers.
  std::vector<std::uint32_t> order(postorder.rbegin(), postorder.rend());
  for (std::uint32_t i = 0; i < order.size(); ++i) rpo[order[i]] = i;
  return order;
}

}  // namespace

Dominators Dominators::compute(const Cfg& cfg) {
  Dominators dom;
  const auto n = static_cast<std::uint32_t>(cfg.block_count());
  dom.idom_.assign(n, kNoBlock);
  const std::vector<std::uint32_t> order = reverse_postorder(cfg, dom.order_);

  const auto intersect = [&dom](std::uint32_t a, std::uint32_t b) {
    // Walk up the (partially built) dominator tree using RPO numbers.
    while (a != b) {
      while (dom.order_[a] > dom.order_[b]) a = dom.idom_[a];
      while (dom.order_[b] > dom.order_[a]) b = dom.idom_[b];
    }
    return a;
  };

  dom.idom_[Cfg::entry()] = Cfg::entry();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::uint32_t block : order) {
      if (block == Cfg::entry()) continue;
      std::uint32_t new_idom = kNoBlock;
      for (const std::uint32_t pred : cfg.block(block).preds) {
        if (dom.order_[pred] == kNoBlock) continue;  // unreachable pred
        if (dom.idom_[pred] == kNoBlock) continue;   // not yet processed
        new_idom = new_idom == kNoBlock ? pred : intersect(pred, new_idom);
      }
      if (new_idom != kNoBlock && dom.idom_[block] != new_idom) {
        dom.idom_[block] = new_idom;
        changed = true;
      }
    }
  }
  // Canonical form: the entry has no immediate dominator.
  dom.idom_[Cfg::entry()] = kNoBlock;
  return dom;
}

bool Dominators::dominates(std::uint32_t a, std::uint32_t b) const {
  SD_EXPECTS(a < idom_.size() && b < idom_.size());
  while (b != kNoBlock) {
    if (a == b) return true;
    b = idom_[b];
  }
  return false;
}

}  // namespace saintdroid
