#include "analysis/guards.hpp"

#include <deque>
#include <unordered_map>

#include "dex/ids.hpp"
#include "support/errors.hpp"

namespace saintdroid {

CmpOp negate_cmp(CmpOp cmp) {
  switch (cmp) {
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kGe: return CmpOp::kLt;
  }
  SD_EXPECTS(false);
  return CmpOp::kEq;
}

ApiInterval refine_interval(ApiInterval in, CmpOp cmp, std::int32_t literal) {
  if (in.empty()) return in;
  switch (cmp) {
    case CmpOp::kLt:
      return in.intersect(ApiInterval{kMinApiLevel, literal - 1});
    case CmpOp::kLe:
      return in.intersect(ApiInterval{kMinApiLevel, literal});
    case CmpOp::kGt:
      return in.intersect(ApiInterval{literal + 1, kMaxApiLevel});
    case CmpOp::kGe:
      return in.intersect(ApiInterval{literal, kMaxApiLevel});
    case CmpOp::kEq:
      return in.intersect(ApiInterval{literal, literal});
    case CmpOp::kNe:
      // {SDK_INT != k} is not contiguous unless k is an endpoint.
      if (literal == in.lo()) return ApiInterval{in.lo() + 1, in.hi()};
      if (literal == in.hi()) return ApiInterval{in.lo(), in.hi() - 1};
      return in;  // sound over-approximation
  }
  SD_EXPECTS(false);
  return in;
}

namespace {

struct BlockState {
  ApiInterval interval = ApiInterval::empty_interval();
  std::vector<RegFact> regs;
  // Facts about instance fields (keyed by field-ref pool index),
  // object-insensitive. Small: only fields assigned interesting facts.
  std::unordered_map<std::uint32_t, RegFact> fields;
  bool reached = false;
};

/// Join of register facts: keep only agreements.
void join_regs(std::vector<RegFact>& into, const std::vector<RegFact>& from) {
  for (std::size_t i = 0; i < into.size(); ++i)
    if (!(into[i] == from[i])) into[i] = RegFact::unknown();
}

/// Join of field facts: keep only entries present and equal on both sides.
void join_fields(std::unordered_map<std::uint32_t, RegFact>& into,
                 const std::unordered_map<std::uint32_t, RegFact>& from) {
  for (auto it = into.begin(); it != into.end();) {
    const auto other = from.find(it->first);
    if (other == from.end() || !(other->second == it->second))
      it = into.erase(it);
    else
      ++it;
  }
}

}  // namespace

GuardResult analyze_guards(const DexFile& dex, const MethodCode& code,
                           const Cfg& cfg, ApiInterval entry,
                           const GuardOptions& options,
                           BudgetTracker* budget) {
  const auto block_count = cfg.block_count();
  std::vector<BlockState> in_states(block_count);
  const std::size_t reg_count = code.register_count;

  in_states[Cfg::entry()].interval = entry;
  in_states[Cfg::entry()].regs.assign(reg_count, RegFact::unknown());
  in_states[Cfg::entry()].reached = true;

  std::deque<std::uint32_t> worklist{Cfg::entry()};
  std::vector<bool> queued(block_count, false);
  queued[Cfg::entry()] = true;

  // Caps iterations; the lattice is finite so this is belt-and-braces
  // against transfer-function bugs rather than a semantic limit.
  std::size_t iterations = 0;
  const std::size_t iteration_cap = block_count * 64 + 1024;

  const auto propagate =
      [&](std::uint32_t to, ApiInterval interval,
          const std::vector<RegFact>& regs,
          const std::unordered_map<std::uint32_t, RegFact>& fields) {
        BlockState& dst = in_states[to];
        bool changed = false;
        if (!dst.reached) {
          dst.interval = interval;
          dst.regs = regs;
          dst.fields = fields;
          dst.reached = true;
          changed = true;
        } else {
          const ApiInterval merged = dst.interval.hull(interval);
          if (!(merged == dst.interval)) {
            dst.interval = merged;
            changed = true;
          }
          std::vector<RegFact> before = dst.regs;
          join_regs(dst.regs, regs);
          if (before != dst.regs) changed = true;
          const std::size_t field_count_before = dst.fields.size();
          join_fields(dst.fields, fields);
          if (dst.fields.size() != field_count_before) changed = true;
        }
        if (changed && !queued[to]) {
          worklist.push_back(to);
          queued[to] = true;
        }
      };

  while (!worklist.empty() && iterations++ < iteration_cap) {
    if (budget && !budget->allow_step()) {
      // Budget exhausted mid-fixpoint: degrade soundly by widening every
      // block to the entry context — guards stop refining, call sites
      // stay visible, and the caller flags the report incomplete.
      GuardResult widened;
      widened.block_intervals.assign(block_count, entry);
      return widened;
    }
    const auto b = worklist.front();
    worklist.pop_front();
    queued[b] = false;

    const BasicBlock& block = cfg.block(b);
    ApiInterval interval = in_states[b].interval;
    std::vector<RegFact> regs = in_states[b].regs;
    std::unordered_map<std::uint32_t, RegFact> fields = in_states[b].fields;

    // Transfer through the block body.
    for (std::uint32_t i = block.first; i <= block.last; ++i) {
      const Instruction& insn = code.insns[i];
      switch (insn.op) {
        case Opcode::kConst:
          if (insn.reg_a < regs.size())
            regs[insn.reg_a] = RegFact::constant(insn.literal);
          break;
        case Opcode::kMove:
          if (insn.reg_a < regs.size() && insn.reg_b < regs.size())
            regs[insn.reg_a] = options.track_registers
                                   ? regs[insn.reg_b]
                                   : RegFact::unknown();
          break;
        case Opcode::kSget:
          if (insn.reg_a < regs.size()) {
            const FieldId field = dex.field_id_at(insn.index);
            regs[insn.reg_a] = field == kSdkIntField ? RegFact::sdk_int()
                                                     : RegFact::unknown();
          }
          break;
        case Opcode::kIput:
          // Cache into an instance field (object-insensitive).
          if (options.track_fields && insn.reg_a < regs.size() &&
              regs[insn.reg_a].kind != RegFact::Kind::kUnknown)
            fields[insn.index] = regs[insn.reg_a];
          else
            fields.erase(insn.index);
          break;
        case Opcode::kIget:
          if (insn.reg_a < regs.size()) {
            const auto it = fields.find(insn.index);
            regs[insn.reg_a] = options.track_fields && it != fields.end()
                                   ? it->second
                                   : RegFact::unknown();
          }
          break;
        case Opcode::kConstString:
        case Opcode::kMoveResult:
        case Opcode::kNewInstance:
        case Opcode::kLoadClass:
          if (insn.reg_a < regs.size())
            regs[insn.reg_a] = RegFact::unknown();
          break;
        default:
          break;
      }
    }

    // Edge refinement at a conditional on SDK_INT.
    const Instruction& last = code.insns[block.last];
    ApiInterval taken_interval = interval;
    ApiInterval fall_interval = interval;
    if (options.enabled && last.op == Opcode::kIfCmp) {
      const auto fact_of = [&](std::uint16_t reg) {
        return reg < regs.size() ? regs[reg] : RegFact::unknown();
      };
      const RegFact lhs = fact_of(last.reg_a);
      // Normalize to the form "SDK_INT <cmp> literal".
      bool recognized = false;
      CmpOp cmp = last.cmp;
      std::int32_t literal = 0;
      if (lhs.kind == RegFact::Kind::kSdkInt) {
        if (last.cmp_with_literal) {
          literal = last.literal;
          recognized = true;
        } else if (options.track_registers) {
          const RegFact rhs = fact_of(last.reg_b);
          if (rhs.kind == RegFact::Kind::kConst) {
            literal = rhs.value;
            recognized = true;
          }
        }
      } else if (!last.cmp_with_literal && options.track_registers &&
                 lhs.kind == RegFact::Kind::kConst) {
        const RegFact rhs = fact_of(last.reg_b);
        if (rhs.kind == RegFact::Kind::kSdkInt) {
          // k <cmp> SDK_INT  ==  SDK_INT <mirrored cmp> k
          literal = lhs.value;
          switch (last.cmp) {
            case CmpOp::kLt: cmp = CmpOp::kGt; break;
            case CmpOp::kLe: cmp = CmpOp::kGe; break;
            case CmpOp::kGt: cmp = CmpOp::kLt; break;
            case CmpOp::kGe: cmp = CmpOp::kLe; break;
            default: break;  // eq/ne are symmetric
          }
          recognized = true;
        }
      }
      if (recognized) {
        taken_interval = refine_interval(interval, cmp, literal);
        fall_interval = refine_interval(interval, negate_cmp(cmp), literal);
      }
    }

    if (block.taken != kNoBlock)
      propagate(block.taken, taken_interval, regs, fields);
    if (block.fallthrough != kNoBlock)
      propagate(block.fallthrough, fall_interval, regs, fields);
  }

  GuardResult result;
  result.block_intervals.reserve(block_count);
  for (const auto& state : in_states)
    result.block_intervals.push_back(
        state.reached ? state.interval : ApiInterval::empty_interval());
  return result;
}

}  // namespace saintdroid
