#include "analysis/guards.hpp"

#include <deque>
#include <unordered_map>

#include "dex/ids.hpp"
#include "support/errors.hpp"

namespace saintdroid {

CmpOp negate_cmp(CmpOp cmp) {
  switch (cmp) {
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kGe: return CmpOp::kLt;
  }
  SD_EXPECTS(false);
  return CmpOp::kEq;
}

ApiInterval refine_interval(ApiInterval in, CmpOp cmp, std::int32_t literal) {
  if (in.empty()) return in;
  switch (cmp) {
    case CmpOp::kLt:
      return in.intersect(ApiInterval{kMinApiLevel, literal - 1});
    case CmpOp::kLe:
      return in.intersect(ApiInterval{kMinApiLevel, literal});
    case CmpOp::kGt:
      return in.intersect(ApiInterval{literal + 1, kMaxApiLevel});
    case CmpOp::kGe:
      return in.intersect(ApiInterval{literal, kMaxApiLevel});
    case CmpOp::kEq:
      return in.intersect(ApiInterval{literal, literal});
    case CmpOp::kNe:
      // {SDK_INT != k} is not contiguous unless k is an endpoint.
      if (literal == in.lo()) return ApiInterval{in.lo() + 1, in.hi()};
      if (literal == in.hi()) return ApiInterval{in.lo(), in.hi() - 1};
      return in;  // sound over-approximation
  }
  SD_EXPECTS(false);
  return in;
}

namespace {

struct BlockState {
  ApiInterval interval = ApiInterval::empty_interval();
  std::vector<RegFact> regs;
  // Facts about instance fields (keyed by field-ref pool index),
  // object-insensitive. Small: only fields assigned interesting facts.
  std::unordered_map<std::uint32_t, RegFact> fields;
  bool reached = false;
};

/// Join of register facts: keep only agreements.
void join_regs(std::vector<RegFact>& into, const std::vector<RegFact>& from) {
  for (std::size_t i = 0; i < into.size(); ++i)
    if (!(into[i] == from[i])) into[i] = RegFact::unknown();
}

/// Join of field facts: keep only entries present and equal on both sides.
void join_fields(std::unordered_map<std::uint32_t, RegFact>& into,
                 const std::unordered_map<std::uint32_t, RegFact>& from) {
  for (auto it = into.begin(); it != into.end();) {
    const auto other = from.find(it->first);
    if (other == from.end() || !(other->second == it->second))
      it = into.erase(it);
    else
      ++it;
  }
}

}  // namespace

GuardResult analyze_guards(const DexFile& dex, const MethodCode& code,
                           const Cfg& cfg, ApiInterval entry,
                           const GuardOptions& options,
                           BudgetTracker* budget,
                           const SdkPredicateLookup* predicates) {
  const auto block_count = cfg.block_count();
  std::vector<BlockState> in_states(block_count);
  const std::size_t reg_count = code.register_count;

  in_states[Cfg::entry()].interval = entry;
  in_states[Cfg::entry()].regs.assign(reg_count, RegFact::unknown());
  in_states[Cfg::entry()].reached = true;

  std::deque<std::uint32_t> worklist{Cfg::entry()};
  std::vector<bool> queued(block_count, false);
  queued[Cfg::entry()] = true;

  // Caps iterations; the lattice is finite so this is belt-and-braces
  // against transfer-function bugs rather than a semantic limit.
  std::size_t iterations = 0;
  const std::size_t iteration_cap = block_count * 64 + 1024;

  const auto propagate =
      [&](std::uint32_t to, ApiInterval interval,
          const std::vector<RegFact>& regs,
          const std::unordered_map<std::uint32_t, RegFact>& fields) {
        BlockState& dst = in_states[to];
        bool changed = false;
        if (!dst.reached) {
          dst.interval = interval;
          dst.regs = regs;
          dst.fields = fields;
          dst.reached = true;
          changed = true;
        } else {
          const ApiInterval merged = dst.interval.hull(interval);
          if (!(merged == dst.interval)) {
            dst.interval = merged;
            changed = true;
          }
          std::vector<RegFact> before = dst.regs;
          join_regs(dst.regs, regs);
          if (before != dst.regs) changed = true;
          const std::size_t field_count_before = dst.fields.size();
          join_fields(dst.fields, fields);
          if (dst.fields.size() != field_count_before) changed = true;
        }
        if (changed && !queued[to]) {
          worklist.push_back(to);
          queued[to] = true;
        }
      };

  // Transfer through one block body, mutating regs/fields in place. A
  // pending helper-predicate fact set at kInvoke is consumed by the
  // immediately following kMoveResult (Dalvik's move-result adjacency).
  const auto transfer_body = [&](const BasicBlock& block,
                                 std::vector<RegFact>& regs,
                                 std::unordered_map<std::uint32_t, RegFact>&
                                     fields) {
    std::optional<ApiInterval> pending_predicate;
    for (std::uint32_t i = block.first; i <= block.last; ++i) {
      const Instruction& insn = code.insns[i];
      switch (insn.op) {
        case Opcode::kConst:
          if (insn.reg_a < regs.size())
            regs[insn.reg_a] = RegFact::constant(insn.literal);
          break;
        case Opcode::kMove:
          if (insn.reg_a < regs.size() && insn.reg_b < regs.size())
            regs[insn.reg_a] = options.track_registers
                                   ? regs[insn.reg_b]
                                   : RegFact::unknown();
          break;
        case Opcode::kSget:
          if (insn.reg_a < regs.size()) {
            const FieldId field = dex.field_id_at(insn.index);
            regs[insn.reg_a] = field == kSdkIntField ? RegFact::sdk_int()
                                                     : RegFact::unknown();
          }
          break;
        case Opcode::kIput:
          // Cache into an instance field (object-insensitive).
          if (options.track_fields && insn.reg_a < regs.size() &&
              regs[insn.reg_a].kind != RegFact::Kind::kUnknown)
            fields[insn.index] = regs[insn.reg_a];
          else
            fields.erase(insn.index);
          break;
        case Opcode::kIget:
          if (insn.reg_a < regs.size()) {
            const auto it = fields.find(insn.index);
            regs[insn.reg_a] = options.track_fields && it != fields.end()
                                   ? it->second
                                   : RegFact::unknown();
          }
          break;
        case Opcode::kInvoke:
          if (options.enabled && options.track_registers &&
              predicates != nullptr)
            pending_predicate = (*predicates)(insn.index);
          break;
        case Opcode::kMoveResult:
          if (insn.reg_a < regs.size())
            regs[insn.reg_a] = pending_predicate
                                   ? RegFact::predicate(*pending_predicate)
                                   : RegFact::unknown();
          break;
        case Opcode::kConstString:
        case Opcode::kNewInstance:
        case Opcode::kLoadClass:
          if (insn.reg_a < regs.size())
            regs[insn.reg_a] = RegFact::unknown();
          break;
        default:
          break;
      }
      if (insn.op != Opcode::kInvoke) pending_predicate.reset();
    }
  };

  // What a block's terminal branch tells us about the level axis.
  struct EdgeSplit {
    ApiInterval taken;
    ApiInterval fall;
    bool direct = false;  // recognized "SDK_INT <cmp> literal"
    CmpOp cmp = CmpOp::kEq;
    std::int32_t literal = 0;
  };
  // The contiguous complement of a predicate's true-range, when it has one
  // (the range touches an end of the modelled axis); nullopt otherwise.
  const auto complement = [](ApiInterval p) -> std::optional<ApiInterval> {
    if (p.empty()) return ApiInterval::full();
    const bool at_lo = p.lo() <= kMinApiLevel;
    const bool at_hi = p.hi() >= kMaxApiLevel;
    if (at_lo && at_hi) return ApiInterval::empty_interval();
    if (at_lo) return ApiInterval{p.hi() + 1, kMaxApiLevel};
    if (at_hi) return ApiInterval{kMinApiLevel, p.lo() - 1};
    return std::nullopt;
  };
  const auto split_edges = [&](const BasicBlock& block, ApiInterval interval,
                               const std::vector<RegFact>& regs) {
    EdgeSplit split{interval, interval};
    const Instruction& last = code.insns[block.last];
    if (!options.enabled || last.op != Opcode::kIfCmp) return split;
    const auto fact_of = [&](std::uint16_t reg) {
      return reg < regs.size() ? regs[reg] : RegFact::unknown();
    };
    const RegFact lhs = fact_of(last.reg_a);
    // Normalize to the form "SDK_INT <cmp> literal".
    CmpOp cmp = last.cmp;
    std::int32_t literal = 0;
    bool recognized = false;
    if (lhs.kind == RegFact::Kind::kSdkInt) {
      if (last.cmp_with_literal) {
        literal = last.literal;
        recognized = true;
      } else if (options.track_registers) {
        const RegFact rhs = fact_of(last.reg_b);
        if (rhs.kind == RegFact::Kind::kConst) {
          literal = rhs.value;
          recognized = true;
        }
      }
    } else if (!last.cmp_with_literal && options.track_registers &&
               lhs.kind == RegFact::Kind::kConst) {
      const RegFact rhs = fact_of(last.reg_b);
      if (rhs.kind == RegFact::Kind::kSdkInt) {
        // k <cmp> SDK_INT  ==  SDK_INT <mirrored cmp> k
        literal = lhs.value;
        switch (last.cmp) {
          case CmpOp::kLt: cmp = CmpOp::kGt; break;
          case CmpOp::kLe: cmp = CmpOp::kGe; break;
          case CmpOp::kGt: cmp = CmpOp::kLt; break;
          case CmpOp::kGe: cmp = CmpOp::kLe; break;
          default: break;  // eq/ne are symmetric
        }
        recognized = true;
      }
    }
    if (recognized) {
      split.taken = refine_interval(interval, cmp, literal);
      split.fall = refine_interval(interval, negate_cmp(cmp), literal);
      split.direct = true;
      split.cmp = cmp;
      split.literal = literal;
      return split;
    }
    // Helper-predicate branch: the boolean result of an SDK-check helper
    // compared against zero ("if (isAtLeastN()) ..." compiles to a
    // zero-test of the returned flag).
    if (lhs.kind == RegFact::Kind::kPredicate &&
        (last.cmp == CmpOp::kEq || last.cmp == CmpOp::kNe)) {
      const bool vs_zero =
          last.cmp_with_literal
              ? last.literal == 0
              : fact_of(last.reg_b) == RegFact::constant(0);
      if (vs_zero) {
        const ApiInterval true_levels = lhs.predicate_levels();
        const auto false_levels = complement(true_levels);
        // kNe takes the branch when the helper returned true.
        const bool taken_is_true = last.cmp == CmpOp::kNe;
        ApiInterval& true_edge = taken_is_true ? split.taken : split.fall;
        ApiInterval& false_edge = taken_is_true ? split.fall : split.taken;
        true_edge = interval.intersect(true_levels);
        if (false_levels) false_edge = interval.intersect(*false_levels);
      }
    }
    return split;
  };

  while (!worklist.empty() && iterations++ < iteration_cap) {
    if (budget && !budget->allow_step()) {
      // Budget exhausted mid-fixpoint: degrade soundly by widening every
      // block to the entry context — guards stop refining, call sites
      // stay visible, and the caller flags the report incomplete.
      GuardResult widened;
      widened.block_intervals.assign(block_count, entry);
      return widened;
    }
    const auto b = worklist.front();
    worklist.pop_front();
    queued[b] = false;

    const BasicBlock& block = cfg.block(b);
    ApiInterval interval = in_states[b].interval;
    std::vector<RegFact> regs = in_states[b].regs;
    std::unordered_map<std::uint32_t, RegFact> fields = in_states[b].fields;

    transfer_body(block, regs, fields);
    const EdgeSplit split = split_edges(block, interval, regs);

    if (block.taken != kNoBlock)
      propagate(block.taken, split.taken, regs, fields);
    if (block.fallthrough != kNoBlock)
      propagate(block.fallthrough, split.fall, regs, fields);
  }

  GuardResult result;
  result.block_intervals.reserve(block_count);
  for (const auto& state : in_states)
    result.block_intervals.push_back(
        state.reached ? state.interval : ApiInterval::empty_interval());

  // Post-fixpoint replay over reached blocks: re-run each body transfer on
  // the final in-state and record every recognized direct SDK_INT
  // comparison, in block (= instruction) order. Replaying after the
  // fixpoint — rather than collecting during it — sees each branch exactly
  // once, with its final register facts.
  if (options.enabled) {
    for (std::uint32_t b = 0; b < block_count; ++b) {
      if (!in_states[b].reached) continue;
      const BasicBlock& block = cfg.block(b);
      if (code.insns[block.last].op != Opcode::kIfCmp) continue;
      std::vector<RegFact> regs = in_states[b].regs;
      std::unordered_map<std::uint32_t, RegFact> fields = in_states[b].fields;
      transfer_body(block, regs, fields);
      const EdgeSplit split = split_edges(block, in_states[b].interval, regs);
      if (split.direct)
        result.checks.push_back({block.last, split.cmp, split.literal});
    }
  }
  return result;
}

}  // namespace saintdroid
