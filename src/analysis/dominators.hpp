// Dominator analysis over SDEX CFGs (Cooper-Harvey-Kennedy).
//
// Infrastructure for the precision/overhead trade-off the paper names as
// future work (§VIII): a guard *dominating* a call site protects every
// path to it, which is a cheaper (if slightly less precise) alternative to
// the full interval dataflow, and the building block for structured
// repair insertion by the advisor.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.hpp"

namespace saintdroid {

/// Immediate-dominator tree for one CFG.
class Dominators {
 public:
  /// Computes dominators with the entry block as root. Unreachable blocks
  /// get kNoBlock as their immediate dominator.
  static Dominators compute(const Cfg& cfg);

  /// Immediate dominator of `block` (kNoBlock for the entry and for
  /// unreachable blocks).
  std::uint32_t idom(std::uint32_t block) const { return idom_[block]; }

  /// True when `a` dominates `b` (reflexive).
  bool dominates(std::uint32_t a, std::uint32_t b) const;

  std::size_t block_count() const { return idom_.size(); }

 private:
  std::vector<std::uint32_t> idom_;
  std::vector<std::uint32_t> order_;  // reverse-postorder number per block
};

}  // namespace saintdroid
