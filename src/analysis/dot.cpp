#include "analysis/dot.hpp"

#include <sstream>

#include "dex/disasm.hpp"

namespace saintdroid {

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\l";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string cfg_to_dot(const DexFile& dex, const MethodCode& code,
                       const Cfg& cfg, const std::string& graph_name,
                       const GuardResult* guards) {
  std::ostringstream out;
  out << "digraph \"" << dot_escape(graph_name) << "\" {\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  for (std::uint32_t b = 0; b < cfg.block_count(); ++b) {
    const BasicBlock& block = cfg.block(b);
    std::string label = "B" + std::to_string(b);
    if (guards && b < guards->block_intervals.size())
      label += " " + guards->block_intervals[b].to_string();
    label += "\n";
    for (std::uint32_t i = block.first; i <= block.last; ++i)
      label += "@" + std::to_string(i) + ": " +
               disassemble(dex, code.insns[i]) + "\n";
    out << "  b" << b << " [label=\"" << dot_escape(label) << "\"];\n";
    if (block.fallthrough != kNoBlock)
      out << "  b" << b << " -> b" << block.fallthrough
          << " [label=\"fall\"];\n";
    if (block.taken != kNoBlock)
      out << "  b" << b << " -> b" << block.taken << " [label=\"taken\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace saintdroid
