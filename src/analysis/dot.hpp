// Graphviz (DOT) rendering of CFGs — a debugging aid for inspecting how
// the guard analysis sees a method.
#pragma once

#include <string>

#include "analysis/cfg.hpp"
#include "analysis/guards.hpp"

namespace saintdroid {

/// Renders the CFG of one method body as a DOT digraph. When `guards` is
/// non-null its per-block intervals are included in the node labels.
std::string cfg_to_dot(const DexFile& dex, const MethodCode& code,
                       const Cfg& cfg, const std::string& graph_name,
                       const GuardResult* guards = nullptr);

}  // namespace saintdroid
