// Control-flow graph construction over SDEX method bodies.
//
// Blocks are maximal straight-line instruction runs; leaders are the entry,
// every branch target, and every instruction following a branch. A block
// ending in if-cmp has two distinguished successors (fallthrough = the
// comparison was false, taken = true), which is what lets the guard
// analysis refine the API interval differently along each edge.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dex/dexfile.hpp"

namespace saintdroid {

inline constexpr std::uint32_t kNoBlock = 0xffffffffu;

struct BasicBlock {
  std::uint32_t first = 0;  ///< index of the first instruction
  std::uint32_t last = 0;   ///< index of the last instruction (inclusive)
  std::uint32_t fallthrough = kNoBlock;  ///< next block when not taken
  std::uint32_t taken = kNoBlock;        ///< branch target block (if-cmp/goto)
  std::vector<std::uint32_t> preds;

  bool ends_in_conditional(const MethodCode& code) const {
    return code.insns[last].op == Opcode::kIfCmp;
  }
};

class Cfg {
 public:
  /// Builds the CFG for a non-empty method body.
  static Cfg build(const MethodCode& code);

  std::span<const BasicBlock> blocks() const { return blocks_; }
  const BasicBlock& block(std::uint32_t id) const { return blocks_[id]; }
  std::size_t block_count() const { return blocks_.size(); }

  /// Block containing instruction `insn_index`.
  std::uint32_t block_of(std::uint32_t insn_index) const {
    return insn_to_block_[insn_index];
  }

  /// Entry block id (always 0 for a non-empty body).
  static constexpr std::uint32_t entry() { return 0; }

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<std::uint32_t> insn_to_block_;
};

}  // namespace saintdroid
