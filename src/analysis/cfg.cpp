#include "analysis/cfg.hpp"

#include <algorithm>

#include "support/errors.hpp"

namespace saintdroid {

Cfg Cfg::build(const MethodCode& code) {
  SD_EXPECTS(!code.insns.empty());
  const auto n = static_cast<std::uint32_t>(code.insns.size());

  // Mark leaders.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Instruction& insn = code.insns[i];
    if (insn.is_branch()) {
      leader[insn.target] = true;
      if (i + 1 < n) leader[i + 1] = true;
    } else if (insn.is_terminator() && i + 1 < n) {
      leader[i + 1] = true;
    }
  }

  Cfg cfg;
  cfg.insn_to_block_.resize(n);

  // Carve blocks.
  for (std::uint32_t i = 0; i < n;) {
    BasicBlock block;
    block.first = i;
    const auto id = static_cast<std::uint32_t>(cfg.blocks_.size());
    cfg.insn_to_block_[i] = id;
    std::uint32_t j = i;
    while (j + 1 < n && !leader[j + 1] && !code.insns[j].is_terminator() &&
           code.insns[j].op != Opcode::kIfCmp) {
      ++j;
      cfg.insn_to_block_[j] = id;
    }
    block.last = j;
    cfg.blocks_.push_back(block);
    i = j + 1;
  }

  // Wire successors.
  const auto block_count = static_cast<std::uint32_t>(cfg.blocks_.size());
  for (std::uint32_t b = 0; b < block_count; ++b) {
    BasicBlock& block = cfg.blocks_[b];
    const Instruction& last = code.insns[block.last];
    switch (last.op) {
      case Opcode::kIfCmp:
        block.taken = cfg.insn_to_block_[last.target];
        if (block.last + 1 < n)
          block.fallthrough = cfg.insn_to_block_[block.last + 1];
        break;
      case Opcode::kGoto:
        block.taken = cfg.insn_to_block_[last.target];
        break;
      case Opcode::kReturnVoid:
      case Opcode::kReturn:
      case Opcode::kThrow:
        break;  // no successors
      default:
        if (block.last + 1 < n)
          block.fallthrough = cfg.insn_to_block_[block.last + 1];
        break;
    }
  }

  // Predecessors.
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const BasicBlock& block = cfg.blocks_[b];
    if (block.fallthrough != kNoBlock)
      cfg.blocks_[block.fallthrough].preds.push_back(b);
    if (block.taken != kNoBlock) cfg.blocks_[block.taken].preds.push_back(b);
  }

  return cfg;
}

}  // namespace saintdroid
