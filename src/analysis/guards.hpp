// SDK_INT guard analysis: a forward interval dataflow on the CFG.
//
// Computes, per basic block, the closed interval of device API levels under
// which the block may execute, starting from a context interval (the app's
// declared [minSdk, maxSdk], or a narrower caller context when analyzing a
// callee interprocedurally — the context sensitivity that sets SAINTDroid
// apart from CID/Lint, §V-A). Register facts track which registers hold
// SDK_INT or constants so that guards written through temporaries and
// register-register comparisons refine correctly; joins take the interval
// hull, the sound direction for "may execute under".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "analysis/cfg.hpp"
#include "support/budget.hpp"
#include "support/interval.hpp"

namespace saintdroid {

/// What the analysis knows about one register's value.
struct RegFact {
  enum class Kind : std::uint8_t { kUnknown = 0, kSdkInt, kConst, kPredicate };
  Kind kind = Kind::kUnknown;
  std::int32_t value = 0;  // kConst only
  // kPredicate: the register holds the boolean result of a helper-method
  // SDK check ("isAtLeastLollipop()"); [pred_lo, pred_hi] is the closed
  // level range over which that helper returns true.
  std::int32_t pred_lo = 0;
  std::int32_t pred_hi = 0;

  friend bool operator==(const RegFact&, const RegFact&) = default;

  static RegFact unknown() { return {}; }
  static RegFact sdk_int() { return {Kind::kSdkInt, 0}; }
  static RegFact constant(std::int32_t v) { return {Kind::kConst, v}; }
  static RegFact predicate(ApiInterval true_levels) {
    RegFact f;
    f.kind = Kind::kPredicate;
    f.pred_lo = true_levels.lo();
    f.pred_hi = true_levels.hi();
    return f;
  }
  ApiInterval predicate_levels() const { return {pred_lo, pred_hi}; }
};

/// Resolves an invoked method (by its method-ref pool index) to the level
/// interval over which it returns true, when the callee is a recognizable
/// SDK-check helper — the AndroidCompass helper-method guard idiom. Return
/// nullopt for anything else. Provided by the caller (AUM summarizes app
/// helper bodies); the dataflow itself stays intraprocedural.
using SdkPredicateLookup =
    std::function<std::optional<ApiInterval>(std::uint32_t method_ref_idx)>;

/// Options controlling guard recognition; the baselines dial features off
/// to reproduce their documented blind spots.
struct GuardOptions {
  /// Track SDK_INT through move instructions and register-register
  /// comparisons. Lint's simple lexical check does not (paper §VII).
  bool track_registers = true;
  /// Track SDK_INT cached in instance fields (iput/iget of the same
  /// field) — the `this.sdkLevel = Build.VERSION.SDK_INT` idiom.
  /// Object-insensitive, the standard approximation for this tool class.
  bool track_fields = true;
  /// Recognize guards at all. Turning this off yields the no-guard
  /// ablation.
  bool enabled = true;
};

/// One recognized direct `SDK_INT <cmp> literal` comparison, normalized so
/// SDK_INT is the left operand. Raw material for the vacuous-guard SDC
/// lint (docs/DETECTORS.md §SDC).
struct SdkGuardCheck {
  std::uint32_t insn_index = 0;  ///< the kIfCmp instruction
  CmpOp cmp = CmpOp::kEq;
  std::int32_t literal = 0;
};

/// Result of analyzing one method body.
struct GuardResult {
  /// Per-block interval of levels under which the block may execute.
  std::vector<ApiInterval> block_intervals;

  /// Every recognized direct SDK_INT comparison in the body, in
  /// instruction order (one entry per reached kIfCmp; empty when guard
  /// recognition is disabled or the analysis widened on budget
  /// exhaustion). Helper-predicate branches are not listed: the check
  /// lives in the helper, not at its call sites.
  std::vector<SdkGuardCheck> checks;

  /// Convenience: the interval for the block containing `insn_index`.
  ApiInterval at(const Cfg& cfg, std::uint32_t insn_index) const {
    return block_intervals[cfg.block_of(insn_index)];
  }
};

/// Runs the dataflow. `entry` is the interval assumed at method entry.
/// `budget`, when provided, is charged one step per fixpoint iteration;
/// on exhaustion the analysis degrades soundly — every block's interval
/// widens to `entry`, i.e. guards stop refining but nothing is hidden.
/// `predicates`, when provided, lets branches on helper-method SDK checks
/// refine the interval (see SdkPredicateLookup).
GuardResult analyze_guards(const DexFile& dex, const MethodCode& code,
                           const Cfg& cfg, ApiInterval entry,
                           const GuardOptions& options = {},
                           BudgetTracker* budget = nullptr,
                           const SdkPredicateLookup* predicates = nullptr);

/// Refines `in` with the constraint `SDK_INT <cmp> literal` (taken branch).
ApiInterval refine_interval(ApiInterval in, CmpOp cmp, std::int32_t literal);

/// The comparison that holds on the fallthrough (not-taken) edge.
CmpOp negate_cmp(CmpOp cmp);

}  // namespace saintdroid
