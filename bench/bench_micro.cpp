// Micro-benchmarks for the substrate layers (google-benchmark): container
// encode/decode, framework image emission, ARM database mining, lazy class
// loading, CFG construction, guard dataflow, and a full per-app analysis.
#include <benchmark/benchmark.h>

#include "adf/repository.hpp"
#include "analysis/cfg.hpp"
#include "analysis/guards.hpp"
#include "clvm/clvm.hpp"
#include "core/saintdroid.hpp"
#include "workload/app_builder.hpp"
#include "workload/corpus.hpp"

namespace sd = saintdroid;

namespace {

const sd::FrameworkRepository& repo() {
  return sd::FrameworkRepository::standard();
}

sd::Apk make_app(std::uint64_t loc) {
  sd::AppBuilder b{"micro", "com.micro.app", repo().spec()};
  b.sdk(16, 26);
  b.api_call(sd::catalog::get_color_state_list());
  b.callback_override(sd::catalog::drawable_hotspot_changed());
  b.framework_breadth(20);
  b.pad_to(loc);
  return b.build().apk;
}

void BM_DexSerialize(benchmark::State& state) {
  const sd::Apk apk = make_app(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(apk.dexes.front().serialize());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(apk.dex_loc()));
}
BENCHMARK(BM_DexSerialize)->Arg(5000)->Arg(50000);

void BM_DexParse(benchmark::State& state) {
  const sd::Apk apk = make_app(static_cast<std::uint64_t>(state.range(0)));
  const auto bytes = apk.dexes.front().serialize();
  for (auto _ : state) benchmark::DoNotOptimize(sd::DexFile::parse(bytes));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_DexParse)->Arg(5000)->Arg(50000);

void BM_FrameworkImageEmission(benchmark::State& state) {
  const auto& spec = repo().spec();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sd::emit_framework_image(spec, static_cast<int>(state.range(0))));
}
BENCHMARK(BM_FrameworkImageEmission)->Arg(16)->Arg(28);

void BM_ArmMining(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(sd::ApiDatabase::mine(repo()));
}
BENCHMARK(BM_ArmMining)->Unit(benchmark::kMillisecond);

void BM_LazyClassLoad(benchmark::State& state) {
  const sd::Apk apk = make_app(5000);
  const sd::DexFile& framework = repo().image(26);
  for (auto _ : state) {
    sd::ClassLoaderVm vm{apk, framework};
    benchmark::DoNotOptimize(vm.load("android/app/Activity"));
    benchmark::DoNotOptimize(vm.load("android/view/View"));
  }
}
BENCHMARK(BM_LazyClassLoad);

void BM_CfgBuild(benchmark::State& state) {
  const sd::Apk apk = make_app(20000);
  const sd::DexFile& dex = apk.dexes.front();
  for (auto _ : state) {
    for (const auto& cls : dex.classes())
      for (const auto& m : cls.methods)
        if (m.code && !m.code->insns.empty())
          benchmark::DoNotOptimize(sd::Cfg::build(*m.code));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dex.instruction_count()));
}
BENCHMARK(BM_CfgBuild);

void BM_GuardDataflow(benchmark::State& state) {
  const sd::Apk apk = make_app(20000);
  const sd::DexFile& dex = apk.dexes.front();
  for (auto _ : state) {
    for (const auto& cls : dex.classes())
      for (const auto& m : cls.methods) {
        if (!m.code || m.code->insns.empty()) continue;
        const sd::Cfg cfg = sd::Cfg::build(*m.code);
        benchmark::DoNotOptimize(sd::analyze_guards(
            dex, *m.code, cfg, sd::ApiInterval{16, 29}));
      }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dex.instruction_count()));
}
BENCHMARK(BM_GuardDataflow);

void BM_FullAnalysis(benchmark::State& state) {
  const sd::RealWorldCorpus corpus{repo()};
  const sd::BenchApp app = corpus.generate(static_cast<int>(state.range(0)));
  sd::SaintDroid tool{repo()};
  for (auto _ : state) benchmark::DoNotOptimize(tool.analyze(app.apk));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(app.apk.dex_loc()));
}
BENCHMARK(BM_FullAnalysis)->Arg(0)->Arg(7)->Arg(42)
    ->Unit(benchmark::kMillisecond);

}  // namespace
