// Table I — the mismatch taxonomy, regenerated from live detections.
//
// One demonstration app per row: the paper's Listing 1 (API invocation),
// Listing 2 (API callback, Simple Solitaire's Fragment.onAttach) and
// Listing 3 (permission misuse). Each row is backed by an actual
// SAINTDroid detection on the demo app, not by a hard-coded string.
#include <cstdio>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "workload/app_builder.hpp"

namespace sd = saintdroid;

namespace {

struct Row {
  const char* mismatch;
  const char* abbr;
  const char* app_level;
  const char* device_level;
  const char* results_in;
  sd::MismatchKind kind;
  sd::AppBuilder::Built built;
};

}  // namespace

int main() {
  const auto& repo = sd::FrameworkRepository::standard();
  const auto& spec = repo.spec();
  namespace cat = sd::catalog;

  // Listing 1: minSdk 21, target 28, unguarded getColorStateList (API 23).
  sd::AppBuilder listing1{"listing1", "com.example.listing1", spec};
  listing1.sdk(21, 28);
  listing1.api_call(cat::get_color_state_list());

  // Listing 2: Simple Solitaire — overrides Fragment.onAttach(Context).
  sd::AppBuilder listing2{"listing2", "com.example.listing2", spec};
  listing2.sdk(14, 27);
  listing2.callback_override(cat::on_attach_context());

  // Listing 3: target >= 23, dangerous permission, no runtime protocol.
  sd::AppBuilder listing3{"listing3", "com.example.listing3", spec};
  listing3.sdk(19, 26);
  listing3.permission_use(cat::camera_open());

  Row rows[] = {
      {"API invocation (App->API)", "API", ">= a", "< a",
       "app invokes method introduced/updated in a",
       sd::MismatchKind::kApiInvocation, listing1.build()},
      {"API callback (API->App)", "APC", ">= a", "< a",
       "app overrides a callback introduced/updated in a",
       sd::MismatchKind::kApiCallback, listing2.build()},
      {"Permission-induced", "PRM", ">= 23 | < 23", "< 23 | >= 23",
       "app misuses runtime permission checking",
       sd::MismatchKind::kPermissionRequest, listing3.build()},
  };

  sd::SaintDroid tool{repo};
  std::printf("Table I: API- and permission-induced compatibility issues\n\n");
  std::printf("%-28s %-5s %-13s %-13s %s\n", "Mismatch", "Abbr", "App level",
              "Device level", "Results in");

  bool all_demonstrated = true;
  for (const auto& row : rows) {
    const sd::AnalysisResult result = tool.analyze(row.built.apk);
    bool demonstrated = false;
    for (const auto& m : result.mismatches) {
      const bool permission_family =
          row.kind == sd::MismatchKind::kPermissionRequest &&
          (m.kind == sd::MismatchKind::kPermissionRequest ||
           m.kind == sd::MismatchKind::kPermissionRevocation);
      if (m.kind == row.kind || permission_family) demonstrated = true;
    }
    all_demonstrated &= demonstrated;
    std::printf("%-28s %-5s %-13s %-13s %s\n", row.mismatch, row.abbr,
                row.app_level, row.device_level, row.results_in);
    std::printf("  demo: %s -> %s\n", row.built.apk.name.c_str(),
                demonstrated ? result.mismatches.front().to_string().c_str()
                             : "NOT DETECTED (regression!)");
  }
  std::printf("\n%s\n", all_demonstrated
                            ? "all three rows demonstrated by live detections"
                            : "ERROR: some rows not demonstrated");
  return all_demonstrated ? 0 : 1;
}
