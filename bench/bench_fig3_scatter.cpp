// Figure 3 — scatter of SAINTDroid analysis time vs app size over the
// real-world corpus.
//
// The paper plots analysis time against app KLOC for the 3,571-app corpus
// (avg 6.2 s, 1.6 - 37.8 s on their hardware) and highlights two kinds of
// outliers: small apps that load a disproportionate number of library
// classes (slow despite low KLOC) and large apps with shallow library use
// (fast despite high KLOC). We print the (kloc, ms, classes-loaded) series
// in deciles plus the extreme points, and the same outlier diagnosis.
//
// Pass an app count as argv[1] to subsample (default: the full corpus).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "support/stats.hpp"
#include "workload/corpus.hpp"

namespace sd = saintdroid;

namespace {

struct Point {
  double kloc = 0;
  double ms = 0;
  std::uint64_t classes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto& repo = sd::FrameworkRepository::standard();
  const sd::RealWorldCorpus corpus{repo};
  int count = corpus.size();
  if (argc > 1) count = std::min(count, std::atoi(argv[1]));

  sd::SaintDroid tool{repo};
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(count));
  sd::OnlineStats time_stats;
  std::vector<double> times;

  for (int i = 0; i < count; ++i) {
    const sd::BenchApp app = corpus.generate(i);
    const sd::AnalysisResult result = tool.analyze(app.apk);
    Point p;
    p.kloc = app.apk.kloc();
    p.ms = result.usage.seconds * 1000.0;
    p.classes = result.usage.loaded_classes;
    points.push_back(p);
    time_stats.add(p.ms);
    times.push_back(p.ms);
  }

  std::printf("Fig. 3: SAINTDroid analysis time vs app size over %d "
              "real-world apps\n\n", count);
  std::printf("analysis time: avg %.2f ms, min %.2f ms, max %.2f ms, "
              "p50 %.2f, p95 %.2f\n",
              time_stats.mean(), time_stats.min(), time_stats.max(),
              sd::percentile(times, 50), sd::percentile(times, 95));

  // Decile view of the scatter: apps sorted by size, per-decile time.
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.kloc < b.kloc; });
  std::printf("\n%8s %12s %14s %16s\n", "decile", "avg KLOC", "avg time ms",
              "avg classes");
  const std::size_t n = points.size();
  for (int d = 0; d < 10; ++d) {
    const std::size_t lo = n * d / 10;
    const std::size_t hi = n * (d + 1) / 10;
    if (lo >= hi) continue;
    sd::OnlineStats kloc;
    sd::OnlineStats ms;
    sd::OnlineStats classes;
    for (std::size_t i = lo; i < hi; ++i) {
      kloc.add(points[i].kloc);
      ms.add(points[i].ms);
      classes.add(static_cast<double>(points[i].classes));
    }
    std::printf("%8d %12.1f %14.2f %16.0f\n", d + 1, kloc.mean(), ms.mean(),
                classes.mean());
  }

  // Outlier diagnosis (paper §V-C): slowest small app vs fastest large app.
  const auto small_slow = std::max_element(
      points.begin(), points.begin() + static_cast<long>(n / 4),
      [](const Point& a, const Point& b) { return a.ms < b.ms; });
  const auto large_fast = std::min_element(
      points.begin() + static_cast<long>(3 * n / 4), points.end(),
      [](const Point& a, const Point& b) { return a.ms < b.ms; });
  if (small_slow != points.begin() + static_cast<long>(n / 4))
    std::printf("\noutlier (library-heavy small app): %.1f KLOC took %.2f ms "
                "loading %llu classes\n",
                small_slow->kloc, small_slow->ms,
                static_cast<unsigned long long>(small_slow->classes));
  if (large_fast != points.end())
    std::printf("counterpoint (large, shallow app): %.1f KLOC took %.2f ms "
                "loading %llu classes\n",
                large_fast->kloc, large_fast->ms,
                static_cast<unsigned long long>(large_fast->classes));

  std::printf("\npaper shape: time tracks loaded-library volume, not raw "
              "KLOC; avg 6.2 s with range 1.6 - 37.8 s on their hardware "
              "(absolute scale differs; the shape is the target).\n");
  return 0;
}
