// Table II — accuracy of SAINTDroid vs CID, CIDER and Lint on the 19
// buildable apps of CID-Bench + CIDER-Bench.
//
// For each app and tool we report detections per mismatch family (API /
// APC / PRM) as TP/reported against the seeded ground-truth ledger, then
// the aggregate precision / recall / F-measure rows the paper reports.
// Expected shape (paper §V-A): SAINTDroid detects all three families with
// the highest F-measure (paper: P 79%, R 93%, F 85%; APC 40/42 with zero
// APC false positives); CID is API-only and fails on the four largest
// apps; CIDER is APC-only over its four modelled classes; Lint has the
// lowest recall (~19%) with a high false-warning rate.
#include <cstdio>
#include <memory>
#include <vector>

#include "adf/repository.hpp"
#include "baselines/cid.hpp"
#include "baselines/cider.hpp"
#include "baselines/lint.hpp"
#include "core/saintdroid.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"

namespace sd = saintdroid;

namespace {

void print_scores(const char* label, const sd::Score& s) {
  std::printf(
      "  %-18s TP %4zu  FP %4zu  FN %4zu  P %5.1f%%  R %5.1f%%  F %5.1f%%\n",
      label, s.tp, s.fp, s.fn, 100.0 * s.precision(), 100.0 * s.recall(),
      100.0 * s.f_measure());
}

std::string cell(const sd::SuiteAppRow& row) {
  if (!row.completed) return "-- (failed)";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%zu/%zu %zu/%zu %zu/%zu",
                row.scores.api.tp, row.scores.api.tp + row.scores.api.fp,
                row.scores.apc.tp, row.scores.apc.tp + row.scores.apc.fp,
                row.scores.prm.tp, row.scores.prm.tp + row.scores.prm.fp);
  return buf;
}

}  // namespace

int main() {
  const auto& repo = sd::FrameworkRepository::standard();
  const auto apps = sd::accuracy_bench(repo);

  std::size_t real_api = 0;
  std::size_t real_apc = 0;
  std::size_t real_prm = 0;
  for (const auto& app : apps) {
    real_api += app.truth.real_count(sd::MismatchKind::kApiInvocation);
    real_apc += app.truth.real_count(sd::MismatchKind::kApiCallback);
    real_prm += app.truth.real_count(sd::MismatchKind::kPermissionRequest);
  }
  std::printf("Table II: accuracy on %zu benchmark apps\n", apps.size());
  std::printf("ground truth: %zu real API, %zu real APC, %zu real PRM "
              "issues seeded\n\n",
              real_api, real_apc, real_prm);

  sd::SaintDroid saint{repo};
  sd::CidAnalyzer cid{repo};
  sd::CiderAnalyzer cider;
  sd::LintAnalyzer lint{repo};
  sd::Analyzer* tools[] = {&saint, &cid, &cider, &lint};

  std::vector<sd::SuiteResult> results;
  for (sd::Analyzer* tool : tools)
    results.push_back(sd::run_suite(*tool, apps));

  std::printf("per app, TP/reported for API APC PRM:\n");
  std::printf("%-18s | %-24s | %-24s | %-24s | %-24s\n", "app", "SAINTDroid",
              "CID", "CIDER", "Lint");
  for (std::size_t a = 0; a < apps.size(); ++a) {
    std::printf("%-18s |", apps[a].apk.name.c_str());
    for (const auto& result : results)
      std::printf(" %-24s |", cell(result.rows[a]).c_str());
    std::printf("\n");
  }

  std::printf("\nAggregate (all mismatch families):\n");
  for (const auto& result : results)
    print_scores(result.tool.c_str(), result.aggregate.total());

  std::printf("\nPer family:\n");
  for (const auto& result : results) {
    std::printf("%s (%d app failures):\n", result.tool.c_str(),
                result.failures);
    print_scores("API invocation", result.aggregate.api);
    print_scores("API callback", result.aggregate.apc);
    print_scores("permission", result.aggregate.prm);
  }

  std::printf("\npaper targets: SAINTDroid P 79%% R 93%% F 85%%; SAINTDroid "
              "APC 40/42 with 0 APC false positives; Lint recall ~19%%; "
              "CID fails on 4 apps.\n");

  // --- SEM / SDC extension strata -----------------------------------------
  // The curated benchmark apps carry no semantic-change or declared-SDK
  // issues, so the two newer families are measured on generated corpus
  // strata with those seeds enabled. SAINTDroid's ledger-checked accuracy
  // on them is a hard gate: anything below perfect P/R on its own seeded
  // ground truth is a detector regression, and this bench exits nonzero.
  sd::CorpusConfig strata_config;
  strata_config.app_count = 48;
  strata_config.semantic_app_fraction = 0.6;
  strata_config.declaration_issue_fraction = 0.5;
  strata_config.helper_guard_fraction = 0.5;
  const sd::RealWorldCorpus strata{repo, strata_config};
  const auto strata_apps = strata.generate_range(0, strata_config.app_count);

  std::size_t real_sem = 0;
  std::size_t real_sdc = 0;
  for (const auto& app : strata_apps) {
    real_sem += app.truth.real_count(sd::MismatchKind::kSemanticChange);
    real_sdc += app.truth.real_count(sd::MismatchKind::kSdkDeclaration);
  }
  const sd::SuiteResult extension = sd::run_suite(saint, strata_apps);
  std::printf("\nSEM/SDC extension strata: %zu generated apps, "
              "%zu real SEM, %zu real SDC issues seeded\n",
              strata_apps.size(), real_sem, real_sdc);
  print_scores("semantic-change", extension.aggregate.sem);
  print_scores("sdk-declaration", extension.aggregate.sdc);

  const auto perfect = [](const sd::Score& s) {
    return s.tp > 0 && s.fp == 0 && s.fn == 0;
  };
  if (!perfect(extension.aggregate.sem) || !perfect(extension.aggregate.sdc)) {
    std::printf("FAIL: SEM/SDC precision/recall below 1.0 on seeded "
                "ground truth\n");
    return 1;
  }
  std::printf("SEM/SDC gate: P 100.0%% R 100.0%% on seeded ground truth\n");
  return 0;
}
