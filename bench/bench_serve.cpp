// Online vetting service benchmark: startup, latency under load, shedding
// and crash-replay — the numbers behind docs/robustness.md.
//
// Four phases over one synthetic corpus:
//   1. cold vs warm start: two consecutive VetService constructions sharing
//      one state directory; the warm one must serve its ApiDatabase from
//      the on-disk model cache and be strictly faster.
//   2. offered-load sweep at 0.5x / 1x / 2x of service capacity
//      (jobs + queue depth, closed-loop clients): per-request latency
//      p50/p99 and the shed-rate curve.
//   3. the 2x point doubles as the overload gate: every request gets
//      exactly one response, the daemon sheds rather than deadlocks, and
//      every accepted row is byte-identical (canonical journal bytes) to
//      what a batch run produces for the same package.
//   4. kill -9 simulation: truncate results.jsonl behind a finished
//      service's back (results that were computed but "lost in the crash"),
//      restart on the same state directory, and require replay to recover
//      every accepted request byte-identically — zero lost.
//
// Writes BENCH_serve.json; exits 1 if any gate fails.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "serve/codec.hpp"
#include "serve/service.hpp"
#include "serve/state.hpp"
#include "support/meter.hpp"
#include "support/sdmc.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace sd = saintdroid;

namespace {

constexpr int kJobs = 2;
constexpr std::size_t kQueue = 4;
constexpr int kCorpusSize = 96;

struct Corpus {
  std::vector<std::string> paths;           // on-disk packages, serve input
  std::unordered_map<std::string, std::string> reference;  // app -> bytes
  std::shared_ptr<const sd::ApiDatabase> db;
};

/// Generates the corpus on disk and computes the batch reference rows —
/// the canonical bytes a `saintdroid batch` run journals for the same
/// packages (empty ground truth, exactly serve's scoring input).
Corpus build_corpus(const std::string& dir) {
  const auto& repo = sd::FrameworkRepository::standard();
  sd::CorpusConfig config;
  config.app_count = kCorpusSize;
  config.size_base = 80.0;  // small apps: this measures the service,
  config.size_spread = 1.3;  // not analysis depth
  std::filesystem::remove_all(dir);
  sd::ensure_directory(dir);

  Corpus corpus;
  std::vector<sd::BenchApp> apps;
  sd::RealWorldCorpus generator{repo, config};
  for (const sd::BenchApp& generated :
       generator.generate_range(0, kCorpusSize, kJobs)) {
    sd::BenchApp app;
    app.apk = generated.apk;
    const std::string path = dir + "/" + app.apk.name + ".apk";
    sd::write_file_atomic(path, app.apk.serialize());
    corpus.paths.push_back(path);
    apps.push_back(std::move(app));
  }
  sd::SaintDroid miner{repo};
  corpus.db = miner.shared_database();
  const sd::SuiteResult suite = sd::run_suite_parallel(
      [&corpus] {
        return std::make_unique<sd::SaintDroid>(
            sd::FrameworkRepository::standard(), corpus.db);
      },
      std::span<const sd::BenchApp>{apps.data(), apps.size()}, kJobs);
  for (const auto& row : suite.rows)
    corpus.reference.emplace(row.app, sd::canonical_row_bytes(row));
  return corpus;
}

sd::ServeOptions service_options(const Corpus& corpus) {
  sd::ServeOptions options;
  options.jobs = kJobs;
  options.queue_capacity = kQueue;
  options.database = corpus.db;
  options.repository = &sd::FrameworkRepository::standard();
  return options;
}

struct LoadPoint {
  double multiplier = 0.0;
  int clients = 0;
  std::size_t requests = 0;
  std::size_t attempts = 0;  // submissions incl. retries of shed requests
  std::size_t done = 0;
  std::size_t mismatched = 0;  // done rows that differ from batch bytes
  std::size_t shed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double seconds = 0.0;
};

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

/// One request through the service, synchronously: submit, wait for the
/// one response. Every attempt gets exactly one response by contract.
sd::ServeResponse submit_and_wait(sd::VetService& service,
                                  const sd::ServeRequest& request) {
  std::mutex mutex;
  std::condition_variable cv;
  bool got = false;
  sd::ServeResponse response;
  service.submit(request, [&](const sd::ServeResponse& answer) {
    const std::lock_guard lock{mutex};
    response = answer;
    got = true;
    cv.notify_one();
  });
  std::unique_lock lock{mutex};
  cv.wait(lock, [&] { return got; });
  return response;
}

/// Closed-loop offered load: `clients` threads round-robin the corpus;
/// each retries a request the daemon shed (after yielding) until it is
/// analyzed, so per-request latency covers the retries a real client pays
/// under overload and the shed counter draws the admission-control curve.
LoadPoint run_load_point(const Corpus& corpus, const std::string& statedir,
                         double multiplier) {
  LoadPoint point;
  point.multiplier = multiplier;
  point.clients = std::max(
      1, static_cast<int>(multiplier *
                          static_cast<double>(kJobs + static_cast<int>(kQueue))));
  point.requests = corpus.paths.size();

  std::filesystem::remove_all(statedir);
  sd::VetService service{statedir, service_options(corpus)};

  std::mutex mutex;
  std::vector<double> latencies_ms;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> attempts{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> mismatched{0};

  const sd::Stopwatch watch;
  std::vector<std::thread> threads;
  for (int c = 0; c < point.clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= corpus.paths.size()) return;
        sd::ServeRequest request;
        request.id = "r";
        request.id += std::to_string(i);
        request.apk_path = corpus.paths[i];
        const sd::Stopwatch latency;
        for (;;) {
          attempts.fetch_add(1);
          const sd::ServeResponse response =
              submit_and_wait(service, request);
          if (response.status == sd::ServeStatus::kRejected &&
              response.reason == "overloaded") {
            std::this_thread::yield();
            continue;
          }
          if (response.row.has_value()) {
            done.fetch_add(1);
            const auto want = corpus.reference.find(response.row->app);
            if (want == corpus.reference.end() ||
                want->second != sd::canonical_row_bytes(*response.row))
              mismatched.fetch_add(1);
          }
          break;
        }
        const double ms = 1000.0 * latency.seconds();
        const std::lock_guard lock{mutex};
        latencies_ms.push_back(ms);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  service.drain();
  point.seconds = watch.seconds();

  point.attempts = attempts.load();
  point.done = done.load();
  point.mismatched = mismatched.load();
  point.shed = service.stats().shed;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  point.p50_ms = percentile(latencies_ms, 0.50);
  point.p99_ms = percentile(latencies_ms, 0.99);
  return point;
}

struct ReplayResult {
  std::size_t accepted = 0;
  std::size_t dropped = 0;
  std::uint64_t replayed = 0;
  std::size_t lost = 0;
  std::size_t mismatched = 0;
};

/// Simulated kill -9: after a service answered everything and shut down,
/// truncate results.jsonl so the tail results are "lost in the crash"
/// while their acceptances stand, then restart and audit the ledger.
ReplayResult run_replay_gate(const Corpus& corpus,
                             const std::string& statedir) {
  ReplayResult result;
  std::filesystem::remove_all(statedir);
  const std::size_t kRequests = 12;
  {
    sd::VetService service{statedir, service_options(corpus)};
    for (std::size_t i = 0; i < kRequests; ++i) {
      sd::ServeRequest request;
      request.id = "k";
      request.id += std::to_string(i);
      request.apk_path = corpus.paths[i];
      // Sequential, so nothing is shed: 12 acceptances, 12 results.
      (void)submit_and_wait(service, request);
    }
    service.drain();
  }
  const sd::StatePaths paths{statedir};
  const auto accepted = sd::RequestJournal::load(paths.requests_path());
  result.accepted = accepted.size();

  // The "crash": drop the last third of the journaled results.
  std::vector<std::string> lines;
  {
    std::ifstream in{paths.results_path(), std::ios::binary};
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  result.dropped = lines.size() / 3;
  {
    std::ofstream out{paths.results_path(),
                      std::ios::binary | std::ios::trunc};
    for (std::size_t i = 0; i + result.dropped < lines.size(); ++i)
      out << lines[i] << '\n';
  }

  // Restart: replay must recompute exactly the dropped fingerprints.
  {
    sd::VetService service{statedir, service_options(corpus)};
    service.drain();
    result.replayed = service.stats().replayed;
  }
  sd::ResultCache after{paths.results_path()};
  for (const auto& acceptance : accepted) {
    const auto row = after.find(acceptance.fingerprint);
    if (!row.has_value()) {
      ++result.lost;
      continue;
    }
    const auto want = corpus.reference.find(row->app);
    if (want == corpus.reference.end() ||
        want->second != sd::canonical_row_bytes(*row))
      ++result.mismatched;
  }
  return result;
}

}  // namespace

int main() {
  const std::string corpus_dir = "BENCH_serve.corpus";
  const std::string statedir = "BENCH_serve.state";
  std::printf("generating %d-app corpus + batch reference...\n", kCorpusSize);
  const Corpus corpus = build_corpus(corpus_dir);

  // Phase 1: cold vs warm start. No pre-mined database here — the point is
  // the state directory's model cache, so both constructions pay (or skip)
  // the real model phase.
  std::filesystem::remove_all(statedir);
  sd::ServeOptions startup_options;
  startup_options.jobs = kJobs;
  startup_options.queue_capacity = kQueue;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  bool warm_from_cache = false;
  {
    const sd::Stopwatch watch;
    const sd::VetService service{statedir, startup_options};
    cold_seconds = watch.seconds();
  }
  {
    const sd::Stopwatch watch;
    const sd::VetService service{statedir, startup_options};
    warm_seconds = watch.seconds();
    warm_from_cache = service.stats().database_from_cache;
  }
  std::printf("start: cold %.2fs, warm %.2fs (%s)\n", cold_seconds,
              warm_seconds,
              warm_from_cache ? "db from cache" : "DB RE-MINED");

  // Phases 2+3: the load sweep; the 2x point carries the overload gates.
  std::vector<LoadPoint> sweep;
  for (const double multiplier : {0.5, 1.0, 2.0}) {
    std::printf("offered load %.1fx capacity...\n", multiplier);
    sweep.push_back(run_load_point(corpus, statedir, multiplier));
  }
  std::printf("\n%-6s %8s %9s %9s %9s %9s %7s %9s\n", "load", "clients",
              "done", "attempts", "p50 ms", "p99 ms", "shed", "rps");
  for (const LoadPoint& p : sweep)
    std::printf("%-6.1f %8d %9zu %9zu %9.2f %9.2f %7zu %9.1f\n",
                p.multiplier, p.clients, p.done, p.attempts, p.p50_ms,
                p.p99_ms, p.shed,
                p.seconds > 0 ? static_cast<double>(p.done) / p.seconds
                              : 0.0);

  // Phase 4: crash replay.
  std::printf("kill-replay gate...\n");
  const ReplayResult replay = run_replay_gate(corpus, statedir);
  std::printf("replay: %zu accepted, %zu results dropped, %llu replayed, "
              "%zu lost, %zu mismatched\n",
              replay.accepted, replay.dropped,
              static_cast<unsigned long long>(replay.replayed), replay.lost,
              replay.mismatched);

  const LoadPoint& twox = sweep.back();
  const bool warm_faster = warm_from_cache && warm_seconds < cold_seconds;
  // Every request eventually analyzed (the daemon kept accepting — no
  // deadlock, no lost client), and it shed along the way.
  const bool twox_all_answered = twox.done == twox.requests;
  const bool twox_sheds = twox.shed > 0;
  const bool twox_identical = twox.done > 0 && twox.mismatched == 0;
  const bool replay_lossless = replay.dropped > 0 && replay.lost == 0 &&
                               replay.mismatched == 0 &&
                               replay.replayed >=
                                   static_cast<std::uint64_t>(replay.dropped);

  if (std::FILE* out = std::fopen("BENCH_serve.json", "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"serve\",\n"
                 "  \"jobs\": %d,\n"
                 "  \"queue_capacity\": %zu,\n"
                 "  \"corpus_apps\": %d,\n"
                 "  \"cold_start_seconds\": %.4f,\n"
                 "  \"warm_start_seconds\": %.4f,\n"
                 "  \"warm_db_from_cache\": %s,\n"
                 "  \"warm_strictly_faster\": %s,\n"
                 "  \"load_points\": [\n",
                 kJobs, kQueue, kCorpusSize, cold_seconds, warm_seconds,
                 warm_from_cache ? "true" : "false",
                 warm_faster ? "true" : "false");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const LoadPoint& p = sweep[i];
      std::fprintf(out,
                   "    {\"multiplier\": %.1f, \"clients\": %d, "
                   "\"requests\": %zu, \"attempts\": %zu, \"done\": %zu, "
                   "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"shed\": %zu, "
                   "\"shed_rate\": %.4f, \"throughput_rps\": %.1f}%s\n",
                   p.multiplier, p.clients, p.requests, p.attempts, p.done,
                   p.p50_ms, p.p99_ms, p.shed,
                   p.attempts > 0 ? static_cast<double>(p.shed) /
                                        static_cast<double>(p.attempts)
                                  : 0.0,
                   p.seconds > 0 ? static_cast<double>(p.done) / p.seconds
                                 : 0.0,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"two_x_all_answered\": %s,\n"
                 "  \"two_x_sheds\": %s,\n"
                 "  \"two_x_byte_identical\": %s,\n"
                 "  \"replay_accepted\": %zu,\n"
                 "  \"replay_dropped\": %zu,\n"
                 "  \"replay_recomputed\": %llu,\n"
                 "  \"replay_lost\": %zu,\n"
                 "  \"replay_byte_identical\": %s\n"
                 "}\n",
                 twox_all_answered ? "true" : "false",
                 twox_sheds ? "true" : "false",
                 twox_identical ? "true" : "false", replay.accepted,
                 replay.dropped,
                 static_cast<unsigned long long>(replay.replayed),
                 replay.lost,
                 replay.mismatched == 0 ? "true" : "false");
    std::fclose(out);
    std::printf("-> BENCH_serve.json\n");
  }

  std::filesystem::remove_all(corpus_dir);
  std::filesystem::remove_all(statedir);

  int failures = 0;
  const auto gate = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GATE FAILED: %s\n", what);
      ++failures;
    }
  };
  gate(warm_faster, "warm start not strictly faster than cold");
  gate(twox_all_answered, "2x load: not every request answered");
  gate(twox_sheds, "2x load: no shedding observed");
  gate(twox_identical, "2x load: accepted rows differ from batch");
  gate(replay_lossless, "replay: accepted requests lost or mismatched");
  return failures == 0 ? 0 : 1;
}
