// Dynamic confirmation — the paper's §VI proposal realized: "utilize
// dynamic analysis techniques to automatically verify incompatibilities
// identified through our conservative, static analysis based,
// incompatibility detection technique, further alleviating the burden of
// manual analysis."
//
// For every benchmark app: run SAINTDroid statically, then execute the app
// at every supported device level with the dynamic verifier and classify
// each static API finding as CONFIRMED (a matching crash occurred at some
// level) or UNCONFIRMED (no execution crashed — e.g. the guard lives in
// runtime-generated code). The unconfirmed bucket is precisely where the
// static tool's false alarms hide, and triaging shrinks to reviewing it.
#include <cstdio>
#include <unordered_set>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "dynamic/interpreter.hpp"
#include "workload/benchmarks.hpp"
#include "workload/ground_truth.hpp"

namespace sd = saintdroid;

int main() {
  const auto& repo = sd::FrameworkRepository::standard();
  sd::SaintDroid tool{repo};
  const auto apps = sd::accuracy_bench(repo);

  std::printf("Dynamic confirmation of static API findings "
              "(%zu benchmark apps)\n\n", apps.size());
  std::printf("%-18s %10s %10s %12s %14s\n", "app", "static", "confirmed",
              "unconfirmed", "truly-benign*");

  int total_static = 0;
  int total_confirmed = 0;
  int total_unconfirmed = 0;
  int total_unconfirmed_benign = 0;

  for (const auto& app : apps) {
    const sd::AnalysisResult result = tool.analyze(app.apk);

    // Sweep every supported device level and collect crash identities.
    sd::Interpreter interp{app.apk, repo};
    std::unordered_set<std::string> crashed;
    const sd::ApiInterval range = app.apk.manifest.supported_range()
                                      .intersect(sd::ApiInterval::full());
    for (int level = range.lo(); level <= range.hi(); ++level) {
      sd::DeviceConfig device;
      device.level = level;
      for (const auto& crash : interp.run(device).crashes)
        if (crash.kind == sd::CrashEvent::Kind::kNoSuchMethod)
          crashed.insert(crash.location.to_string() + "|" +
                         crash.missing_api.name + ":" +
                         crash.missing_api.descriptor);
    }

    // Ledger keys of benign constructs, to grade the unconfirmed bucket.
    std::unordered_set<std::string> benign;
    for (const auto& issue : app.truth.issues)
      if (!issue.real && issue.kind == sd::MismatchKind::kApiInvocation)
        benign.insert(sd::match_key(sd::Mismatch{
            issue.kind, issue.location, 0, issue.subject, {}, {}, {}}));

    int confirmed = 0;
    int unconfirmed = 0;
    int unconfirmed_benign = 0;
    for (const auto& m : result.mismatches) {
      if (m.kind != sd::MismatchKind::kApiInvocation) continue;
      const std::string key = m.location.to_string() + "|" +
                              m.subject.name + ":" + m.subject.descriptor;
      if (crashed.contains(key)) {
        ++confirmed;
      } else {
        ++unconfirmed;
        unconfirmed_benign += benign.contains(sd::match_key(m));
      }
    }
    std::printf("%-18s %10d %10d %12d %14d\n", app.apk.name.c_str(),
                confirmed + unconfirmed, confirmed, unconfirmed,
                unconfirmed_benign);
    total_static += confirmed + unconfirmed;
    total_confirmed += confirmed;
    total_unconfirmed += unconfirmed;
    total_unconfirmed_benign += unconfirmed_benign;
  }

  std::printf("\ntotal: %d static API findings; %d (%.0f%%) dynamically "
              "confirmed as real crashes; %d unconfirmed, of which %d are "
              "ledger-benign (runtime-guarded) — the false-alarm bucket\n",
              total_static, total_confirmed,
              total_static ? 100.0 * total_confirmed / total_static : 0.0,
              total_unconfirmed, total_unconfirmed_benign);
  std::printf("\n* graded against the seeded ground truth; in the paper's "
              "setting this column is what manual inspection had to "
              "establish.\n");
  return 0;
}
