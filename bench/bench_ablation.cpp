// Ablations — isolating the contribution of each design choice the paper
// credits for SAINTDroid's profile (DESIGN.md experiment index):
//
//   1. lazy CLVM loading vs eager whole-world loading (time + memory)
//   2. guard analysis off (false-positive explosion on guarded code)
//   3. interprocedural guard context off (CID-style FPs on cross-method
//      guards)
//   4. late-binding exploration off (misses in secondary dexes)
//   5. deep-ADF framework walk off (loaded-class volume)
#include <cstdio>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "support/stats.hpp"
#include "workload/benchmarks.hpp"
#include "workload/corpus.hpp"

namespace sd = saintdroid;

namespace {

struct Totals {
  sd::Score score;
  sd::OnlineStats ms;
  sd::OnlineStats kb;
  sd::OnlineStats classes;
};

Totals run_config(const sd::FrameworkRepository& repo,
                  const std::vector<sd::BenchApp>& apps,
                  sd::SaintDroidOptions options) {
  sd::SaintDroid tool{repo, options};
  Totals totals;
  for (const auto& app : apps) {
    const sd::AnalysisResult result = tool.analyze(app.apk);
    totals.score += sd::score_detections(app.truth, result.mismatches);
    totals.ms.add(result.usage.seconds * 1000.0);
    totals.kb.add(static_cast<double>(result.usage.peak_bytes) / 1024.0);
    totals.classes.add(static_cast<double>(result.usage.loaded_classes));
  }
  return totals;
}

void print_row(const char* label, const Totals& t) {
  std::printf("  %-34s TP %4zu FP %4zu FN %4zu | avg %7.2f ms, %8.0f KiB, "
              "%5.0f classes\n",
              label, t.score.tp, t.score.fp, t.score.fn, t.ms.mean(),
              t.kb.mean(), t.classes.mean());
}

}  // namespace

int main() {
  const auto& repo = sd::FrameworkRepository::standard();
  auto apps = sd::accuracy_bench(repo);
  // A slice of the corpus for variety beyond the curated suite.
  const sd::RealWorldCorpus corpus{repo};
  for (int i = 0; i < 60; ++i) apps.push_back(corpus.generate(i));

  std::printf("Ablations over %zu apps (19 benchmark + 60 corpus)\n\n",
              apps.size());

  sd::SaintDroidOptions full;
  print_row("full SAINTDroid", run_config(repo, apps, full));

  {
    sd::SaintDroidOptions o;
    o.lazy_loading = false;
    print_row("eager loading (no CLVM)", run_config(repo, apps, o));
  }
  {
    sd::SaintDroidOptions o;
    o.aum.guards.enabled = false;
    print_row("no guard analysis", run_config(repo, apps, o));
  }
  {
    sd::SaintDroidOptions o;
    o.aum.interprocedural_guards = false;
    print_row("intraprocedural guards only", run_config(repo, apps, o));
  }
  {
    sd::SaintDroidOptions o;
    o.aum.follow_late_binding = false;
    print_row("no late-binding exploration", run_config(repo, apps, o));
  }
  {
    sd::SaintDroidOptions o;
    o.aum.framework_walk_depth = 0;
    print_row("no deep-ADF walk", run_config(repo, apps, o));
  }

  std::printf("\nexpected: eager loading multiplies memory/classes at equal "
              "accuracy; disabling guards floods FPs; intraprocedural-only "
              "adds the cross-method-guard FPs CID exhibits; disabling "
              "late binding drops the secondary-dex TPs; disabling the "
              "deep-ADF walk shrinks loaded classes.\n");
  return 0;
}
