// Incremental re-vetting benchmark: app-update analysis with a warm
// per-app fact cache vs. from scratch.
//
// Builds version 0 and version 1 of a strip of localized version chains
// (each bump edits two slot classes plus dead-code churn — the workload
// the incremental layer exists for), warms the cache on version 0, then
// times the version-1 re-vetting twice: from scratch and with the warm
// cache. Timings and counters go to BENCH_incremental.json; the run fails
// unless the warm pass served every app from the cache (hits == apps,
// fallbacks == 0), produced byte-identical canonical rows, and was
// strictly faster than the from-scratch pass.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "adf/repository.hpp"
#include "core/incr_cache.hpp"
#include "core/saintdroid.hpp"
#include "support/meter.hpp"
#include "support/thread_pool.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace sd = saintdroid;

namespace {

constexpr int kChains = 16;

sd::VersionChainConfig chain_config() {
  sd::VersionChainConfig config;
  config.versions = 2;
  // Large apps relative to the two-class edit, with all padding reachable
  // from onCreate: a from-scratch pass explores the whole app while the
  // incremental pass re-analyzes only the edited classes and replays the
  // rest from the cached traces.
  config.target_loc = 20000;
  config.filler_live_stride = 1;
  return config;
}

std::string sorted_canonical(const std::vector<sd::SuiteAppRow>& rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const auto& row : rows) lines.push_back(sd::canonical_row_bytes(row));
  std::sort(lines.begin(), lines.end());
  std::string bytes;
  for (const auto& line : lines) {
    bytes += line;
    bytes += '\n';
  }
  return bytes;
}

}  // namespace

int main() {
  const int jobs = static_cast<int>(sd::ThreadPool::default_workers());
  const std::string cache_dir = "BENCH_incremental.cache";
  std::filesystem::remove_all(cache_dir);

  sd::FrameworkConfig fw;
  fw.bulk_classes = 400;
  fw.bulk_packages = 12;
  const sd::FrameworkRepository repo{fw};

  std::printf("generating %d version chains (2 versions each)...\n", kChains);
  std::vector<sd::BenchApp> v0, v1;
  for (int c = 0; c < kChains; ++c) {
    v0.push_back(sd::generate_chain_version(repo, chain_config(), c, 0));
    v1.push_back(sd::generate_chain_version(repo, chain_config(), c, 1));
  }

  const auto db = std::make_shared<const sd::ApiDatabase>(
      sd::ApiDatabase::mine(repo, jobs));
  const auto cache = std::make_shared<const sd::IncrCache>(cache_dir);
  const auto scratch_factory = [&] {
    return std::make_unique<sd::SaintDroid>(repo, db);
  };
  const auto incr_factory = [&] {
    sd::SaintDroidOptions options;
    options.incr_cache = cache;
    // Update traffic keeps dirty fractions tiny; skip the entry rebuild
    // and write below 20% so the steady-state hit path is read-only.
    options.refresh_dirty_fraction = 0.2;
    return std::make_unique<sd::SaintDroid>(repo, db, options);
  };

  std::printf("warming cache on version 0 (%d jobs)...\n", jobs);
  const auto warmup = sd::run_suite_parallel(incr_factory, v0, jobs);

  std::printf("re-vetting version 1 from scratch...\n");
  const sd::Stopwatch scratch_watch;
  const auto scratch = sd::run_suite_parallel(scratch_factory, v1, jobs);
  const double scratch_seconds = scratch_watch.seconds();

  std::printf("re-vetting version 1 incrementally...\n");
  const sd::Stopwatch incr_watch;
  const auto incr = sd::run_suite_parallel(incr_factory, v1, jobs);
  const double incr_seconds = incr_watch.seconds();
  std::filesystem::remove_all(cache_dir);

  const double speedup =
      incr_seconds > 0 ? scratch_seconds / incr_seconds : 0.0;
  std::printf("\n%-24s %10.2f ms\n", "scratch", 1000.0 * scratch_seconds);
  std::printf("%-24s %10.2f ms  (%.2fx)\n", "incremental",
              1000.0 * incr_seconds, speedup);
  std::printf("warmup fallbacks %llu; incr hits %llu, fallbacks %llu, "
              "dirty classes %llu\n",
              static_cast<unsigned long long>(warmup.incremental.fallbacks),
              static_cast<unsigned long long>(incr.incremental.hits),
              static_cast<unsigned long long>(incr.incremental.fallbacks),
              static_cast<unsigned long long>(incr.incremental.dirty_classes));

  // Acceptance gates: every update served from the cache, byte-identical
  // findings, strictly faster than from scratch.
  const bool all_hits =
      incr.incremental.hits == static_cast<std::uint64_t>(kChains) &&
      incr.incremental.fallbacks == 0;
  const bool identical =
      sorted_canonical(incr.rows) == sorted_canonical(scratch.rows);
  const bool faster = incr_seconds < scratch_seconds;

  if (std::FILE* out = std::fopen("BENCH_incremental.json", "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"incremental_revet\",\n"
                 "  \"jobs\": %d,\n"
                 "  \"chains\": %d,\n"
                 "  \"scratch_seconds\": %.4f,\n"
                 "  \"incremental_seconds\": %.4f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"incremental_hits\": %llu,\n"
                 "  \"incremental_fallbacks\": %llu,\n"
                 "  \"dirty_classes\": %llu,\n"
                 "  \"rows_identical\": %s,\n"
                 "  \"incremental_strictly_faster\": %s\n"
                 "}\n",
                 jobs, kChains, scratch_seconds, incr_seconds, speedup,
                 static_cast<unsigned long long>(incr.incremental.hits),
                 static_cast<unsigned long long>(incr.incremental.fallbacks),
                 static_cast<unsigned long long>(
                     incr.incremental.dirty_classes),
                 identical ? "true" : "false", faster ? "true" : "false");
    std::fclose(out);
    std::printf("-> BENCH_incremental.json\n");
  }

  if (!all_hits) {
    std::fprintf(stderr, "INCREMENTAL PASS DID NOT HIT ON EVERY APP\n");
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr, "INCREMENTAL ROWS DIFFER FROM SCRATCH ROWS\n");
    return 1;
  }
  if (!faster) {
    std::fprintf(stderr, "INCREMENTAL PASS NOT FASTER THAN SCRATCH\n");
    return 1;
  }
  return 0;
}
