// Table IV — detection-capability matrix, derived from live runs.
//
// One canonical app per mismatch family; a tool gets a check mark for a
// family only if it actually reports a true detection on that app (its
// static detects() claim is cross-checked against the live behaviour).
#include <cstdio>
#include <memory>
#include <vector>

#include "adf/repository.hpp"
#include "baselines/cid.hpp"
#include "baselines/cider.hpp"
#include "baselines/lint.hpp"
#include "core/saintdroid.hpp"
#include "workload/app_builder.hpp"
#include "workload/ground_truth.hpp"

namespace sd = saintdroid;

int main() {
  const auto& repo = sd::FrameworkRepository::standard();
  const auto& spec = repo.spec();
  namespace cat = sd::catalog;

  sd::AppBuilder api_app{"api-demo", "com.demo.api", spec};
  api_app.sdk(21, 28);
  api_app.api_call(cat::get_color_state_list());

  sd::AppBuilder apc_app{"apc-demo", "com.demo.apc", spec};
  apc_app.sdk(14, 27);
  apc_app.callback_override(cat::on_attach_context());

  sd::AppBuilder prm_app{"prm-demo", "com.demo.prm", spec};
  prm_app.sdk(19, 26);
  prm_app.permission_use(cat::camera_open());

  struct Family {
    const char* name;
    sd::MismatchKind kind;
    sd::AppBuilder::Built built;
  };
  Family families[] = {
      {"API", sd::MismatchKind::kApiInvocation, api_app.build()},
      {"APC", sd::MismatchKind::kApiCallback, apc_app.build()},
      {"PRM", sd::MismatchKind::kPermissionRequest, prm_app.build()},
  };

  std::vector<std::unique_ptr<sd::Analyzer>> tools;
  tools.push_back(std::make_unique<sd::CidAnalyzer>(repo));
  tools.push_back(std::make_unique<sd::CiderAnalyzer>());
  tools.push_back(std::make_unique<sd::LintAnalyzer>(repo));
  tools.push_back(std::make_unique<sd::SaintDroid>(repo));

  std::printf("Table IV: detection capability (live-run derived)\n\n");
  std::printf("%-12s %6s %6s %6s\n", "", "API", "APC", "PRM");
  bool matrix_matches_claims = true;
  for (const auto& tool : tools) {
    std::printf("%-12s", std::string{tool->name()}.c_str());
    for (const auto& family : families) {
      const sd::AnalysisResult result = tool->analyze(family.built.apk);
      const sd::Score s =
          sd::score_detections(family.built.truth, result.mismatches,
                               family.kind);
      const bool live = s.tp > 0;
      matrix_matches_claims &= live == tool->detects(family.kind);
      std::printf(" %6s", live ? "yes" : "no");
    }
    std::printf("\n");
  }
  std::printf("\npaper Table IV: CID API-only; CIDER APC-only; IctApiFinder "
              "API-only (tool unavailable, not reimplemented); Lint "
              "API-only; SAINTDroid all three.\n");
  std::printf("%s\n", matrix_matches_claims
                          ? "live matrix matches each tool's declared "
                            "capabilities"
                          : "ERROR: live matrix contradicts declared "
                            "capabilities");
  return matrix_matches_claims ? 0 : 1;
}
