// Work-stealing vs static shards on a skewed corpus.
//
// The claim under test is the scheduler's reason to exist: a static
// `--shard i/N` partition pins corpus wall-clock to its slowest shard,
// while dynamic leases bound the tail by one lease. This bench builds a
// library-heavy corpus slice (the Fig. 3 outliers amplified — the regime
// where a few apps cost 10-50x the median), runs both schedulers end to
// end, and writes BENCH_workstealing.json.
//
// The acceptance gate compares *cost-model makespans*, not concurrent
// wall-clock: per-worker sums of the deterministic estimate_app_cost
// figures that drive lease planning. On a single-core bench host every
// "parallel" leg is time-sliced onto one CPU, so concurrent wall-clock
// measures scheduler overhead noise, not the partition quality the
// scheduler controls. The cost model is exactly what a multi-core host's
// wall-clock converges to. Wall-clock is still measured and reported for
// every leg; it just doesn't gate.
//
//   * static makespan: max over shards of the strided slice's cost sum —
//     what `--shard i/N` commits to before any app runs;
//   * stealing makespan (planned): greedy list-scheduling of the published
//     leases in id order (largest cost first) onto W workers — the
//     deterministic schedule the claim/complete loop implements;
//   * stealing makespan (realized): per-worker cost sums read back from
//     the .done lease census of the live multi-agent run.
//
// Gate: planned stealing makespan <= static makespan, AND both schedulers'
// rows byte-identical to the single-process suite with a clean merge.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "dist/agent.hpp"
#include "dist/coordinator.hpp"
#include "dist/lease.hpp"
#include "dist/workdir.hpp"
#include "support/meter.hpp"
#include "support/thread_pool.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace sd = saintdroid;

namespace {

/// The byte-identity currency shared with the shard/stealing tests:
/// rows sorted by app name, seconds zeroed.
std::string sorted_bytes(std::span<const sd::SuiteAppRow> rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const auto& row : rows) lines.push_back(sd::canonical_row_bytes(row));
  std::sort(lines.begin(), lines.end());
  std::string bytes;
  for (const auto& line : lines) {
    bytes += line;
    bytes += '\n';
  }
  return bytes;
}

/// Greedy list-scheduling of the lease plan onto `workers` identical
/// machines: each lease, in issue (id) order, goes to the least-loaded
/// worker — the schedule the claim loop realizes when every worker runs at
/// the same speed. Returns the per-worker cost sums.
std::vector<std::uint64_t> planned_worker_costs(const sd::WorkQueue& queue,
                                                int workers) {
  std::vector<std::uint64_t> load(static_cast<std::size_t>(workers), 0);
  for (const auto& lease : queue.leases) {
    std::uint64_t cost = 0;
    for (const int item : lease.items)
      cost += queue.items[static_cast<std::size_t>(item)].cost;
    *std::min_element(load.begin(), load.end()) += cost;
  }
  return load;
}

}  // namespace

int main(int argc, char** argv) {
  int count = 240;
  int workers = 5;
  int jobs = 2;
  int lease_size = 4;  // small leases: many steal opportunities
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--workers" && i + 1 < argc)
      workers = std::atoi(argv[++i]);
    else if (arg == "--jobs" && i + 1 < argc)
      jobs = std::atoi(argv[++i]);
    else if (arg == "--lease-size" && i + 1 < argc)
      lease_size = std::atoi(argv[++i]);
    else if (arg[0] != '-')
      count = std::atoi(argv[i]);
  }
  const int hw = static_cast<int>(sd::ThreadPool::default_workers());
  if (jobs <= 0) jobs = hw;  // same resolution as `batch --jobs 0`

  // The skewed corpus: the paper's Fig. 3 size distribution (lognormal-ish
  // with a heavy tail) plus a thickened library-heavy stratum, scaled down
  // in absolute size so the bench stays fast. The tail is the point — a
  // uniform corpus balances under *any* partition and there is nothing to
  // steal.
  const auto& repo = sd::FrameworkRepository::standard();
  sd::CorpusConfig config;
  config.app_count = count;
  config.size_base = 150.0;
  config.size_spread = 3.0;
  config.api_issue_mean = 6.0;
  config.library_heavy_fraction = 0.15;
  const sd::RealWorldCorpus corpus{repo, config};
  const std::vector<sd::BenchApp> apps =
      corpus.generate_range(0, count, hw);

  sd::SaintDroid miner{repo};
  const auto db = miner.shared_database();
  const sd::AnalyzerFactory factory = [&repo, &db] {
    return std::make_unique<sd::SaintDroid>(repo, db);
  };
  const std::string corpus_id = sd::corpus_fingerprint(apps);

  std::printf("work-stealing vs static shards: %d apps "
              "(library_heavy_fraction %.2f), %d workers x jobs=%d\n\n",
              count, config.library_heavy_fraction, workers, jobs);

  // --- reference: one process, full list --------------------------------
  double single_wall = 0.0;
  std::string reference;
  {
    const sd::Stopwatch watch;
    const sd::SuiteResult suite =
        sd::run_suite_parallel(factory, apps, workers * jobs);
    single_wall = watch.seconds();
    reference = sorted_bytes(suite.rows);
  }

  // --- static leg: strided shards, one journal each ---------------------
  std::vector<std::string> shard_files;
  std::vector<double> shard_walls;
  std::vector<std::uint64_t> shard_costs;
  for (int s = 0; s < workers; ++s) {
    const std::string file =
        "ws_static_shard" + std::to_string(s) + ".jsonl";
    const std::vector<sd::BenchApp> slice =
        sd::shard_slice(apps, s, workers);
    std::uint64_t cost = 0;
    for (const auto& app : slice) cost += sd::estimate_app_cost(app.apk);
    sd::SuiteRunOptions options;
    options.jobs = jobs;
    options.journal_path = file;
    options.corpus_id = corpus_id;
    options.shard_index = s;
    options.shard_count = workers;
    const sd::Stopwatch watch;
    (void)sd::run_suite_parallel(factory, slice, options);
    shard_walls.push_back(watch.seconds());
    shard_costs.push_back(cost);
    shard_files.push_back(file);
  }
  const sd::JournalMerge static_merge = sd::merge_journals(shard_files);
  const bool static_identical = static_merge.clean() &&
                                sorted_bytes(static_merge.rows) == reference;
  const double static_wall =
      *std::max_element(shard_walls.begin(), shard_walls.end());
  const std::uint64_t static_makespan =
      *std::max_element(shard_costs.begin(), shard_costs.end());
  const std::uint64_t total_cost =
      std::accumulate(shard_costs.begin(), shard_costs.end(),
                      std::uint64_t{0});

  // --- stealing leg: coordinator + racing agents ------------------------
  const std::string root =
      (std::filesystem::temp_directory_path() / "sd_bench_workstealing")
          .string();
  std::filesystem::remove_all(root);
  const sd::WorkDir dir{root};
  sd::CoordinatorOptions plan;
  plan.lease_size = lease_size;
  const sd::WorkQueue queue = sd::plan_work_queue(apps, {}, plan);
  dir.publish(queue, sd::WorkDir::now_seconds());

  double stealing_wall = 0.0;
  {
    const sd::Stopwatch watch;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&dir, &apps, &factory, w, jobs] {
        sd::AgentOptions options;
        options.worker = "w" + std::to_string(w);
        options.jobs = jobs;
        options.ttl_seconds = 1000;  // healthy run: nothing expires
        options.poll_seconds = 0.002;
        options.resolve = [&apps](const sd::WorkItem& item) {
          for (const auto& app : apps)
            if (app.apk.name == item.name) return app;
          throw sd::Error("bench resolver: unknown app " + item.name);
        };
        options.factory = factory;
        (void)sd::run_agent(dir, options);
      });
    }
    for (auto& thread : threads) thread.join();
    stealing_wall = watch.seconds();
  }
  const sd::CollectResult collected = sd::collect(dir);
  const bool stealing_identical =
      collected.merge.clean() &&
      sorted_bytes(collected.suite.rows) == reference;

  // Realized per-worker cost sums from the .done census.
  std::map<std::string, std::uint64_t> realized;
  for (const auto& state : dir.done_states()) {
    std::uint64_t cost = 0;
    for (const int item :
         queue.leases[static_cast<std::size_t>(state.lease_id)].items)
      cost += queue.items[static_cast<std::size_t>(item)].cost;
    realized[state.worker.empty() ? "(unknown)" : state.worker] += cost;
  }
  std::uint64_t realized_makespan = 0;
  for (const auto& [worker, cost] : realized)
    realized_makespan = std::max(realized_makespan, cost);

  const std::vector<std::uint64_t> planned =
      planned_worker_costs(queue, workers);
  const std::uint64_t planned_makespan =
      *std::max_element(planned.begin(), planned.end());

  // --- report -----------------------------------------------------------
  const auto pct = [total_cost](std::uint64_t cost) {
    return total_cost ? 100.0 * static_cast<double>(cost) /
                            static_cast<double>(total_cost)
                      : 0.0;
  };
  std::printf("cost-model makespans (total cost %llu, ideal %.1f%% per "
              "worker):\n",
              static_cast<unsigned long long>(total_cost),
              100.0 / workers);
  std::printf("  static shards     %8llu (%.1f%% of total)  shards:",
              static_cast<unsigned long long>(static_makespan),
              pct(static_makespan));
  for (const auto cost : shard_costs)
    std::printf(" %llu", static_cast<unsigned long long>(cost));
  std::printf("\n  stealing planned  %8llu (%.1f%% of total)\n",
              static_cast<unsigned long long>(planned_makespan),
              pct(planned_makespan));
  std::printf("  stealing realized %8llu (%.1f%% of total)  workers:",
              static_cast<unsigned long long>(realized_makespan),
              pct(realized_makespan));
  for (const auto& [worker, cost] : realized)
    std::printf(" %s=%llu", worker.c_str(),
                static_cast<unsigned long long>(cost));
  std::printf("\n\nwall-clock (reported, not gated — single-core hosts "
              "time-slice all legs):\n"
              "  single process %8.3fs\n"
              "  static shards  %8.3fs (slowest of %d)\n"
              "  stealing       %8.3fs (%d agents racing)\n",
              single_wall, static_wall, workers, stealing_wall, workers);
  std::printf("\nleases: %zu issued, %zu reclaimed, per-worker counts:",
              collected.suite.leases_issued,
              collected.suite.leases_reclaimed);
  for (const auto& wc : collected.suite.worker_lease_counts)
    std::printf(" %s=%d", wc.worker.c_str(), wc.leases);
  std::printf("\nbyte-identity: static %s, stealing %s (dups %zu — "
              "re-executions dedup silently)\n",
              static_identical ? "yes" : "NO",
              stealing_identical ? "yes" : "NO",
              collected.merge.duplicates);

  const bool makespan_ok = planned_makespan <= static_makespan;
  std::printf("\ngate: stealing makespan %llu <= static makespan %llu: "
              "%s\n",
              static_cast<unsigned long long>(planned_makespan),
              static_cast<unsigned long long>(static_makespan),
              makespan_ok ? "yes" : "NO");

  if (std::FILE* out = std::fopen("BENCH_workstealing.json", "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"workstealing_vs_static\",\n"
                 "  \"apps\": %d,\n"
                 "  \"workers\": %d,\n"
                 "  \"jobs\": %d,\n"
                 "  \"effective_jobs\": %d,\n"
                 "  \"hardware_concurrency\": %d,\n"
                 "  \"library_heavy_fraction\": %.2f,\n"
                 "  \"leases_issued\": %zu,\n"
                 "  \"leases_reclaimed\": %zu,\n"
                 "  \"total_cost\": %llu,\n"
                 "  \"static_cost_makespan\": %llu,\n"
                 "  \"stealing_cost_makespan_planned\": %llu,\n"
                 "  \"stealing_cost_makespan_realized\": %llu,\n"
                 "  \"stealing_over_static\": %.4f,\n"
                 "  \"single_process_wall_seconds\": %.4f,\n"
                 "  \"static_slowest_shard_wall_seconds\": %.4f,\n"
                 "  \"stealing_wall_seconds\": %.4f,\n"
                 "  \"merge_duplicates\": %zu,\n"
                 "  \"static_identical\": %s,\n"
                 "  \"stealing_identical\": %s,\n"
                 "  \"stealing_beats_static\": %s,\n"
                 "  \"static_shard_costs\": [",
                 count, workers, jobs, jobs, hw,
                 config.library_heavy_fraction,
                 collected.suite.leases_issued,
                 collected.suite.leases_reclaimed,
                 static_cast<unsigned long long>(total_cost),
                 static_cast<unsigned long long>(static_makespan),
                 static_cast<unsigned long long>(planned_makespan),
                 static_cast<unsigned long long>(realized_makespan),
                 static_makespan
                     ? static_cast<double>(planned_makespan) /
                           static_cast<double>(static_makespan)
                     : 0.0,
                 single_wall, static_wall, stealing_wall,
                 collected.merge.duplicates,
                 static_identical ? "true" : "false",
                 stealing_identical ? "true" : "false",
                 makespan_ok ? "true" : "false");
    for (std::size_t s = 0; s < shard_costs.size(); ++s)
      std::fprintf(out, "%s%llu", s == 0 ? "" : ", ",
                   static_cast<unsigned long long>(shard_costs[s]));
    std::fprintf(out, "],\n  \"worker_leases\": [\n");
    const auto& counts = collected.suite.worker_lease_counts;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const auto it = realized.find(counts[i].worker);
      std::fprintf(out,
                   "    {\"worker\": \"%s\", \"leases\": %d, "
                   "\"cost\": %llu}%s\n",
                   counts[i].worker.c_str(), counts[i].leases,
                   static_cast<unsigned long long>(
                       it == realized.end() ? 0 : it->second),
                   i + 1 < counts.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("-> BENCH_workstealing.json\n");
  }

  std::filesystem::remove_all(root);
  for (const auto& file : shard_files) std::filesystem::remove(file);
  return makespan_ok && static_identical && stealing_identical ? 0 : 1;
}
